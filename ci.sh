#!/usr/bin/env bash
# CI entry point: formatting, lints, build, full test suite, and a
# sub-second perf smoke of the simulation kernel (which also regenerates
# BENCH_sim.json and fails if the c7552 CSR/wide speedup regresses below
# the 3x acceptance threshold).
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check"
cargo fmt --all --check

echo "== cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo build --release"
cargo build --release

echo "== cargo test (workspace)"
cargo test --workspace -q

echo "== perf smoke"
cargo run --release -q -p iddq-bench --bin bench -- --smoke --out BENCH_sim.json

echo "CI OK"
