#!/usr/bin/env bash
# CI entry point: formatting, lints, build, full test suite, and a perf
# smoke of the simulation engines (which also regenerates BENCH_sim.json).
# The smoke fails if, on c7552, the delta-engine single-gate-mutation
# speedup drops below 3x full CSR re-evaluation, the fault-patch engine
# drops below 3x vs per-fault full re-simulation, or (on c1908) the
# patch-scored resynthesis candidates drop below 2x vs rebuild scoring /
# 3.5x vs the PR 4 rebuild at bit-identical costs, or the flat full-tier
# context build drops below 1.7x vs the PR 4 hash-map constructor, or
# the evolution loop drops below 2x vs rebuild-per-evaluation scoring,
# or the incremental dW separation maintenance drops below 2x vs the
# full separation pass on the c7552 probe (bit-identical costs
# asserted), or the mega-circuit sweep misses its wall-clock budget; the
# full bench run additionally gates the CSR/wide kernel at 3x vs seed,
# the delta engine and the fault-patch engine at 5x, resynthesis patch
# scoring at 3x/7.6x on c7552, the c7552 context build at 2.5x, and (on
# machines with >= 4 cores, announced explicitly either way) the
# parallel fault sweep, parallel context build, and structural-parallel
# sweep at 1.5x. The seq section gates on sequential correctness:
# multi-frame sweep grids bit-identical and at least one fault
# first-detected mid-sequence on every s* circuit. The serve section
# gates on correctness counts (every
# request answered exactly once, admission shed >= 1, tier degradation
# >= 1) in both modes, and the serve smoke leg replays the full service
# scenario end to end (overload, deadlines, degradation, worker panics,
# checkpoint resume) against a live daemon.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check"
cargo fmt --all --check

echo "== cargo clippy (deny warnings)"
# Library crates additionally carry
#   #![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
# so a new unwrap()/expect() in non-test library code fails this step:
# untrusted input must surface as iddq_control::EngineError, and every
# surviving expect documents the internal invariant that justifies it.
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo build --release"
cargo build --release

echo "== cargo test (workspace)"
cargo test --workspace -q

echo "== perf smoke"
cargo run --release -q -p iddq-bench --bin bench -- --smoke --out BENCH_sim.json

echo "== scale smoke"
# A 10^5-gate generated circuit: CSR build + one full sweep + a GateSep
# context + one resynthesis probe (bit-identical rollback asserted),
# all under one 60 s wall-clock RunBudget, with per-node memory asserted
# against fixed byte ceilings — scale regressions fail fast here instead
# of surfacing minutes into the full bench.
cargo run --release -q -p iddq-cli --bin iddq -- scale --smoke

echo "== seq smoke"
# Sequential circuits end to end on generated s* netlists: .bench DFF
# round-trip, frame-stepped simulation vs the scalar per-frame-rebuild
# reference, a multi-frame fault sweep with grid invariance and
# mid-sequence first detections (state actually carried), and
# time-frame-expanded ATPG whose vectors replay to detection.
cargo run --release -q -p iddq-cli --bin iddq -- seq --smoke

echo "== serve smoke"
# The hardened service end to end against a live in-process server:
# artifact-cache hits, deterministic tier degradation under a tiny
# cache, deadline partials with grid coverage, malformed/oversized
# lines answered with typed line-numbered errors, admission shed with
# retry hints, injected worker panics + supervisor restarts, and a
# deadline-interrupted keyed job resumed bit-identically from its
# checkpoint. Any failed check exits nonzero.
cargo run --release -q -p iddq-cli --bin iddq -- serve --smoke

echo "== chaos smoke"
# Deterministic fault injection over the serving path: checkpointed
# sweeps completed through seeded crash/restart schedules (final digest
# bit-identical to an uninterrupted run), and the persistent artifact
# store under injected ENOSPC / torn-write / failed-rename / corrupt-read
# faults plus deliberate on-disk corruption (served bundles verified
# bit-identical, corrupt entries quarantined and rebuilt). Fixed seeds,
# seconds of wall clock; any violated invariant exits nonzero with the
# offending seed. The full 200+ schedule sweep is `iddq chaos`.
cargo run --release -q -p iddq-cli --bin iddq -- chaos --smoke

echo "CI OK"
