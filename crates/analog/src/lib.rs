//! Electrical-level substrate for BIC sensor analysis.
//!
//! The paper's §3.2 derives the gate delay degradation factor `δ(g,t)`
//! from "a second order electrical network model having as parameters
//! `R_s` (the BIC sensor ON resistance), `C_s` (the parasitic capacitance
//! at the virtual rail node), `C_g` (the equivalent capacitance at the
//! output of g), `R_g` (an average equivalent ON resistance for the
//! discharging network of a gate of the CUT), and `n(t)` (the
//! activity-number of simultaneously switching gates at time t)". §3.4
//! additionally uses a term `Δ(τ)` for the IDDQ decay + sensing time,
//! "estimated from SPICE level simulations" as a function of the sensor
//! time constant `τ_s = R_s · C_s`.
//!
//! The original paper's printed formula for `δ` is illegible in the
//! archival scan, so this crate *re-derives* the model from the very
//! network the paper describes and validates the closed form against a
//! numerical transient solver (our stand-in for the authors' SPICE runs):
//!
//! * [`network::SwitchNetwork`] — the two-state ODE of `n` simultaneously
//!   discharging gates sharing one bypass device,
//! * [`transient`] — a fixed-step RK4 integrator,
//! * [`network::delay_degradation`] — the closed-form `δ(n, R_s, C_s,
//!   R_g, C_g)` used by the fast estimator in `iddq-core`,
//! * [`settle`] — the `Δ(τ)` decay/sense-time model.
//!
//! # Example
//!
//! ```rust
//! use iddq_analog::network::{delay_degradation, SwitchNetwork};
//!
//! // Ten gates switching at once through a 10 Ω bypass:
//! let fast = delay_degradation(10.0, 10.0, 200.0, 1.8, 60.0);
//! assert!(fast > 1.0); // the sensor always slows the gate down
//! // The numerical model agrees on direction and rough magnitude:
//! let net = SwitchNetwork { n: 10.0, rs_ohm: 10.0, cs_ff: 200.0, rg_kohm: 1.8, cg_ff: 60.0, vdd_v: 5.0 };
//! let slow = net.delay_ps() / net.nominal_delay_ps();
//! assert!((fast - slow).abs() / slow < 0.35);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod network;
pub mod settle;
pub mod transient;
