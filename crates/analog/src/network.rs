//! The second-order switching network of §3.2.
//!
//! `n` identical gates discharge their output capacitances `C_g` through
//! their pull-down resistances `R_g` into the module's virtual rail, which
//! is tied to true ground by the BIC sensor's bypass device (`R_s`) and
//! loaded by the parasitic rail capacitance `C_s`:
//!
//! ```text
//!   v_g ──C_g      (one representative gate, ×n)
//!    │
//!   R_g
//!    │
//!   v_s ──C_s      (virtual rail)
//!    │
//!   R_s
//!    │
//!   GND
//! ```
//!
//! State equations (i_g = (v_g − v_s)/R_g):
//!
//! ```text
//!   dv_g/dt = −i_g / C_g
//!   dv_s/dt = (n·i_g − v_s/R_s) / C_s
//! ```

use crate::transient::{first_crossing, rk4};

/// Parameters of one switching event: `n` gates discharging together
/// behind one bypass device.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SwitchNetwork {
    /// Number of simultaneously switching gates (the paper's `n(t)`).
    pub n: f64,
    /// Bypass ON resistance `R_s` in ohms.
    pub rs_ohm: f64,
    /// Virtual-rail parasitic capacitance `C_s` in femtofarads.
    pub cs_ff: f64,
    /// Gate discharge resistance `R_g` in kilo-ohms.
    pub rg_kohm: f64,
    /// Gate output capacitance `C_g` in femtofarads.
    pub cg_ff: f64,
    /// Supply voltage in volts.
    pub vdd_v: f64,
}

impl SwitchNetwork {
    /// Intrinsic gate time constant `R_g·C_g` in picoseconds.
    #[must_use]
    pub fn gate_rc_ps(&self) -> f64 {
        self.rg_kohm * self.cg_ff // kΩ·fF = ps
    }

    /// Nominal 50 %-swing delay without any sensor (`R_s = 0`):
    /// `ln 2 · R_g·C_g`.
    #[must_use]
    pub fn nominal_delay_ps(&self) -> f64 {
        std::f64::consts::LN_2 * self.gate_rc_ps()
    }

    fn derivatives(&self) -> impl Fn(f64, &[f64; 2]) -> [f64; 2] + '_ {
        // Work in ps / V; currents in V/kΩ = mA.
        let rg = self.rg_kohm;
        let rs = self.rs_ohm / 1000.0; // kΩ
        let cg = self.cg_ff;
        let cs = self.cs_ff;
        let n = self.n;
        move |_t, y: &[f64; 2]| {
            // mA / fF = 1e-3 A / 1e-15 F = 1e12 V/s = 1 V/ps: the (V, kΩ,
            // fF, ps) unit system needs no conversion factors.
            let ig = (y[0] - y[1]) / rg; // mA
            let dvg = -ig / cg; // V/ps
            let is = y[1] / rs; // mA through bypass
            let dvs = (n * ig - is) / cs; // V/ps
            [dvg, dvs]
        }
    }

    /// Rail time constant `R_s·C_s` in picoseconds.
    #[must_use]
    pub fn rail_rc_ps(&self) -> f64 {
        self.rs_ohm * self.cs_ff / 1000.0
    }

    /// `true` when the rail settles orders of magnitude faster than the
    /// gate: the two-state ODE is stiff and the quasi-static single-state
    /// model is both exact (to first order) and stable.
    fn is_stiff(&self) -> bool {
        self.rail_rc_ps() < self.gate_rc_ps() / 100.0
    }

    /// 50 %-swing delay of the representative gate *with* the sensor, by
    /// numerical integration (quasi-static closed form in the stiff
    /// regime). This is the reference the fast [`delay_degradation`]
    /// estimator is validated against.
    ///
    /// # Panics
    ///
    /// Panics if parameters are non-positive.
    // The horizon is 200 gate time-constants: an RC charging curve is
    // monotone toward VDD, so the 50 % crossing is mathematically
    // guaranteed inside it. A miss would mean the integrator itself is
    // broken — not a recoverable input condition.
    #[allow(clippy::expect_used)]
    #[must_use]
    pub fn delay_ps(&self) -> f64 {
        self.check();
        if self.is_stiff() {
            // Quasi-static rail: v_s = n·i_g·R_s ⇒ single RC with
            // R = R_g + n·R_s, analytic 50 % crossing.
            let r_eff_kohm = self.rg_kohm + self.n * self.rs_ohm / 1000.0;
            return std::f64::consts::LN_2 * r_eff_kohm * self.cg_ff;
        }
        let horizon =
            200.0 * self.gate_rc_ps() * (1.0 + self.n * self.rs_ohm / (self.rg_kohm * 1000.0));
        let dt = self.gate_rc_ps().min(self.rail_rc_ps() * 4.0) / 400.0;
        first_crossing(
            [self.vdd_v, 0.0],
            dt,
            horizon,
            self.derivatives(),
            |y| y[0],
            self.vdd_v / 2.0,
        )
        .expect("gate output always crosses 50% within the horizon")
    }

    /// Peak virtual-rail voltage during the switching event, in volts.
    ///
    /// The partitioner's constraint approximates this as `R_s · î_DD,max`
    /// (the quasi-static worst case); the transient peak is never larger.
    #[must_use]
    pub fn peak_rail_perturbation_v(&self) -> f64 {
        self.check();
        if self.is_stiff() {
            return self.quasi_static_rail_v();
        }
        let horizon = 40.0 * self.gate_rc_ps().max(self.rail_rc_ps());
        let dt = (self.gate_rc_ps().min(self.rail_rc_ps() * 4.0) / 400.0).min(horizon / 4_000.0);
        let mut peak = 0.0f64;
        rk4(
            [self.vdd_v, 0.0],
            dt,
            horizon,
            self.derivatives(),
            |_, y| {
                peak = peak.max(y[1]);
                true
            },
        );
        peak
    }

    /// Quasi-static worst-case rail perturbation `R_s · n · î` where
    /// `î = V_DD / (R_g + n·R_s)`, in volts.
    #[must_use]
    pub fn quasi_static_rail_v(&self) -> f64 {
        let rs_kohm = self.rs_ohm / 1000.0;
        let i_total_ma = self.n * self.vdd_v / (self.rg_kohm + self.n * rs_kohm);
        i_total_ma * rs_kohm
    }

    fn check(&self) {
        assert!(
            self.n > 0.0
                && self.rs_ohm > 0.0
                && self.cs_ff > 0.0
                && self.rg_kohm > 0.0
                && self.cg_ff > 0.0
                && self.vdd_v > 0.0,
            "network parameters must be positive"
        );
    }
}

/// Closed-form gate delay degradation factor `δ(g,t) ≥ 1`.
///
/// Derived from the quasi-static limit of the [`SwitchNetwork`] ODE: with
/// the rail settled, the discharge path resistance grows from `R_g` to
/// `R_g + n·R_s`, giving `δ → 1 + n·R_s/R_g`; a large rail capacitance
/// `C_s` (time constant `R_s·C_s` long against the gate transition
/// `R_g·C_g`) shields the gate from the rail rise, scaling the
/// degradation down by `1/(1 + R_s·C_s/(R_g·C_g))`:
///
/// ```text
/// δ = 1 + (n·R_s/R_g) / (1 + R_s·C_s / (R_g·C_g))
/// ```
///
/// The paper's printed formula is illegible in the archival scan; this
/// re-derivation reproduces both asymptotes exactly and tracks the RK4
/// reference within a few tens of percent over the practical parameter
/// range (see `validation` tests), which is ample for a *relative* cost
/// estimator.
#[must_use]
pub fn delay_degradation(n: f64, rs_ohm: f64, cs_ff: f64, rg_kohm: f64, cg_ff: f64) -> f64 {
    if n <= 0.0 || rs_ohm <= 0.0 {
        return 1.0;
    }
    let resistive = n * rs_ohm / (rg_kohm * 1000.0);
    let shielding = (rs_ohm * cs_ff / 1000.0) / (rg_kohm * cg_ff);
    1.0 + resistive / (1.0 + shielding)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> SwitchNetwork {
        SwitchNetwork {
            n: 8.0,
            rs_ohm: 15.0,
            cs_ff: 400.0,
            rg_kohm: 1.8,
            cg_ff: 60.0,
            vdd_v: 5.0,
        }
    }

    #[test]
    fn nominal_delay_matches_analytic() {
        let net = base();
        assert!((net.nominal_delay_ps() - std::f64::consts::LN_2 * 108.0).abs() < 1e-9);
    }

    #[test]
    fn sensor_always_slows_the_gate() {
        let net = base();
        assert!(net.delay_ps() > net.nominal_delay_ps());
    }

    #[test]
    fn degradation_grows_with_activity() {
        let mut d_prev = 1.0;
        for n in [1.0, 4.0, 16.0, 64.0] {
            let d = delay_degradation(n, 15.0, 400.0, 1.8, 60.0);
            assert!(d > d_prev);
            d_prev = d;
        }
    }

    #[test]
    fn degradation_shrinks_with_rail_capacitance() {
        let small_cs = delay_degradation(8.0, 15.0, 10.0, 1.8, 60.0);
        let large_cs = delay_degradation(8.0, 15.0, 100_000.0, 1.8, 60.0);
        assert!(small_cs > large_cs);
        assert!(large_cs >= 1.0);
    }

    #[test]
    fn quasi_static_asymptote() {
        // Tiny Cs: δ → 1 + n·Rs/Rg.
        let d = delay_degradation(8.0, 15.0, 1e-6, 1.8, 60.0);
        let expect = 1.0 + 8.0 * 15.0 / 1800.0;
        assert!((d - expect).abs() < 1e-6);
    }

    #[test]
    fn no_sensor_no_degradation() {
        assert_eq!(delay_degradation(8.0, 0.0, 400.0, 1.8, 60.0), 1.0);
        assert_eq!(delay_degradation(0.0, 15.0, 400.0, 1.8, 60.0), 1.0);
    }

    #[test]
    fn closed_form_tracks_rk4_reference() {
        // Sweep the practical region: Rs sized for 100–300 mV rail drop,
        // activities 1–64, rail caps from tens of fF to tens of pF.
        let mut worst: f64 = 0.0;
        for n in [1.0, 4.0, 16.0, 64.0] {
            for rs in [2.0, 10.0, 30.0] {
                for cs in [50.0, 500.0, 5000.0] {
                    let net = SwitchNetwork {
                        n,
                        rs_ohm: rs,
                        cs_ff: cs,
                        rg_kohm: 1.8,
                        cg_ff: 60.0,
                        vdd_v: 5.0,
                    };
                    let reference = net.delay_ps() / net.nominal_delay_ps();
                    let fast = delay_degradation(n, rs, cs, 1.8, 60.0);
                    // Both must degrade, and agree in magnitude.
                    assert!(reference >= 1.0 - 1e-9);
                    let err = (fast - reference).abs() / reference;
                    worst = worst.max(err);
                }
            }
        }
        assert!(worst < 0.4, "worst relative error {worst}");
    }

    #[test]
    fn transient_rail_peak_bounded_by_quasi_static() {
        for cs in [50.0, 500.0, 5000.0] {
            let net = SwitchNetwork {
                cs_ff: cs,
                ..base()
            };
            let peak = net.peak_rail_perturbation_v();
            assert!(peak <= net.quasi_static_rail_v() * 1.02, "cs={cs}");
            assert!(peak > 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn invalid_parameters_panic() {
        let net = SwitchNetwork {
            rs_ohm: -1.0,
            ..base()
        };
        let _ = net.delay_ps();
    }
}
