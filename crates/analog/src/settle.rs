//! The IDDQ decay + sensing time `Δ(τ)` of §3.4.
//!
//! After a test vector is applied the transient `i_DD` must decay below
//! the sensor threshold before a meaningful quiescent measurement can be
//! taken; the paper models the extra per-vector time as a term `Δ(τ_s,i)`
//! "estimated from SPICE level simulations as a function of the BIC
//! sensor time constant `τ_s,i = R_s,i · C_s,i`".
//!
//! The dominant residual after the gates settle is the charge parked on
//! the virtual rail capacitance, which bleeds through the bypass device
//! with exactly that time constant, so the decay time to a current
//! threshold is `τ · ln(I_0/I_th)` — [`settle_time_ps`]. [`DecayModel`]
//! adds the fixed sensing/strobe time and a safety margin, and
//! [`simulated_settle_time_ps`] is the numerical reference.

use crate::transient::first_crossing;

/// Analytic decay time: `τ · ln(i0/ith)` (zero when already below
/// threshold).
///
/// # Panics
///
/// Panics if `tau_ps < 0` or either current is non-positive.
#[must_use]
pub fn settle_time_ps(tau_ps: f64, i0_ua: f64, ith_ua: f64) -> f64 {
    assert!(tau_ps >= 0.0, "time constant must be non-negative");
    assert!(i0_ua > 0.0 && ith_ua > 0.0, "currents must be positive");
    if i0_ua <= ith_ua {
        0.0
    } else {
        tau_ps * (i0_ua / ith_ua).ln()
    }
}

/// Numerical reference: integrate the rail discharge `dv/dt = −v/(R_s·C_s)`
/// from `v(0) = i0·R_s` until the bypass current `v/R_s` falls below
/// `ith`.
///
/// # Panics
///
/// Panics if any parameter is non-positive.
// The `v0 <= vth` early return guarantees the decay starts above the
// threshold, and a pure exponential decay is monotone to zero — the
// crossing exists inside the 80-tau horizon by construction.
#[allow(clippy::expect_used)]
#[must_use]
pub fn simulated_settle_time_ps(rs_ohm: f64, cs_ff: f64, i0_ua: f64, ith_ua: f64) -> f64 {
    assert!(rs_ohm > 0.0 && cs_ff > 0.0, "RC must be positive");
    assert!(i0_ua > 0.0 && ith_ua > 0.0, "currents must be positive");
    let tau_ps = rs_ohm * cs_ff / 1000.0;
    let v0 = i0_ua * rs_ohm * 1e-6; // volts
    let vth = ith_ua * rs_ohm * 1e-6;
    if v0 <= vth {
        return 0.0;
    }
    first_crossing(
        [v0],
        tau_ps / 200.0,
        tau_ps * 80.0,
        |_, y| [-y[0] / tau_ps],
        |y| y[0],
        vth,
    )
    .expect("exponential decay always crosses")
}

/// Δ(τ) model: decay to a margin below threshold plus a fixed sensing
/// window.
///
/// # Example
///
/// ```rust
/// use iddq_analog::settle::DecayModel;
///
/// let m = DecayModel::default();
/// let fast = m.delta_ps(10.0, 2_000.0, 1.0);
/// let slow = m.delta_ps(1_000.0, 2_000.0, 1.0);
/// assert!(slow > fast); // bigger sensor time constant → longer test
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DecayModel {
    /// Fixed sensing/strobe/latch time of the detection circuitry, ps.
    pub sense_time_ps: f64,
    /// The decay target as a fraction of `I_DDQ,th` (decaying only to the
    /// threshold itself would leave no noise margin).
    pub margin: f64,
}

impl Default for DecayModel {
    fn default() -> Self {
        DecayModel {
            sense_time_ps: 20_000.0, // 20 ns strobe, typical of the era's BIC sensors
            margin: 0.1,
        }
    }
}

impl DecayModel {
    /// Per-vector extra time `Δ(τ)` for a module with sensor time constant
    /// `tau_ps`, peak transient current `peak_ua` and threshold
    /// `threshold_ua`.
    ///
    /// # Panics
    ///
    /// Panics on non-positive currents (see [`settle_time_ps`]).
    #[must_use]
    pub fn delta_ps(&self, tau_ps: f64, peak_ua: f64, threshold_ua: f64) -> f64 {
        settle_time_ps(tau_ps, peak_ua, threshold_ua * self.margin) + self.sense_time_ps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn analytic_matches_simulation() {
        for (rs, cs) in [(5.0, 500.0), (20.0, 2000.0), (50.0, 10_000.0)] {
            let tau = rs * cs / 1000.0;
            let a = settle_time_ps(tau, 3000.0, 1.0);
            let s = simulated_settle_time_ps(rs, cs, 3000.0, 1.0);
            assert!((a - s).abs() / a < 1e-3, "rs={rs} cs={cs}: {a} vs {s}");
        }
    }

    #[test]
    fn below_threshold_is_instant() {
        assert_eq!(settle_time_ps(100.0, 0.5, 1.0), 0.0);
        assert_eq!(simulated_settle_time_ps(10.0, 100.0, 0.5, 1.0), 0.0);
    }

    #[test]
    fn scales_linearly_with_tau() {
        let a = settle_time_ps(10.0, 100.0, 1.0);
        let b = settle_time_ps(20.0, 100.0, 1.0);
        assert!((b - 2.0 * a).abs() < 1e-9);
    }

    #[test]
    fn model_includes_sense_floor() {
        let m = DecayModel::default();
        // Even a zero-τ sensor pays the strobe time.
        assert_eq!(m.delta_ps(0.0, 100.0, 1.0), m.sense_time_ps);
    }

    #[test]
    fn margin_lengthens_decay() {
        let tight = DecayModel {
            margin: 0.01,
            ..DecayModel::default()
        };
        let loose = DecayModel {
            margin: 0.5,
            ..DecayModel::default()
        };
        assert!(tight.delta_ps(100.0, 100.0, 1.0) > loose.delta_ps(100.0, 100.0, 1.0));
    }

    #[test]
    #[should_panic(expected = "currents must be positive")]
    fn zero_current_panics() {
        let _ = settle_time_ps(10.0, 0.0, 1.0);
    }
}
