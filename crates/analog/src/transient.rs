//! Fixed-step Runge–Kutta transient solver.
//!
//! A deliberately small ODE integrator: the sensor network has two state
//! variables and smooth dynamics, so classic RK4 with a conservative step
//! is more than adequate (this is the role SPICE played for the paper's
//! authors — fitting `Δ(τ)` and validating `δ`).

/// Integrates `dy/dt = f(t, y)` from `y0` over `0..t_max` with step `dt`.
///
/// Calls `observe(t, y)` after every step; integration stops early when
/// `observe` returns `false`. Returns the final `(t, y)`.
///
/// # Panics
///
/// Panics if `dt <= 0` or `t_max < 0`.
///
/// # Example
///
/// ```rust
/// use iddq_analog::transient::rk4;
///
/// // dy/dt = -y, y(0) = 1 → y(1) = e^-1.
/// let (_, y) = rk4([1.0], 1e-3, 1.0, |_, y| [-y[0]], |_, _| true);
/// assert!((y[0] - (-1.0f64).exp()).abs() < 1e-9);
/// ```
pub fn rk4<const N: usize>(
    y0: [f64; N],
    dt: f64,
    t_max: f64,
    mut f: impl FnMut(f64, &[f64; N]) -> [f64; N],
    mut observe: impl FnMut(f64, &[f64; N]) -> bool,
) -> (f64, [f64; N]) {
    assert!(dt > 0.0, "step must be positive");
    assert!(t_max >= 0.0, "horizon must be non-negative");
    let mut t = 0.0;
    let mut y = y0;
    while t < t_max {
        let h = dt.min(t_max - t);
        let k1 = f(t, &y);
        let y2 = add_scaled(&y, &k1, h / 2.0);
        let k2 = f(t + h / 2.0, &y2);
        let y3 = add_scaled(&y, &k2, h / 2.0);
        let k3 = f(t + h / 2.0, &y3);
        let y4 = add_scaled(&y, &k3, h);
        let k4 = f(t + h, &y4);
        for i in 0..N {
            y[i] += h / 6.0 * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]);
        }
        t += h;
        if !observe(t, &y) {
            break;
        }
    }
    (t, y)
}

fn add_scaled<const N: usize>(y: &[f64; N], k: &[f64; N], s: f64) -> [f64; N] {
    let mut out = *y;
    for i in 0..N {
        out[i] += s * k[i];
    }
    out
}

/// Finds the first time `value(t)` crosses below `target`, by linear
/// interpolation between the integration samples.
///
/// Returns `None` if the trajectory never crosses within `t_max`.
///
/// # Panics
///
/// Panics under the same conditions as [`rk4`].
pub fn first_crossing<const N: usize>(
    y0: [f64; N],
    dt: f64,
    t_max: f64,
    mut f: impl FnMut(f64, &[f64; N]) -> [f64; N],
    mut value: impl FnMut(&[f64; N]) -> f64,
    target: f64,
) -> Option<f64> {
    let mut prev_t = 0.0;
    let mut prev_v = value(&y0);
    if prev_v <= target {
        return Some(0.0);
    }
    let mut hit = None;
    rk4(y0, dt, t_max, &mut f, |t, y| {
        let v = value(y);
        if v <= target {
            // Linear interpolation inside the last step.
            let frac = if (prev_v - v).abs() > f64::EPSILON {
                (prev_v - target) / (prev_v - v)
            } else {
                1.0
            };
            hit = Some(prev_t + frac * (t - prev_t));
            return false;
        }
        prev_t = t;
        prev_v = v;
        true
    });
    hit
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exponential_decay_accuracy() {
        let (_, y) = rk4([1.0], 1e-3, 2.0, |_, y| [-y[0]], |_, _| true);
        assert!((y[0] - (-2.0f64).exp()).abs() < 1e-9);
    }

    #[test]
    fn two_state_harmonic_oscillator_conserves_energy() {
        // y'' = -y as a 2-state system; energy drift of RK4 stays tiny.
        let (_, y) = rk4([1.0, 0.0], 1e-3, 10.0, |_, y| [y[1], -y[0]], |_, _| true);
        let energy = y[0] * y[0] + y[1] * y[1];
        assert!((energy - 1.0).abs() < 1e-8);
    }

    #[test]
    fn early_stop_via_observer() {
        let (t, _) = rk4([1.0], 0.01, 100.0, |_, y| [-y[0]], |t, _| t < 1.0);
        assert!(t < 1.5);
    }

    #[test]
    fn crossing_of_known_exponential() {
        // y = e^-t crosses 0.5 at t = ln 2.
        let t = first_crossing([1.0], 1e-3, 10.0, |_, y| [-y[0]], |y| y[0], 0.5).unwrap();
        assert!((t - std::f64::consts::LN_2).abs() < 1e-5);
    }

    #[test]
    fn crossing_none_when_out_of_horizon() {
        let t = first_crossing([1.0], 1e-2, 0.1, |_, y| [-y[0]], |y| y[0], 0.5);
        assert!(t.is_none());
    }

    #[test]
    fn crossing_at_start_returns_zero() {
        let t = first_crossing([0.1], 1e-2, 1.0, |_, y| [-y[0]], |y| y[0], 0.5).unwrap();
        assert_eq!(t, 0.0);
    }

    #[test]
    #[should_panic(expected = "step must be positive")]
    fn zero_step_panics() {
        let _ = rk4([0.0], 0.0, 1.0, |_, _| [0.0], |_, _| true);
    }

    #[test]
    fn partial_final_step_lands_exactly_on_horizon() {
        let (t, _) = rk4([1.0], 0.3, 1.0, |_, y| [-y[0]], |_, _| true);
        assert!((t - 1.0).abs() < 1e-12);
    }
}
