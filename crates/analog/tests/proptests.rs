//! Property-based tests for the electrical models.

use proptest::prelude::*;

use iddq_analog::network::{delay_degradation, SwitchNetwork};
use iddq_analog::settle::{settle_time_ps, simulated_settle_time_ps, DecayModel};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// δ is always ≥ 1 and monotone in activity and bypass resistance.
    #[test]
    fn delta_monotonic(n in 1.0f64..128.0, rs in 0.5f64..100.0, cs in 10.0f64..20_000.0) {
        let d = delay_degradation(n, rs, cs, 1.8, 60.0);
        prop_assert!(d >= 1.0);
        prop_assert!(delay_degradation(n + 1.0, rs, cs, 1.8, 60.0) >= d);
        prop_assert!(delay_degradation(n, rs * 1.5, cs, 1.8, 60.0) >= d);
        // More rail capacitance shields the gate.
        prop_assert!(delay_degradation(n, rs, cs * 2.0, 1.8, 60.0) <= d + 1e-12);
    }

    /// δ is bounded by its quasi-static worst case 1 + n·Rs/Rg.
    #[test]
    fn delta_bounded_by_quasi_static(n in 1.0f64..64.0, rs in 0.5f64..50.0, cs in 1.0f64..50_000.0) {
        let d = delay_degradation(n, rs, cs, 1.8, 60.0);
        prop_assert!(d <= 1.0 + n * rs / 1800.0 + 1e-12);
    }

    /// The analytic settle time matches the simulated exponential decay
    /// within integrator tolerance for any RC in the practical range.
    #[test]
    fn settle_analytic_matches_simulation(rs in 1.0f64..100.0, cs in 50.0f64..20_000.0, i0 in 2.0f64..10_000.0) {
        let tau = rs * cs / 1000.0;
        let a = settle_time_ps(tau, i0, 1.0);
        let s = simulated_settle_time_ps(rs, cs, i0, 1.0);
        prop_assert!((a - s).abs() <= a.max(1.0) * 5e-3, "{a} vs {s}");
    }

    /// Δ(τ) is monotone in τ and in the peak current.
    #[test]
    fn decay_model_monotone(tau in 0.0f64..10_000.0, peak in 2.0f64..1e6) {
        let m = DecayModel::default();
        let d = m.delta_ps(tau, peak, 1.0);
        prop_assert!(d >= m.sense_time_ps);
        prop_assert!(m.delta_ps(tau + 100.0, peak, 1.0) >= d);
        prop_assert!(m.delta_ps(tau, peak * 2.0, 1.0) >= d);
    }

    /// The transient rail peak never exceeds the quasi-static bound the
    /// partitioner's constraint uses — i.e. `R_s·î` is a safe (over-)
    /// approximation of the real perturbation.
    #[test]
    fn rail_peak_bounded(n in 1.0f64..64.0, rs in 1.0f64..40.0, cs in 20.0f64..5_000.0) {
        let net = SwitchNetwork { n, rs_ohm: rs, cs_ff: cs, rg_kohm: 1.8, cg_ff: 60.0, vdd_v: 5.0 };
        let peak = net.peak_rail_perturbation_v();
        prop_assert!(peak >= 0.0);
        prop_assert!(peak <= net.quasi_static_rail_v() * 1.02);
    }
}
