//! IDDQ test-pattern generation.
//!
//! The paper assumes "a precomputed test vector set of the global CUT"
//! (§3.4) — partitioning never changes the vectors, only the per-vector
//! application time. This crate builds such a set: pseudo-random patterns
//! fault-simulated against the IDDQ defect universe, greedily compacted to
//! the vectors that first-detect at least one new fault.
//!
//! IDDQ ATPG is much easier than stuck-at ATPG because a defect only needs
//! *activation* (a conducting state), not propagation to an output, so
//! random patterns reach high coverage quickly; the value of compaction is
//! cutting test *time*, which is exactly the `c_4` cost the partitioner
//! estimates per vector.
//!
//! # Example
//!
//! ```rust
//! use iddq_atpg::{generate, AtpgConfig};
//! use iddq_logicsim::faults::{enumerate, FaultUniverseConfig};
//! use iddq_netlist::data;
//!
//! let nl = data::ripple_adder(4);
//! let faults = enumerate(&nl, &FaultUniverseConfig::default(), 7);
//! let t = generate(&nl, &faults, &AtpgConfig::default(), 7);
//! assert!(t.coverage > 0.9);
//! assert!(t.vectors.len() < 200);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use iddq_logicsim::faults::IddqFault;
use iddq_logicsim::{BackendKind, SimBackend};
use iddq_netlist::unroll::{unroll, Unrolled};
use iddq_netlist::{Netlist, NetlistError, PackedWord, W256};

/// Generation parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct AtpgConfig {
    /// Stop once this fraction of the fault universe is activated.
    pub target_coverage: f64,
    /// Give up after this many random 64-pattern batches without
    /// improvement.
    pub stagnation_batches: usize,
    /// Hard cap on total batches.
    pub max_batches: usize,
}

impl Default for AtpgConfig {
    fn default() -> Self {
        AtpgConfig {
            target_coverage: 0.99,
            stagnation_batches: 16,
            max_batches: 512,
        }
    }
}

/// A compacted IDDQ test set.
#[derive(Debug, Clone)]
pub struct TestSet {
    /// The kept vectors, in application order (one `bool` per primary
    /// input, netlist input order).
    pub vectors: Vec<Vec<bool>>,
    /// Activation coverage achieved over the fault universe.
    pub coverage: f64,
    /// Per-fault: was it activated by some kept vector.
    pub activated: Vec<bool>,
}

/// Generates a compacted vector set activating the given fault universe.
///
/// Deterministic for a fixed `(netlist, faults, config, seed)`.
///
/// The inner loop fault-simulates 256 random patterns at a time (one
/// [`W256`] sweep of the CSR-compiled simulator, into reused buffers) and
/// keeps, per batch, the patterns that activate at least one
/// not-yet-covered fault (greedy first-fit compaction, scanning patterns
/// in index order).
#[must_use]
pub fn generate(
    netlist: &Netlist,
    faults: &[IddqFault],
    config: &AtpgConfig,
    seed: u64,
) -> TestSet {
    generate_with_backend(netlist, faults, config, seed, BackendKind::Csr)
}

/// [`generate`] on a chosen simulation engine ([`BackendKind`]).
///
/// Both engines produce bit-identical pattern evaluations, so the
/// resulting test set is backend-invariant; the parameter exists so the
/// whole pipeline can be exercised end-to-end on either engine.
#[must_use]
pub fn generate_with_backend(
    netlist: &Netlist,
    faults: &[IddqFault],
    config: &AtpgConfig,
    seed: u64,
    backend: BackendKind,
) -> TestSet {
    generate_packed::<W256>(netlist, faults, config, seed, backend)
}

/// [`generate_with_backend`] at an explicit pattern-parallel lane width.
///
/// The inner loop fault-simulates `W::LANES` random patterns per sweep
/// through the chosen [`SimBackend`]. The lane width changes how many
/// random limbs each batch draws, so the generated set is deterministic
/// per `(W, seed)` pair but differs across widths — lane selection is a
/// generation parameter, not a pure implementation detail.
#[must_use]
pub fn generate_packed<W: PackedWord>(
    netlist: &Netlist,
    faults: &[IddqFault],
    config: &AtpgConfig,
    seed: u64,
    backend: BackendKind,
) -> TestSet {
    let mut sim = SimBackend::<W>::new(netlist, backend);
    let num_inputs = netlist.num_inputs();
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xa7b6);
    let mut activated = vec![false; faults.len()];
    let mut vectors: Vec<Vec<bool>> = Vec::new();
    let mut remaining = faults.len();
    let mut stagnant = 0usize;
    let mut words = vec![W::zeros(); num_inputs];
    let mut values = vec![W::zeros(); sim.node_count()];
    let mut masks: Vec<(usize, W)> = Vec::new();

    for _batch in 0..config.max_batches {
        if faults.is_empty()
            || 1.0 - remaining as f64 / faults.len() as f64 >= config.target_coverage
            || stagnant >= config.stagnation_batches
        {
            break;
        }
        for w in &mut words {
            *w = W::from_limbs(|_| rng.gen());
        }
        sim.eval_into(&words, &mut values);
        // Activation masks of still-uncovered faults.
        masks.clear();
        masks.extend(
            faults
                .iter()
                .enumerate()
                .filter(|(fi, _)| !activated[*fi])
                .map(|(fi, f)| (fi, f.activation(netlist, &values))),
        );
        let mut batch_progress = false;
        for k in 0..W::LANES {
            let mut keep = false;
            for &(fi, mask) in &masks {
                if !activated[fi] && mask.bit(k) {
                    activated[fi] = true;
                    remaining -= 1;
                    keep = true;
                }
            }
            if keep {
                batch_progress = true;
                vectors.push((0..num_inputs).map(|i| words[i].bit(k)).collect());
            }
        }
        stagnant = if batch_progress { 0 } else { stagnant + 1 };
    }

    let coverage = if faults.is_empty() {
        1.0
    } else {
        activated.iter().filter(|&&a| a).count() as f64 / faults.len() as f64
    };
    TestSet {
        vectors,
        coverage,
        activated,
    }
}

/// A compacted IDDQ test set of multi-frame *sequences*.
///
/// Vectors are laid out sequence-major: `vectors[s * frames + t]` is the
/// frame-`t` stimulus of kept sequence `s` — exactly the layout the
/// sweep engines consume through their `frames` option. Every sequence
/// starts from the all-zero reset state.
#[derive(Debug, Clone)]
pub struct SeqTestSet {
    /// Kept per-frame vectors, `frames` consecutive entries per sequence
    /// (one `bool` per primary input, netlist input order).
    pub vectors: Vec<Vec<bool>>,
    /// Frames per sequence (≥ 1).
    pub frames: usize,
    /// Activation coverage achieved over the fault universe.
    pub coverage: f64,
    /// Per-fault: was it activated at some frame of some kept sequence.
    pub activated: Vec<bool>,
}

/// Sequential IDDQ generation by bounded time-frame expansion.
///
/// The netlist is unrolled to `frames` copies of its combinational fabric
/// ([`iddq_netlist::unroll`]); frame-0 state is the all-zero reset, frame
/// `t > 0` state is the previous frame's captured next-state. Random
/// per-frame stimuli are then fault-simulated on the unrolled netlist —
/// one [`W256`] lane per candidate *sequence* — and a sequence is kept
/// when some frame of it activates a not-yet-covered fault (greedy
/// first-fit, scanning lanes in index order, as in [`generate`]).
///
/// A fault's per-frame activation is evaluated on the good-machine
/// trajectory through the fault's frame-`t` image, so defects whose
/// activating state is only *reachable* (not settable combinationally)
/// become coverable once `frames` is large enough.
///
/// `frames` is clamped to ≥ 1. The combinational path is the depth-0
/// special case: on a DFF-free netlist, `frames = 1` reproduces
/// [`generate`] bit-for-bit (same random stream, same compaction).
/// Deterministic for a fixed `(netlist, faults, config, seed, frames)`.
///
/// # Errors
///
/// Propagates [`NetlistError`] from the time-frame expansion.
pub fn generate_seq(
    netlist: &Netlist,
    faults: &[IddqFault],
    config: &AtpgConfig,
    seed: u64,
    frames: usize,
) -> Result<SeqTestSet, NetlistError> {
    generate_seq_with_backend(netlist, faults, config, seed, frames, BackendKind::Csr)
}

/// [`generate_seq`] on a chosen simulation engine ([`BackendKind`]).
///
/// Backend-invariant for the same reason [`generate_with_backend`] is:
/// both engines evaluate the unrolled netlist bit-identically.
///
/// # Errors
///
/// Propagates [`NetlistError`] from the time-frame expansion.
pub fn generate_seq_with_backend(
    netlist: &Netlist,
    faults: &[IddqFault],
    config: &AtpgConfig,
    seed: u64,
    frames: usize,
    backend: BackendKind,
) -> Result<SeqTestSet, NetlistError> {
    generate_seq_packed::<W256>(netlist, faults, config, seed, frames, backend)
}

/// Per-frame activation of `fault` on the unrolled good machine.
///
/// Sites are mapped through the frame-`t` image. The gate-oxide-short pin
/// must be resolved through the *original* fan-in list: a DFF's image is
/// a pseudo-input (frame 0) or an alias of the previous frame's D-driver
/// image (frame `t > 0`), neither of which preserves the pin ordinal.
fn seq_activation<W: PackedWord>(
    fault: &IddqFault,
    netlist: &Netlist,
    unrolled: &Unrolled,
    t: usize,
    values: &[W],
) -> W {
    match *fault {
        IddqFault::Bridge { a, b, .. } => {
            values[unrolled.image(t, a).index()] ^ values[unrolled.image(t, b).index()]
        }
        IddqFault::GateOxideShort { gate, pin, .. } => {
            let input = netlist.node(gate).fanin()[pin];
            values[unrolled.image(t, input).index()] ^ values[unrolled.image(t, gate).index()]
        }
        IddqFault::StuckOn { gate, .. } => values[unrolled.image(t, gate).index()],
    }
}

/// [`generate_seq_with_backend`] at an explicit lane width (one lane per
/// candidate sequence, `W::LANES` sequences per batch).
///
/// # Errors
///
/// Propagates [`NetlistError`] from the time-frame expansion.
pub fn generate_seq_packed<W: PackedWord>(
    netlist: &Netlist,
    faults: &[IddqFault],
    config: &AtpgConfig,
    seed: u64,
    frames: usize,
    backend: BackendKind,
) -> Result<SeqTestSet, NetlistError> {
    let frames = frames.max(1);
    let unrolled = unroll(netlist, frames)?;
    let unl = unrolled.netlist();
    let mut sim = SimBackend::<W>::new(unl, backend);

    // Input slot of each unrolled pseudo-input node.
    let mut slot = vec![usize::MAX; unl.node_count()];
    for (i, &n) in unl.inputs().iter().enumerate() {
        slot[n.index()] = i;
    }

    let mut rng = SmallRng::seed_from_u64(seed ^ 0xa7b6);
    let mut activated = vec![false; faults.len()];
    let mut vectors: Vec<Vec<bool>> = Vec::new();
    let mut remaining = faults.len();
    let mut stagnant = 0usize;
    // State pseudo-inputs keep their zero words: the reset convention.
    let mut words = vec![W::zeros(); unl.num_inputs()];
    let mut values = vec![W::zeros(); sim.node_count()];
    let mut masks: Vec<(usize, W)> = Vec::new();

    for _batch in 0..config.max_batches {
        if faults.is_empty()
            || 1.0 - remaining as f64 / faults.len() as f64 >= config.target_coverage
            || stagnant >= config.stagnation_batches
        {
            break;
        }
        // Draw frame-major in original input order so the frames = 1
        // stream on a combinational netlist matches `generate` exactly.
        for t in 0..frames {
            for &pi in netlist.inputs() {
                words[slot[unrolled.image(t, pi).index()]] = W::from_limbs(|_| rng.gen());
            }
        }
        sim.eval_into(&words, &mut values);
        // Whole-sequence activation masks of still-uncovered faults.
        masks.clear();
        masks.extend(
            faults
                .iter()
                .enumerate()
                .filter(|(fi, _)| !activated[*fi])
                .map(|(fi, f)| {
                    let mut m = W::zeros();
                    for t in 0..frames {
                        m = m | seq_activation(f, netlist, &unrolled, t, &values);
                    }
                    (fi, m)
                }),
        );
        let mut batch_progress = false;
        for k in 0..W::LANES {
            let mut keep = false;
            for &(fi, mask) in &masks {
                if !activated[fi] && mask.bit(k) {
                    activated[fi] = true;
                    remaining -= 1;
                    keep = true;
                }
            }
            if keep {
                batch_progress = true;
                for t in 0..frames {
                    vectors.push(
                        netlist
                            .inputs()
                            .iter()
                            .map(|&pi| words[slot[unrolled.image(t, pi).index()]].bit(k))
                            .collect(),
                    );
                }
            }
        }
        stagnant = if batch_progress { 0 } else { stagnant + 1 };
    }

    let coverage = if faults.is_empty() {
        1.0
    } else {
        activated.iter().filter(|&&a| a).count() as f64 / faults.len() as f64
    };
    Ok(SeqTestSet {
        vectors,
        frames,
        coverage,
        activated,
    })
}

/// Estimates a test-set *size* without keeping the vectors — the
/// partitioner's `c_4` estimator only needs the count (§3.4).
#[must_use]
pub fn estimate_vector_count(
    netlist: &Netlist,
    faults: &[IddqFault],
    config: &AtpgConfig,
    seed: u64,
) -> usize {
    generate(netlist, faults, config, seed).vectors.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use iddq_logicsim::faults::{enumerate, FaultUniverseConfig};
    use iddq_netlist::data;

    fn universe(nl: &Netlist, seed: u64) -> Vec<IddqFault> {
        enumerate(nl, &FaultUniverseConfig::default(), seed)
    }

    #[test]
    fn reaches_high_coverage_on_adder() {
        let nl = data::ripple_adder(8);
        let faults = universe(&nl, 3);
        let t = generate(&nl, &faults, &AtpgConfig::default(), 3);
        assert!(t.coverage >= 0.95, "coverage {}", t.coverage);
        assert!(!t.vectors.is_empty());
    }

    #[test]
    fn backend_invariant() {
        let nl = data::ripple_adder(4);
        let faults = universe(&nl, 9);
        let csr = generate_with_backend(&nl, &faults, &AtpgConfig::default(), 5, BackendKind::Csr);
        let delta =
            generate_with_backend(&nl, &faults, &AtpgConfig::default(), 5, BackendKind::Delta);
        assert_eq!(csr.vectors, delta.vectors);
        assert_eq!(csr.activated, delta.activated);
    }

    #[test]
    fn lanes_deterministic_and_backend_invariant_per_width() {
        // Within a lane width, backends agree bit-for-bit; across widths
        // the set may differ (different random stream) but coverage holds.
        let nl = data::ripple_adder(4);
        let faults = universe(&nl, 9);
        let cfg = AtpgConfig::default();
        let n64c = generate_packed::<u64>(&nl, &faults, &cfg, 5, BackendKind::Csr);
        let n64d = generate_packed::<u64>(&nl, &faults, &cfg, 5, BackendKind::Delta);
        assert_eq!(n64c.vectors, n64d.vectors);
        let w512 = generate_packed::<iddq_netlist::W512>(&nl, &faults, &cfg, 5, BackendKind::Csr);
        assert!(w512.coverage >= cfg.target_coverage || !w512.vectors.is_empty());
        let w512b = generate_packed::<iddq_netlist::W512>(&nl, &faults, &cfg, 5, BackendKind::Csr);
        assert_eq!(w512.vectors, w512b.vectors);
    }

    #[test]
    fn deterministic() {
        let nl = data::ripple_adder(4);
        let faults = universe(&nl, 9);
        let a = generate(&nl, &faults, &AtpgConfig::default(), 5);
        let b = generate(&nl, &faults, &AtpgConfig::default(), 5);
        assert_eq!(a.vectors, b.vectors);
        assert_eq!(a.coverage, b.coverage);
    }

    #[test]
    fn compaction_keeps_only_useful_vectors() {
        // Every kept vector must newly activate ≥ 1 fault, so the count
        // can never exceed the fault count.
        let nl = data::ripple_adder(6);
        let faults = universe(&nl, 11);
        let t = generate(&nl, &faults, &AtpgConfig::default(), 11);
        assert!(t.vectors.len() <= faults.len());
    }

    #[test]
    fn empty_fault_list_no_vectors_full_coverage() {
        let nl = data::c17();
        let t = generate(&nl, &[], &AtpgConfig::default(), 1);
        assert!(t.vectors.is_empty());
        assert_eq!(t.coverage, 1.0);
    }

    #[test]
    fn activated_flags_consistent_with_coverage() {
        let nl = data::c17();
        let faults = universe(&nl, 2);
        let t = generate(&nl, &faults, &AtpgConfig::default(), 2);
        let frac = t.activated.iter().filter(|&&a| a).count() as f64 / faults.len() as f64;
        assert!((frac - t.coverage).abs() < 1e-12);
    }

    #[test]
    fn vector_count_estimator_matches_generate() {
        let nl = data::ripple_adder(4);
        let faults = universe(&nl, 4);
        let n = estimate_vector_count(&nl, &faults, &AtpgConfig::default(), 4);
        let t = generate(&nl, &faults, &AtpgConfig::default(), 4);
        assert_eq!(n, t.vectors.len());
    }

    /// `q = DFF(a)`, `y = AND(q, a)`: activating a stuck-on at `y` needs
    /// `a = 1` in two consecutive frames — impossible combinationally
    /// from the all-zero reset state.
    fn latch_fixture() -> (Netlist, Vec<IddqFault>) {
        let mut b = iddq_netlist::NetlistBuilder::new("latch1");
        let a = b.add_input("a");
        let q = b.add_dff("q").unwrap();
        let y = b
            .add_gate("y", iddq_netlist::CellKind::And, vec![q, a])
            .unwrap();
        b.set_dff_input(q, a);
        b.mark_output(y);
        let nl = b.build().unwrap();
        let f = IddqFault::StuckOn {
            gate: nl.find("y").unwrap(),
            current_ua: 150.0,
        };
        (nl, vec![f])
    }

    #[test]
    fn seq_depth0_oracle_matches_combinational() {
        // On a DFF-free netlist, frames = 1 is an exact rename of the
        // combinational path: identical random stream, identical vectors.
        let nl = data::ripple_adder(4);
        let faults = universe(&nl, 9);
        let comb = generate(&nl, &faults, &AtpgConfig::default(), 5);
        let seq = generate_seq(&nl, &faults, &AtpgConfig::default(), 5, 1).unwrap();
        assert_eq!(seq.frames, 1);
        assert_eq!(seq.vectors, comb.vectors);
        assert_eq!(seq.activated, comb.activated);
        assert_eq!(seq.coverage, comb.coverage);
        // frames = 0 clamps to 1.
        let clamped = generate_seq(&nl, &faults, &AtpgConfig::default(), 5, 0).unwrap();
        assert_eq!(clamped.frames, 1);
        assert_eq!(clamped.vectors, comb.vectors);
    }

    #[test]
    fn seq_covers_state_reachable_fault() {
        let (nl, faults) = latch_fixture();
        let cfg = AtpgConfig::default();
        let depth0 = generate_seq(&nl, &faults, &cfg, 5, 1).unwrap();
        assert_eq!(depth0.coverage, 0.0);
        assert!(depth0.vectors.is_empty());

        let deep = generate_seq(&nl, &faults, &cfg, 5, 2).unwrap();
        assert_eq!(deep.frames, 2);
        assert_eq!(deep.activated, vec![true]);
        assert_eq!(deep.vectors.len(), 2, "one kept sequence of two frames");

        // Replay the sequence on the original netlist: the defect must be
        // activated at some frame of the good-machine trajectory.
        let mut sim = SimBackend::<u64>::new(&nl, BackendKind::Csr);
        let mut state = vec![0u64; sim.num_state_elements()];
        let mut values = vec![0u64; sim.node_count()];
        let mut seen = 0u64;
        for t in 0..deep.frames {
            let inputs: Vec<u64> = deep.vectors[t].iter().map(|&b| b as u64).collect();
            sim.step_frame(&inputs, &mut state, &mut values);
            seen |= faults[0].activation(&nl, &values) & 1;
        }
        assert_eq!(seen, 1);
    }

    #[test]
    fn seq_deterministic_and_backend_invariant() {
        let (nl, faults) = latch_fixture();
        let cfg = AtpgConfig::default();
        let csr = generate_seq_with_backend(&nl, &faults, &cfg, 7, 3, BackendKind::Csr).unwrap();
        let delta =
            generate_seq_with_backend(&nl, &faults, &cfg, 7, 3, BackendKind::Delta).unwrap();
        assert_eq!(csr.vectors, delta.vectors);
        assert_eq!(csr.activated, delta.activated);
        let again = generate_seq(&nl, &faults, &cfg, 7, 3).unwrap();
        assert_eq!(again.vectors, csr.vectors);
        assert_eq!(again.vectors.len() % 3, 0, "sequence-major layout");
    }

    #[test]
    fn hard_batch_cap_respected() {
        let nl = data::ripple_adder(4);
        let faults = universe(&nl, 8);
        let cfg = AtpgConfig {
            max_batches: 1,
            ..AtpgConfig::default()
        };
        let t = generate(&nl, &faults, &cfg, 8);
        // One batch is one 256-wide sweep, and compaction can keep at most
        // one vector per newly covered fault.
        assert!(t.vectors.len() <= 256.min(faults.len()));
    }
}
