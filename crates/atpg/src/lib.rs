//! IDDQ test-pattern generation.
//!
//! The paper assumes "a precomputed test vector set of the global CUT"
//! (§3.4) — partitioning never changes the vectors, only the per-vector
//! application time. This crate builds such a set: pseudo-random patterns
//! fault-simulated against the IDDQ defect universe, greedily compacted to
//! the vectors that first-detect at least one new fault.
//!
//! IDDQ ATPG is much easier than stuck-at ATPG because a defect only needs
//! *activation* (a conducting state), not propagation to an output, so
//! random patterns reach high coverage quickly; the value of compaction is
//! cutting test *time*, which is exactly the `c_4` cost the partitioner
//! estimates per vector.
//!
//! # Example
//!
//! ```rust
//! use iddq_atpg::{generate, AtpgConfig};
//! use iddq_logicsim::faults::{enumerate, FaultUniverseConfig};
//! use iddq_netlist::data;
//!
//! let nl = data::ripple_adder(4);
//! let faults = enumerate(&nl, &FaultUniverseConfig::default(), 7);
//! let t = generate(&nl, &faults, &AtpgConfig::default(), 7);
//! assert!(t.coverage > 0.9);
//! assert!(t.vectors.len() < 200);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use iddq_logicsim::faults::IddqFault;
use iddq_logicsim::{BackendKind, SimBackend};
use iddq_netlist::{Netlist, PackedWord, W256};

/// Generation parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct AtpgConfig {
    /// Stop once this fraction of the fault universe is activated.
    pub target_coverage: f64,
    /// Give up after this many random 64-pattern batches without
    /// improvement.
    pub stagnation_batches: usize,
    /// Hard cap on total batches.
    pub max_batches: usize,
}

impl Default for AtpgConfig {
    fn default() -> Self {
        AtpgConfig {
            target_coverage: 0.99,
            stagnation_batches: 16,
            max_batches: 512,
        }
    }
}

/// A compacted IDDQ test set.
#[derive(Debug, Clone)]
pub struct TestSet {
    /// The kept vectors, in application order (one `bool` per primary
    /// input, netlist input order).
    pub vectors: Vec<Vec<bool>>,
    /// Activation coverage achieved over the fault universe.
    pub coverage: f64,
    /// Per-fault: was it activated by some kept vector.
    pub activated: Vec<bool>,
}

/// Generates a compacted vector set activating the given fault universe.
///
/// Deterministic for a fixed `(netlist, faults, config, seed)`.
///
/// The inner loop fault-simulates 256 random patterns at a time (one
/// [`W256`] sweep of the CSR-compiled simulator, into reused buffers) and
/// keeps, per batch, the patterns that activate at least one
/// not-yet-covered fault (greedy first-fit compaction, scanning patterns
/// in index order).
#[must_use]
pub fn generate(
    netlist: &Netlist,
    faults: &[IddqFault],
    config: &AtpgConfig,
    seed: u64,
) -> TestSet {
    generate_with_backend(netlist, faults, config, seed, BackendKind::Csr)
}

/// [`generate`] on a chosen simulation engine ([`BackendKind`]).
///
/// Both engines produce bit-identical pattern evaluations, so the
/// resulting test set is backend-invariant; the parameter exists so the
/// whole pipeline can be exercised end-to-end on either engine.
#[must_use]
pub fn generate_with_backend(
    netlist: &Netlist,
    faults: &[IddqFault],
    config: &AtpgConfig,
    seed: u64,
    backend: BackendKind,
) -> TestSet {
    generate_packed::<W256>(netlist, faults, config, seed, backend)
}

/// [`generate_with_backend`] at an explicit pattern-parallel lane width.
///
/// The inner loop fault-simulates `W::LANES` random patterns per sweep
/// through the chosen [`SimBackend`]. The lane width changes how many
/// random limbs each batch draws, so the generated set is deterministic
/// per `(W, seed)` pair but differs across widths — lane selection is a
/// generation parameter, not a pure implementation detail.
#[must_use]
pub fn generate_packed<W: PackedWord>(
    netlist: &Netlist,
    faults: &[IddqFault],
    config: &AtpgConfig,
    seed: u64,
    backend: BackendKind,
) -> TestSet {
    let mut sim = SimBackend::<W>::new(netlist, backend);
    let num_inputs = netlist.num_inputs();
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xa7b6);
    let mut activated = vec![false; faults.len()];
    let mut vectors: Vec<Vec<bool>> = Vec::new();
    let mut remaining = faults.len();
    let mut stagnant = 0usize;
    let mut words = vec![W::zeros(); num_inputs];
    let mut values = vec![W::zeros(); sim.node_count()];
    let mut masks: Vec<(usize, W)> = Vec::new();

    for _batch in 0..config.max_batches {
        if faults.is_empty()
            || 1.0 - remaining as f64 / faults.len() as f64 >= config.target_coverage
            || stagnant >= config.stagnation_batches
        {
            break;
        }
        for w in &mut words {
            *w = W::from_limbs(|_| rng.gen());
        }
        sim.eval_into(&words, &mut values);
        // Activation masks of still-uncovered faults.
        masks.clear();
        masks.extend(
            faults
                .iter()
                .enumerate()
                .filter(|(fi, _)| !activated[*fi])
                .map(|(fi, f)| (fi, f.activation(netlist, &values))),
        );
        let mut batch_progress = false;
        for k in 0..W::LANES {
            let mut keep = false;
            for &(fi, mask) in &masks {
                if !activated[fi] && mask.bit(k) {
                    activated[fi] = true;
                    remaining -= 1;
                    keep = true;
                }
            }
            if keep {
                batch_progress = true;
                vectors.push((0..num_inputs).map(|i| words[i].bit(k)).collect());
            }
        }
        stagnant = if batch_progress { 0 } else { stagnant + 1 };
    }

    let coverage = if faults.is_empty() {
        1.0
    } else {
        activated.iter().filter(|&&a| a).count() as f64 / faults.len() as f64
    };
    TestSet {
        vectors,
        coverage,
        activated,
    }
}

/// Estimates a test-set *size* without keeping the vectors — the
/// partitioner's `c_4` estimator only needs the count (§3.4).
#[must_use]
pub fn estimate_vector_count(
    netlist: &Netlist,
    faults: &[IddqFault],
    config: &AtpgConfig,
    seed: u64,
) -> usize {
    generate(netlist, faults, config, seed).vectors.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use iddq_logicsim::faults::{enumerate, FaultUniverseConfig};
    use iddq_netlist::data;

    fn universe(nl: &Netlist, seed: u64) -> Vec<IddqFault> {
        enumerate(nl, &FaultUniverseConfig::default(), seed)
    }

    #[test]
    fn reaches_high_coverage_on_adder() {
        let nl = data::ripple_adder(8);
        let faults = universe(&nl, 3);
        let t = generate(&nl, &faults, &AtpgConfig::default(), 3);
        assert!(t.coverage >= 0.95, "coverage {}", t.coverage);
        assert!(!t.vectors.is_empty());
    }

    #[test]
    fn backend_invariant() {
        let nl = data::ripple_adder(4);
        let faults = universe(&nl, 9);
        let csr = generate_with_backend(&nl, &faults, &AtpgConfig::default(), 5, BackendKind::Csr);
        let delta =
            generate_with_backend(&nl, &faults, &AtpgConfig::default(), 5, BackendKind::Delta);
        assert_eq!(csr.vectors, delta.vectors);
        assert_eq!(csr.activated, delta.activated);
    }

    #[test]
    fn lanes_deterministic_and_backend_invariant_per_width() {
        // Within a lane width, backends agree bit-for-bit; across widths
        // the set may differ (different random stream) but coverage holds.
        let nl = data::ripple_adder(4);
        let faults = universe(&nl, 9);
        let cfg = AtpgConfig::default();
        let n64c = generate_packed::<u64>(&nl, &faults, &cfg, 5, BackendKind::Csr);
        let n64d = generate_packed::<u64>(&nl, &faults, &cfg, 5, BackendKind::Delta);
        assert_eq!(n64c.vectors, n64d.vectors);
        let w512 = generate_packed::<iddq_netlist::W512>(&nl, &faults, &cfg, 5, BackendKind::Csr);
        assert!(w512.coverage >= cfg.target_coverage || !w512.vectors.is_empty());
        let w512b = generate_packed::<iddq_netlist::W512>(&nl, &faults, &cfg, 5, BackendKind::Csr);
        assert_eq!(w512.vectors, w512b.vectors);
    }

    #[test]
    fn deterministic() {
        let nl = data::ripple_adder(4);
        let faults = universe(&nl, 9);
        let a = generate(&nl, &faults, &AtpgConfig::default(), 5);
        let b = generate(&nl, &faults, &AtpgConfig::default(), 5);
        assert_eq!(a.vectors, b.vectors);
        assert_eq!(a.coverage, b.coverage);
    }

    #[test]
    fn compaction_keeps_only_useful_vectors() {
        // Every kept vector must newly activate ≥ 1 fault, so the count
        // can never exceed the fault count.
        let nl = data::ripple_adder(6);
        let faults = universe(&nl, 11);
        let t = generate(&nl, &faults, &AtpgConfig::default(), 11);
        assert!(t.vectors.len() <= faults.len());
    }

    #[test]
    fn empty_fault_list_no_vectors_full_coverage() {
        let nl = data::c17();
        let t = generate(&nl, &[], &AtpgConfig::default(), 1);
        assert!(t.vectors.is_empty());
        assert_eq!(t.coverage, 1.0);
    }

    #[test]
    fn activated_flags_consistent_with_coverage() {
        let nl = data::c17();
        let faults = universe(&nl, 2);
        let t = generate(&nl, &faults, &AtpgConfig::default(), 2);
        let frac = t.activated.iter().filter(|&&a| a).count() as f64 / faults.len() as f64;
        assert!((frac - t.coverage).abs() < 1e-12);
    }

    #[test]
    fn vector_count_estimator_matches_generate() {
        let nl = data::ripple_adder(4);
        let faults = universe(&nl, 4);
        let n = estimate_vector_count(&nl, &faults, &AtpgConfig::default(), 4);
        let t = generate(&nl, &faults, &AtpgConfig::default(), 4);
        assert_eq!(n, t.vectors.len());
    }

    #[test]
    fn hard_batch_cap_respected() {
        let nl = data::ripple_adder(4);
        let faults = universe(&nl, 8);
        let cfg = AtpgConfig {
            max_batches: 1,
            ..AtpgConfig::default()
        };
        let t = generate(&nl, &faults, &cfg, 8);
        // One batch is one 256-wide sweep, and compaction can keep at most
        // one vector per newly covered fault.
        assert!(t.vectors.len() <= 256.min(faults.len()));
    }
}
