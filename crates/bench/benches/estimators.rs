//! Scaling of the §3 estimators: transition-time analysis, separation
//! oracle construction and module-statistics evaluation.
//!
//! The paper's feasibility argument rests on the estimators being "a good
//! trade-off between accuracy and computation complexity"; these benches
//! record the actual costs across circuit sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use iddq_bench::{experiment_config, experiment_library, table1_circuit};
use iddq_celllib::NodeTables;
use iddq_core::{EvalContext, Evaluated, Partition};
use iddq_gen::iscas::IscasProfile;
use iddq_netlist::separation::SeparationOracle;
use iddq_netlist::{levelize, Netlist};

fn circuits() -> Vec<(&'static str, Netlist)> {
    ["c432", "c880", "c1908"]
        .iter()
        .map(|n| {
            let p = IscasProfile::by_name(n).expect("known circuit");
            (*n, table1_circuit(p))
        })
        .collect()
}

fn bench_transition_times(c: &mut Criterion) {
    let lib = experiment_library();
    let mut group = c.benchmark_group("transition_times");
    for (name, nl) in circuits() {
        let tables = NodeTables::new(&nl, &lib);
        group.bench_with_input(BenchmarkId::from_parameter(name), &nl, |b, nl| {
            b.iter(|| levelize::transition_times(nl, &tables.grid_delay));
        });
    }
    group.finish();
}

fn bench_separation_oracle(c: &mut Criterion) {
    let mut group = c.benchmark_group("separation_oracle_build");
    for (name, nl) in circuits() {
        group.bench_with_input(BenchmarkId::from_parameter(name), &nl, |b, nl| {
            b.iter(|| SeparationOracle::new(nl, 6));
        });
    }
    group.finish();
}

fn bench_module_stats(c: &mut Criterion) {
    let lib = experiment_library();
    let cfg = experiment_config();
    let mut group = c.benchmark_group("module_stats_full");
    for (name, nl) in circuits() {
        let ctx = EvalContext::new(&nl, &lib, cfg.clone());
        let gates: Vec<_> = nl.gate_ids().collect();
        group.bench_with_input(BenchmarkId::from_parameter(name), &gates, |b, gates| {
            b.iter(|| Evaluated::stats_for(&ctx, gates));
        });
    }
    group.finish();
}

fn bench_cost_evaluation(c: &mut Criterion) {
    let lib = experiment_library();
    let cfg = experiment_config();
    let mut group = c.benchmark_group("cost_breakdown");
    for (name, nl) in circuits() {
        let ctx = EvalContext::new(&nl, &lib, cfg.clone());
        let eval = Evaluated::new(&ctx, Partition::single_module(&nl));
        group.bench_with_input(BenchmarkId::from_parameter(name), &eval, |b, eval| {
            b.iter(|| eval.cost());
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_transition_times,
    bench_separation_oracle,
    bench_module_stats,
    bench_cost_evaluation
);
criterion_main!(benches);
