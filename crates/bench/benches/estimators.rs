//! Scaling of the §3 estimators: transition-time analysis, separation
//! oracle construction and module-statistics evaluation.
//!
//! The paper's feasibility argument rests on the estimators being "a good
//! trade-off between accuracy and computation complexity"; these benches
//! record the actual costs across circuit sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use iddq_bench::{experiment_config, experiment_library, table1_circuit};
use iddq_celllib::NodeTables;
use iddq_core::{AnalysisTier, EvalContext, Evaluated, Partition};
use iddq_gen::iscas::IscasProfile;
use iddq_netlist::separation::{GateSeparationTable, SeparationOracle};
use iddq_netlist::{levelize, Netlist};

fn circuits() -> Vec<(&'static str, Netlist)> {
    ["c432", "c880", "c1908"]
        .iter()
        .map(|n| {
            let p = IscasProfile::by_name(n).expect("known circuit");
            (*n, table1_circuit(p))
        })
        .collect()
}

fn bench_transition_times(c: &mut Criterion) {
    let lib = experiment_library();
    let mut group = c.benchmark_group("transition_times");
    for (name, nl) in circuits() {
        let tables = NodeTables::new(&nl, &lib);
        group.bench_with_input(BenchmarkId::from_parameter(name), &nl, |b, nl| {
            b.iter(|| levelize::transition_times(nl, &tables.grid_delay));
        });
    }
    group.finish();
}

fn bench_separation_oracle(c: &mut Criterion) {
    // Four arms per circuit: the flat array-BFS engine, the historical
    // hash-map reference (the PR 4 constructor), the thread-sharded
    // parallel build, and the direct (oracle-free) gate-table build —
    // local regressions of the analysis-construction rework show up here
    // before the `bench` gates fire.
    let mut group = c.benchmark_group("separation_oracle_build");
    for (name, nl) in circuits() {
        group.bench_with_input(BenchmarkId::new("flat", name), &nl, |b, nl| {
            b.iter(|| SeparationOracle::new(nl, 6));
        });
        group.bench_with_input(BenchmarkId::new("reference", name), &nl, |b, nl| {
            b.iter(|| SeparationOracle::new_reference(nl, 6));
        });
        group.bench_with_input(BenchmarkId::new("parallel4", name), &nl, |b, nl| {
            b.iter(|| SeparationOracle::new_parallel(nl, 6, 4));
        });
        group.bench_with_input(BenchmarkId::new("gatesep_direct", name), &nl, |b, nl| {
            b.iter(|| GateSeparationTable::direct(nl, 6, 1));
        });
    }
    group.finish();
}

fn bench_context_build(c: &mut Criterion) {
    // The tiered EvalContext constructions the flows actually pay for:
    // full (Separation) tier on the flat engine, the lightweight GateSep
    // tier the resynthesis searches use, and the PR 4-style build.
    let lib = experiment_library();
    let cfg = experiment_config();
    let mut group = c.benchmark_group("context_build");
    for (name, nl) in circuits() {
        group.bench_with_input(BenchmarkId::new("full", name), &nl, |b, nl| {
            b.iter(|| EvalContext::builder(nl, &lib, cfg.clone()).build());
        });
        group.bench_with_input(BenchmarkId::new("gatesep", name), &nl, |b, nl| {
            b.iter(|| {
                EvalContext::builder(nl, &lib, cfg.clone())
                    .tier(AnalysisTier::GateSep)
                    .build()
            });
        });
        group.bench_with_input(BenchmarkId::new("pr4_reference", name), &nl, |b, nl| {
            b.iter(|| {
                EvalContext::builder(nl, &lib, cfg.clone())
                    .reference_oracle()
                    .build()
            });
        });
    }
    group.finish();
}

fn bench_module_stats(c: &mut Criterion) {
    let lib = experiment_library();
    let cfg = experiment_config();
    let mut group = c.benchmark_group("module_stats_full");
    for (name, nl) in circuits() {
        let ctx = EvalContext::new(&nl, &lib, cfg.clone());
        let gates: Vec<_> = nl.gate_ids().collect();
        group.bench_with_input(BenchmarkId::from_parameter(name), &gates, |b, gates| {
            b.iter(|| Evaluated::stats_for(&ctx, gates));
        });
    }
    group.finish();
}

fn bench_cost_evaluation(c: &mut Criterion) {
    let lib = experiment_library();
    let cfg = experiment_config();
    let mut group = c.benchmark_group("cost_breakdown");
    for (name, nl) in circuits() {
        let ctx = EvalContext::new(&nl, &lib, cfg.clone());
        let eval = Evaluated::new(&ctx, Partition::single_module(&nl));
        group.bench_with_input(BenchmarkId::from_parameter(name), &eval, |b, eval| {
            b.iter(|| eval.cost());
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_transition_times,
    bench_separation_oracle,
    bench_context_build,
    bench_module_stats,
    bench_cost_evaluation
);
criterion_main!(benches);
