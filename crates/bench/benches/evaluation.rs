//! Incremental vs from-scratch partition evaluation.
//!
//! §4.2: "costs are recomputed just for the modified modules … the
//! partitions generated this way can be evaluated very efficiently". The
//! `gate_move_incremental` / `gate_move_full_recompute` pair quantifies
//! that design decision.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use iddq_bench::{experiment_config, experiment_library, table1_circuit};
use iddq_core::{standard, EvalContext, Evaluated, Partition};
use iddq_gen::iscas::IscasProfile;

fn bench_incremental_move(c: &mut Criterion) {
    let lib = experiment_library();
    let cfg = experiment_config();
    let mut group = c.benchmark_group("gate_move_incremental");
    for (name, k) in [("c432", 2), ("c1908", 4)] {
        let p = IscasProfile::by_name(name).expect("known circuit");
        let nl = table1_circuit(p);
        let ctx = EvalContext::new(&nl, &lib, cfg.clone());
        let sizes = standard::equal_sizes(nl.gate_count(), k);
        let part = standard::standard_partition(&ctx, &sizes);
        let eval = Evaluated::new(&ctx, part);
        let gate = eval.partition().module(0)[0];
        group.bench_with_input(BenchmarkId::from_parameter(name), &eval, |b, eval| {
            b.iter_batched(
                || eval.clone(),
                |mut e| {
                    e.move_gate(gate, 1);
                    e.cost()
                },
                criterion::BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

fn bench_full_recompute_move(c: &mut Criterion) {
    let lib = experiment_library();
    let cfg = experiment_config();
    let mut group = c.benchmark_group("gate_move_full_recompute");
    for (name, k) in [("c432", 2), ("c1908", 4)] {
        let p = IscasProfile::by_name(name).expect("known circuit");
        let nl = table1_circuit(p);
        let ctx = EvalContext::new(&nl, &lib, cfg.clone());
        let sizes = standard::equal_sizes(nl.gate_count(), k);
        let part = standard::standard_partition(&ctx, &sizes);
        let gate = part.module(0)[0];
        group.bench_with_input(BenchmarkId::from_parameter(name), &part, |b, part| {
            b.iter_batched(
                || part.clone(),
                |mut p| {
                    p.move_gate(gate, 1);
                    // From-scratch evaluation after the move.
                    Evaluated::new(&ctx, p).cost()
                },
                criterion::BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

fn bench_standard_partitioning(c: &mut Criterion) {
    let lib = experiment_library();
    let cfg = experiment_config();
    let mut group = c.benchmark_group("standard_partitioning");
    group.sample_size(10);
    for name in ["c432", "c880"] {
        let p = IscasProfile::by_name(name).expect("known circuit");
        let nl = table1_circuit(p);
        let ctx = EvalContext::new(&nl, &lib, cfg.clone());
        let sizes = standard::equal_sizes(nl.gate_count(), 3);
        group.bench_with_input(BenchmarkId::from_parameter(name), &sizes, |b, sizes| {
            b.iter(|| standard::standard_partition(&ctx, sizes));
        });
    }
    group.finish();
}

fn bench_partition_validate(c: &mut Criterion) {
    let lib = experiment_library();
    let cfg = experiment_config();
    let p = IscasProfile::by_name("c1908").expect("known circuit");
    let nl = table1_circuit(p);
    let ctx = EvalContext::new(&nl, &lib, cfg);
    let sizes = standard::equal_sizes(nl.gate_count(), 4);
    let part = standard::standard_partition(&ctx, &sizes);
    c.bench_function("partition_validate_c1908", |b| {
        b.iter(|| part.validate(&nl).expect("valid"));
    });
    let _ = Partition::single_module(&nl);
}

criterion_group!(
    benches,
    bench_incremental_move,
    bench_full_recompute_move,
    bench_standard_partitioning,
    bench_partition_validate
);
criterion_main!(benches);
