//! Throughput of the evolution strategy (§4) — generations per second and
//! full-run latency on small circuits, plus the chain-start construction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use iddq_bench::{experiment_config, experiment_library, table1_circuit};
use iddq_core::evolution::{self, EvolutionConfig};
use iddq_core::{start, EvalContext};
use iddq_gen::iscas::IscasProfile;

fn bench_short_run(c: &mut Criterion) {
    let lib = experiment_library();
    let cfg = experiment_config();
    let evo = EvolutionConfig {
        generations: 10,
        stagnation: 10,
        ..EvolutionConfig::default()
    };
    let mut group = c.benchmark_group("evolution_10_generations");
    group.sample_size(10);
    for name in ["c432", "c880"] {
        let p = IscasProfile::by_name(name).expect("known circuit");
        let nl = table1_circuit(p);
        let ctx = EvalContext::new(&nl, &lib, cfg.clone());
        group.bench_with_input(BenchmarkId::from_parameter(name), &ctx, |b, ctx| {
            b.iter(|| evolution::optimize(ctx, &evo, 42));
        });
    }
    group.finish();
}

fn bench_chain_start(c: &mut Criterion) {
    let lib = experiment_library();
    let cfg = experiment_config();
    let mut group = c.benchmark_group("chain_start_partition");
    for name in ["c880", "c2670"] {
        let p = IscasProfile::by_name(name).expect("known circuit");
        let nl = table1_circuit(p);
        let ctx = EvalContext::new(&nl, &lib, cfg.clone());
        let size = start::estimate_module_size(&ctx)
            .min(nl.gate_count() / 2)
            .max(1);
        group.bench_with_input(BenchmarkId::from_parameter(name), &ctx, |b, ctx| {
            b.iter(|| start::chain_partition(ctx, size, 3));
        });
    }
    group.finish();
}

fn bench_context_build(c: &mut Criterion) {
    let lib = experiment_library();
    let cfg = experiment_config();
    let mut group = c.benchmark_group("eval_context_build");
    group.sample_size(10);
    for name in ["c1908", "c7552"] {
        let p = IscasProfile::by_name(name).expect("known circuit");
        let nl = table1_circuit(p);
        group.bench_with_input(BenchmarkId::from_parameter(name), &nl, |b, nl| {
            b.iter(|| EvalContext::new(nl, &lib, cfg.clone()));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_short_run,
    bench_chain_start,
    bench_context_build
);
criterion_main!(benches);
