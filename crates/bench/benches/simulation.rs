//! Substrate throughput: wide-word parallel logic simulation (naive
//! baseline vs CSR kernel vs 256-bit lanes), IDDQ fault simulation, ATPG
//! and the analog transient solver.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use iddq_analog::network::SwitchNetwork;
use iddq_atpg::AtpgConfig;
use iddq_bench::table1_circuit;
use iddq_gen::iscas::IscasProfile;
use iddq_logicsim::faults::{enumerate, FaultUniverseConfig};
use iddq_logicsim::reference::NaiveSimulator;
use iddq_logicsim::Simulator;
use iddq_netlist::{PackedWord, W256};

const SIM_CIRCUITS: [&str; 3] = ["c432", "c1908", "c7552"];

/// Pre-CSR baseline: per-gate `Vec` program, fresh allocation per batch.
fn bench_logic_sim_naive(c: &mut Criterion) {
    let mut group = c.benchmark_group("logic_sim_naive_64_patterns");
    for name in SIM_CIRCUITS {
        let p = IscasProfile::by_name(name).expect("known circuit");
        let nl = table1_circuit(p);
        let sim = NaiveSimulator::new(&nl);
        let inputs: Vec<u64> = (0..nl.num_inputs() as u64)
            .map(|i| i.wrapping_mul(0x9e37))
            .collect();
        group.throughput(Throughput::Elements(64));
        group.bench_with_input(BenchmarkId::from_parameter(name), &sim, |b, sim| {
            b.iter(|| sim.eval(&inputs));
        });
    }
    group.finish();
}

fn bench_logic_sim(c: &mut Criterion) {
    let mut group = c.benchmark_group("logic_sim_csr_64_patterns");
    for name in SIM_CIRCUITS {
        let p = IscasProfile::by_name(name).expect("known circuit");
        let nl = table1_circuit(p);
        let sim = Simulator::new(&nl);
        let inputs: Vec<u64> = (0..nl.num_inputs() as u64)
            .map(|i| i.wrapping_mul(0x9e37))
            .collect();
        let mut values = vec![0u64; sim.node_count()];
        group.throughput(Throughput::Elements(64));
        group.bench_with_input(BenchmarkId::from_parameter(name), &sim, |b, sim| {
            b.iter(|| sim.eval_into(&inputs, &mut values));
        });
    }
    group.finish();
}

fn bench_logic_sim_wide(c: &mut Criterion) {
    let mut group = c.benchmark_group("logic_sim_csr_256_patterns");
    for name in SIM_CIRCUITS {
        let p = IscasProfile::by_name(name).expect("known circuit");
        let nl = table1_circuit(p);
        let sim = Simulator::new(&nl);
        let inputs: Vec<W256> = (0..nl.num_inputs() as u64)
            .map(|i| W256::from_limbs(|l| (i + 1).wrapping_mul(0x9e37 + l as u64)))
            .collect();
        let mut values = vec![W256::zeros(); sim.node_count()];
        group.throughput(Throughput::Elements(256));
        group.bench_with_input(BenchmarkId::from_parameter(name), &sim, |b, sim| {
            b.iter(|| sim.eval_into(&inputs, &mut values));
        });
    }
    group.finish();
}

fn bench_fault_enumeration(c: &mut Criterion) {
    let mut group = c.benchmark_group("fault_enumeration");
    group.sample_size(10);
    for name in ["c432", "c1908"] {
        let p = IscasProfile::by_name(name).expect("known circuit");
        let nl = table1_circuit(p);
        let cfg = FaultUniverseConfig::default();
        group.bench_with_input(BenchmarkId::from_parameter(name), &nl, |b, nl| {
            b.iter(|| enumerate(nl, &cfg, 7));
        });
    }
    group.finish();
}

fn bench_atpg(c: &mut Criterion) {
    let mut group = c.benchmark_group("atpg_generate");
    group.sample_size(10);
    for name in ["c432", "c880"] {
        let p = IscasProfile::by_name(name).expect("known circuit");
        let nl = table1_circuit(p);
        let faults = enumerate(&nl, &FaultUniverseConfig::default(), 7);
        group.bench_with_input(BenchmarkId::from_parameter(name), &faults, |b, faults| {
            b.iter(|| iddq_atpg::generate(&nl, faults, &AtpgConfig::default(), 7));
        });
    }
    group.finish();
}

fn bench_transient(c: &mut Criterion) {
    let net = SwitchNetwork {
        n: 16.0,
        rs_ohm: 10.0,
        cs_ff: 500.0,
        rg_kohm: 1.8,
        cg_ff: 60.0,
        vdd_v: 5.0,
    };
    c.bench_function("transient_delay_rk4", |b| b.iter(|| net.delay_ps()));
    c.bench_function("transient_rail_peak_rk4", |b| {
        b.iter(|| net.peak_rail_perturbation_v())
    });
}

criterion_group!(
    benches,
    bench_logic_sim_naive,
    bench_logic_sim,
    bench_logic_sim_wide,
    bench_fault_enumeration,
    bench_atpg,
    bench_transient
);
criterion_main!(benches);
