//! Substrate throughput: 64-way parallel logic simulation, IDDQ fault
//! simulation, ATPG and the analog transient solver.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use iddq_analog::network::SwitchNetwork;
use iddq_atpg::AtpgConfig;
use iddq_bench::table1_circuit;
use iddq_gen::iscas::IscasProfile;
use iddq_logicsim::faults::{enumerate, FaultUniverseConfig};
use iddq_logicsim::Simulator;

fn bench_logic_sim(c: &mut Criterion) {
    let mut group = c.benchmark_group("logic_sim_64_patterns");
    for name in ["c432", "c1908", "c7552"] {
        let p = IscasProfile::by_name(name).expect("known circuit");
        let nl = table1_circuit(p);
        let sim = Simulator::new(&nl);
        let inputs: Vec<u64> = (0..nl.num_inputs() as u64).map(|i| i.wrapping_mul(0x9e37)).collect();
        group.throughput(Throughput::Elements(64));
        group.bench_with_input(BenchmarkId::from_parameter(name), &sim, |b, sim| {
            b.iter(|| sim.eval(&inputs));
        });
    }
    group.finish();
}

fn bench_fault_enumeration(c: &mut Criterion) {
    let mut group = c.benchmark_group("fault_enumeration");
    group.sample_size(10);
    for name in ["c432", "c1908"] {
        let p = IscasProfile::by_name(name).expect("known circuit");
        let nl = table1_circuit(p);
        let cfg = FaultUniverseConfig::default();
        group.bench_with_input(BenchmarkId::from_parameter(name), &nl, |b, nl| {
            b.iter(|| enumerate(nl, &cfg, 7));
        });
    }
    group.finish();
}

fn bench_atpg(c: &mut Criterion) {
    let mut group = c.benchmark_group("atpg_generate");
    group.sample_size(10);
    for name in ["c432", "c880"] {
        let p = IscasProfile::by_name(name).expect("known circuit");
        let nl = table1_circuit(p);
        let faults = enumerate(&nl, &FaultUniverseConfig::default(), 7);
        group.bench_with_input(BenchmarkId::from_parameter(name), &faults, |b, faults| {
            b.iter(|| iddq_atpg::generate(&nl, faults, &AtpgConfig::default(), 7));
        });
    }
    group.finish();
}

fn bench_transient(c: &mut Criterion) {
    let net = SwitchNetwork {
        n: 16.0,
        rs_ohm: 10.0,
        cs_ff: 500.0,
        rg_kohm: 1.8,
        cg_ff: 60.0,
        vdd_v: 5.0,
    };
    c.bench_function("transient_delay_rk4", |b| b.iter(|| net.delay_ps()));
    c.bench_function("transient_rail_peak_rk4", |b| {
        b.iter(|| net.peak_rail_perturbation_v())
    });
}

criterion_group!(
    benches,
    bench_logic_sim,
    bench_fault_enumeration,
    bench_atpg,
    bench_transient
);
criterion_main!(benches);
