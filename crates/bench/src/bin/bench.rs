//! `bench` — machine-readable throughput measurements of the simulation
//! hot path, emitting `BENCH_sim.json`.
//!
//! Measures patterns/second of logic simulation on synthetic c432 / c1908
//! / c7552 circuits for three kernels:
//!
//! * `naive64` — the seed's evaluator (per-gate fan-in `Vec`s, scratch
//!   gather buffer, fresh value vector per 64-pattern batch), kept in
//!   `iddq_logicsim::reference` as the comparison baseline;
//! * `csr64` — the CSR-compiled kernel, 64 patterns/sweep, zero-allocation
//!   `eval_into`;
//! * `csr256` — the same kernel over 256-bit [`W256`] words.
//!
//! It also measures the parallel IDDQ fault sweep (vectors/second,
//! sequential vs all cores). `--smoke` shrinks the measurement windows for
//! a sub-second CI health check; `--out PATH` overrides the JSON path.
//!
//! ```text
//! cargo run --release -p iddq-bench --bin bench [-- --smoke] [--out BENCH_sim.json]
//! ```

use std::collections::BTreeMap;
use std::time::Instant;

use iddq_bench::table1_circuit;
use iddq_gen::iscas::IscasProfile;
use iddq_logicsim::faults::{enumerate, FaultUniverseConfig};
use iddq_logicsim::reference::NaiveSimulator;
use iddq_logicsim::{iddq, Simulator};
use iddq_netlist::{PackedWord, W256};

const CIRCUITS: [&str; 3] = ["c432", "c1908", "c7552"];
/// Circuit the acceptance criterion is pinned to.
const HEADLINE: &str = "c7552";

struct Options {
    smoke: bool,
    out: String,
}

fn parse_args() -> Options {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_sim.json".to_string());
    Options {
        smoke: args.iter().any(|a| a == "--smoke"),
        out,
    }
}

/// Mean seconds per call of `f`, measured over a wall-clock window.
fn secs_per_iter(window_ms: u64, mut f: impl FnMut()) -> f64 {
    // Warm-up (touches caches, faults in pages).
    f();
    f();
    let floor = std::time::Duration::from_millis(window_ms);
    let mut iters: u64 = 1;
    loop {
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        let elapsed = start.elapsed();
        if elapsed >= floor || iters >= 1 << 30 {
            return elapsed.as_secs_f64() / iters as f64;
        }
        iters = iters.saturating_mul(4);
    }
}

fn main() {
    let opts = parse_args();
    let window_ms: u64 = if opts.smoke { 8 } else { 150 };
    let mode = if opts.smoke { "smoke" } else { "full" };
    println!("== simulation kernel throughput ({mode}) ==");

    let mut circuits: BTreeMap<String, serde_json::Value> = BTreeMap::new();
    let mut headline_speedup = 0.0f64;
    for name in CIRCUITS {
        let profile = IscasProfile::by_name(name).expect("known circuit");
        let nl = table1_circuit(profile);
        let naive = NaiveSimulator::new(&nl);
        let sim = Simulator::new(&nl);
        let inputs64: Vec<u64> = (0..nl.num_inputs() as u64)
            .map(|i| i.wrapping_mul(0x9e37_79b9_7f4a_7c15))
            .collect();
        let inputs256: Vec<W256> = inputs64
            .iter()
            .map(|&w| W256::from_limbs(|l| w.rotate_left(l as u32 * 7)))
            .collect();
        let mut values64 = vec![0u64; sim.node_count()];
        let mut values256 = vec![W256::zeros(); sim.node_count()];

        let t_naive = secs_per_iter(window_ms, || {
            std::hint::black_box(naive.eval(&inputs64));
        });
        let t_csr64 = secs_per_iter(window_ms, || {
            sim.eval_into(std::hint::black_box(&inputs64), &mut values64);
        });
        let t_csr256 = secs_per_iter(window_ms, || {
            sim.eval_into(std::hint::black_box(&inputs256), &mut values256);
        });

        let naive_pps = 64.0 / t_naive;
        let csr64_pps = 64.0 / t_csr64;
        let csr256_pps = 256.0 / t_csr256;
        let speedup = csr256_pps / naive_pps;
        if name == HEADLINE {
            headline_speedup = speedup;
        }
        println!(
            "{name:>8}: naive64 {naive_pps:10.3e} pat/s | csr64 {csr64_pps:10.3e} \
             ({:4.2}x) | csr256 {csr256_pps:10.3e} ({speedup:4.2}x vs seed)",
            csr64_pps / naive_pps,
        );
        circuits.insert(
            name.to_string(),
            serde_json::json!({
                "gates": nl.gate_count(),
                "naive64_patterns_per_sec": naive_pps,
                "csr64_patterns_per_sec": csr64_pps,
                "csr256_patterns_per_sec": csr256_pps,
                "csr64_speedup_vs_seed": csr64_pps / naive_pps,
                "csr256_speedup_vs_seed": speedup,
            }),
        );
    }

    // Parallel fault-sweep throughput (vectors/second through the full
    // activation + detection pipeline).
    println!("== IDDQ fault sweep ==");
    let threads = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let sweep_circuit = if opts.smoke { "c432" } else { "c1908" };
    let profile = IscasProfile::by_name(sweep_circuit).expect("known circuit");
    let nl = table1_circuit(profile);
    let faults = enumerate(&nl, &FaultUniverseConfig::default(), 7);
    let num_vectors = if opts.smoke { 512 } else { 4096 };
    let vectors: Vec<Vec<bool>> = (0..num_vectors)
        .map(|k| {
            (0..nl.num_inputs())
                .map(|i| (k * 37 + i * 11) % 3 == 0)
                .collect()
        })
        .collect();
    let module_of: Vec<u32> = nl
        .node_ids()
        .map(|id| if nl.is_gate(id) { 0 } else { iddq::NO_MODULE })
        .collect();
    // Tiny leakage, high threshold: no fault is ever detected, so the
    // sweep cannot early-exit and the measurement covers the whole set.
    let t_seq = secs_per_iter(window_ms, || {
        std::hint::black_box(iddq::simulate_with_threads(
            &nl,
            &faults,
            &vectors,
            &module_of,
            &[0.01],
            1e12,
            1,
        ));
    });
    let t_par = secs_per_iter(window_ms, || {
        std::hint::black_box(iddq::simulate_with_threads(
            &nl,
            &faults,
            &vectors,
            &module_of,
            &[0.01],
            1e12,
            threads,
        ));
    });
    let seq_vps = num_vectors as f64 / t_seq;
    let par_vps = num_vectors as f64 / t_par;
    println!(
        "{sweep_circuit:>8}: {} faults x {num_vectors} vectors: seq {seq_vps:10.3e} vec/s | \
         {threads} threads {par_vps:10.3e} vec/s ({:4.2}x)",
        faults.len(),
        par_vps / seq_vps,
    );

    let headline = serde_json::json!({
        "circuit": HEADLINE,
        "csr256_speedup_vs_seed": headline_speedup,
        "acceptance_threshold": 3.0,
        "pass": headline_speedup >= 3.0,
    });
    let fault_sweep = serde_json::json!({
        "circuit": sweep_circuit,
        "faults": faults.len(),
        "vectors": num_vectors,
        "threads": threads,
        "seq_vectors_per_sec": seq_vps,
        "par_vectors_per_sec": par_vps,
        "parallel_speedup": par_vps / seq_vps,
    });
    let payload = serde_json::json!({
        "mode": mode,
        "headline": headline,
        "circuits": circuits,
        "fault_sweep": fault_sweep,
    });
    std::fs::write(
        &opts.out,
        serde_json::to_string_pretty(&payload).expect("serializable"),
    )
    .expect("writable output path");
    println!("wrote {}", opts.out);
    if headline_speedup < 3.0 {
        eprintln!(
            "WARNING: {HEADLINE} csr256 speedup {headline_speedup:.2}x is below the 3x target"
        );
        // Only full mode gates on the ratio: smoke's short windows are too
        // noisy to fail CI over on a loaded runner.
        if !opts.smoke {
            std::process::exit(1);
        }
    }
}
