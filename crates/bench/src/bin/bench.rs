//! `bench` — machine-readable throughput measurements of the simulation
//! hot path, emitting `BENCH_sim.json`.
//!
//! Measures patterns/second of logic simulation on synthetic c432 / c1908
//! / c7552 circuits for four kernels:
//!
//! * `naive64` — the seed's evaluator (per-gate fan-in `Vec`s, scratch
//!   gather buffer, fresh value vector per 64-pattern batch), kept in
//!   `iddq_logicsim::reference` as the comparison baseline;
//! * `csr64` — the CSR-compiled kernel, 64 patterns/sweep, zero-allocation
//!   `eval_into`;
//! * `csr256` / `csr512` — the same kernel over 256-bit [`W256`] /
//!   512-bit [`W512`] words (the `--lanes` widths of the CLI).
//!
//! It also measures:
//!
//! * the parallel IDDQ fault sweep (vectors/second, sequential vs ≥ 4
//!   worker threads; the > 1.5× gate applies only when the machine
//!   actually has ≥ 4 cores),
//! * the fault-patch engine (`fault_patch`): stuck-at + bridge sweep on
//!   the persistent delta state (force patch → dirty-cone diff →
//!   rollback, fault dropping) against the per-fault full re-simulation
//!   oracle — detection results are asserted identical, and the speedup
//!   gate requires ≥ 5× (full) / ≥ 3× (smoke) on the largest benchmark,
//! * the event-driven incremental engine (`delta`): single-gate-mutation
//!   re-evaluation throughput (apply or rollback of one structural patch,
//!   dirty-cone-only propagation) against a full CSR re-simulation of the
//!   mutated circuit — the acceptance gate requires ≥ 5× (full mode) /
//!   ≥ 3× (smoke) on the largest benchmark,
//! * resynthesis candidate scoring (`resynth_patch`): the three
//!   `cost_aware` candidates scored by patch apply→score→rollback on one
//!   persistent `ResynthEval` vs materializing each candidate and
//!   rebuilding a fresh `EvalContext`/`Evaluated` — chosen candidate and
//!   costs asserted bit-identical, wall-clock gated ≥ 3× (full, c7552) /
//!   ≥ 2× (smoke, c1908),
//! * the evolution loop wall-clock against a **rebuild-per-evaluation**
//!   baseline: every candidate scored by a fresh from-scratch
//!   [`iddq_core::Evaluated`] (asserted to reproduce the search's best
//!   cost bit-exactly) — the historical incremental-vs-batch-delay
//!   comparison is still recorded, but both of those arms long ago
//!   converged onto the same fast paths (the batch flag only toggles a
//!   sub-percent arrival-sweep term), so the gate rides the rebuild
//!   ratio instead,
//! * the `scale` section: generated mega-circuits (10^5 gates in smoke,
//!   plus 10^6 in full mode) swept end-to-end under an asserted
//!   wall-clock budget — structurally parallel sweeps asserted
//!   bit-identical to serial, measured packed-state memory reported,
//!   and a row-budgeted streamed separation-oracle build demonstrating
//!   bounded-memory partial analysis at scale — plus the c7552
//!   incremental-ΔW probe: one `ResynthEval` apply→rollback separation
//!   refresh vs the retained full-refresh reference at asserted
//!   bit-identical costs, gated ≥ 2×,
//! * the `seq` section: ISCAS-89-like sequential circuits through the
//!   multi-frame fault sweep — every grid configuration (threads,
//!   shards, delta backend) asserted bit-identical to the serial CSR
//!   sweep, and at least one fault must be first detected mid-sequence,
//!   i.e. only explicable by latched state crossing a frame boundary.
//!
//! `--smoke` shrinks the measurement windows for a sub-second CI health
//! check; `--out PATH` overrides the JSON path.
//!
//! ```text
//! cargo run --release -p iddq-bench --bin bench [-- --smoke] [--out BENCH_sim.json]
//! ```

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

use iddq_bench::table1_circuit;
use iddq_celllib::Library;
use iddq_control::{RunBudget, RunControl};
use iddq_core::config::PartitionConfig;
use iddq_core::evolution::{self, EvolutionConfig};
use iddq_core::{AnalysisTier, EvalContext, Evaluated, ResynthEval};
use iddq_gen::iscas::IscasProfile;
use iddq_gen::mega::{self, MegaConfig};
use iddq_logicsim::delta::{DeltaSim, Patch, PatchOp};
use iddq_logicsim::fault_sweep::{self, FaultSweepOptions, LogicFault};
use iddq_logicsim::faults::{enumerate, FaultUniverseConfig, IddqFault};
use iddq_logicsim::logic_test::StuckAtFault;
use iddq_logicsim::reference::NaiveSimulator;
use iddq_logicsim::{iddq, BackendKind, Simulator};
use iddq_netlist::separation::SeparationOracle;
use iddq_netlist::{CellKind, Netlist, NodeId, PackedWord, W256, W512};
use iddq_serve::{Client as ServeClient, Server as ServeServer, ServerConfig as ServeConfig};

const CIRCUITS: [&str; 3] = ["c432", "c1908", "c7552"];
/// Circuit the acceptance criterion is pinned to.
const HEADLINE: &str = "c7552";

struct Options {
    smoke: bool,
    out: String,
}

fn parse_args() -> Options {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_sim.json".to_string());
    Options {
        smoke: args.iter().any(|a| a == "--smoke"),
        out,
    }
}

/// Mean seconds per call of `f`, measured over a wall-clock window.
fn secs_per_iter(window_ms: u64, mut f: impl FnMut()) -> f64 {
    // Warm-up (touches caches, faults in pages).
    f();
    f();
    let floor = std::time::Duration::from_millis(window_ms);
    let mut iters: u64 = 1;
    loop {
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        let elapsed = start.elapsed();
        if elapsed >= floor || iters >= 1 << 30 {
            return elapsed.as_secs_f64() / iters as f64;
        }
        iters = iters.saturating_mul(4);
    }
}

/// Best-of-rounds seconds per call of every arm, measured **interleaved**
/// (round robin) so slow drift of a shared, noisy machine hits all arms
/// equally — the right way to measure a work *ratio* that a gate depends
/// on. Per arm the *minimum* round is reported: noise and preemption only
/// ever add time, so the minima estimate the true work of each arm and
/// their ratio is far more stable than a ratio of 2–3-sample means.
/// Rounds continue until at least three have run and the accumulated
/// wall-clock covers `window_ms` per arm.
fn secs_per_iter_interleaved<const K: usize>(
    window_ms: u64,
    arms: &mut [&mut dyn FnMut(); K],
) -> [f64; K] {
    for f in arms.iter_mut() {
        f(); // warm-up
    }
    let budget = std::time::Duration::from_millis(window_ms) * K as u32;
    let mut best = [std::time::Duration::MAX; K];
    let mut spent = std::time::Duration::ZERO;
    let mut rounds = 0u64;
    loop {
        for (f, best) in arms.iter_mut().zip(best.iter_mut()) {
            let start = Instant::now();
            f();
            let elapsed = start.elapsed();
            spent += elapsed;
            *best = (*best).min(elapsed);
        }
        rounds += 1;
        if (rounds >= 3 && spent >= budget) || rounds >= 1 << 20 {
            return best.map(|t| t.as_secs_f64());
        }
    }
}

fn main() {
    let opts = parse_args();
    let window_ms: u64 = if opts.smoke { 8 } else { 150 };
    let mode = if opts.smoke { "smoke" } else { "full" };
    println!("== simulation kernel throughput ({mode}) ==");

    let mut circuits: BTreeMap<String, serde_json::Value> = BTreeMap::new();
    let mut headline_speedup = 0.0f64;
    let mut netlists: BTreeMap<&str, Netlist> = BTreeMap::new();
    let mut csr256_rates: BTreeMap<&str, f64> = BTreeMap::new();
    for name in CIRCUITS {
        let profile = IscasProfile::by_name(name).expect("known circuit");
        let nl = table1_circuit(profile);
        let naive = NaiveSimulator::new(&nl);
        let sim = Simulator::new(&nl);
        let inputs64: Vec<u64> = (0..nl.num_inputs() as u64)
            .map(|i| i.wrapping_mul(0x9e37_79b9_7f4a_7c15))
            .collect();
        let inputs256: Vec<W256> = inputs64
            .iter()
            .map(|&w| W256::from_limbs(|l| w.rotate_left(l as u32 * 7)))
            .collect();
        let inputs512: Vec<W512> = inputs64
            .iter()
            .map(|&w| W512::from_limbs(|l| w.rotate_left(l as u32 * 5)))
            .collect();
        let mut values64 = vec![0u64; sim.node_count()];
        let mut values256 = vec![W256::zeros(); sim.node_count()];
        let mut values512 = vec![W512::zeros(); sim.node_count()];

        // Structural-parallel differential: the threaded sweep must be
        // bit-identical to the serial kernel on every benched circuit
        // (here it degenerates to serial — ISCAS levels sit far below
        // the parallel threshold — but the contract is asserted anyway;
        // the mega-circuits in the scale section exercise the threaded
        // partitioning for real).
        {
            sim.eval_into(&inputs64, &mut values64);
            let mut par64 = vec![0u64; sim.node_count()];
            sim.eval_into_threads(&inputs64, &mut par64, 4);
            assert_eq!(
                values64, par64,
                "{name}: threaded sweep must be bit-identical to serial"
            );
        }

        let t_naive = secs_per_iter(window_ms, || {
            std::hint::black_box(naive.eval(&inputs64));
        });
        let t_csr64 = secs_per_iter(window_ms, || {
            sim.eval_into(std::hint::black_box(&inputs64), &mut values64);
        });
        let t_csr256 = secs_per_iter(window_ms, || {
            sim.eval_into(std::hint::black_box(&inputs256), &mut values256);
        });
        let t_csr512 = secs_per_iter(window_ms, || {
            sim.eval_into(std::hint::black_box(&inputs512), &mut values512);
        });

        let naive_pps = 64.0 / t_naive;
        let csr64_pps = 64.0 / t_csr64;
        let csr256_pps = 256.0 / t_csr256;
        let csr512_pps = 512.0 / t_csr512;
        let speedup = csr256_pps / naive_pps;
        if name == HEADLINE {
            headline_speedup = speedup;
        }
        println!(
            "{name:>8}: naive64 {naive_pps:10.3e} pat/s | csr64 {csr64_pps:10.3e} \
             ({:4.2}x) | csr256 {csr256_pps:10.3e} ({speedup:4.2}x) | \
             csr512 {csr512_pps:10.3e} ({:4.2}x vs seed)",
            csr64_pps / naive_pps,
            csr512_pps / naive_pps,
        );
        circuits.insert(
            name.to_string(),
            serde_json::json!({
                "gates": nl.gate_count(),
                "naive64_patterns_per_sec": naive_pps,
                "csr64_patterns_per_sec": csr64_pps,
                "csr256_patterns_per_sec": csr256_pps,
                "csr512_patterns_per_sec": csr512_pps,
                "csr64_speedup_vs_seed": csr64_pps / naive_pps,
                "csr256_speedup_vs_seed": speedup,
                "csr512_speedup_vs_seed": csr512_pps / naive_pps,
            }),
        );
        csr256_rates.insert(name, csr256_pps);
        netlists.insert(name, nl);
    }

    // Event-driven incremental engine: single-gate-mutation re-evaluation.
    // Each apply (or rollback) of a one-gate patch refreshes the full
    // 256-pattern state for a new circuit variant by re-simulating only
    // the dirty cone. Two baselines: what the CSR kernel actually pays
    // per mutated variant (program recompile + full sweep — its compiled
    // runs bake in gate kinds, so a mutation invalidates the program),
    // and the generous sweep-only rate (as if recompilation were free).
    // The acceptance gate uses the recompile-inclusive baseline; both are
    // recorded.
    println!("== delta engine: single-gate-mutation re-evaluation ==");
    let mut delta_entries: BTreeMap<String, serde_json::Value> = BTreeMap::new();
    let mut delta_headline_speedup = 0.0f64;
    for name in CIRCUITS {
        let nl = &netlists[name];
        let inputs256: Vec<W256> = (0..nl.num_inputs() as u64)
            .map(|i| {
                let w = i.wrapping_mul(0x9e37_79b9_7f4a_7c15);
                W256::from_limbs(|l| w.rotate_left(l as u32 * 7))
            })
            .collect();
        let mut dsim = DeltaSim::<W256>::new(nl);
        dsim.set_inputs(&inputs256);
        // A deterministic pool of single-gate kind-flip patches.
        let gates: Vec<NodeId> = nl.gate_ids().collect();
        let mut state = 0xde17au64;
        let mut next = move || {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z ^ (z >> 31)
        };
        let pool: Vec<Patch> = (0..512)
            .filter_map(|_| {
                let gate = gates[next() as usize % gates.len()];
                let arity = nl.node(gate).fanin().len();
                let current = nl.node(gate).kind().cell_kind();
                let options: Vec<CellKind> = CellKind::ALL
                    .into_iter()
                    .filter(|k| k.accepts_fanin(arity) && Some(*k) != current)
                    .collect();
                if options.is_empty() {
                    return None;
                }
                let kind = options[next() as usize % options.len()];
                Some(Patch::single(PatchOp::SetKind { gate, kind }))
            })
            .collect();
        let mut pi = 0usize;
        let mut reevaluated = 0u64;
        let mut mutations = 0u64;
        let t_pair = secs_per_iter(window_ms, || {
            let patch = &pool[pi % pool.len()];
            pi += 1;
            let r = dsim.apply(patch).expect("pool patches are valid");
            let rb = dsim.rollback();
            reevaluated += (r.reevaluated + rb.reevaluated) as u64;
            mutations += 2;
        });
        let mut values256 = vec![W256::zeros(); nl.node_count()];
        let t_rebuild = secs_per_iter(window_ms, || {
            let sim = Simulator::new(std::hint::black_box(nl));
            sim.eval_into(&inputs256, &mut values256);
            std::hint::black_box(&values256);
        });
        let inc_pps = 2.0 * f64::from(W256::LANES) / t_pair;
        let sweep_pps = csr256_rates[name];
        let rebuild_pps = f64::from(W256::LANES) / t_rebuild;
        let speedup = inc_pps / rebuild_pps;
        let sweep_speedup = inc_pps / sweep_pps;
        let mean_dirty = reevaluated as f64 / mutations as f64;
        if name == HEADLINE {
            delta_headline_speedup = speedup;
        }
        println!(
            "{name:>8}: incremental {inc_pps:10.3e} pat/s | csr rebuild+sweep {rebuild_pps:10.3e} \
             ({speedup:5.2}x) | csr sweep-only {sweep_pps:10.3e} ({sweep_speedup:4.2}x), \
             mean dirty cone {mean_dirty:6.1} of {} nodes",
            nl.node_count(),
        );
        delta_entries.insert(
            name.to_string(),
            serde_json::json!({
                "gates": nl.gate_count(),
                "incremental_patterns_per_sec": inc_pps,
                "full_csr_rebuild_patterns_per_sec": rebuild_pps,
                "full_csr_sweep_patterns_per_sec": sweep_pps,
                "speedup_vs_full_reeval": speedup,
                "speedup_vs_sweep_only": sweep_speedup,
                "mean_dirty_nodes": mean_dirty,
            }),
        );
    }

    // Fault-patch engine: stuck-at + bridge sweep on the persistent delta
    // state vs the per-fault full re-simulation oracle. Both runs use the
    // same fault-dropping semantics and are asserted to produce identical
    // detections, so the wall-clock ratio isolates the dirty-cone win.
    println!("== fault-patch engine: stuck-at/bridge sweep ==");
    let fp_nl = &netlists[HEADLINE];
    let fp_gates: Vec<NodeId> = fp_nl.gate_ids().collect();
    let num_sa = if opts.smoke { 40 } else { 192 };
    let sa_stride = (fp_gates.len() / num_sa).max(1);
    let mut fp_faults: Vec<LogicFault> = fp_gates
        .iter()
        .step_by(sa_stride)
        .take(num_sa)
        .flat_map(|&g| {
            [false, true].map(|stuck_at_one| {
                LogicFault::StuckAt(StuckAtFault {
                    node: g,
                    stuck_at_one,
                })
            })
        })
        .collect();
    let stuck_at_count = fp_faults.len();
    let num_bridges = if opts.smoke { 16 } else { 64 };
    fp_faults.extend(
        enumerate(fp_nl, &FaultUniverseConfig::default(), 7)
            .into_iter()
            .filter_map(|f| match f {
                IddqFault::Bridge { a, b, .. } => Some(LogicFault::Bridge { a, b }),
                _ => None,
            })
            .take(num_bridges),
    );
    let bridge_count = fp_faults.len() - stuck_at_count;
    let fp_num_vectors = if opts.smoke { 256 } else { 512 };
    let fp_vectors: Vec<Vec<bool>> = (0..fp_num_vectors)
        .map(|k| {
            (0..fp_nl.num_inputs())
                .map(|i| (k * 37 + i * 11) % 3 == 0)
                .collect()
        })
        .collect();
    let patch_opts = FaultSweepOptions {
        threads: 1,
        backend: BackendKind::Delta,
        ..FaultSweepOptions::default()
    };
    let oracle_opts = FaultSweepOptions {
        threads: 1,
        backend: BackendKind::Csr,
        ..FaultSweepOptions::default()
    };
    let patch_outcome = fault_sweep::sweep::<W256>(fp_nl, &fp_faults, &fp_vectors, &patch_opts);
    let oracle_outcome = fault_sweep::sweep::<W256>(fp_nl, &fp_faults, &fp_vectors, &oracle_opts);
    assert_eq!(
        patch_outcome.first_detection, oracle_outcome.first_detection,
        "fault-patch engine must match the per-fault full re-simulation oracle"
    );
    let t_patch = secs_per_iter(window_ms, || {
        std::hint::black_box(fault_sweep::sweep::<W256>(
            fp_nl,
            &fp_faults,
            &fp_vectors,
            &patch_opts,
        ));
    });
    let t_oracle = secs_per_iter(window_ms, || {
        std::hint::black_box(fault_sweep::sweep::<W256>(
            fp_nl,
            &fp_faults,
            &fp_vectors,
            &oracle_opts,
        ));
    });
    let fault_patterns = (fp_faults.len() * fp_num_vectors) as f64;
    let patch_fpps = fault_patterns / t_patch;
    let oracle_fpps = fault_patterns / t_oracle;
    let fault_patch_speedup = t_oracle / t_patch;
    let fault_patch_threshold = if opts.smoke { 3.0 } else { 5.0 };
    println!(
        "{HEADLINE:>8}: {stuck_at_count} stuck-at + {bridge_count} bridges x {fp_num_vectors} \
         vectors: patch {patch_fpps:10.3e} fault-pat/s | per-fault resim {oracle_fpps:10.3e} \
         ({fault_patch_speedup:5.2}x), mean dirty cone {:6.1} of {} nodes, coverage {:.1}%",
        patch_outcome.mean_dirty_nodes,
        fp_nl.node_count(),
        patch_outcome.coverage * 100.0,
    );
    let fault_patch = serde_json::json!({
        "circuit": HEADLINE,
        "stuck_at_faults": stuck_at_count,
        "bridge_faults": bridge_count,
        "vectors": fp_num_vectors,
        "patch_fault_patterns_per_sec": patch_fpps,
        "oracle_fault_patterns_per_sec": oracle_fpps,
        "speedup_vs_per_fault_resim": fault_patch_speedup,
        "mean_dirty_nodes": patch_outcome.mean_dirty_nodes,
        "coverage": patch_outcome.coverage,
        "results_match_oracle": true,
        "acceptance_threshold": fault_patch_threshold,
        "pass": fault_patch_speedup >= fault_patch_threshold,
    });

    // Analysis-context construction: the flat, tiered, parallel rework of
    // EvalContext. Four arms per circuit: the full (Separation) tier on
    // the flat BFS engine, the GateSep tier (gate table direct from the
    // netlist, no oracle), the PR 4-style constructor (hash-map oracle —
    // the differential baseline, asserted equal to the flat build), and
    // the thread-sharded parallel full build (bit-identical by stitching;
    // its speedup is only gated on machines with >= 4 real cores).
    println!("== analysis context construction ==");
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let ctx_lib = Library::generic_1um();
    let ctx_cfg = PartitionConfig::paper_default();
    let ctx_circuits: &[&str] = if opts.smoke {
        &["c1908"]
    } else {
        &["c1908", HEADLINE]
    };
    let ctx_threads = cores.max(4);
    let mut context_entries: BTreeMap<String, serde_json::Value> = BTreeMap::new();
    let mut ctx_headline_speedup = 0.0f64;
    let mut ctx_parallel_speedup = 0.0f64;
    for name in ctx_circuits {
        let nl = &netlists[name];
        // Differential sanity: the flat full build, the PR 4 hash-map
        // build and the direct GateSep table agree entry for entry.
        {
            let flat = EvalContext::builder(nl, &ctx_lib, ctx_cfg.clone()).build();
            let pr4 = EvalContext::builder(nl, &ctx_lib, ctx_cfg.clone())
                .reference_oracle()
                .build();
            assert_eq!(
                flat.separation(),
                pr4.separation(),
                "flat oracle must equal the hash-map reference"
            );
            let gatesep = EvalContext::builder(nl, &ctx_lib, ctx_cfg.clone())
                .tier(AnalysisTier::GateSep)
                .build();
            assert_eq!(
                gatesep.sep_table(),
                flat.sep_table(),
                "direct gate table must equal the oracle distillation"
            );
            let par = EvalContext::builder(nl, &ctx_lib, ctx_cfg.clone())
                .threads(ctx_threads)
                .build();
            assert_eq!(
                par.separation(),
                flat.separation(),
                "parallel build must be bit-identical to serial"
            );
        }
        let [t_full, t_gatesep, t_pr4, t_par] = secs_per_iter_interleaved(
            window_ms,
            &mut [
                &mut || {
                    std::hint::black_box(
                        EvalContext::builder(nl, &ctx_lib, ctx_cfg.clone()).build(),
                    );
                },
                &mut || {
                    std::hint::black_box(
                        EvalContext::builder(nl, &ctx_lib, ctx_cfg.clone())
                            .tier(AnalysisTier::GateSep)
                            .build(),
                    );
                },
                &mut || {
                    std::hint::black_box(
                        EvalContext::builder(nl, &ctx_lib, ctx_cfg.clone())
                            .reference_oracle()
                            .build(),
                    );
                },
                &mut || {
                    std::hint::black_box(
                        EvalContext::builder(nl, &ctx_lib, ctx_cfg.clone())
                            .threads(ctx_threads)
                            .build(),
                    );
                },
            ],
        );
        let flat_speedup = t_pr4 / t_full;
        let gatesep_speedup = t_pr4 / t_gatesep;
        let par_speedup = t_full / t_par;
        if *name == HEADLINE || (opts.smoke && *name == "c1908") {
            ctx_headline_speedup = flat_speedup;
            ctx_parallel_speedup = par_speedup;
        }
        println!(
            "{name:>8}: full(flat) {:7.1} ms ({flat_speedup:4.2}x vs PR4) | gatesep {:7.1} ms \
             ({gatesep_speedup:4.2}x) | pr4 {:7.1} ms | parallel x{ctx_threads} {:7.1} ms \
             ({par_speedup:4.2}x vs serial) on {cores} core(s)",
            t_full * 1e3,
            t_gatesep * 1e3,
            t_pr4 * 1e3,
            t_par * 1e3,
        );
        context_entries.insert(
            (*name).to_string(),
            serde_json::json!({
                "gates": nl.gate_count(),
                "full_flat_secs": t_full,
                "gatesep_secs": t_gatesep,
                "pr4_secs": t_pr4,
                "parallel_secs": t_par,
                "parallel_threads": ctx_threads,
                "full_flat_speedup_vs_pr4": flat_speedup,
                "gatesep_speedup_vs_pr4": gatesep_speedup,
                "parallel_speedup_vs_serial": par_speedup,
            }),
        );
    }
    // Work ratio between two deterministic builds: stable enough to gate
    // in smoke mode too (at the smaller circuit's lower threshold — the
    // oracle is a smaller fraction of the c1908 build).
    let ctx_build_threshold = if opts.smoke { 1.7 } else { 2.5 };
    let context_build = serde_json::json!({
        "circuit": if opts.smoke { "c1908" } else { HEADLINE },
        "circuits": context_entries,
        "full_flat_speedup_vs_pr4": ctx_headline_speedup,
        "acceptance_threshold": ctx_build_threshold,
        "pass": ctx_headline_speedup >= ctx_build_threshold,
        "parallel_speedup_vs_serial": ctx_parallel_speedup,
        // Mirrors the fault-sweep gate discipline: the sub-1x number a
        // 1-core container measures is recorded but explicitly marked
        // SKIPPED, so downstream tooling never reads it as a regression.
        "parallel_gate": if cores >= 4 { "ARMED" } else { "SKIPPED" },
        "parallel_gate_cores": cores,
    });

    // Resynthesis candidate scoring: the three cost_aware candidates
    // (Original / Balanced / Chain) scored by patch apply->score->rollback
    // on one persistent GateSep-tier ResynthEval, against two rebuild
    // arms: the current rebuild path (materialize every candidate, fresh
    // flat-engine EvalContext + single-module Evaluated each) and the PR
    // 4-era rebuild (same, with the hash-map oracle constructor) — the
    // baseline PR 4's recorded headline ratio was measured against, so
    // the two headlines stay comparable. All three paths must pick the
    // same candidate at bit-identical costs; both wall-clock ratios are
    // gated (vs-rebuild >= 2x smoke on c1908 / >= 3x full on c7552;
    // vs-PR4-rebuild >= 3.5x smoke / >= 7.6x full — at least twice the
    // 3.8x PR 4 recorded on this container against the same rebuild
    // baseline).
    println!("== resynthesis scoring: patch vs rebuild ==");
    let rs_name = if opts.smoke { "c1908" } else { HEADLINE };
    let rs_nl = &netlists[rs_name];
    let rs_lib = Library::generic_1um();
    let rs_cfg = PartitionConfig::paper_default();
    let (_, rep_patch) = iddq_synth::cost_aware(rs_nl, &rs_lib, &rs_cfg);
    let (_, rep_rebuild) = iddq_synth::cost_aware_rebuild(rs_nl, &rs_lib, &rs_cfg);
    let (_, rep_pr4) = iddq_synth::cost_aware_rebuild_reference(rs_nl, &rs_lib, &rs_cfg);
    for (path, rep) in [("rebuild", &rep_rebuild), ("pr4 rebuild", &rep_pr4)] {
        assert_eq!(
            rep_patch.chosen, rep.chosen,
            "patch and {path} scoring must choose the same candidate"
        );
        for (label, a, b) in [
            ("original", rep_patch.original_cost, rep.original_cost),
            ("balanced", rep_patch.balanced_cost, rep.balanced_cost),
            ("chain", rep_patch.chain_cost, rep.chain_cost),
        ] {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "{label} cost must be bit-identical across patch and {path} scoring"
            );
        }
    }
    let [t_rs_patch, t_rs_rebuild, t_rs_pr4] = secs_per_iter_interleaved(
        window_ms,
        &mut [
            &mut || {
                std::hint::black_box(iddq_synth::cost_aware(rs_nl, &rs_lib, &rs_cfg));
            },
            &mut || {
                std::hint::black_box(iddq_synth::cost_aware_rebuild(rs_nl, &rs_lib, &rs_cfg));
            },
            &mut || {
                std::hint::black_box(iddq_synth::cost_aware_rebuild_reference(
                    rs_nl, &rs_lib, &rs_cfg,
                ));
            },
        ],
    );
    let resynth_speedup = t_rs_rebuild / t_rs_patch;
    let resynth_pr4_speedup = t_rs_pr4 / t_rs_patch;
    let resynth_threshold = if opts.smoke { 2.0 } else { 3.0 };
    let resynth_pr4_threshold = if opts.smoke { 3.5 } else { 7.6 };
    println!(
        "{rs_name:>8}: 3 candidates: patch {t_rs_patch:8.3} s | rebuild {t_rs_rebuild:8.3} s \
         ({resynth_speedup:5.2}x) | pr4 rebuild {t_rs_pr4:8.3} s ({resynth_pr4_speedup:5.2}x), \
         chosen {:?} at identical costs",
        rep_patch.chosen,
    );
    let resynth_patch = serde_json::json!({
        "circuit": rs_name,
        "candidates": 3,
        "patch_secs": t_rs_patch,
        "rebuild_secs": t_rs_rebuild,
        "pr4_rebuild_secs": t_rs_pr4,
        "speedup_vs_rebuild": resynth_speedup,
        "speedup_vs_pr4_rebuild": resynth_pr4_speedup,
        "chosen": format!("{:?}", rep_patch.chosen),
        "costs_match_bitwise": true,
        "acceptance_threshold": resynth_threshold,
        "pr4_acceptance_threshold": resynth_pr4_threshold,
        "pass": resynth_speedup >= resynth_threshold
            && resynth_pr4_speedup >= resynth_pr4_threshold,
    });

    // Parallel fault-sweep throughput (vectors/second through the full
    // activation + detection pipeline). The parallel leg always runs at
    // >= 4 workers so the recorded speedup is the one the acceptance
    // criterion talks about; on machines with fewer cores it degenerates
    // to ~1x and is reported (not gated).
    println!("== IDDQ fault sweep ==");
    let threads = cores.max(4);
    let sweep_circuit = if opts.smoke { "c432" } else { "c1908" };
    let nl = &netlists[sweep_circuit];
    let faults = enumerate(nl, &FaultUniverseConfig::default(), 7);
    let num_vectors = if opts.smoke { 512 } else { 4096 };
    let vectors: Vec<Vec<bool>> = (0..num_vectors)
        .map(|k| {
            (0..nl.num_inputs())
                .map(|i| (k * 37 + i * 11) % 3 == 0)
                .collect()
        })
        .collect();
    let module_of: Vec<u32> = nl
        .node_ids()
        .map(|id| if nl.is_gate(id) { 0 } else { iddq::NO_MODULE })
        .collect();
    // Tiny leakage, high threshold: no fault is ever detected, so the
    // sweep cannot early-exit and the measurement covers the whole set.
    let t_seq = secs_per_iter(window_ms, || {
        std::hint::black_box(iddq::simulate_with_threads(
            nl,
            &faults,
            &vectors,
            &module_of,
            &[0.01],
            1e12,
            1,
        ));
    });
    let t_par = secs_per_iter(window_ms, || {
        std::hint::black_box(iddq::simulate_with_threads(
            nl,
            &faults,
            &vectors,
            &module_of,
            &[0.01],
            1e12,
            threads,
        ));
    });
    let seq_vps = num_vectors as f64 / t_seq;
    let par_vps = num_vectors as f64 / t_par;
    println!(
        "{sweep_circuit:>8}: {} faults x {num_vectors} vectors: seq {seq_vps:10.3e} vec/s | \
         {threads} threads {par_vps:10.3e} vec/s ({:4.2}x) on {cores} core(s)",
        faults.len(),
        par_vps / seq_vps,
    );

    // Evolution loop wall-clock, re-baselined. The historical comparison
    // (incremental delay re-sim vs `incremental_delay_limit = 0.0`) no
    // longer measures anything: the flag only switches the per-settle
    // arrival update between an event-driven walk and a full sweep, and
    // since the flat-context / persistent-cost rework that term is a
    // sub-percent slice of an evaluation — both arms ride the same fast
    // paths and the ratio sits at ~1x by construction, not regression.
    // The ratio the gate now rides is against something real: scoring
    // every evaluation with a fresh from-scratch `Evaluated` (the
    // reference constructor every incremental path is differentially
    // tested against). Its per-evaluation cost is measured on the
    // search's own best partition and asserted to reproduce the search's
    // best cost bit-exactly, then scaled by the evaluation count. The
    // legacy batch-delay arm stays recorded (not gated) so the history
    // of the converged numbers is visible.
    println!("== evolution loop wall-clock ==");
    let evo_circuit = if opts.smoke { "c432" } else { HEADLINE };
    let evo_nl = &netlists[evo_circuit];
    let library = Library::generic_1um();
    let evo_cfg = EvolutionConfig {
        generations: if opts.smoke { 4 } else { 25 },
        stagnation: usize::MAX,
        threads: 1,
        ..EvolutionConfig::default()
    };
    let evo_ctx = EvalContext::new(evo_nl, &library, PartitionConfig::paper_default());
    let start = Instant::now();
    let evo_out = evolution::optimize(&evo_ctx, &evo_cfg, 42);
    let t_inc = start.elapsed().as_secs_f64();
    let (cost_inc, evals) = (evo_out.best_cost, evo_out.evaluations);
    // Legacy arm: same search forced onto the batch arrival path.
    let mut batch_cfg = PartitionConfig::paper_default();
    batch_cfg.incremental_delay_limit = 0.0;
    let batch_ctx = EvalContext::new(evo_nl, &library, batch_cfg);
    let start = Instant::now();
    let batch_out = evolution::optimize(&batch_ctx, &evo_cfg, 42);
    let t_batch = start.elapsed().as_secs_f64();
    assert!(
        (cost_inc - batch_out.best_cost).abs() <= 1e-9 * cost_inc.abs().max(1.0),
        "incremental and batch searches must agree ({cost_inc} vs {})",
        batch_out.best_cost,
    );
    // Rebuild baseline: a fresh Evaluated per evaluation. Bit-exact
    // against the incremental search's best cost — the two paths score
    // the same partition to the same bits, so the wall-clock ratio is a
    // pure work ratio.
    let rebuild_cost = Evaluated::new(&evo_ctx, evo_out.best.clone()).total_cost();
    assert_eq!(
        rebuild_cost.to_bits(),
        cost_inc.to_bits(),
        "from-scratch Evaluated must reproduce the search's best cost bit-exactly"
    );
    let t_rebuild_eval = secs_per_iter(window_ms, || {
        std::hint::black_box(Evaluated::new(&evo_ctx, evo_out.best.clone()).total_cost());
    });
    let t_rebuild = t_rebuild_eval * evals as f64;
    let evo_rebuild_speedup = t_rebuild / t_inc;
    let evo_threshold = 2.0;
    println!(
        "{evo_circuit:>8}: {evals} evaluations: incremental {t_inc:.3} s | rebuild-per-eval \
         {t_rebuild:.3} s ({evo_rebuild_speedup:.2}x) | legacy batch-delay arm {t_batch:.3} s \
         ({:.2}x, converged — not gated)",
        t_batch / t_inc,
    );

    // Million-gate scale: generated mega-circuits swept end-to-end. The
    // default `MegaConfig::with_gates` shape mimics ISCAS depth growth
    // (33 levels at 10^5), which keeps mean level widths *below* the
    // structural partitioner's serial-fallback threshold — so the scale
    // bench pins a flat 16-level shape (6_250 nodes/level at 10^5,
    // 62_500 at 10^6) where the threaded sweep genuinely partitions.
    // Every threaded sweep is asserted bit-identical to serial; the
    // wall-clock of one full serial sweep is asserted under an explicit
    // budget; measured memory (netlist, CSR program, packed values) is
    // recorded; and a row-budgeted *streamed* separation-oracle build
    // shows bounded-memory partial analysis at scale (a complete rho=6
    // oracle at 10^6 gates would need gigabytes — the budget caps rows,
    // the streamed layout caps the transient peak).
    println!("== million-gate scale ==");
    let scale_threads = cores.max(4);
    let scale_sizes: &[usize] = if opts.smoke {
        &[100_000]
    } else {
        &[100_000, 1_000_000]
    };
    let sweep_budget_secs = if opts.smoke { 30.0 } else { 120.0 };
    let scale_rho = 4u32;
    let scale_row_quota: u64 = if opts.smoke { 20_000 } else { 200_000 };
    let mut scale_entries: BTreeMap<String, serde_json::Value> = BTreeMap::new();
    let mut scale_parallel_speedup = 0.0f64;
    let mut scale_budget_ok = true;
    for &gates in scale_sizes {
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let inputs = ((gates as f64).sqrt().round() as usize).max(64);
        let mega_cfg = MegaConfig {
            gates,
            inputs,
            depth: 16,
            seed: 0x5ca1e,
        };
        let t0 = Instant::now();
        let nl = mega::generate(&mega_cfg);
        let t_gen = t0.elapsed().as_secs_f64();
        let t0 = Instant::now();
        let sim = Simulator::new(&nl);
        let t_build = t0.elapsed().as_secs_f64();
        let inputs64: Vec<u64> = (0..nl.num_inputs() as u64)
            .map(|i| i.wrapping_mul(0x9e37_79b9_7f4a_7c15))
            .collect();
        let mut serial = vec![0u64; sim.node_count()];
        let mut parallel = vec![0u64; sim.node_count()];
        // The acceptance sweep: one full 64-pattern pass, serial, under
        // the wall-clock budget.
        let t0 = Instant::now();
        sim.eval_into(&inputs64, &mut serial);
        let sweep_once = t0.elapsed().as_secs_f64();
        if sweep_once > sweep_budget_secs {
            eprintln!(
                "ERROR: mega{gates} end-to-end sweep took {sweep_once:.2} s, over the \
                 {sweep_budget_secs:.0} s budget"
            );
            scale_budget_ok = false;
        }
        sim.eval_into_threads(&inputs64, &mut parallel, scale_threads);
        assert_eq!(
            serial, parallel,
            "mega{gates}: threaded sweep must be bit-identical to serial"
        );
        let t_serial = secs_per_iter(window_ms, || {
            sim.eval_into(std::hint::black_box(&inputs64), &mut serial);
        });
        let t_par = secs_per_iter(window_ms, || {
            sim.eval_into_threads(
                std::hint::black_box(&inputs64),
                &mut parallel,
                scale_threads,
            );
        });
        let par_speedup = t_serial / t_par;
        scale_parallel_speedup = par_speedup; // largest size wins the gate
        let values_bytes = serial.len() * std::mem::size_of::<u64>();
        // Row-budgeted streamed oracle: bounded memory and wall-clock by
        // construction, partial coverage reported instead of an 8 GB
        // surprise.
        let control = RunControl::with_budget(
            RunBudget::unlimited()
                .with_quota(scale_row_quota)
                .with_timeout(Duration::from_secs(30)),
        );
        let t0 = Instant::now();
        let oracle_outcome = SeparationOracle::new_streamed_with_control(&nl, scale_rho, &control);
        let t_oracle = t0.elapsed().as_secs_f64();
        let oracle_complete = oracle_outcome.is_complete();
        let oracle_coverage = oracle_outcome.coverage();
        let oracle = oracle_outcome.into_value();
        println!(
            "mega{gates:>8}: gen {t_gen:6.2} s | csr build {t_build:6.2} s | sweep \
             {:8.1} ms (budget {sweep_budget_secs:.0} s) | x{scale_threads} threads \
             {:8.1} ms ({par_speedup:4.2}x) on {cores} core(s) | netlist {:7.1} MB, \
             csr {:6.1} MB, values {:5.1} MB | oracle rho={scale_rho}: {:.0}% of rows, \
             {} entries, {:5.1} MB in {t_oracle:5.2} s",
            t_serial * 1e3,
            t_par * 1e3,
            nl.memory_bytes() as f64 / 1e6,
            sim.memory_bytes() as f64 / 1e6,
            values_bytes as f64 / 1e6,
            oracle_coverage * 100.0,
            oracle.entry_count(),
            oracle.memory_bytes() as f64 / 1e6,
        );
        let oracle_entry = serde_json::json!({
            "rho": scale_rho,
            "row_quota": scale_row_quota,
            "complete": oracle_complete,
            "coverage": oracle_coverage,
            "entries": oracle.entry_count(),
            "memory_bytes": oracle.memory_bytes(),
            "build_secs": t_oracle,
        });
        scale_entries.insert(
            format!("mega{gates}"),
            serde_json::json!({
                "gates": gates,
                "inputs": inputs,
                "depth": mega_cfg.depth,
                "nodes": nl.node_count(),
                "generate_secs": t_gen,
                "csr_build_secs": t_build,
                "sweep_secs": t_serial,
                "sweep_once_secs": sweep_once,
                "sweep_within_budget": sweep_once <= sweep_budget_secs,
                "parallel_secs": t_par,
                "parallel_speedup_vs_serial": par_speedup,
                "parallel_bit_identical": true,
                "netlist_bytes": nl.memory_bytes(),
                "csr_bytes": sim.memory_bytes(),
                "packed_values_bytes": values_bytes,
                "oracle": oracle_entry,
            }),
        );
    }

    // Incremental ΔW separation maintenance: the c7552 probe. One
    // representative resynthesis probe (chain-decomposing the widest
    // gate) applied and rolled back on a persistent GateSep-tier
    // ResynthEval — incremental ΔW (`ResynthEval::new`) against the
    // retained full ball-refresh reference (`new_full_refresh`), scored
    // costs asserted bit-identical, wall-clock gated >= 2x in both
    // modes (a work ratio, like the delta/fault-patch gates).
    println!("== incremental dW separation maintenance ==");
    let dw_nl = &netlists[HEADLINE];
    let dw_ctx = EvalContext::builder(dw_nl, &ctx_lib, ctx_cfg.clone())
        .tier(AnalysisTier::GateSep)
        .build();
    let widest = dw_nl
        .gate_ids()
        .max_by_key(|&g| dw_nl.node(g).fanin().len())
        .expect("c7552 has gates");
    #[allow(clippy::cast_possible_truncation)]
    let probe = iddq_synth::decompose_gate_patch(
        dw_nl,
        widest,
        iddq_synth::DecompositionStyle::Chain,
        2,
        dw_nl.node_count() as u32,
    )
    .expect("max_fanin 2 is valid")
    .expect("the widest c7552 gate is wider than 2 inputs");
    let mut dw_inc = ResynthEval::new(&dw_ctx);
    let mut dw_full = ResynthEval::new_full_refresh(&dw_ctx);
    dw_inc.apply(&probe).expect("probe patch applies");
    dw_full.apply(&probe).expect("probe patch applies");
    let (c_inc, c_full) = (dw_inc.total_cost(), dw_full.total_cost());
    assert_eq!(
        c_inc.to_bits(),
        c_full.to_bits(),
        "incremental-dW and full-refresh scoring must be bit-identical"
    );
    dw_inc.rollback();
    dw_full.rollback();
    let [t_dw_inc, t_dw_full] = secs_per_iter_interleaved(
        window_ms,
        &mut [
            &mut || {
                dw_inc.apply(&probe).expect("probe patch applies");
                dw_inc.rollback();
            },
            &mut || {
                dw_full.apply(&probe).expect("probe patch applies");
                dw_full.rollback();
            },
        ],
    );
    let dw_speedup = t_dw_full / t_dw_inc;
    let dw_threshold = 2.0;
    println!(
        "{HEADLINE:>8}: probe refresh (apply+rollback): dW {:8.3} ms | full separation pass \
         {:8.3} ms ({dw_speedup:5.2}x), costs bit-identical",
        t_dw_inc * 1e3,
        t_dw_full * 1e3,
    );
    let dw_probe = serde_json::json!({
        "circuit": HEADLINE,
        "incremental_secs": t_dw_inc,
        "full_refresh_secs": t_dw_full,
        "speedup_vs_full_refresh": dw_speedup,
        "costs_match_bitwise": true,
        "acceptance_threshold": dw_threshold,
        "pass": dw_speedup >= dw_threshold,
    });
    // Sequential circuits: the multi-frame fault sweep on ISCAS-89-like
    // s* profiles. Every grid configuration (worker threads, fault
    // shards, the delta-patch backend) is asserted to produce the same
    // per-fault earliest detection as the serial CSR sweep — the frame
    // loop must not perturb the bit-identity contract the combinational
    // sweep has always carried. The pass gate is correctness, not
    // wall-clock: some fault must be first detected mid-sequence (a
    // detection the frames=1 reading of the same vectors cannot express),
    // proving the state actually propagates across frame boundaries.
    println!("== sequential circuits: multi-frame fault sweep ==");
    let seq_frames: usize = 3;
    let seq_names: &[&str] = if opts.smoke {
        &["s298"]
    } else {
        &["s298", "s1423"]
    };
    let seq_num_vectors = if opts.smoke { 240 } else { 1200 };
    let mut seq_entries: BTreeMap<String, serde_json::Value> = BTreeMap::new();
    let mut seq_pass = true;
    for name in seq_names {
        let profile = iddq_gen::seq::SeqProfile::by_name(name).expect("known s* profile");
        let nl = iddq_gen::seq::generate(profile, 7);
        let seq_faults = iddq_serve::fault_universe(&nl, 32, 7);
        let seq_vectors = iddq_serve::random_vectors(&nl, seq_num_vectors, 7);
        let base_opts = FaultSweepOptions {
            threads: 1,
            frames: seq_frames,
            ..FaultSweepOptions::default()
        };
        let base = fault_sweep::sweep::<W256>(&nl, &seq_faults, &seq_vectors, &base_opts);
        for (label, grid) in [
            (
                "threads",
                FaultSweepOptions {
                    threads: scale_threads,
                    frames: seq_frames,
                    ..FaultSweepOptions::default()
                },
            ),
            (
                "shards",
                FaultSweepOptions {
                    threads: 1,
                    fault_shards: 3,
                    frames: seq_frames,
                    ..FaultSweepOptions::default()
                },
            ),
            (
                "delta",
                FaultSweepOptions {
                    threads: 1,
                    backend: BackendKind::Delta,
                    frames: seq_frames,
                    ..FaultSweepOptions::default()
                },
            ),
        ] {
            let alt = fault_sweep::sweep::<W256>(&nl, &seq_faults, &seq_vectors, &grid);
            assert_eq!(
                base.first_detection, alt.first_detection,
                "{name}: the {label} grid must detect bit-identically to the serial sweep"
            );
        }
        // The combinational lens: the same vector set read frames=1. Any
        // fault the multi-frame sweep first detects mid-sequence owes
        // that detection to latched state.
        let comb_opts = FaultSweepOptions {
            threads: 1,
            frames: 1,
            ..FaultSweepOptions::default()
        };
        let comb = fault_sweep::sweep::<W256>(&nl, &seq_faults, &seq_vectors, &comb_opts);
        let mid_sequence = base
            .first_detection
            .iter()
            .flatten()
            .filter(|&&v| v % seq_frames > 0)
            .count();
        let detected = base.detected.iter().filter(|&&d| d).count();
        let t_sweep = secs_per_iter(window_ms, || {
            std::hint::black_box(fault_sweep::sweep::<W256>(
                &nl,
                &seq_faults,
                &seq_vectors,
                &base_opts,
            ));
        });
        let seq_vps = seq_num_vectors as f64 / t_sweep;
        let ok = detected > 0 && mid_sequence > 0;
        seq_pass &= ok;
        println!(
            "{name:>8}: {} dffs, {} faults x {seq_num_vectors} vectors @ {seq_frames} frames: \
             {detected} detected ({:.1}%), {mid_sequence} first-detected mid-sequence | \
             frames=1 lens {:.1}% | {seq_vps:10.3e} vec/s | grids bit-identical",
            nl.num_state_elements(),
            seq_faults.len(),
            base.coverage * 100.0,
            comb.coverage * 100.0,
        );
        seq_entries.insert(
            (*name).to_string(),
            serde_json::json!({
                "gates": nl.gate_count(),
                "dffs": nl.num_state_elements(),
                "faults": seq_faults.len(),
                "vectors": seq_num_vectors,
                "frames": seq_frames,
                "detected": detected,
                "coverage": base.coverage,
                "frames1_coverage": comb.coverage,
                "mid_sequence_first_detections": mid_sequence,
                "vectors_per_sec": seq_vps,
                "grid_bit_identical": true,
                "pass": ok,
            }),
        );
    }
    let seq = serde_json::json!({
        "circuits": seq_entries,
        "frames": seq_frames,
        "acceptance": "all grids bit-identical; >= 1 fault first detected mid-sequence",
        "pass": seq_pass,
    });

    // `iddq serve` under concurrent clients: an in-process server with a
    // deliberately small queue and a tiny artifact cache takes a mixed
    // workload from several client threads. Sustained qps and p50/p99
    // round-trip latency are measured over the nominal phase; then a
    // pipelined sleep burst overruns the queue to exercise admission
    // shed, and a Separation-tier stats request against the tiny cache
    // exercises graceful degradation. The gates are correctness counts,
    // not wall-clock (a 1-core shared runner makes latency gates flaky):
    // every request gets exactly one response, shed >= 1, degraded >= 1.
    println!("== serve: hardened service under concurrent clients ==");
    let serve_state = std::env::temp_dir().join(format!("iddq-serve-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&serve_state);
    let serve_server = ServeServer::start(ServeConfig {
        workers: 2,
        queue_capacity: 4,
        cache_bytes: 4096,
        state_dir: serve_state.clone(),
        ..ServeConfig::default()
    })
    .expect("serve bench server starts");
    let serve_addr = serve_server.local_addr().to_string();
    let serve_clients: u64 = 4;
    let serve_reqs_per_client: u64 = if opts.smoke { 12 } else { 48 };
    let mut serve_errors: Vec<String> = Vec::new();
    let t0 = Instant::now();
    let mut serve_handles = Vec::new();
    for c in 0..serve_clients {
        let addr = serve_addr.clone();
        let per = serve_reqs_per_client;
        serve_handles.push(std::thread::spawn(move || -> Result<Vec<f64>, String> {
            let mut client = ServeClient::connect(&addr).map_err(|e| e.to_string())?;
            client
                .set_read_timeout(Some(Duration::from_secs(120)))
                .map_err(|e| e.to_string())?;
            let mut latencies = Vec::with_capacity(per as usize);
            for k in 0..per {
                let id = c * 10_000 + k;
                let req = match k % 4 {
                    0 => serde_json::json!({"id": id, "op": "ping"}),
                    1 => serde_json::json!({
                        "id": id, "op": "sim", "circuit": "c432", "patterns": 256,
                    }),
                    2 => serde_json::json!({
                        "id": id, "op": "stats", "circuit": "c432", "tier": "separation",
                    }),
                    _ => serde_json::json!({
                        "id": id, "op": "faults", "circuit": "c432", "vectors": 16,
                    }),
                };
                let start = Instant::now();
                let resp = client.call(&req).map_err(|e| e.to_string())?;
                latencies.push(start.elapsed().as_secs_f64());
                if resp["id"].as_u64() != Some(id) {
                    return Err(format!("response id mismatch: {resp:?}"));
                }
                let status = resp["status"].as_str().unwrap_or("");
                // Synchronous clients never overrun the queue, so the
                // nominal phase must not be shed or rejected.
                if !matches!(status, "ok" | "partial") {
                    return Err(format!("unexpected status under nominal load: {resp:?}"));
                }
            }
            Ok(latencies)
        }));
    }
    let mut serve_latencies: Vec<f64> = Vec::new();
    for h in serve_handles {
        match h.join().expect("serve client thread") {
            Ok(mut l) => serve_latencies.append(&mut l),
            Err(e) => serve_errors.push(e),
        }
    }
    let serve_wall = t0.elapsed().as_secs_f64().max(1e-9);
    let serve_qps = serve_latencies.len() as f64 / serve_wall;
    serve_latencies.sort_by(f64::total_cmp);
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    let serve_pct = |q: f64| -> f64 {
        if serve_latencies.is_empty() {
            return 0.0;
        }
        let idx = ((serve_latencies.len() - 1) as f64 * q).round() as usize;
        serve_latencies[idx]
    };
    let (serve_p50, serve_p99) = (serve_pct(0.50), serve_pct(0.99));
    // Overload burst: one client pipelines more slow jobs than workers +
    // queue can hold; the overflow must come back as typed `overloaded`
    // responses (with a retry hint), never as dropped lines.
    let serve_burst: u64 = 12;
    let mut serve_burst_ok = 0u64;
    let mut serve_burst_shed = 0u64;
    let mut serve_burst_lost = 0u64;
    {
        let mut client = ServeClient::connect(&serve_addr).expect("burst client connects");
        client
            .set_read_timeout(Some(Duration::from_secs(60)))
            .expect("burst read timeout");
        for i in 0..serve_burst {
            client
                .send_value(&serde_json::json!({
                    "id": i, "op": "sleep", "sleep_ms": 40,
                }))
                .expect("burst send");
        }
        for _ in 0..serve_burst {
            match client.recv() {
                Ok(Some(resp)) => match resp["status"].as_str().unwrap_or("") {
                    "ok" => serve_burst_ok += 1,
                    "overloaded" => {
                        serve_burst_shed += 1;
                        if resp["retry_after_ms"].as_u64().is_none() {
                            serve_errors
                                .push(format!("overloaded without retry_after_ms: {resp:?}"));
                        }
                    }
                    other => serve_errors.push(format!("burst status {other}: {resp:?}")),
                },
                _ => serve_burst_lost += 1,
            }
        }
    }
    let serve_metrics = serve_server.shutdown(Duration::from_secs(10));
    let _ = std::fs::remove_dir_all(&serve_state);
    let serve_shed = serve_metrics["shed"].as_u64().unwrap_or(0);
    let serve_degraded = serve_metrics["degraded"].as_u64().unwrap_or(0);
    let serve_nominal = serve_clients * serve_reqs_per_client;
    if serve_latencies.len() as u64 != serve_nominal {
        serve_errors.push(format!(
            "nominal phase answered {} of {serve_nominal} requests",
            serve_latencies.len()
        ));
    }
    if serve_burst_lost > 0 {
        serve_errors.push(format!("burst lost {serve_burst_lost} responses"));
    }
    if serve_shed == 0 {
        serve_errors.push("admission control never shed under the burst".to_owned());
    }
    if serve_degraded == 0 {
        serve_errors.push("stats never degraded against the tiny cache".to_owned());
    }
    // Warm start: a populated --store-dir lets a restarted (killed, not
    // drained) server answer its first request for a cached circuit from
    // deserialized artifacts instead of recompiling. Gate: warm
    // time-to-first-response beats cold.
    let serve_store =
        std::env::temp_dir().join(format!("iddq-serve-bench-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&serve_store);
    let warm_circuit = "c7552";
    let warm_request = serde_json::json!({
        "id": 1, "op": "stats", "circuit": warm_circuit, "tier": "gatesep",
    });
    let store_config = ServeConfig {
        state_dir: serve_state.clone(),
        store_dir: Some(serve_store.clone()),
        ..ServeConfig::default()
    };
    let cold_server = ServeServer::start(store_config.clone()).expect("cold store server");
    let mut store_client =
        ServeClient::connect(&cold_server.local_addr().to_string()).expect("cold store client");
    store_client
        .set_read_timeout(Some(Duration::from_secs(120)))
        .expect("cold read timeout");
    let t_cold0 = Instant::now();
    let cold_resp = store_client.call(&warm_request).expect("cold stats");
    let t_serve_cold = t_cold0.elapsed().as_secs_f64();
    if cold_resp["status"] != "ok" || cold_resp["result"]["store_hit"] != false {
        serve_errors.push(format!("unexpected cold store response: {cold_resp:?}"));
    }
    // Abrupt kill: store entries must already be durable without a flush.
    let _ = cold_server.kill();
    let warm_server = ServeServer::start(store_config).expect("warm store server");
    let mut store_client =
        ServeClient::connect(&warm_server.local_addr().to_string()).expect("warm store client");
    store_client
        .set_read_timeout(Some(Duration::from_secs(120)))
        .expect("warm read timeout");
    let t_warm0 = Instant::now();
    let warm_resp = store_client.call(&warm_request).expect("warm stats");
    let t_serve_warm = t_warm0.elapsed().as_secs_f64();
    if warm_resp["status"] != "ok" || warm_resp["result"]["store_hit"] != true {
        serve_errors.push(format!("warm start missed the store: {warm_resp:?}"));
    }
    if t_serve_warm >= t_serve_cold {
        serve_errors.push(format!(
            "warm start ({:.1} ms) not faster than cold compile ({:.1} ms)",
            t_serve_warm * 1e3,
            t_serve_cold * 1e3
        ));
    }
    let _ = warm_server.shutdown(Duration::from_secs(10));
    let _ = std::fs::remove_dir_all(&serve_store);
    let _ = std::fs::remove_dir_all(&serve_state);
    println!(
        "   serve warm start ({warm_circuit}, gatesep): cold {:.1} ms -> warm {:.1} ms \
         ({:.1}x) via --store-dir",
        t_serve_cold * 1e3,
        t_serve_warm * 1e3,
        t_serve_cold / t_serve_warm.max(1e-9),
    );
    let serve_pass = serve_errors.is_empty();
    println!(
        "   serve: {serve_clients} clients x {serve_reqs_per_client} reqs: {serve_qps:7.1} req/s \
         sustained | p50 {:6.2} ms, p99 {:6.2} ms | burst {serve_burst}: {serve_burst_ok} ok, \
         {serve_burst_shed} shed, {serve_burst_lost} lost | shed {serve_shed}, degraded \
         {serve_degraded} | pass: {serve_pass}",
        serve_p50 * 1e3,
        serve_p99 * 1e3,
    );
    let serve = serde_json::json!({
        "clients": serve_clients,
        "requests_per_client": serve_reqs_per_client,
        "nominal_requests": serve_nominal,
        "nominal_responses": serve_latencies.len(),
        "sustained_qps": serve_qps,
        "p50_latency_ms": serve_p50 * 1e3,
        "p99_latency_ms": serve_p99 * 1e3,
        "burst_requests": serve_burst,
        "burst_ok": serve_burst_ok,
        "burst_overloaded": serve_burst_shed,
        "burst_lost": serve_burst_lost,
        "metrics": serve_metrics,
        "warm_start": serde_json::json!({
            "circuit": warm_circuit,
            "tier": "gatesep",
            "cold_first_response_ms": t_serve_cold * 1e3,
            "warm_first_response_ms": t_serve_warm * 1e3,
            "speedup": t_serve_cold / t_serve_warm.max(1e-9),
            "acceptance": "warm < cold (restart served from --store-dir, no recompile)",
            "pass": t_serve_warm < t_serve_cold,
        }),
        "acceptance": "every request answered exactly once; shed >= 1; degraded >= 1; warm start beats cold",
        "errors": serve_errors.clone(),
        "pass": serve_pass,
    });

    let scale = serde_json::json!({
        "mega": scale_entries,
        "sweep_budget_secs": sweep_budget_secs,
        "sweep_within_budget": scale_budget_ok,
        "parallel_threads": scale_threads,
        "parallel_speedup_vs_serial": scale_parallel_speedup,
        "parallel_gate": if cores >= 4 { "ARMED" } else { "SKIPPED" },
        "parallel_gate_cores": cores,
        "dw_probe": dw_probe,
    });

    let headline = serde_json::json!({
        "circuit": HEADLINE,
        "csr256_speedup_vs_seed": headline_speedup,
        "acceptance_threshold": 3.0,
        "pass": headline_speedup >= 3.0,
    });
    let delta_threshold = if opts.smoke { 3.0 } else { 5.0 };
    let delta_headline = serde_json::json!({
        "circuit": HEADLINE,
        "speedup_vs_full_reeval": delta_headline_speedup,
        "acceptance_threshold": delta_threshold,
        "pass": delta_headline_speedup >= delta_threshold,
    });
    let delta = serde_json::json!({
        "circuits": delta_entries,
        "headline": delta_headline,
    });
    let evolution_entry = serde_json::json!({
        "circuit": evo_circuit,
        "generations": evo_cfg.generations,
        "evaluations": evals,
        "incremental_secs": t_inc,
        "rebuild_per_eval_secs": t_rebuild,
        "rebuild_cost_matches_bitwise": true,
        "speedup_vs_rebuild": evo_rebuild_speedup,
        "acceptance_threshold": evo_threshold,
        "pass": evo_rebuild_speedup >= evo_threshold,
        // Legacy arm, kept for history: the batch flag only toggles the
        // per-settle arrival update, which both search arms amortize
        // away — ~1x is convergence, not a regression.
        "legacy_batch_secs": t_batch,
        "legacy_batch_speedup": t_batch / t_inc,
    });
    let fault_sweep_speedup = par_vps / seq_vps;
    let fault_sweep = serde_json::json!({
        "circuit": sweep_circuit,
        "faults": faults.len(),
        "vectors": num_vectors,
        "cores": cores,
        "threads": threads,
        "seq_vectors_per_sec": seq_vps,
        "par_vectors_per_sec": par_vps,
        "parallel_speedup": fault_sweep_speedup,
        "parallel_gate": if cores >= 4 { "ARMED" } else { "SKIPPED" },
        "parallel_gate_cores": cores,
    });
    let payload = serde_json::json!({
        "mode": mode,
        "headline": headline,
        "circuits": circuits,
        "delta": delta,
        "evolution": evolution_entry,
        "fault_sweep": fault_sweep,
        "fault_patch": fault_patch,
        "context_build": context_build,
        "resynth_patch": resynth_patch,
        "scale": scale,
        "seq": seq,
        "serve": serve,
    });
    // Atomic temp-file + rename: a crash mid-write can never leave a
    // truncated BENCH_sim.json behind for downstream tooling to choke on.
    iddq_control::write_atomic(
        std::path::Path::new(&opts.out),
        &serde_json::to_string_pretty(&payload).expect("serializable"),
    )
    .expect("writable output path");
    println!("wrote {}", opts.out);
    let mut failed = false;
    if headline_speedup < 3.0 {
        eprintln!(
            "WARNING: {HEADLINE} csr256 speedup {headline_speedup:.2}x is below the 3x target"
        );
        // Only full mode gates on this ratio: smoke's short windows are
        // too noisy to fail CI over on a loaded runner.
        failed |= !opts.smoke;
    }
    if delta_headline_speedup < delta_threshold {
        eprintln!(
            "ERROR: {HEADLINE} delta single-gate-mutation speedup {delta_headline_speedup:.2}x \
             is below the {delta_threshold}x gate"
        );
        // The dirty-cone/full-sweep ratio is a work ratio, far less
        // noise-sensitive than absolute rates: smoke gates on it too.
        failed = true;
    }
    if fault_patch_speedup < fault_patch_threshold {
        eprintln!(
            "ERROR: {HEADLINE} fault-patch speedup {fault_patch_speedup:.2}x is below the \
             {fault_patch_threshold}x gate vs per-fault full re-simulation"
        );
        // Like the delta gate, this is a work ratio: smoke gates on it too
        // (at the lower 3x threshold).
        failed = true;
    }
    if resynth_speedup < resynth_threshold {
        eprintln!(
            "ERROR: {rs_name} resynthesis patch-scoring speedup {resynth_speedup:.2}x is below \
             the {resynth_threshold}x gate vs rebuild scoring"
        );
        // A work ratio like the delta/fault-patch gates: smoke gates too
        // (at the lower 2x threshold).
        failed = true;
    }
    if resynth_pr4_speedup < resynth_pr4_threshold {
        eprintln!(
            "ERROR: {rs_name} resynthesis patch-scoring speedup {resynth_pr4_speedup:.2}x vs the \
             PR 4 rebuild path is below the {resynth_pr4_threshold}x gate (PR 4 recorded 3.8x on \
             this baseline; the lighter context must at least double it)"
        );
        failed = true;
    }
    {
        let ctx_name = if opts.smoke { "c1908" } else { HEADLINE };
        if ctx_headline_speedup < ctx_build_threshold {
            eprintln!(
                "ERROR: {ctx_name} full-tier context build speedup {ctx_headline_speedup:.2}x vs \
                 the PR 4 constructor is below the {ctx_build_threshold}x gate"
            );
            failed = true;
        }
        // The parallel-build gate mirrors the fault-sweep one: announced
        // as ARMED/SKIPPED so a 1-core container says why nothing fires.
        if cores >= 4 {
            println!(
                "context-build parallel gate ARMED ({cores} cores >= 4): measured \
                 {ctx_parallel_speedup:.2}x at {ctx_threads} threads against the 1.5x gate"
            );
            if ctx_parallel_speedup < 1.5 {
                let severity = if opts.smoke { "WARNING" } else { "ERROR" };
                eprintln!(
                    "{severity}: {ctx_name} parallel context build speedup \
                     {ctx_parallel_speedup:.2}x at {ctx_threads} threads is below the 1.5x gate"
                );
                failed |= !opts.smoke;
            }
        } else {
            println!(
                "context-build parallel gate SKIPPED: {cores} core(s) available, gate arms at \
                 >= 4 cores; measured {ctx_parallel_speedup:.2}x at {ctx_threads} threads is \
                 recorded in BENCH_sim.json, not gated"
            );
        }
    }
    if evo_rebuild_speedup < evo_threshold {
        eprintln!(
            "ERROR: {evo_circuit} evolution incremental-vs-rebuild speedup \
             {evo_rebuild_speedup:.2}x is below the {evo_threshold}x gate (rebuild arm = fresh \
             Evaluated per evaluation, bit-exact against the search's best cost)"
        );
        // A work ratio like the delta/fault-patch gates: smoke gates too.
        failed = true;
    }
    if dw_speedup < dw_threshold {
        eprintln!(
            "ERROR: {HEADLINE} incremental-dW probe-refresh speedup {dw_speedup:.2}x is below \
             the {dw_threshold}x gate vs the full separation pass"
        );
        // Also a work ratio between two deterministic refresh paths.
        failed = true;
    }
    if !scale_budget_ok {
        eprintln!("ERROR: a mega-circuit end-to-end sweep exceeded its wall-clock budget");
        failed = true;
    }
    if !serve_pass {
        // Correctness counts, not wall-clock: these gate in smoke too.
        for e in &serve_errors {
            eprintln!("ERROR: serve section: {e}");
        }
        failed = true;
    }
    if !seq_pass {
        // Correctness, not wall-clock: the multi-frame sweep must detect
        // something only latched state can explain. Gates in smoke too.
        eprintln!(
            "ERROR: seq section: no mid-sequence first detection — the frame loop is not \
             propagating state across frame boundaries"
        );
        failed = true;
    }
    // Structural-parallel sweep gate: same ARMED/SKIPPED discipline as
    // the fault-sweep and context-build gates.
    if cores >= 4 {
        println!(
            "structural-parallel sweep gate ARMED ({cores} cores >= 4): measured \
             {scale_parallel_speedup:.2}x at {scale_threads} threads against the 1.5x gate"
        );
        if scale_parallel_speedup < 1.5 {
            let severity = if opts.smoke { "WARNING" } else { "ERROR" };
            eprintln!(
                "{severity}: structural-parallel mega-circuit sweep speedup \
                 {scale_parallel_speedup:.2}x at {scale_threads} threads is below the 1.5x gate"
            );
            failed |= !opts.smoke;
        }
    } else {
        println!(
            "structural-parallel sweep gate SKIPPED: {cores} core(s) available, gate arms at \
             >= 4 cores; measured {scale_parallel_speedup:.2}x at {scale_threads} threads is \
             recorded in BENCH_sim.json, not gated (bit-identity asserted regardless)"
        );
    }
    // The parallel gate's armed/skipped state is always announced — a
    // 1-core container must say *why* nothing is gated instead of
    // silently arming at >= 4 cores.
    if cores >= 4 {
        println!(
            "fault-sweep parallel gate ARMED ({cores} cores >= 4): measured \
             {fault_sweep_speedup:.2}x at {threads} threads against the 1.5x gate"
        );
        if fault_sweep_speedup < 1.5 {
            // Parallel scaling is only meaningful with real cores; gate in
            // full mode where the windows are long enough to trust.
            let severity = if opts.smoke { "WARNING" } else { "ERROR" };
            eprintln!(
                "{severity}: fault-sweep parallel speedup {fault_sweep_speedup:.2}x at {threads} \
                 threads is below the 1.5x gate ({cores} cores available)"
            );
            failed |= !opts.smoke;
        }
    } else {
        println!(
            "fault-sweep parallel gate SKIPPED: {cores} core(s) available, gate arms at >= 4 \
             cores; measured {fault_sweep_speedup:.2}x at {threads} threads is recorded in \
             BENCH_sim.json, not gated"
        );
    }
    if failed {
        std::process::exit(1);
    }
}
