//! Regenerates the paper's **Figure 2**: the influence of partition
//! *shape* on BIC sensor area.
//!
//! The CUT is a two-dimensional cell array with three cell types whose
//! columns switch simultaneously (same logic depth) while rows switch at
//! staggered times. Partition 1 groups *rows* — "the three cells C1, C2,
//! C3 will not switch in parallel" — so each group's maximum transient
//! current is low; Partition 2 groups *columns*, whose cells all switch at
//! once, so "the switching devices have to be greater to guarantee the
//! same limits of the virtual rail perturbation, and partition 1 should be
//! preferred".
//!
//! Usage: `fig2_shape [--rows N] [--cols N]` (default 6×6: a square
//! array, so both shapes yield the same number of equal-size groups and
//! the comparison isolates shape alone).

use iddq_bench::{experiment_config, experiment_library};
use iddq_core::{EvalContext, Evaluated, Partition};
use iddq_gen::array;

fn main() {
    let mut rows = 6usize;
    let mut cols = 6usize;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--rows" => rows = it.next().and_then(|s| s.parse().ok()).expect("--rows N"),
            "--cols" => cols = it.next().and_then(|s| s.parse().ok()).expect("--cols N"),
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }

    let nl = array::cell_array(rows, cols);
    let lib = experiment_library();
    let cfg = experiment_config();
    let ctx = EvalContext::new(&nl, &lib, cfg);

    let partitions = [
        (
            "Partition 1 (rows: staggered switching)",
            array::row_partition(&nl, rows, cols),
        ),
        (
            "Partition 2 (columns: simultaneous switching)",
            array::col_partition(&nl, rows, cols),
        ),
    ];

    println!("== Figure 2: group shape vs BIC sensor area ({rows}x{cols} array) ==");
    let mut areas = Vec::new();
    for (label, groups) in partitions {
        let p = Partition::from_groups(&nl, groups).expect("array partitions are valid");
        let e = Evaluated::new(&ctx, p);
        let cost = e.cost();
        let peak_max = e
            .stats()
            .iter()
            .map(|s| s.peak_current_ua)
            .fold(0.0f64, f64::max);
        let peak_mean =
            e.stats().iter().map(|s| s.peak_current_ua).sum::<f64>() / e.stats().len() as f64;
        println!("\n{label}");
        println!("  groups:                 {}", e.stats().len());
        println!("  mean group i_dd_max:    {peak_mean:.0} uA");
        println!("  worst group i_dd_max:   {peak_max:.0} uA");
        println!("  total BIC sensor area:  {:.3e}", cost.sensor_area);
        println!("  delay overhead c2:      {:.3e}", cost.c2_delay);
        areas.push(cost.sensor_area);
    }
    println!(
        "\ncolumn-shaped groups need {:.1}% more sensor area than row-shaped groups",
        (areas[1] / areas[0] - 1.0) * 100.0
    );
    assert!(
        areas[1] > areas[0],
        "paper's figure-2 ordering must hold: simultaneous groups cost more area"
    );
}
