//! Regenerates the paper's **§4.3 / Figures 3–5**: the evolution steps on
//! ISCAS-85 C17.
//!
//! The paper's worked example (gate labels g1..g6 = benchmark gates
//! 10, 11, 16, 19, 22, 23):
//!
//! ```text
//! Π¹ = {(1,5), (2,3), (4,6)}          (figure 4, start partition)
//! mutation: M_start = (4,6), move g4 → (2,3)
//! Π² = {(1,5), (2,3,4), (6)}
//! mutation: M_start = (2,3,4), move g3 → (6)
//! Π³ = {(1,5), (2,4), (3,6)}          (figure 5, left)
//! mutation: M_start = (3,6), g3 → (1,5), g6 → (2,4); (3,6) empties
//! Πf = {(1,3,5), (2,4,6)}             (figure 5, right — the optimum)
//! ```
//!
//! This binary replays the exact move sequence, prints the cost after
//! every step, exhaustively enumerates *all* 203 partitions of the six
//! gates to locate the true optimum under our cost model, and finally
//! checks that the free-running evolution strategy reaches it.

use iddq_bench::{experiment_config, experiment_library};
use iddq_core::evolution::{self, EvolutionConfig};
use iddq_core::{EvalContext, Evaluated, Partition};
use iddq_netlist::{data, NodeId};

fn cost_of(ctx: &EvalContext<'_>, groups: Vec<Vec<NodeId>>) -> (f64, bool) {
    let nl = ctx.netlist;
    let p = Partition::from_groups(nl, groups).expect("valid groups");
    let e = Evaluated::new(ctx, p);
    let c = e.cost();
    (e.total_cost(), c.feasible())
}

/// Enumerates all set partitions of `items` (Bell number sized — fine for
/// the 6 gates of C17).
fn all_partitions(items: &[NodeId]) -> Vec<Vec<Vec<NodeId>>> {
    fn rec(rest: &[NodeId], acc: &mut Vec<Vec<NodeId>>, out: &mut Vec<Vec<Vec<NodeId>>>) {
        match rest.split_first() {
            None => out.push(acc.clone()),
            Some((&first, tail)) => {
                for i in 0..acc.len() {
                    acc[i].push(first);
                    rec(tail, acc, out);
                    acc[i].pop();
                }
                acc.push(vec![first]);
                rec(tail, acc, out);
                acc.pop();
            }
        }
    }
    let mut out = Vec::new();
    rec(items, &mut Vec::new(), &mut out);
    out
}

fn main() {
    let nl = data::c17();
    let lib = experiment_library();
    let cfg = experiment_config();
    let ctx = EvalContext::new(&nl, &lib, cfg);
    let g = data::c17_paper_gates(&nl); // g[0] = paper's g1 = gate 10, …

    println!("== Figures 3-5: the paper's C17 mutation trace ==");
    let steps: Vec<(&str, Vec<Vec<NodeId>>)> = vec![
        (
            "P1 {(1,5)(2,3)(4,6)}",
            vec![vec![g[0], g[4]], vec![g[1], g[2]], vec![g[3], g[5]]],
        ),
        (
            "P2 {(1,5)(2,3,4)(6)}",
            vec![vec![g[0], g[4]], vec![g[1], g[2], g[3]], vec![g[5]]],
        ),
        (
            "P3 {(1,5)(2,4)(3,6)}",
            vec![vec![g[0], g[4]], vec![g[1], g[3]], vec![g[2], g[5]]],
        ),
        (
            "Pf {(1,3,5)(2,4,6)}",
            vec![vec![g[0], g[2], g[4]], vec![g[1], g[3], g[5]]],
        ),
    ];
    let mut costs = Vec::new();
    for (label, groups) in &steps {
        let (cost, feasible) = cost_of(&ctx, groups.clone());
        println!("{label:<24} cost = {cost:>10.1}   feasible = {feasible}");
        costs.push(cost);
    }
    assert!(
        costs.last().unwrap() < costs.first().unwrap(),
        "the trace must end cheaper than it started"
    );

    // Exhaustive optimum over all 203 set partitions of the six gates.
    let gates: Vec<NodeId> = g.to_vec();
    let mut best: Option<(f64, Vec<Vec<NodeId>>)> = None;
    let mut count = 0usize;
    for parts in all_partitions(&gates) {
        count += 1;
        let (cost, _) = cost_of(&ctx, parts.clone());
        if best.as_ref().map(|(c, _)| cost < *c).unwrap_or(true) {
            best = Some((cost, parts));
        }
    }
    let (best_cost, best_parts) = best.expect("non-empty enumeration");
    let fmt = |p: &Vec<Vec<NodeId>>| {
        let mut names: Vec<String> = p
            .iter()
            .map(|m| {
                let mut ns: Vec<&str> = m.iter().map(|x| nl.node_name(*x)).collect();
                ns.sort();
                format!("({})", ns.join(","))
            })
            .collect();
        names.sort();
        names.join(" ")
    };
    println!("\nenumerated {count} partitions of C17");
    println!(
        "global optimum: {} at cost {best_cost:.1}",
        fmt(&best_parts)
    );
    println!(
        "paper's  Pf:    {} at cost {:.1}",
        fmt(&steps[3].1),
        costs[3]
    );

    // Free-running evolution must reach the enumerated optimum.
    let out = evolution::optimize(
        &ctx,
        &EvolutionConfig {
            generations: 200,
            stagnation: 80,
            ..Default::default()
        },
        7,
    );
    println!(
        "\nevolution strategy reached cost {:.1} ({} evaluations)",
        out.best_cost, out.evaluations
    );
    assert!(
        out.best_cost <= best_cost + 1e-6,
        "ES must find the exhaustive optimum on C17"
    );
    println!("OK: evolution reaches the exhaustive optimum on C17");
}
