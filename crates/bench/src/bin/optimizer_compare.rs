//! Head-to-head of the §4 evolution strategy against the alternative
//! optimizers the paper lists ("force-driven, simulated annealing, Monte
//! Carlo, genetic, e.g."): simulated annealing and greedy local search,
//! all over the same incremental evaluator, neighbourhood and start
//! partitions.
//!
//! Usage: `optimizer_compare [--quick] [--seed N]`

use iddq_bench::{circuit_seed, experiment_config, experiment_library, table1_circuit};
use iddq_core::evolution::{self, EvolutionConfig};
use iddq_core::optimizers::{greedy_local_search, simulated_annealing, AnnealingConfig};
use iddq_core::{EvalContext, Evaluated};
use iddq_gen::iscas::IscasProfile;

fn main() {
    let mut quick = false;
    let mut seed = 42u64;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--seed" => seed = it.next().and_then(|s| s.parse().ok()).expect("--seed N"),
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }

    let lib = experiment_library();
    let cfg = experiment_config();
    let circuits = if quick {
        vec!["c432"]
    } else {
        vec!["c432", "c880", "c1908"]
    };
    let evo = EvolutionConfig {
        generations: if quick { 40 } else { 150 },
        stagnation: if quick { 20 } else { 50 },
        ..Default::default()
    };
    let sa = AnnealingConfig {
        moves_per_temperature: if quick { 30 } else { 120 },
        ..Default::default()
    };
    let greedy_restarts = if quick { 3 } else { 8 };

    println!(
        "{:<8} {:<22} {:>12} {:>10} {:>8} {:>10} {:>9}",
        "circuit", "optimizer", "cost", "evals", "K", "area", "time"
    );
    for name in circuits {
        let profile = IscasProfile::by_name(name).expect("known circuit");
        let nl = table1_circuit(profile);
        let ctx = EvalContext::new(&nl, &lib, cfg.clone());
        let s = seed ^ circuit_seed(name);

        let mut results: Vec<(
            String,
            f64,
            usize,
            iddq_core::Partition,
            std::time::Duration,
        )> = Vec::new();
        let t0 = std::time::Instant::now();
        let es = evolution::optimize(&ctx, &evo, s);
        results.push((
            "evolution strategy".into(),
            es.best_cost,
            es.evaluations,
            es.best,
            t0.elapsed(),
        ));

        let t0 = std::time::Instant::now();
        let an = simulated_annealing(&ctx, &sa, s);
        results.push((
            "simulated annealing".into(),
            an.best_cost,
            an.evaluations,
            an.best,
            t0.elapsed(),
        ));

        let t0 = std::time::Instant::now();
        let gr = greedy_local_search(&ctx, greedy_restarts, 200, s);
        results.push((
            "greedy local search".into(),
            gr.best_cost,
            gr.evaluations,
            gr.best,
            t0.elapsed(),
        ));

        for (label, cost, evals, part, time) in &results {
            let eval = Evaluated::new(&ctx, part.clone());
            let breakdown = eval.cost();
            println!(
                "{:<8} {:<22} {:>12.1} {:>10} {:>8} {:>10.3e} {:>8.2?}",
                name,
                label,
                cost,
                evals,
                part.module_count(),
                breakdown.sensor_area,
                time
            );
        }
        let best = results
            .iter()
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .expect("non-empty");
        println!("{:<8} -> best: {}\n", name, best.0);
    }
}
