//! Ablations beyond Table 1:
//!
//! 1. **IDDQ-aware resynthesis** (the conclusions' "next step"): original
//!    vs balanced-decomposed vs chain-decomposed vs fanout-buffered
//!    netlists, all partitioned with the same flow — does structuring the
//!    logic with the cost function in mind pay?
//! 2. **Sensing-device families** (§1's refs \[7\]–\[12\]): the same
//!    partition plan sized for diode-drop, proportional and
//!    current-mirror sensors.
//!
//! Usage: `synth_ablation [--circuit NAME] [--seed N]`

use iddq_bench::{
    circuit_seed, experiment_config, experiment_library, quick_evolution, table1_circuit,
};
use iddq_bic::device::SensingDevice;
use iddq_core::flow;
use iddq_gen::iscas::IscasProfile;
use iddq_netlist::Netlist;
use iddq_synth::{decompose, fanout_buffer, DecompositionStyle};

fn main() {
    let mut name = "c880".to_owned();
    let mut seed = 42u64;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--circuit" => name = it.next().expect("--circuit NAME"),
            "--seed" => seed = it.next().and_then(|s| s.parse().ok()).expect("--seed N"),
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }
    let profile = IscasProfile::by_name(&name).expect("known circuit");
    let nl = table1_circuit(profile);
    let lib = experiment_library();
    let cfg = experiment_config();
    let evo = quick_evolution();
    let s = seed ^ circuit_seed(&name);

    println!(
        "== resynthesis ablation on {} ({} gates) ==",
        name,
        nl.gate_count()
    );
    let variants: Vec<(&str, Netlist)> = vec![
        ("original", nl.clone()),
        (
            "balanced 2-input",
            decompose(&nl, DecompositionStyle::Balanced, 2).expect("fanin >= 2"),
        ),
        (
            "chain 2-input",
            decompose(&nl, DecompositionStyle::Chain, 2).expect("fanin >= 2"),
        ),
        (
            "fanout-buffered (4)",
            fanout_buffer(&nl, 4).expect("bound >= 2"),
        ),
    ];
    println!(
        "{:<22} {:>8} {:>6} {:>12} {:>12} {:>12} {:>10}",
        "variant", "gates", "K", "cost", "area", "delay c2", "feasible"
    );
    for (label, variant) in &variants {
        let r = flow::synthesize_with(variant, &lib, &cfg, &evo, s);
        println!(
            "{:<22} {:>8} {:>6} {:>12.1} {:>12.3e} {:>12.3e} {:>10}",
            label,
            variant.gate_count(),
            r.report.modules.len(),
            r.report.total_cost,
            r.report.cost.sensor_area,
            r.report.cost.c2_delay,
            r.report.feasible
        );
    }

    println!("\n== sensing-device families on {} ==", name);
    println!(
        "{:<16} {:>6} {:>12} {:>12} {:>14} {:>14}",
        "device", "K", "cost", "area", "per-vec (ns)", "feasible"
    );
    for device in SensingDevice::ALL {
        let mut dcfg = cfg.clone();
        dcfg.sizing = device.sizing_spec(cfg.sizing.r_star_mv);
        let r = flow::synthesize_with(&nl, &lib, &dcfg, &evo, s);
        println!(
            "{:<16} {:>6} {:>12.1} {:>12.3e} {:>14.1} {:>14}",
            device.name(),
            r.report.modules.len(),
            r.report.total_cost,
            r.report.cost.sensor_area,
            r.report.cost.vector_time_ps / 1000.0,
            r.report.feasible
        );
    }
}
