//! Regenerates the paper's **Table 1**: evolution-based vs standard
//! partitioning over the ISCAS-85 suite.
//!
//! Rows, as in the paper: number of modules, BIC sensor area for both
//! methods, the sensor-area overhead of standard partitioning, and the
//! delay / test-application overheads (which barely differ between the
//! methods — the paper's point is that area is the discriminator).
//!
//! Usage:
//!
//! ```text
//! table1 [--quick] [--converge] [--ablate] [--json PATH] [--seed N]
//! ```
//!
//! * `--quick` — fewer generations (smoke run)
//! * `--converge` — also print the best-cost-per-generation series (X1)
//! * `--ablate` — also run χ = 0 (no Monte-Carlo descendants) and random
//!   (non-chain) starts, quantifying both design choices
//! * `--json PATH` — dump all reports as JSON for EXPERIMENTS.md tooling

use std::collections::BTreeMap;

use iddq_bench::{
    circuit_seed, experiment_config, experiment_library, full_evolution, quick_evolution,
    table1_circuit,
};
use iddq_core::evolution::EvolutionConfig;
use iddq_core::flow::{self, Comparison};
use iddq_gen::iscas::IscasProfile;

struct Args {
    quick: bool,
    converge: bool,
    ablate: bool,
    json: Option<String>,
    seed: u64,
}

fn parse_args() -> Args {
    let mut args = Args {
        quick: false,
        converge: false,
        ablate: false,
        json: None,
        seed: 42,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => args.quick = true,
            "--converge" => args.converge = true,
            "--ablate" => args.ablate = true,
            "--json" => args.json = it.next(),
            "--seed" => {
                args.seed = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--seed needs an integer");
            }
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }
    args
}

fn main() {
    let args = parse_args();
    let lib = experiment_library();
    let cfg = experiment_config();
    let evo = if args.quick {
        quick_evolution()
    } else {
        full_evolution()
    };

    let suite = IscasProfile::table1_suite();
    let mut comparisons: Vec<(String, Comparison)> = Vec::new();
    for profile in &suite {
        let nl = table1_circuit(profile);
        let t0 = std::time::Instant::now();
        let cmp = flow::compare_standard(
            &nl,
            &lib,
            &cfg,
            &evo,
            args.seed ^ circuit_seed(profile.name),
        );
        eprintln!(
            "[{}] {} gates, {} evaluations, {:.1?}",
            profile.name,
            nl.gate_count(),
            cmp.evolution.evaluations,
            t0.elapsed()
        );
        comparisons.push((profile.name.to_owned(), cmp));
    }

    print_table(&comparisons);

    if args.converge {
        println!("\n== Convergence (X1): best cost per generation ==");
        for (name, cmp) in &comparisons {
            let series: Vec<String> = cmp
                .evolution
                .log
                .iter()
                .step_by((cmp.evolution.log.len() / 12).max(1))
                .map(|g| format!("g{}:{:.0}", g.generation, g.best_cost))
                .collect();
            println!("{name:>8}: {}", series.join("  "));
        }
    }

    if args.ablate {
        run_ablations(&args, &evo);
    }

    if let Some(path) = &args.json {
        let mut out: BTreeMap<String, serde_json::Value> = BTreeMap::new();
        for (name, cmp) in &comparisons {
            out.insert(
                name.clone(),
                serde_json::json!({
                    "evolution": cmp.evolution.report,
                    "standard": cmp.standard,
                }),
            );
        }
        iddq_control::write_atomic(
            std::path::Path::new(path),
            &serde_json::to_string_pretty(&out).expect("serializable"),
        )
        .expect("writable json path");
        eprintln!("wrote {path}");
    }
}

fn print_table(comparisons: &[(String, Comparison)]) {
    let names: Vec<&str> = comparisons.iter().map(|(n, _)| n.as_str()).collect();
    println!("== Table 1: standard vs evolution-based partitioning ==");
    print!("{:<38}", "circuit");
    for n in &names {
        print!("{:>12}", n.to_uppercase());
    }
    println!();

    row(comparisons, "#modules", |c| {
        format!("{}", c.evolution.report.modules.len())
    });
    row(comparisons, "sensor area (evolution)", |c| {
        format!("{:.2e}", c.evolution.report.cost.sensor_area)
    });
    row(comparisons, "sensor area (standard)", |c| {
        format!("{:.2e}", c.standard.cost.sensor_area)
    });
    row(comparisons, "area overhead of standard", |c| {
        format!(
            "{:.1}%",
            (c.standard.cost.sensor_area / c.evolution.report.cost.sensor_area - 1.0) * 100.0
        )
    });
    row(comparisons, "delay overhead (evolution)", |c| {
        format!("{:.2e}", c.evolution.report.cost.c2_delay)
    });
    row(comparisons, "delay overhead (standard)", |c| {
        format!("{:.2e}", c.standard.cost.c2_delay)
    });
    row(comparisons, "test time overhead (evolution)", |c| {
        format!("{:.2e}", c.evolution.report.cost.c4_test_time)
    });
    row(comparisons, "test time overhead (standard)", |c| {
        format!("{:.2e}", c.standard.cost.c4_test_time)
    });
    row(comparisons, "feasible r(PI)", |c| {
        format!("{}/{}", c.evolution.report.feasible, c.standard.feasible)
    });
}

fn row(comparisons: &[(String, Comparison)], label: &str, f: impl Fn(&Comparison) -> String) {
    print!("{label:<38}");
    for (_, c) in comparisons {
        print!("{:>12}", f(c));
    }
    println!();
}

fn run_ablations(args: &Args, evo: &EvolutionConfig) {
    println!("\n== Ablations (design choices of DESIGN.md §7) ==");
    let lib = experiment_library();
    let cfg = experiment_config();
    // Representative mid-size circuit to keep ablation runtime sane.
    let profile = IscasProfile::by_name("c1908").expect("known");
    let nl = table1_circuit(profile);
    let seed = args.seed ^ circuit_seed(profile.name);

    let base = flow::synthesize_with(&nl, &lib, &cfg, evo, seed);
    println!(
        "baseline (chi={}, chains): cost {:.0}, area {:.2e}, K={}",
        evo.chi,
        base.report.total_cost,
        base.report.cost.sensor_area,
        base.report.modules.len()
    );

    let no_mc = EvolutionConfig {
        chi: 0,
        ..evo.clone()
    };
    let r = flow::synthesize_with(&nl, &lib, &cfg, &no_mc, seed);
    println!(
        "no Monte-Carlo (chi=0):    cost {:.0}, area {:.2e}, K={}",
        r.report.total_cost,
        r.report.cost.sensor_area,
        r.report.modules.len()
    );

    let lazy = EvolutionConfig {
        lambda: evo.lambda + evo.chi,
        chi: 0,
        ..evo.clone()
    };
    let r = flow::synthesize_with(&nl, &lib, &cfg, &lazy, seed);
    println!(
        "equal-budget mutation-only: cost {:.0}, area {:.2e}, K={}",
        r.report.total_cost,
        r.report.cost.sensor_area,
        r.report.modules.len()
    );
}
