//! Design-space exploration over the weight factors α₁…α₅.
//!
//! §2: "The parameters defined above allow establishing the global cost
//! function for optimization in the design space Speed-Area-Testability
//! according to different priorities reflected on the values of the
//! weight factors αᵢ." This binary re-runs the synthesis flow with each
//! weight scaled up and down and reports how the resulting design shifts
//! (module count, sensor area, delay overhead, test time) — the knob a
//! user of the flow actually turns.
//!
//! Usage: `weight_sweep [--circuit NAME] [--seed N]`

use iddq_bench::{
    circuit_seed, experiment_config, experiment_library, quick_evolution, table1_circuit,
};
use iddq_core::config::Weights;
use iddq_core::flow;
use iddq_gen::iscas::IscasProfile;

fn main() {
    let mut name = "c880".to_owned();
    let mut seed = 42u64;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--circuit" => name = it.next().expect("--circuit NAME"),
            "--seed" => seed = it.next().and_then(|s| s.parse().ok()).expect("--seed N"),
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }
    let profile = IscasProfile::by_name(&name).expect("known circuit");
    let nl = table1_circuit(profile);
    let lib = experiment_library();
    let base = experiment_config();
    let evo = quick_evolution();
    let s = seed ^ circuit_seed(&name);

    type Knob = (&'static str, fn(&mut Weights, f64));
    let knobs: [Knob; 5] = [
        ("area (a1)", |w, f| w.area *= f),
        ("delay (a2)", |w, f| w.delay *= f),
        ("wiring (a3)", |w, f| w.interconnect *= f),
        ("test time (a4)", |w, f| w.test_time *= f),
        ("modules (a5)", |w, f| w.module_count *= f),
    ];

    println!(
        "== weight sensitivity on {} ({} gates) ==",
        name,
        nl.gate_count()
    );
    println!(
        "(the x1e5 delay weight of §5.1 dominates by design; ±100x scales expose the trade-offs)"
    );
    println!(
        "{:<16} {:>8} {:>6} {:>12} {:>12} {:>14}",
        "weight", "scale", "K", "area", "delay c2", "per-vec (ns)"
    );
    // Baseline row.
    let r = flow::synthesize_with(&nl, &lib, &base, &evo, s);
    println!(
        "{:<16} {:>8} {:>6} {:>12.3e} {:>12.3e} {:>14.1}",
        "baseline",
        "1x",
        r.report.modules.len(),
        r.report.cost.sensor_area,
        r.report.cost.c2_delay,
        r.report.cost.vector_time_ps / 1000.0
    );
    for (label, apply) in knobs {
        for scale in [0.01, 100.0] {
            let mut cfg = base.clone();
            apply(&mut cfg.weights, scale);
            let r = flow::synthesize_with(&nl, &lib, &cfg, &evo, s);
            println!(
                "{:<16} {:>7}x {:>6} {:>12.3e} {:>12.3e} {:>14.1}",
                label,
                scale,
                r.report.modules.len(),
                r.report.cost.sensor_area,
                r.report.cost.c2_delay,
                r.report.cost.vector_time_ps / 1000.0
            );
        }
    }
}
