//! Shared experiment plumbing for the table/figure regeneration binaries
//! and the Criterion benches.
//!
//! Experiment index (see `DESIGN.md` §2 and `EXPERIMENTS.md` for
//! paper-vs-measured records):
//!
//! | id | binary | paper artefact |
//! |----|--------|----------------|
//! | T1 | `table1` | Table 1 — evolution vs standard partitioning on the ISCAS-85 suite |
//! | F2 | `fig2_shape` | Figure 2 — partition shape vs sensor area on a 2-D cell array |
//! | F3–F5 | `fig_c17_trace` | Figures 3–5 — the C17 mutation trace to the optimum |
//! | X1 | `table1 --converge` | §5 convergence claim |

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use iddq_celllib::Library;
use iddq_core::config::PartitionConfig;
use iddq_core::evolution::EvolutionConfig;
use iddq_gen::iscas::IscasProfile;
use iddq_netlist::Netlist;

/// Fixed per-circuit generation seed so every run of every binary sees the
/// same synthetic netlists.
#[must_use]
pub fn circuit_seed(name: &str) -> u64 {
    // Stable tiny hash (FNV-1a) of the circuit name.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Generates the Table-1 circuit for `profile` with the canonical seed.
#[must_use]
pub fn table1_circuit(profile: &IscasProfile) -> Netlist {
    iddq_gen::iscas::generate(profile, circuit_seed(profile.name))
}

/// The canonical experiment configuration (paper §5.1 weights and
/// constraints).
#[must_use]
pub fn experiment_config() -> PartitionConfig {
    PartitionConfig::paper_default()
}

/// The canonical cell library.
#[must_use]
pub fn experiment_library() -> Library {
    Library::generic_1um()
}

/// Optimizer parameters for the full Table-1 run.
#[must_use]
pub fn full_evolution() -> EvolutionConfig {
    EvolutionConfig {
        generations: 250,
        stagnation: 60,
        threads: 4,
        ..EvolutionConfig::default()
    }
}

/// Optimizer parameters for quick smoke runs (`--quick`).
#[must_use]
pub fn quick_evolution() -> EvolutionConfig {
    EvolutionConfig {
        generations: 60,
        stagnation: 25,
        ..EvolutionConfig::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn circuit_seed_is_stable_and_distinct() {
        assert_eq!(circuit_seed("c1908"), circuit_seed("c1908"));
        assert_ne!(circuit_seed("c1908"), circuit_seed("c2670"));
    }

    #[test]
    fn table1_circuits_match_profiles() {
        let p = IscasProfile::by_name("c432").unwrap();
        let nl = table1_circuit(p);
        assert_eq!(nl.gate_count(), p.gates);
    }
}
