//! Behavioural PASS/FAIL detection.
//!
//! The detection circuitry of Figure 1 compares the sensed quiescent
//! current against `I_DDQ,th` after the bypass turns off. Real comparators
//! have an uncertainty band; measurements inside it are reported as
//! [`Verdict::Marginal`] so callers can model retest policies.

use crate::sensor::BicSensor;

/// Outcome of one quiescent measurement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Measured current safely below threshold.
    Pass,
    /// Measured current safely above threshold — defect present.
    Fail,
    /// Within the comparator's uncertainty band.
    Marginal,
}

/// Evaluates a measurement of `i_measured_ua` against the sensor's
/// threshold, with a relative comparator uncertainty `band` (e.g. `0.05`
/// for ±5 %).
///
/// # Panics
///
/// Panics if `band` is negative or ≥ 1.
///
/// # Example
///
/// ```rust
/// use iddq_analog::settle::DecayModel;
/// use iddq_bic::{detect::{verdict, Verdict}, BicSensor};
///
/// let s = BicSensor { rs_ohm: 10.0, area: 1.0, rail_cap_ff: 100.0,
///                     threshold_ua: 1.0, decay: DecayModel::default() };
/// assert_eq!(verdict(&s, 0.1, 0.05), Verdict::Pass);
/// assert_eq!(verdict(&s, 50.0, 0.05), Verdict::Fail);
/// assert_eq!(verdict(&s, 1.0, 0.05), Verdict::Marginal);
/// ```
#[must_use]
pub fn verdict(sensor: &BicSensor, i_measured_ua: f64, band: f64) -> Verdict {
    assert!((0.0..1.0).contains(&band), "band must be in [0, 1)");
    let th = sensor.threshold_ua;
    if i_measured_ua < th * (1.0 - band) {
        Verdict::Pass
    } else if i_measured_ua > th * (1.0 + band) {
        Verdict::Fail
    } else {
        Verdict::Marginal
    }
}

/// Discriminability of a module under this sensor: `d = I_DDQ,th /
/// I_DDQ,nd` (paper §2). A feasible IDDQ test needs `d > 1`; the paper
/// uses `d ≥ 10` as the typical requirement.
///
/// # Panics
///
/// Panics if `fault_free_ua <= 0`.
#[must_use]
pub fn discriminability(sensor: &BicSensor, fault_free_ua: f64) -> f64 {
    assert!(fault_free_ua > 0.0, "fault-free current must be positive");
    sensor.threshold_ua / fault_free_ua
}

#[cfg(test)]
mod tests {
    use super::*;
    use iddq_analog::settle::DecayModel;

    fn sensor() -> BicSensor {
        BicSensor {
            rs_ohm: 10.0,
            area: 1.0,
            rail_cap_ff: 100.0,
            threshold_ua: 1.0,
            decay: DecayModel::default(),
        }
    }

    #[test]
    fn verdict_bands() {
        let s = sensor();
        assert_eq!(verdict(&s, 0.94, 0.05), Verdict::Pass);
        assert_eq!(verdict(&s, 0.97, 0.05), Verdict::Marginal);
        assert_eq!(verdict(&s, 1.06, 0.05), Verdict::Fail);
    }

    #[test]
    fn zero_band_is_sharp() {
        let s = sensor();
        assert_eq!(verdict(&s, 0.999, 0.0), Verdict::Pass);
        assert_eq!(verdict(&s, 1.001, 0.0), Verdict::Fail);
    }

    #[test]
    fn discriminability_definition() {
        let s = sensor();
        assert!((discriminability(&s, 0.1) - 10.0).abs() < 1e-12);
        assert!(discriminability(&s, 0.05) > 10.0);
    }

    #[test]
    #[should_panic(expected = "band must be in")]
    fn bad_band_panics() {
        let _ = verdict(&sensor(), 1.0, 1.5);
    }
}
