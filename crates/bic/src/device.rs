//! Sensing-device families.
//!
//! The paper surveys several BIC sensing devices (refs \[7\]–\[12\]): pn
//! junctions / bipolar devices that develop a diode drop, proportional
//! resistive sensors (Rius & Figueras), and current-mirror style
//! detectors (Carley/Maly). "Some BIC sensors (i.e. pn junctions or
//! bipolar devices) introduce a voltage drop during transient switching
//! which can be unacceptable … the BIC sensors have to incorporate a
//! bypass element"; others trade detection speed against area.
//!
//! [`SensingDevice`] captures the first-order differences as parameters
//! of the sizing model, so the whole synthesis flow can be re-run per
//! device family (see the `sensor_devices` rows of `table1 --ablate` and
//! the `device_comparison` test).

use iddq_analog::settle::DecayModel;

use crate::sizing::SizingSpec;

/// First-order models of the sensing-device families the paper cites.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SensingDevice {
    /// pn-junction / bipolar drop sensor (Maly & Nigh style): small and
    /// fast, but develops a full diode drop — it *requires* the bypass
    /// switch and a conservative rail budget.
    DiodeDrop,
    /// Proportional resistive sensor (Rius & Figueras JETTA'92): linear
    /// readout, moderate area, slower comparator.
    ProportionalResistive,
    /// Current-mirror sensor (Carley/Feltham/Maly ICCD'88): fastest
    /// decision, largest detection circuitry.
    CurrentMirror,
}

impl SensingDevice {
    /// All families, for sweeps.
    pub const ALL: [SensingDevice; 3] = [
        SensingDevice::DiodeDrop,
        SensingDevice::ProportionalResistive,
        SensingDevice::CurrentMirror,
    ];

    /// Short display name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            SensingDevice::DiodeDrop => "diode-drop",
            SensingDevice::ProportionalResistive => "proportional",
            SensingDevice::CurrentMirror => "current-mirror",
        }
    }

    /// Fixed detection-circuitry area `A_0`.
    #[must_use]
    pub fn a0(self) -> f64 {
        match self {
            SensingDevice::DiodeDrop => 1.2e4,
            SensingDevice::ProportionalResistive => 2.0e4,
            SensingDevice::CurrentMirror => 3.5e4,
        }
    }

    /// Bypass/sensing area coefficient `A_1` (area·Ω).
    #[must_use]
    pub fn a1(self) -> f64 {
        match self {
            // The diode sensor needs the widest bypass for a given rail
            // budget (the diode eats most of the margin).
            SensingDevice::DiodeDrop => 8.0e6,
            SensingDevice::ProportionalResistive => 5.0e6,
            SensingDevice::CurrentMirror => 4.0e6,
        }
    }

    /// Comparator strobe/sense time in picoseconds.
    #[must_use]
    pub fn sense_time_ps(self) -> f64 {
        match self {
            SensingDevice::DiodeDrop => 15_000.0,
            SensingDevice::ProportionalResistive => 30_000.0,
            SensingDevice::CurrentMirror => 8_000.0,
        }
    }

    /// Decay margin (fraction of `I_DDQ,th` the current must fall below
    /// before the strobe).
    #[must_use]
    pub fn margin(self) -> f64 {
        match self {
            SensingDevice::DiodeDrop => 0.05,
            SensingDevice::ProportionalResistive => 0.2,
            SensingDevice::CurrentMirror => 0.1,
        }
    }

    /// Builds the sizing spec for this device at a given rail budget.
    #[must_use]
    pub fn sizing_spec(self, r_star_mv: f64) -> SizingSpec {
        SizingSpec {
            r_star_mv,
            a0: self.a0(),
            a1: self.a1(),
            decay: DecayModel {
                sense_time_ps: self.sense_time_ps(),
                margin: self.margin(),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sizing::size_sensor;
    use iddq_celllib::Technology;

    #[test]
    fn specs_are_distinct_and_positive() {
        for d in SensingDevice::ALL {
            let s = d.sizing_spec(200.0);
            assert!(s.a0 > 0.0 && s.a1 > 0.0);
            assert!(s.decay.sense_time_ps > 0.0);
            assert!((0.0..1.0).contains(&s.decay.margin));
        }
        assert_ne!(
            SensingDevice::DiodeDrop.sizing_spec(200.0),
            SensingDevice::CurrentMirror.sizing_spec(200.0)
        );
    }

    #[test]
    fn device_comparison_tradeoffs_hold() {
        // Same module sized under each family: the mirror is the largest
        // but fastest; the diode is the smallest detection circuit but
        // needs the widest bypass per ohm.
        let tech = Technology::generic_1um();
        let peak_ua = 20_000.0;
        let cs_ff = 800.0;
        let mk = |d: SensingDevice| {
            size_sensor(peak_ua, cs_ff, &d.sizing_spec(200.0), &tech).expect("sizeable")
        };
        let diode = mk(SensingDevice::DiodeDrop);
        let prop = mk(SensingDevice::ProportionalResistive);
        let mirror = mk(SensingDevice::CurrentMirror);
        // Same rail budget → same Rs for all.
        assert_eq!(diode.rs_ohm, prop.rs_ohm);
        // Per-vector time: mirror fastest, proportional slowest.
        let t = |s: &crate::BicSensor| s.delta_ps(peak_ua);
        assert!(t(&mirror) < t(&diode));
        assert!(t(&diode) < t(&prop));
        // Diode pays the most for the bypass (largest A1/Rs term).
        assert!(
            diode.area - SensingDevice::DiodeDrop.a0()
                > prop.area - SensingDevice::ProportionalResistive.a0()
        );
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(SensingDevice::DiodeDrop.name(), "diode-drop");
        assert_eq!(SensingDevice::ALL.len(), 3);
    }
}
