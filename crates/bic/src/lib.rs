//! Built-In Current (BIC) sensor modelling.
//!
//! The sensor architecture of the paper's Figure 1: a sensing device in
//! the module's ground path, a bypass MOS switch (control `C`) and a
//! detection circuit producing PASS/FAIL. During normal operation `C = 1`
//! keeps the bypass ON, so the only electrical footprint is the bypass ON
//! resistance `R_s`; during test `C = 0` lets the sensing device compare
//! the module's quiescent current against `I_DDQ,th`.
//!
//! This crate covers:
//!
//! * [`sizing`] — choosing `R_s,i = r*/î_DD,max,i` per module from the
//!   virtual-rail perturbation limit, clamped to the technology's
//!   realizable window,
//! * [`sensor::BicSensor`] — the sized sensor: area (`A_0 + A_1/R_s`),
//!   time constant `τ_s = R_s·C_s`, per-vector settle time `Δ(τ)`,
//! * [`detect`] — behavioural PASS/FAIL evaluation with measurement
//!   noise bounds,
//! * [`device`] — the sensing-device families the paper cites (diode
//!   drop, proportional resistive, current mirror) as sizing-spec
//!   presets.
//!
//! # Example
//!
//! ```rust
//! use iddq_bic::sizing::{size_sensor, SizingSpec};
//! use iddq_celllib::Technology;
//!
//! let tech = Technology::generic_1um();
//! let spec = SizingSpec::paper_default();
//! // A module with 20 mA peak transient current:
//! let sensor = size_sensor(20_000.0, 600.0, &spec, &tech).unwrap();
//! assert!(sensor.rs_ohm <= spec.r_star_mv / 20.0); // r*/î
//! assert!(sensor.area > spec.a0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod detect;
pub mod device;
pub mod sensor;
pub mod sizing;

pub use sensor::BicSensor;
