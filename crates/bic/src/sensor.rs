//! The sized per-module sensor instance.

use iddq_analog::settle::DecayModel;

/// A sized BIC sensor attached to one module.
///
/// Produced by [`sizing::size_sensor`](crate::sizing::size_sensor); holds
/// every electrical figure the cost estimators and the behavioural
/// detector need.
#[derive(Debug, Clone, PartialEq)]
pub struct BicSensor {
    /// Bypass ON resistance in ohms (`R_s,i`).
    pub rs_ohm: f64,
    /// Layout area in technology units (`A_0 + A_1/R_s`).
    pub area: f64,
    /// Virtual-rail parasitic capacitance of the module, fF (`C_s,i`).
    pub rail_cap_ff: f64,
    /// Detection threshold `I_DDQ,th` in µA.
    pub threshold_ua: f64,
    /// Decay/sense-time model.
    pub decay: DecayModel,
}

impl BicSensor {
    /// Sensor time constant `τ_s = R_s · C_s`, in picoseconds.
    #[must_use]
    pub fn tau_ps(&self) -> f64 {
        self.rs_ohm * self.rail_cap_ff / 1000.0
    }

    /// Per-vector decay + sensing time `Δ(τ_s)` in picoseconds, given the
    /// module's peak transient current.
    ///
    /// # Panics
    ///
    /// Panics if `peak_current_ua <= 0` (an empty module is never sized).
    #[must_use]
    pub fn delta_ps(&self, peak_current_ua: f64) -> f64 {
        self.decay
            .delta_ps(self.tau_ps(), peak_current_ua, self.threshold_ua)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sensor(rs_ohm: f64, rail_cap_ff: f64) -> BicSensor {
        BicSensor {
            rs_ohm,
            area: 1.0,
            rail_cap_ff,
            threshold_ua: 1.0,
            decay: DecayModel::default(),
        }
    }

    #[test]
    fn tau_units() {
        // 10 Ω · 500 fF = 5 ps
        assert!((sensor(10.0, 500.0).tau_ps() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn delta_grows_with_tau_and_peak() {
        let small = sensor(10.0, 500.0);
        let big = sensor(100.0, 50_000.0);
        assert!(big.delta_ps(1000.0) > small.delta_ps(1000.0));
        assert!(small.delta_ps(10_000.0) > small.delta_ps(100.0));
    }
}
