//! Bypass-device sizing from the virtual-rail perturbation constraint.
//!
//! §3.1 of the paper: "the maximum virtual rail perturbation of each
//! module is limited to a given predefined value r*", and "since the
//! requirements for r* are typically very stringent (between 100 mV and
//! 300 mV), the impact of the feasible R_s,i on the delay of the CUT
//! tends to be small. Then, to simplify the optimization problem we take
//! R_s,i = r*/î_DD,max,i".

use iddq_analog::settle::DecayModel;
use iddq_celllib::Technology;

use crate::sensor::BicSensor;

/// Sensor sizing parameters shared by all modules.
#[derive(Debug, Clone, PartialEq)]
pub struct SizingSpec {
    /// Maximum allowed virtual-rail perturbation `r*`, in millivolts.
    pub r_star_mv: f64,
    /// Fixed area of the detection circuitry (`A_0` in the paper's
    /// `A_0 + A_1/R_s` model), in technology area units.
    pub a0: f64,
    /// Bypass/sensing area coefficient `A_1`, in area-units·Ω — a wider
    /// (lower-resistance) bypass device costs proportionally more area.
    pub a1: f64,
    /// Decay/sense-time model for `Δ(τ)`.
    pub decay: DecayModel,
}

impl SizingSpec {
    /// The defaults used by the Table-1 reproduction: `r* = 200 mV`
    /// (mid-range of the 100–300 mV the paper quotes), with area
    /// coefficients calibrated so per-sensor areas land in the
    /// `10^5–10^6` unit range the paper reports.
    #[must_use]
    pub fn paper_default() -> Self {
        SizingSpec {
            r_star_mv: 200.0,
            a0: 2.0e4,
            a1: 5.0e6,
            decay: DecayModel::default(),
        }
    }
}

/// Why a module cannot be fitted with a sensor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SizingError {
    /// The required `R_s = r*/î` is below the technology's minimum
    /// realizable bypass resistance: the module draws too much transient
    /// current for any sensor to keep the rail within `r*`.
    RailPerturbation,
    /// The module draws no current (empty module) — nothing to sense.
    EmptyModule,
}

impl std::fmt::Display for SizingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SizingError::RailPerturbation => {
                write!(f, "peak current exceeds the rail-perturbation limit for any realizable bypass device")
            }
            SizingError::EmptyModule => write!(f, "module draws no current"),
        }
    }
}

impl std::error::Error for SizingError {}

/// Sizes the BIC sensor of one module.
///
/// * `peak_current_ua` — the module's `î_DD,max,i` (from the §3.1
///   estimator),
/// * `rail_cap_ff` — the module's virtual-rail parasitic `C_s,i`,
/// * clamps `R_s` into the technology's `[r_bypass_min, r_bypass_max]`
///   window; a clamp *down* to the maximum is free (an even smaller
///   device would suffice), a clamp *up* from below the minimum is a
///   constraint violation.
///
/// # Errors
///
/// [`SizingError::RailPerturbation`] when `r*/î < r_bypass_min`;
/// [`SizingError::EmptyModule`] when `peak_current_ua ≤ 0`.
pub fn size_sensor(
    peak_current_ua: f64,
    rail_cap_ff: f64,
    spec: &SizingSpec,
    tech: &Technology,
) -> Result<BicSensor, SizingError> {
    if peak_current_ua <= 0.0 {
        return Err(SizingError::EmptyModule);
    }
    // r*[V]/î[A]: (mV·1e-3) / (µA·1e-6) = mV/µA · 1e3 Ω
    let rs_needed_ohm = spec.r_star_mv * 1000.0 / peak_current_ua;
    if rs_needed_ohm < tech.r_bypass_min_ohm {
        return Err(SizingError::RailPerturbation);
    }
    let rs_ohm = rs_needed_ohm.min(tech.r_bypass_max_ohm);
    let area = spec.a0 + spec.a1 / rs_ohm;
    Ok(BicSensor {
        rs_ohm,
        area,
        rail_cap_ff,
        threshold_ua: tech.iddq_threshold_ua,
        decay: spec.decay,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tech() -> Technology {
        Technology::generic_1um()
    }

    #[test]
    fn rs_is_rstar_over_peak() {
        let s = size_sensor(10_000.0, 100.0, &SizingSpec::paper_default(), &tech()).unwrap();
        // 200 mV / 10 mA = 20 Ω
        assert!((s.rs_ohm - 20.0).abs() < 1e-9);
    }

    #[test]
    fn bigger_modules_need_bigger_sensors() {
        let spec = SizingSpec::paper_default();
        let small = size_sensor(1_000.0, 100.0, &spec, &tech()).unwrap();
        let large = size_sensor(50_000.0, 100.0, &spec, &tech()).unwrap();
        assert!(large.rs_ohm < small.rs_ohm);
        assert!(large.area > small.area);
    }

    #[test]
    fn excessive_current_is_infeasible() {
        let spec = SizingSpec::paper_default();
        // 200 mV / 0.25 Ω = 800 mA limit.
        let err = size_sensor(1e9, 100.0, &spec, &tech()).unwrap_err();
        assert_eq!(err, SizingError::RailPerturbation);
        assert!(err.to_string().contains("rail"));
    }

    #[test]
    fn tiny_current_clamps_to_max_device() {
        let spec = SizingSpec::paper_default();
        let s = size_sensor(0.001, 100.0, &spec, &tech()).unwrap();
        assert_eq!(s.rs_ohm, tech().r_bypass_max_ohm);
    }

    #[test]
    fn empty_module_rejected() {
        let spec = SizingSpec::paper_default();
        assert_eq!(
            size_sensor(0.0, 100.0, &spec, &tech()).unwrap_err(),
            SizingError::EmptyModule
        );
    }

    #[test]
    fn area_model_components() {
        let spec = SizingSpec::paper_default();
        let s = size_sensor(20_000.0, 100.0, &spec, &tech()).unwrap();
        assert!((s.area - (spec.a0 + spec.a1 / s.rs_ohm)).abs() < 1e-9);
    }
}
