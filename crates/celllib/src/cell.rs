use iddq_netlist::CellKind;

/// Electrical characterization of one library cell (a logic function at a
/// specific fan-in).
///
/// All quantities are per-instance; module-level figures are sums over the
/// gates of the module.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Cell {
    /// Library cell name, e.g. `"NAND3"`.
    pub name: String,
    /// Logic function.
    pub kind: CellKind,
    /// Number of inputs.
    pub fanin: usize,
    /// Layout area in equivalent-transistor units.
    pub area: f64,
    /// Nominal (sensor-free) propagation delay `D(g)` in picoseconds.
    pub delay_ps: f64,
    /// Maximum transient supply current `î_DD,max(g)` drawn while the gate
    /// switches, in microamps (load displacement + short-circuit current).
    pub peak_current_ua: f64,
    /// `R_g` — average equivalent ON resistance of the discharge network,
    /// in kilo-ohms. Series NMOS stacks (NAND) scale it up with fan-in.
    pub r_on_kohm: f64,
    /// `C_g` — equivalent capacitance at the gate output, in femtofarads.
    pub c_out_ff: f64,
    /// Input capacitance per pin, in femtofarads.
    pub c_in_ff: f64,
    /// Parasitic capacitance the cell contributes to the virtual rail
    /// (source/drain junctions of the pull-down network), in femtofarads.
    /// Summed over a module this is `C_s,i`.
    pub c_rail_ff: f64,
    /// Fault-free quiescent (leakage) current in nanoamps; summed over a
    /// module this is `I_DDQ,nd,i`.
    pub leakage_na: f64,
}

impl Cell {
    /// Intrinsic RC time constant `R_g · C_g` in picoseconds.
    ///
    /// The δ(g,t) degradation model of §3.2 compares the sensor network's
    /// time constant against this.
    #[must_use]
    pub fn rc_ps(&self) -> f64 {
        // kΩ · fF = ps
        self.r_on_kohm * self.c_out_ff
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rc_units() {
        let c = Cell {
            name: "X".into(),
            kind: CellKind::Not,
            fanin: 1,
            area: 1.0,
            delay_ps: 100.0,
            peak_current_ua: 100.0,
            r_on_kohm: 2.0,
            c_out_ff: 50.0,
            c_in_ff: 10.0,
            c_rail_ff: 5.0,
            leakage_na: 0.1,
        };
        assert!((c.rc_ps() - 100.0).abs() < 1e-12);
    }
}
