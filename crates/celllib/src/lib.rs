//! Parameterized CMOS cell library, "fully characterized at electrical
//! level" in the sense of §3 of the paper.
//!
//! The IDDQ-partitioning estimators consume a handful of per-cell scalars:
//!
//! | symbol (paper) | field | used by |
//! |---|---|---|
//! | `î_DD,max(g)` | [`Cell::peak_current_ua`] | peak-current estimator (§3.1) |
//! | `R_g` | [`Cell::r_on_kohm`] | delay degradation δ(g,t) (§3.2) |
//! | `C_g` | [`Cell::c_out_ff`] | delay degradation δ(g,t) (§3.2) |
//! | `D(g)` | [`Cell::delay_ps`] | nominal longest path (§3.2) |
//! | — | [`Cell::c_rail_ff`] | virtual-rail parasitic `C_s,i` (§3.4) |
//! | — | [`Cell::leakage_na`] | fault-free `I_DDQ,nd,i` (discriminability, §2) |
//! | — | [`Cell::area`] | reporting |
//!
//! The original work used a proprietary industrial library; [`Library::generic_1um`]
//! provides a self-consistent generic 1 µm / 5 V CMOS characterization whose
//! *ratios* (stack resistance grows with NAND fan-in, peak current grows
//! with load, junction leakage in the tens of pA per gate) follow the
//! standard first-order models, so every trade-off the paper's cost
//! function explores is exercised with realistic shape.
//!
//! # Example
//!
//! ```rust
//! use iddq_celllib::Library;
//! use iddq_netlist::CellKind;
//!
//! let lib = Library::generic_1um();
//! let nand2 = lib.cell(CellKind::Nand, 2);
//! let nand4 = lib.cell(CellKind::Nand, 4);
//! // A longer NMOS stack discharges more slowly:
//! assert!(nand4.r_on_kohm > nand2.r_on_kohm);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

mod cell;
mod library;
mod tables;
mod technology;

pub use cell::Cell;
pub use library::Library;
pub use tables::NodeTables;
pub use technology::Technology;
