use std::collections::HashMap;

use iddq_netlist::CellKind;

use crate::cell::Cell;
use crate::technology::Technology;

/// A complete target cell library: one [`Cell`] per `(kind, fan-in)` pair,
/// plus the [`Technology`] it is characterized in.
///
/// # Example
///
/// ```rust
/// use iddq_celllib::Library;
/// use iddq_netlist::CellKind;
///
/// let lib = Library::generic_1um();
/// assert!(lib.cell(CellKind::Nand, 2).peak_current_ua > 0.0);
/// assert!(lib.try_cell(CellKind::Nand, 1).is_none()); // illegal fan-in
/// ```
#[derive(Debug, Clone)]
pub struct Library {
    technology: Technology,
    cells: HashMap<(CellKind, usize), Cell>,
}

impl Library {
    /// Builds the generic 1 µm / 5 V characterization (see crate docs).
    ///
    /// The first-order models behind the numbers:
    ///
    /// * *delay* grows with fan-in (series stack) — `D = D0 + Dfi·(n-1)`,
    ///   inverting kinds slightly faster than their AOI complements at
    ///   equal fan-in, XOR/XNOR (transmission-gate style) slowest;
    /// * *peak current* ≈ `C·V/t_r` for the output swing plus a
    ///   short-circuit component, growing with load (fan-in as proxy);
    /// * *`R_g`*: NAND pull-down stacks are `n` devices in series (×n),
    ///   NOR pull-downs are parallel (×1), XOR in between;
    /// * *leakage*: tens of picoamps per gate — reverse-biased junction
    ///   leakage dominates at 1 µm, scaling with transistor count;
    /// * *rail capacitance*: junction capacitance of the devices tied to
    ///   the (virtual) ground rail.
    #[must_use]
    pub fn generic_1um() -> Self {
        let technology = Technology::generic_1um();
        let mut cells = HashMap::new();
        // `CellKind::ALL` covers only combinational kinds; the DFF state
        // element still occupies silicon (two clocked latches) and needs
        // an electrical row for leakage budgets, rail capacitance and
        // area-driven partitioning of sequential circuits.
        for kind in CellKind::ALL.into_iter().chain([CellKind::Dff]) {
            let (lo, hi) = kind.fanin_range();
            for n in lo..=hi {
                cells.insert((kind, n), synth_cell(kind, n));
            }
        }
        Library { technology, cells }
    }

    /// The library's technology parameters.
    #[must_use]
    pub fn technology(&self) -> &Technology {
        &self.technology
    }

    /// Looks up the cell for `(kind, fanin)`.
    ///
    /// # Panics
    ///
    /// Panics if the fan-in is illegal for `kind`; use
    /// [`Library::try_cell`] for fallible lookup.
    #[must_use]
    pub fn cell(&self, kind: CellKind, fanin: usize) -> &Cell {
        self.try_cell(kind, fanin)
            .unwrap_or_else(|| panic!("no {kind} cell with fan-in {fanin}"))
    }

    /// Fallible cell lookup.
    #[must_use]
    pub fn try_cell(&self, kind: CellKind, fanin: usize) -> Option<&Cell> {
        self.cells.get(&(kind, fanin))
    }

    /// Iterates over all cells in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = &Cell> {
        self.cells.values()
    }

    /// Number of cells in the library.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Returns `true` if the library has no cells.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Replaces a cell's characterization (for experiments with modified
    /// libraries, e.g. the Figure-2 array with three distinct cell types).
    pub fn override_cell(&mut self, cell: Cell) {
        self.cells.insert((cell.kind, cell.fanin), cell);
    }
}

impl Default for Library {
    fn default() -> Self {
        Library::generic_1um()
    }
}

/// First-order electrical synthesis of one generic cell.
fn synth_cell(kind: CellKind, n: usize) -> Cell {
    let nf = n as f64;
    // Transistor count: CMOS complementary gate = 2n devices; XOR-family
    // costs roughly double; BUF is two inverters.
    let devices = match kind {
        CellKind::Buf => 4.0,
        CellKind::Not => 2.0,
        CellKind::Xor | CellKind::Xnor => 4.0 * nf + 2.0,
        // Master-slave transmission-gate DFF: two clocked latches.
        CellKind::Dff => 24.0,
        _ => 2.0 * nf,
    };
    // Stack factor for the discharge network.
    let stack = match kind {
        CellKind::Nand | CellKind::And => nf,
        CellKind::Nor | CellKind::Or | CellKind::Buf | CellKind::Not | CellKind::Dff => 1.0,
        CellKind::Xor | CellKind::Xnor => 1.0 + 0.5 * nf,
    };
    // Non-inverting kinds carry an output inverter: extra delay/area.
    let noninv_extra = if kind.is_inverting() { 0.0 } else { 1.0 };
    let xor_extra = matches!(kind, CellKind::Xor | CellKind::Xnor) as u8 as f64;

    let delay_ps = 180.0 + 120.0 * (nf - 1.0) + 140.0 * noninv_extra + 220.0 * xor_extra;
    let area = 8.0 * devices + 6.0 * noninv_extra;
    let c_out_ff = 40.0 + 9.0 * nf;
    let c_in_ff = 12.0;
    // Peak transient current: output swing C·V over an edge ~ 1 ns plus a
    // short-circuit term per input stage.
    let peak_current_ua = c_out_ff * 5.0 / 1.0 + 60.0 * nf;
    let r_on_kohm = 1.8 * stack / (1.0 + 0.1 * (nf - 1.0));
    let c_rail_ff = 4.0 + 2.5 * nf;
    // Junction leakage ≈ 16 pA per device: a ~550-gate module reaches the
    // 0.1 µA fault-free budget that discriminability 10 against a 1 µA
    // threshold allows, which is the module size regime of the paper's
    // Table 1 (2–6 modules for 880–3512 gates).
    let leakage_na = 0.033 * devices;

    Cell {
        name: format!(
            "{}{}",
            kind.mnemonic(),
            if n > 1 { n.to_string() } else { String::new() }
        ),
        kind,
        fanin: n,
        area,
        delay_ps,
        peak_current_ua,
        r_on_kohm,
        c_out_ff,
        c_in_ff,
        c_rail_ff,
        leakage_na,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_every_legal_fanin() {
        let lib = Library::generic_1um();
        for kind in CellKind::ALL {
            let (lo, hi) = kind.fanin_range();
            for n in lo..=hi {
                assert!(lib.try_cell(kind, n).is_some(), "{kind}/{n}");
            }
        }
    }

    #[test]
    fn dff_has_an_electrical_row() {
        // State elements are outside `CellKind::ALL` but sequential
        // circuits still need their leakage/area/rail contributions.
        let lib = Library::generic_1um();
        let dff = lib.cell(CellKind::Dff, 1);
        assert_eq!(dff.name, "DFF");
        assert!(dff.leakage_na > lib.cell(CellKind::Nand, 2).leakage_na);
        assert!(dff.area > lib.cell(CellKind::Buf, 1).area);
        assert!(lib.try_cell(CellKind::Dff, 2).is_none());
    }

    #[test]
    fn illegal_fanin_absent() {
        let lib = Library::generic_1um();
        assert!(lib.try_cell(CellKind::Not, 2).is_none());
        assert!(lib.try_cell(CellKind::And, 1).is_none());
    }

    #[test]
    #[should_panic(expected = "no NAND cell with fan-in 1")]
    fn cell_panics_on_illegal_fanin() {
        let lib = Library::generic_1um();
        let _ = lib.cell(CellKind::Nand, 1);
    }

    #[test]
    fn monotone_trends() {
        let lib = Library::generic_1um();
        // Delay, area, peak current and leakage all grow with fan-in.
        for kind in [CellKind::Nand, CellKind::Nor, CellKind::And] {
            for n in 2..8 {
                let a = lib.cell(kind, n);
                let b = lib.cell(kind, n + 1);
                assert!(b.delay_ps > a.delay_ps);
                assert!(b.area > a.area);
                assert!(b.peak_current_ua > a.peak_current_ua);
                assert!(b.leakage_na > a.leakage_na);
            }
        }
        // NAND stacks resist more than NOR at the same fan-in.
        assert!(lib.cell(CellKind::Nand, 4).r_on_kohm > lib.cell(CellKind::Nor, 4).r_on_kohm);
    }

    #[test]
    fn leakage_is_sub_nanoamp() {
        // 1 µm junction leakage: tens of pA per gate, so thousands of
        // gates stay below the 1 µA threshold / discriminability 10.
        let lib = Library::generic_1um();
        for cell in lib.iter() {
            assert!(
                cell.leakage_na < 3.0,
                "{} leaks {}",
                cell.name,
                cell.leakage_na
            );
            assert!(cell.leakage_na > 0.0);
        }
    }

    #[test]
    fn cell_names_follow_convention() {
        let lib = Library::generic_1um();
        assert_eq!(lib.cell(CellKind::Nand, 3).name, "NAND3");
        assert_eq!(lib.cell(CellKind::Not, 1).name, "NOT");
    }

    #[test]
    fn override_replaces() {
        let mut lib = Library::generic_1um();
        let mut c = lib.cell(CellKind::Buf, 1).clone();
        c.peak_current_ua = 9999.0;
        lib.override_cell(c);
        assert_eq!(lib.cell(CellKind::Buf, 1).peak_current_ua, 9999.0);
    }

    #[test]
    fn all_parameters_positive() {
        let lib = Library::generic_1um();
        for c in lib.iter() {
            assert!(c.area > 0.0);
            assert!(c.delay_ps > 0.0);
            assert!(c.peak_current_ua > 0.0);
            assert!(c.r_on_kohm > 0.0);
            assert!(c.c_out_ff > 0.0);
            assert!(c.c_rail_ff > 0.0);
        }
    }
}
