use iddq_netlist::{Netlist, NodeId};

use crate::library::Library;

/// Per-node electrical tables for one netlist bound to one library.
///
/// The partitioner's inner loop must not chase hash maps, so this struct
/// flattens every per-gate quantity into dense vectors indexed by
/// [`NodeId::index`]. Primary-input entries are zero.
///
/// # Example
///
/// ```rust
/// use iddq_celllib::{Library, NodeTables};
/// use iddq_netlist::data;
///
/// let c17 = data::c17();
/// let lib = Library::generic_1um();
/// let t = NodeTables::new(&c17, &lib);
/// let g10 = c17.find("10").unwrap();
/// assert!(t.peak_current_ua[g10.index()] > 0.0);
/// assert_eq!(t.peak_current_ua[c17.inputs()[0].index()], 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct NodeTables {
    /// Nominal delay `D(g)` in picoseconds.
    pub delay_ps: Vec<f64>,
    /// Delay quantized to technology grid steps (≥ 1 for gates, 0 for PIs).
    pub grid_delay: Vec<u32>,
    /// `î_DD,max(g)` in microamps.
    pub peak_current_ua: Vec<f64>,
    /// `R_g` in kilo-ohms.
    pub r_on_kohm: Vec<f64>,
    /// `C_g` in femtofarads.
    pub c_out_ff: Vec<f64>,
    /// Virtual-rail parasitic contribution in femtofarads.
    pub c_rail_ff: Vec<f64>,
    /// Fault-free leakage in nanoamps.
    pub leakage_na: Vec<f64>,
    /// Cell layout area.
    pub area: Vec<f64>,
}

impl NodeTables {
    /// Flattens `library` data over `netlist`.
    ///
    /// # Panics
    ///
    /// Panics if some gate's `(kind, fan-in)` pair has no cell in the
    /// library (the generic library covers all legal pairs).
    #[must_use]
    pub fn new(netlist: &Netlist, library: &Library) -> Self {
        let n = netlist.node_count();
        let mut t = NodeTables {
            delay_ps: vec![0.0; n],
            grid_delay: vec![0; n],
            peak_current_ua: vec![0.0; n],
            r_on_kohm: vec![0.0; n],
            c_out_ff: vec![0.0; n],
            c_rail_ff: vec![0.0; n],
            leakage_na: vec![0.0; n],
            area: vec![0.0; n],
        };
        for id in netlist.gate_ids() {
            let node = netlist.node(id);
            // `gate_ids` yields only gate nodes, so `cell_kind` is
            // always populated; fall back to skipping rather than
            // trusting that contract with a panic.
            let Some(kind) = node.kind().cell_kind() else {
                continue;
            };
            let cell = library.cell(kind, node.fanin().len());
            let i = id.index();
            t.delay_ps[i] = cell.delay_ps;
            t.grid_delay[i] = library.technology().to_grid(cell.delay_ps);
            t.peak_current_ua[i] = cell.peak_current_ua;
            t.r_on_kohm[i] = cell.r_on_kohm;
            t.c_out_ff[i] = cell.c_out_ff;
            t.c_rail_ff[i] = cell.c_rail_ff;
            t.leakage_na[i] = cell.leakage_na;
            t.area[i] = cell.area;
        }
        t
    }

    /// Sum of a table over a set of gates — the module-level aggregation
    /// primitive.
    #[must_use]
    pub fn sum_over(table: &[f64], gates: &[NodeId]) -> f64 {
        gates.iter().map(|g| table[g.index()]).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iddq_netlist::data;

    #[test]
    fn inputs_are_zero_gates_positive() {
        let nl = data::c17();
        let t = NodeTables::new(&nl, &Library::generic_1um());
        for &i in nl.inputs() {
            assert_eq!(t.delay_ps[i.index()], 0.0);
            assert_eq!(t.grid_delay[i.index()], 0);
        }
        for g in nl.gate_ids() {
            assert!(t.delay_ps[g.index()] > 0.0);
            assert!(t.grid_delay[g.index()] >= 1);
            assert!(t.leakage_na[g.index()] > 0.0);
        }
    }

    #[test]
    fn uniform_gates_uniform_tables() {
        // c17 is all NAND2: every gate row must be identical.
        let nl = data::c17();
        let t = NodeTables::new(&nl, &Library::generic_1um());
        let gates: Vec<_> = nl.gate_ids().collect();
        let first = gates[0].index();
        for g in &gates[1..] {
            assert_eq!(t.delay_ps[g.index()], t.delay_ps[first]);
            assert_eq!(t.peak_current_ua[g.index()], t.peak_current_ua[first]);
        }
    }

    #[test]
    fn sum_over_helper() {
        let nl = data::c17();
        let t = NodeTables::new(&nl, &Library::generic_1um());
        let gates: Vec<_> = nl.gate_ids().collect();
        let total = NodeTables::sum_over(&t.leakage_na, &gates);
        assert!((total - 6.0 * t.leakage_na[gates[0].index()]).abs() < 1e-9);
    }
}
