/// Global technology parameters shared by every cell of a [`Library`].
///
/// [`Library`]: crate::Library
///
/// # Example
///
/// ```rust
/// use iddq_celllib::Technology;
///
/// let t = Technology::generic_1um();
/// assert_eq!(t.vdd_v, 5.0);
/// assert!(t.iddq_threshold_ua >= 1.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Technology {
    /// Human-readable name, e.g. `"generic-1um-cmos"`.
    pub name: String,
    /// Supply voltage in volts.
    pub vdd_v: f64,
    /// Duration of one grid step of the transition-time analysis, in
    /// picoseconds. All gate delays are quantized to this grid when the
    /// §3.1 simultaneity analysis runs.
    pub grid_ps: f64,
    /// `I_DDQ,th` — the minimum defective quiescent current that must be
    /// detected, in microamps. The paper quotes ≈ 1 µA as typical for
    /// effective defect coverage.
    pub iddq_threshold_ua: f64,
    /// Smallest realizable bypass-switch ON resistance in ohms (a huge
    /// device); bounds sensor sizing from below.
    pub r_bypass_min_ohm: f64,
    /// Largest useful bypass ON resistance in ohms (a minimal device).
    pub r_bypass_max_ohm: f64,
}

impl Technology {
    /// Generic 1 µm, 5 V CMOS process, the vintage the 1995 paper targets.
    #[must_use]
    pub fn generic_1um() -> Self {
        Technology {
            name: "generic-1um-cmos".to_owned(),
            vdd_v: 5.0,
            grid_ps: 250.0,
            iddq_threshold_ua: 1.0,
            r_bypass_min_ohm: 0.25,
            r_bypass_max_ohm: 5_000.0,
        }
    }

    /// Converts a delay in picoseconds to (ceiled, at least 1) grid steps.
    ///
    /// Gate delays are strictly positive, so a gate always advances the
    /// transition time — this keeps the §3.1 sets finite on reconvergent
    /// fan-out.
    #[must_use]
    pub fn to_grid(&self, delay_ps: f64) -> u32 {
        ((delay_ps / self.grid_ps).ceil() as u32).max(1)
    }
}

impl Default for Technology {
    fn default() -> Self {
        Technology::generic_1um()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_quantization_rounds_up_and_floors_at_one() {
        let t = Technology::generic_1um();
        assert_eq!(t.to_grid(0.0), 1);
        assert_eq!(t.to_grid(1.0), 1);
        assert_eq!(t.to_grid(250.0), 1);
        assert_eq!(t.to_grid(251.0), 2);
        assert_eq!(t.to_grid(1000.0), 4);
    }

    #[test]
    fn default_is_generic() {
        assert_eq!(Technology::default(), Technology::generic_1um());
    }

    #[test]
    fn bypass_resistance_window_is_sane() {
        let t = Technology::generic_1um();
        assert!(t.r_bypass_min_ohm < t.r_bypass_max_ohm);
        assert!(t.r_bypass_min_ohm > 0.0);
    }
}
