//! Property-based tests for the cell library's physical consistency.

use proptest::prelude::*;

use iddq_celllib::{Library, Technology};
use iddq_netlist::CellKind;

proptest! {
    /// Grid quantization is monotone and never rounds a positive delay to
    /// zero steps.
    #[test]
    fn to_grid_monotone(a in 0.0f64..1e6, b in 0.0f64..1e6) {
        let t = Technology::generic_1um();
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(t.to_grid(lo) <= t.to_grid(hi));
        prop_assert!(t.to_grid(a) >= 1);
    }

    /// Grid quantization is conservative: the grid time never undershoots
    /// the true delay by a full step.
    #[test]
    fn to_grid_is_a_ceiling(d in 0.0f64..1e6) {
        let t = Technology::generic_1um();
        let steps = f64::from(t.to_grid(d));
        prop_assert!(steps * t.grid_ps >= d - 1e-9);
        prop_assert!((steps - 1.0) * t.grid_ps < d + t.grid_ps);
    }
}

#[test]
fn every_cell_is_self_consistent() {
    // The estimators assume: delay covers at least the intrinsic RC, and
    // the peak current can actually discharge the output load within the
    // delay (order of magnitude).
    let lib = Library::generic_1um();
    for cell in lib.iter() {
        assert!(
            cell.delay_ps >= 0.3 * cell.rc_ps(),
            "{}: delay {} vs RC {}",
            cell.name,
            cell.delay_ps,
            cell.rc_ps()
        );
        // I ≈ C·V/t within a factor of ten.
        let needed_ua = cell.c_out_ff * 5.0 / (cell.delay_ps / 1000.0);
        assert!(
            cell.peak_current_ua > needed_ua / 10.0,
            "{}: {} vs needed {}",
            cell.name,
            cell.peak_current_ua,
            needed_ua
        );
    }
}

#[test]
fn inverting_pairs_are_cheaper_than_noninverting() {
    // CMOS reality the library must reflect: NAND beats AND (which carries
    // an output inverter) in delay and area at equal fan-in.
    let lib = Library::generic_1um();
    for n in 2..=8 {
        let nand = lib.cell(CellKind::Nand, n);
        let and = lib.cell(CellKind::And, n);
        assert!(nand.delay_ps < and.delay_ps);
        assert!(nand.area < and.area);
        let nor = lib.cell(CellKind::Nor, n);
        let or = lib.cell(CellKind::Or, n);
        assert!(nor.delay_ps < or.delay_ps);
        assert!(nor.area < or.area);
    }
}
