//! `iddq` — command-line front end for the IDDQ-testability synthesis
//! flow.
//!
//! ```text
//! iddq synth  <netlist.bench> [--seed N] [--generations N] [--d N]
//!             [--rstar MV] [--json PATH] [--dot PATH] [--modules PATH]
//!             [--resynth [--per-gate]]
//! iddq gen    <circuit> [--seed N] [--out PATH]
//! iddq test   <netlist.bench> [--seed N] [--frames N]
//! iddq sim    <netlist.bench> [--patterns N] [--seed N] [--threads N]
//!             [--backend csr|delta] [--lanes 64|256|512|auto] [--frames N]
//! iddq faults <netlist.bench> [--seed N] [--vectors N] [--bridges N]
//!             [--backend csr|delta] [--lanes 64|256|512|auto] [--threads N]
//!             [--shards N] [--no-drop] [--frames N] [--budget-ms MS]
//!             [--quota N] [--checkpoint PATH] [--resume PATH]
//! iddq seq    [--smoke] [--circuit sNNN] [--seed N] [--frames N]
//!             [--sequences N] [--bridges N] [--backend csr|delta]
//!             [--threads N] [--shards N]
//! iddq stats  <netlist.bench> [--memory] [--rho N]
//! iddq scale  [--smoke] [--gates N] [--seed N] [--rho N] [--budget-ms MS]
//! iddq serve  [--addr A] [--workers N] [--queue N] [--cache-mb N]
//!             [--state-dir DIR] [--store-dir DIR] [--store-mb N]
//!             [--rho N] [--budget-ms MS] [--max-secs S]
//!             [--smoke] [--call JSON --addr A [--retries N] [--retry-seed N]]
//! iddq chaos  [--smoke]
//! ```
//!
//! Exit codes follow the usual discipline: `0` for success (including a
//! budget-limited *partial* fault sweep, which reports its coverage),
//! `2` for usage errors (bad flags, bad bounds, unknown commands), `1`
//! for runtime failures (unreadable files, parse errors, checkpoint
//! mismatches).

use std::process::ExitCode;
use std::time::Instant;

use iddq_celllib::Library;
use iddq_control::{write_atomic, EngineError, RunBudget, RunControl};
use iddq_core::evolution::EvolutionConfig;
use iddq_core::{config::PartitionConfig, flow, AnalysisTier, EvalContext};
use iddq_netlist::{bench, dot, Netlist};

/// A CLI failure: its message and whether it is the *caller's* fault
/// (a usage error — exit code 2) or the *run's* (exit code 1).
#[derive(Debug)]
struct CliError {
    message: String,
    usage: bool,
}

impl CliError {
    fn usage(message: impl Into<String>) -> Self {
        CliError {
            message: message.into(),
            usage: true,
        }
    }
}

/// Plain-string errors are runtime failures (exit 1).
impl From<String> for CliError {
    fn from(message: String) -> Self {
        CliError {
            message,
            usage: false,
        }
    }
}

/// Engine errors carry their own usage/runtime split:
/// [`EngineError::InvalidArg`] (e.g. a fan-out bound below 2) is the
/// caller's fault, everything else happened during the run.
impl From<EngineError> for CliError {
    fn from(e: EngineError) -> Self {
        CliError {
            usage: e.is_usage(),
            message: e.to_string(),
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    let result = match cmd.as_str() {
        "synth" => cmd_synth(rest),
        "gen" => cmd_gen(rest),
        "test" => cmd_test(rest),
        "sim" => cmd_sim(rest),
        "faults" => cmd_faults(rest),
        "seq" => cmd_seq(rest),
        "stats" => cmd_stats(rest),
        "scale" => cmd_scale(rest),
        "serve" => cmd_serve(rest),
        "chaos" => cmd_chaos(rest),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(CliError::usage(format!(
            "unknown command `{other}`\n{USAGE}"
        ))),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {}", e.message);
            ExitCode::from(if e.usage { 2 } else { 1 })
        }
    }
}

const USAGE: &str = "\
iddq — synthesis of IDDQ-testable circuits (Wunderlich et al., DATE 1995)

commands:
  synth <netlist.bench>   partition a circuit and size its BIC sensors
      --seed N            optimizer seed (default 42)
      --generations N     evolution generations (default 250)
      --d N               required discriminability (default 10)
      --rstar MV          virtual-rail budget in mV (default 200)
      --fanout N          buffer fan-out above N first (N >= 2)
      --resynth           run cost-aware resynthesis first (patch-scored
                          candidates on one persistent evaluation)
      --per-gate          with --resynth: choose the decomposition shape
                          gate by gate (greedy patch probes)
      --json PATH         write the full report as JSON
      --dot PATH          write a module-coloured Graphviz graph
      --modules PATH      write `gate module` assignment lines
  gen <circuit>           emit a synthetic benchmark netlist: c* names are
                          ISCAS-85-like combinational circuits, s* names
                          ISCAS-89-like sequential ones (with DFFs)
      --seed N            generation seed (default 42)
      --out PATH          output path (default stdout)
  test <netlist.bench>    run the IDDQ defect-detection experiment
      --seed N            defect/ATPG seed (default 42)
      --frames N          frames per test sequence (default 1; sequential
                          circuits reach state-dependent defects at N > 1)
  sim <netlist.bench>     measure logic-simulation throughput (wide kernel)
      --patterns N        number of random patterns (default 1048576)
      --seed N            pattern seed (default 42)
      --threads N         worker threads sharing the pattern stream (default 1)
      --backend B         simulation engine: csr | delta (default csr)
      --lanes L           patterns per sweep: 64 | 256 | 512 (default 256),
                          or `auto` to pick by a quick calibration sweep
      --frames N          frames per sequence (default 1): each lane then
                          carries one N-frame sequence from the all-zero
                          reset state, stepped through the DFF boundary
  faults <netlist.bench>  run the stuck-at/bridge fault-patch sweep
      --seed N            vector/bridge seed (default 42)
      --vectors N         number of random test vectors (default 256)
      --bridges N         number of sampled bridge faults (default 32)
      --backend B         delta = fault-patch engine, csr = per-fault full
                          re-simulation oracle (default delta)
      --lanes L           patterns per sweep: 64 | 256 | 512 (default 256),
                          or `auto` to pick by a quick calibration sweep
      --threads N         worker threads (default 1, 0 = all cores)
      --shards N          fault-list shards (default auto)
      --no-drop           disable earliest-detection fault dropping
      --frames N          frames per sequence (default 1): vectors are
                          consumed sequence-major (N consecutive vectors
                          per sequence) and a fault's earliest detection
                          is the first (sequence, frame) that exposes it
      --budget-ms MS      wall-clock budget; on expiry the sweep stops at
                          the next batch boundary and reports a partial
                          (still exit 0) coverage
      --quota N           work budget in fault x pattern applications
      --checkpoint PATH   write a resumable checkpoint (atomic rename)
      --resume PATH       resume from a checkpoint written by --checkpoint;
                          a resumed run that completes is bit-identical to
                          an uninterrupted one
  seq                     sequential end-to-end check on a generated
                          ISCAS-89-like circuit: multi-frame fault sweep
                          from the all-zero reset state, reporting how
                          many faults need latched state to be seen
      --smoke             run the fixed smoke scenario instead (grid
                          invariance, checkpoint resume, combinational
                          frame-invariance, sequential ATPG) and exit
      --circuit sNNN      profile to generate (default s298)
      --seed N            generation/vector seed (default 42)
      --frames N          frames per sequence (default 4)
      --sequences N       number of reset sequences (default 256)
      --bridges N         number of sampled bridge faults (default 32)
      --backend B         delta (default) | csr
      --threads N         worker threads (default 1, 0 = all cores)
      --shards N          fault-list shards (default auto)
  stats <netlist.bench>   print structural statistics
      --memory            also report the memory footprint of every engine
                          representation (graph, CSR schedule, packed values,
                          delta state, separation oracle, gate-sep table)
      --rho N             separation saturation bound for --memory (default 6)
  scale                   scale regression check on a generated mega-circuit:
                          build the CSR kernel, run one full sweep, build a
                          GateSep analysis context, and score one resynthesis
                          probe (apply + bit-identical rollback), all under one
                          wall-clock RunBudget, with per-node memory asserted
                          against fixed byte ceilings
      --smoke             10^5 gates under a 60 s budget (default: 10^6 gates
                          under 600 s)
      --gates N           override the gate count
      --seed N            generation seed (default 0x5ca1e, as the bench)
      --rho N             separation saturation bound (default 3)
      --budget-ms MS      override the wall-clock budget
  serve                   run the hardened fault-simulation service
                          (JSON-lines over TCP; see crates/serve docs for
                          the protocol, failure semantics and runbook)
      --addr A            bind address (default 127.0.0.1:0; the bound
                          address is printed as `listening on ADDR`)
      --workers N         worker threads (default 2)
      --queue N           admission queue capacity (default 16)
      --cache-mb N        artifact-cache memory ceiling in MiB (default 64)
      --state-dir DIR     checkpoint directory (default .iddq-serve)
      --store-dir DIR     persistent artifact store: compiled programs and
                          separation tables survive restarts (warm start
                          without recompiling; corrupt entries are
                          quarantined and rebuilt transparently)
      --store-mb N        store byte ceiling in MiB (default 256, LRU)
      --rho N             separation bound for stats tiers (default 6)
      --budget-ms MS      global budget composed into every request
      --max-secs S        serve for S seconds, then drain and exit
      --smoke             run the end-to-end smoke scenario and exit
      --call JSON         one-shot client mode: send one request line to
                          --addr, print the response line, exit (exit 1
                          when the server answers status=error)
      --retries N         with --call: retry `overloaded` responses up to
                          N times with jittered exponential backoff,
                          honoring the server's retry_after_ms hint
                          (default 3; 0 = fail fast)
      --retry-seed N      seed of the deterministic retry jitter
  chaos                   deterministic fault-injection suite over the
                          serving path: checkpointed sweeps completed
                          through seeded crash/restart schedules (digest
                          bit-identical to an uninterrupted run) and the
                          artifact store under corrupt/torn/failed I/O
                          (wrong answers never served); any violation
                          exits 1 with the offending seed
      --smoke             a dozen fixed seeds (seconds, the CI leg)
                          instead of the full 200+ schedule sweep
";

fn parse_flag(rest: &[String], flag: &str) -> Option<String> {
    rest.iter()
        .position(|a| a == flag)
        .and_then(|i| rest.get(i + 1))
        .cloned()
}

fn parse_num<T: std::str::FromStr>(rest: &[String], flag: &str, default: T) -> Result<T, CliError> {
    match parse_flag(rest, flag) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| CliError::usage(format!("{flag} expects a number, got `{v}`"))),
    }
}

fn parse_opt_num<T: std::str::FromStr>(rest: &[String], flag: &str) -> Result<Option<T>, CliError> {
    match parse_flag(rest, flag) {
        None => Ok(None),
        Some(v) => v
            .parse()
            .map(Some)
            .map_err(|_| CliError::usage(format!("{flag} expects a number, got `{v}`"))),
    }
}

fn load(path: &str) -> Result<Netlist, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    let name = std::path::Path::new(path)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("netlist")
        .to_owned();
    bench::parse(name, &text).map_err(|e| format!("parse `{path}`: {e}"))
}

fn cmd_synth(rest: &[String]) -> Result<(), CliError> {
    let path = rest
        .first()
        .filter(|a| !a.starts_with("--"))
        .ok_or_else(|| CliError::usage(USAGE))?;
    let mut cut = load(path)?;
    let seed: u64 = parse_num(rest, "--seed", 42)?;
    let generations: usize = parse_num(rest, "--generations", 250)?;
    let mut config = PartitionConfig::paper_default();
    config.d_min = parse_num(rest, "--d", config.d_min)?;
    config.sizing.r_star_mv = parse_num(rest, "--rstar", config.sizing.r_star_mv)?;
    let library = Library::generic_1um();

    if let Some(bound) = parse_opt_num::<usize>(rest, "--fanout")? {
        // A bound below 2 is the caller's mistake — `fanout_buffer`
        // reports it as a typed InvalidArg, which maps to exit code 2.
        cut = iddq_synth::fanout_buffer(&cut, bound)?;
        eprintln!(
            "fan-out buffered at bound {bound}: {} gates",
            cut.gate_count()
        );
    }

    if rest.iter().any(|a| a == "--resynth") {
        // The patch-scored searches only need the GateSep analysis tier;
        // the build and the search are timed separately so the report
        // shows where the wall-clock actually goes.
        let t_analysis = Instant::now();
        let ctx = EvalContext::builder(&cut, &library, config.clone())
            .tier(AnalysisTier::GateSep)
            .build();
        let analysis_secs = t_analysis.elapsed().as_secs_f64();
        let t_search = Instant::now();
        if rest.iter().any(|a| a == "--per-gate") {
            let (out, report) = iddq_synth::cost_aware_per_gate_in(&ctx);
            let search_secs = t_search.elapsed().as_secs_f64();
            eprintln!(
                "resynthesis (per-gate): original {:.1} -> mixed {:.1} \
                 ({} balanced, {} chain, {} kept); \
                 analyses {analysis_secs:.3} s + search {search_secs:.3} s",
                report.original_cost,
                report.mixed_cost,
                report.balanced_gates,
                report.chain_gates,
                report.kept_gates
            );
            drop(ctx);
            cut = out;
        } else {
            let (out, report) = iddq_synth::cost_aware_in(&ctx);
            let search_secs = t_search.elapsed().as_secs_f64();
            eprintln!(
                "resynthesis: original {:.1} / balanced {:.1} / chain {:.1} -> {:?}; \
                 analyses {analysis_secs:.3} s + search {search_secs:.3} s",
                report.original_cost, report.balanced_cost, report.chain_cost, report.chosen
            );
            drop(ctx);
            cut = out;
        }
    }

    let evo = EvolutionConfig {
        generations,
        ..Default::default()
    };
    let result = flow::synthesize_with(&cut, &library, &config, &evo, seed);
    let r = &result.report;
    println!(
        "{}: {} gates -> {} modules, feasible: {}, cost {:.1}",
        r.circuit,
        r.gates,
        r.modules.len(),
        r.feasible,
        r.total_cost
    );
    println!(
        "sensor area {:.3e}; delay {:.0} -> {:.0} ps; per-vector test {:.1} ns",
        r.cost.sensor_area,
        r.nominal_delay_ps,
        r.cost.dbic_ps,
        r.cost.vector_time_ps / 1000.0
    );
    for m in &r.modules {
        println!(
            "  M{}: {} gates, i_max {:.0} uA, d {:.0}, Rs {} ohm, area {}",
            m.index,
            m.gates,
            m.peak_current_ua,
            m.discriminability,
            m.rs_ohm.map_or("--".into(), |v| format!("{v:.2}")),
            m.sensor_area.map_or("--".into(), |v| format!("{v:.2e}")),
        );
    }

    if let Some(json) = parse_flag(rest, "--json") {
        let payload = serde_json::to_string_pretty(r).map_err(|e| e.to_string())?;
        write_atomic(std::path::Path::new(&json), &payload)?;
        eprintln!("wrote {json}");
    }
    if let Some(dot_path) = parse_flag(rest, "--dot") {
        let part = result.partition.clone();
        let colour = move |id: iddq_netlist::NodeId| part.module_of(id).unwrap_or(0);
        write_atomic(
            std::path::Path::new(&dot_path),
            &dot::to_dot(&cut, Some(&colour)),
        )?;
        eprintln!("wrote {dot_path}");
    }
    if let Some(mods) = parse_flag(rest, "--modules") {
        let mut lines = String::new();
        for g in cut.gate_ids() {
            lines.push_str(&format!(
                "{} {}\n",
                cut.node_name(g),
                result.partition.module_of(g).expect("gates assigned")
            ));
        }
        write_atomic(std::path::Path::new(&mods), &lines)?;
        eprintln!("wrote {mods}");
    }
    Ok(())
}

fn cmd_gen(rest: &[String]) -> Result<(), CliError> {
    let name = rest
        .first()
        .filter(|a| !a.starts_with("--"))
        .ok_or_else(|| CliError::usage(USAGE))?;
    let seed: u64 = parse_num(rest, "--seed", 42)?;
    let nl = if let Some(profile) = iddq_gen::iscas::IscasProfile::by_name(name) {
        iddq_gen::iscas::generate(profile, seed)
    } else if let Some(profile) = iddq_gen::seq::SeqProfile::by_name(name) {
        iddq_gen::seq::generate(profile, seed)
    } else {
        return Err(CliError::usage(format!(
            "unknown circuit `{name}` (c432..c7552, s27..s5378)"
        )));
    };
    let text = bench::to_bench(&nl);
    match parse_flag(rest, "--out") {
        Some(path) => {
            write_atomic(std::path::Path::new(&path), &text)?;
            eprintln!("wrote {path}");
        }
        None => print!("{text}"),
    }
    Ok(())
}

fn cmd_test(rest: &[String]) -> Result<(), CliError> {
    let path = rest
        .first()
        .filter(|a| !a.starts_with("--"))
        .ok_or_else(|| CliError::usage(USAGE))?;
    let cut = load(path)?;
    let seed: u64 = parse_num(rest, "--seed", 42)?;
    let frames: usize = parse_num(rest, "--frames", 1usize)?;
    if frames == 0 {
        return Err(CliError::usage("--frames must be at least 1"));
    }
    let library = Library::generic_1um();
    let config = PartitionConfig::paper_default();

    // One full-tier analysis context serves both the defect enumeration
    // (its separation oracle covers the bridge-locality filter) and the
    // synthesis flow — the oracle is built once, not twice.
    let ctx = EvalContext::builder(&cut, &library, config.clone()).build();
    let faults = iddq_logicsim::faults::enumerate_with(
        &cut,
        &iddq_logicsim::faults::FaultUniverseConfig::default(),
        seed,
        ctx.try_separation(),
    );
    // `generate_seq` at frames = 1 reproduces the combinational
    // generator bit-for-bit, so one call covers both regimes.
    let tests = iddq_atpg::generate_seq(
        &cut,
        &faults,
        &iddq_atpg::AtpgConfig::default(),
        seed,
        frames,
    )
    .map_err(|e| CliError::usage(format!("{e}")))?;
    let evo = EvolutionConfig {
        generations: 60,
        stagnation: 25,
        ..Default::default()
    };
    let result = flow::synthesize_in(&ctx, &evo, seed);
    let leaks: Vec<f64> = result
        .report
        .modules
        .iter()
        .map(|m| m.leakage_na / 1000.0)
        .collect();
    let sim = iddq_logicsim::iddq::simulate_with_options(
        &cut,
        &faults,
        &tests.vectors,
        result.partition.assignment(),
        &leaks,
        library.technology().iddq_threshold_ua,
        &iddq_logicsim::iddq::SweepOptions {
            frames,
            ..Default::default()
        },
    );
    if frames > 1 {
        println!(
            "{}: {} defects, {} sequences x {frames} frames, coverage {:.1}% under {} BIC sensors",
            cut.name(),
            faults.len(),
            tests.vectors.len() / frames,
            sim.coverage * 100.0,
            leaks.len()
        );
    } else {
        println!(
            "{}: {} defects, {} vectors, coverage {:.1}% under {} BIC sensors",
            cut.name(),
            faults.len(),
            tests.vectors.len(),
            sim.coverage * 100.0,
            leaks.len()
        );
    }
    Ok(())
}

/// Parses `--lanes`: a fixed width, or `None` for `auto` (calibrate on
/// the loaded circuit).
fn parse_lanes(rest: &[String]) -> Result<Option<iddq_netlist::LaneWidth>, CliError> {
    match parse_flag(rest, "--lanes") {
        None => Ok(Some(iddq_netlist::LaneWidth::default())),
        Some(v) if v == "auto" => Ok(None),
        Some(v) => v
            .parse()
            .map(Some)
            .map_err(|e| CliError::usage(format!("{e}"))),
    }
}

/// Measures CSR sweep throughput (patterns/s) at one lane width: one
/// warm-up sweep off the clock, then timed sweeps until at least ten
/// milliseconds have elapsed. The pattern stream is deterministic, so
/// the calibration itself never perturbs downstream seeding.
fn calibrate_width<W: iddq_netlist::PackedWord>(cut: &Netlist) -> f64 {
    let sim = iddq_logicsim::Simulator::new(cut);
    let mut inputs = vec![W::zeros(); cut.num_inputs()];
    let mut values = vec![W::zeros(); sim.node_count()];
    let mut state = 0x1dd9_ca11_b0a7_ed00u64;
    let mut next = move || {
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z ^ (z >> 31)
    };
    sim.eval_into(&inputs, &mut values);
    let start = Instant::now();
    let mut patterns = 0u64;
    loop {
        for w in &mut inputs {
            *w = W::from_limbs(|_| next());
        }
        sim.eval_into(&inputs, &mut values);
        patterns += u64::from(W::LANES);
        if start.elapsed().as_millis() >= 10 {
            break;
        }
    }
    patterns as f64 / start.elapsed().as_secs_f64()
}

/// `--lanes auto`: times a short CSR sweep at every width and picks the
/// fastest. Wider lanes amortize schedule-walking overhead but cost more
/// per value word; which side wins depends on the circuit's size relative
/// to cache, so a quick measurement beats a static guess.
fn calibrate_lanes(cut: &Netlist) -> iddq_netlist::LaneWidth {
    use iddq_netlist::LaneWidth;
    let rates = [
        (LaneWidth::L64, calibrate_width::<u64>(cut)),
        (LaneWidth::L256, calibrate_width::<iddq_netlist::W256>(cut)),
        (LaneWidth::L512, calibrate_width::<iddq_netlist::W512>(cut)),
    ];
    let best = rates
        .iter()
        .copied()
        .fold(rates[0], |acc, r| if r.1 > acc.1 { r } else { acc })
        .0;
    eprintln!(
        "lanes auto: 64 -> {:.3e}/s, 256 -> {:.3e}/s, 512 -> {:.3e}/s; picked {best}",
        rates[0].1, rates[1].1, rates[2].1
    );
    best
}

fn cmd_sim(rest: &[String]) -> Result<(), CliError> {
    use iddq_logicsim::BackendKind;
    use iddq_netlist::LaneWidth;
    let path = rest
        .first()
        .filter(|a| !a.starts_with("--"))
        .ok_or_else(|| CliError::usage(USAGE))?;
    let cut = load(path)?;
    let patterns: u64 = parse_num(rest, "--patterns", 1u64 << 20)?;
    if patterns == 0 {
        return Err(CliError::usage("--patterns must be at least 1"));
    }
    let seed: u64 = parse_num(rest, "--seed", 42)?;
    let threads: usize = parse_num(rest, "--threads", 1usize)?;
    if threads == 0 {
        return Err(CliError::usage("--threads must be at least 1"));
    }
    let backend: BackendKind = match parse_flag(rest, "--backend") {
        None => BackendKind::Csr,
        Some(v) => v.parse().map_err(|e| CliError::usage(format!("{e}")))?,
    };
    let frames: usize = parse_num(rest, "--frames", 1usize)?;
    if frames == 0 {
        return Err(CliError::usage("--frames must be at least 1"));
    }
    let lanes = match parse_lanes(rest)? {
        Some(width) => width,
        None => calibrate_lanes(&cut),
    };
    match lanes {
        LaneWidth::L64 => run_sim::<u64>(&cut, patterns, seed, threads, backend, lanes, frames),
        LaneWidth::L256 => {
            run_sim::<iddq_netlist::W256>(&cut, patterns, seed, threads, backend, lanes, frames)
        }
        LaneWidth::L512 => {
            run_sim::<iddq_netlist::W512>(&cut, patterns, seed, threads, backend, lanes, frames)
        }
    }
    Ok(())
}

#[allow(clippy::too_many_arguments)]
fn run_sim<W: iddq_netlist::PackedWord>(
    cut: &Netlist,
    patterns: u64,
    seed: u64,
    threads: usize,
    backend: iddq_logicsim::BackendKind,
    lanes: iddq_netlist::LaneWidth,
    frames: usize,
) {
    use iddq_logicsim::SimBackend;
    // One batch is W::LANES lanes; with frames > 1 each lane carries one
    // whole sequence, so a batch covers LANES x frames vectors.
    let batches = patterns.div_ceil(u64::from(W::LANES) * frames as u64);
    let threads = threads.min(batches as usize);
    // Each worker owns one engine instance and a disjoint slice of the
    // seeded pattern stream; the per-worker fingerprints are folded in
    // worker order, so the checksum is deterministic for a fixed
    // (seed, threads, backend, lanes, frames) tuple.
    let worker = |t: usize| -> [u64; 4] {
        let mut state = seed ^ (t as u64).wrapping_mul(0xa076_1d64_78bd_642f);
        let mut next = move || {
            // SplitMix64-style stream for reproducible pattern words.
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z ^ (z >> 31)
        };
        let mut sim = SimBackend::<W>::new(cut, backend);
        let mut inputs = vec![W::zeros(); cut.num_inputs()];
        let mut values = vec![W::zeros(); sim.node_count()];
        let mut dff_state = vec![W::zeros(); sim.num_state_elements()];
        // Frame-based evaluation whenever the circuit has state or the
        // caller asked for multi-frame sequences; the plain one-shot path
        // otherwise.
        let stepped = frames > 1 || !dff_state.is_empty();
        // Fingerprint every node value, not just the primary outputs: the
        // deep outputs of the synthetic profiles are near-constant under
        // random stimuli and would make a poor discriminator. Four
        // independent limb accumulators keep the fold off the measured
        // loop's critical path.
        let mut acc = [0u64; 4];
        let my_batches = batches as usize / threads + usize::from(t < batches as usize % threads);
        for _ in 0..my_batches {
            // Every sequence starts from the all-zero reset state.
            dff_state.fill(W::zeros());
            for _frame in 0..frames {
                for w in &mut inputs {
                    *w = W::from_limbs(|_| next());
                }
                if stepped {
                    sim.step_frame(&inputs, &mut dff_state, &mut values);
                } else {
                    sim.eval_into(&inputs, &mut values);
                }
                for v in &values {
                    for i in 0..W::LIMBS {
                        let a = &mut acc[i % 4];
                        *a = a.rotate_left(1) ^ v.limb(i);
                    }
                }
            }
        }
        acc
    };
    let start = std::time::Instant::now();
    let accs: Vec<[u64; 4]> = if threads <= 1 {
        vec![worker(0)]
    } else {
        std::thread::scope(|scope| {
            let worker = &worker;
            let handles: Vec<_> = (0..threads)
                .map(|t| scope.spawn(move || worker(t)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("sim worker never panics"))
                .collect()
        })
    };
    let mut checksum = 0u64;
    for acc in &accs {
        let c = acc[0] ^ acc[1].rotate_left(16) ^ acc[2].rotate_left(32) ^ acc[3].rotate_left(48);
        checksum = checksum.rotate_left(8) ^ c;
    }
    let elapsed = start.elapsed().as_secs_f64();
    let evaluated = batches * u64::from(W::LANES) * frames as u64;
    println!(
        "{}: {} gates, {evaluated} patterns in {elapsed:.3} s = {:.3e} patterns/s \
         ({:.3e} gate-evals/s), backend {backend}, lanes {lanes}, frames {frames}, \
         {threads} thread(s), value checksum {checksum:#018x}",
        cut.name(),
        cut.gate_count(),
        evaluated as f64 / elapsed,
        evaluated as f64 * cut.gate_count() as f64 / elapsed,
    );
}

fn cmd_faults(rest: &[String]) -> Result<(), CliError> {
    use iddq_logicsim::fault_sweep::{FaultSweepOptions, LogicFault};
    use iddq_logicsim::logic_test::StuckAtFault;
    use iddq_logicsim::BackendKind;
    use iddq_netlist::LaneWidth;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    let path = rest
        .first()
        .filter(|a| !a.starts_with("--"))
        .ok_or_else(|| CliError::usage(USAGE))?;
    let cut = load(path)?;
    let seed: u64 = parse_num(rest, "--seed", 42)?;
    let num_vectors: usize = parse_num(rest, "--vectors", 256usize)?;
    if num_vectors == 0 {
        return Err(CliError::usage("--vectors must be at least 1"));
    }
    let bridges: usize = parse_num(rest, "--bridges", 32usize)?;
    let backend: BackendKind = match parse_flag(rest, "--backend") {
        None => BackendKind::Delta,
        Some(v) => v.parse().map_err(|e| CliError::usage(format!("{e}")))?,
    };
    let lanes = match parse_lanes(rest)? {
        Some(width) => width,
        None => calibrate_lanes(&cut),
    };
    let frames: usize = parse_num(rest, "--frames", 1usize)?;
    if frames == 0 {
        return Err(CliError::usage("--frames must be at least 1"));
    }
    let options = FaultSweepOptions {
        threads: parse_num(rest, "--threads", 1usize)?,
        fault_shards: parse_num(rest, "--shards", 0usize)?,
        fault_dropping: !rest.iter().any(|a| a == "--no-drop"),
        backend,
        frames,
        ..FaultSweepOptions::default()
    };
    let mut budget = RunBudget::unlimited();
    if let Some(ms) = parse_opt_num::<u64>(rest, "--budget-ms")? {
        budget = budget.with_timeout(std::time::Duration::from_millis(ms));
    }
    if let Some(quota) = parse_opt_num::<u64>(rest, "--quota")? {
        budget = budget.with_quota(quota);
    }
    let control = RunControl::with_budget(budget);
    let checkpoint_path = parse_flag(rest, "--checkpoint");
    let resume_path = parse_flag(rest, "--resume");

    // Fault universe: both stuck-at polarities on every node, plus bridges
    // sampled with the IDDQ enumerator's locality model.
    let mut faults: Vec<LogicFault> = cut
        .node_ids()
        .flat_map(|node| {
            [false, true]
                .map(|stuck_at_one| LogicFault::StuckAt(StuckAtFault { node, stuck_at_one }))
        })
        .collect();
    let stuck_at_count = faults.len();
    faults.extend(
        iddq_logicsim::faults::enumerate(
            &cut,
            &iddq_logicsim::faults::FaultUniverseConfig {
                bridges,
                gos_fraction: 0.0,
                stuck_on_fraction: 0.0,
                ..Default::default()
            },
            seed,
        )
        .into_iter()
        .filter_map(|f| match f {
            iddq_logicsim::faults::IddqFault::Bridge { a, b, .. } => {
                Some(LogicFault::Bridge { a, b })
            }
            _ => None,
        }),
    );
    let bridge_count = faults.len() - stuck_at_count;

    let mut rng = SmallRng::seed_from_u64(seed ^ 0xfa17);
    let vectors: Vec<Vec<bool>> = (0..num_vectors)
        .map(|_| (0..cut.num_inputs()).map(|_| rng.gen()).collect())
        .collect();

    let start = std::time::Instant::now();
    let run = RunPaths {
        control: &control,
        resume: resume_path.as_deref(),
        checkpoint: checkpoint_path.as_deref(),
    };
    let outcome = match lanes {
        LaneWidth::L64 => run_fault_sweep::<u64>(&cut, &faults, &vectors, &options, &run),
        LaneWidth::L256 => {
            run_fault_sweep::<iddq_netlist::W256>(&cut, &faults, &vectors, &options, &run)
        }
        LaneWidth::L512 => {
            run_fault_sweep::<iddq_netlist::W512>(&cut, &faults, &vectors, &options, &run)
        }
    }?;
    let elapsed = start.elapsed().as_secs_f64();
    let work_coverage = outcome.coverage();
    let stop_reason = outcome.stop_reason();
    let outcome = outcome.into_value();
    let detected = outcome.detected.iter().filter(|&&d| d).count();
    println!(
        "{}: {stuck_at_count} stuck-at + {bridge_count} bridge faults x {num_vectors} vectors \
         (frames {frames}): {detected} detected ({:.1}% coverage) in {elapsed:.3} s, \
         backend {backend}, lanes {lanes}, {} thread(s), dropping {}, \
         mean dirty cone {:.1} of {} nodes",
        cut.name(),
        outcome.coverage * 100.0,
        if options.threads == 0 {
            "auto".to_owned()
        } else {
            options.threads.to_string()
        },
        if options.fault_dropping { "on" } else { "off" },
        outcome.mean_dirty_nodes,
        cut.node_count(),
    );
    if let Some(reason) = stop_reason {
        // A budget-limited sweep is a *successful* partial run (exit 0):
        // every detection it reports comes from fully completed pattern
        // batches, and the grid coverage says how much work remains.
        println!(
            "partial: stopped early ({reason}); {:.1}% of the fault x pattern grid completed{}",
            work_coverage * 100.0,
            if checkpoint_path.is_some() {
                " -- resume with --resume <checkpoint>"
            } else {
                ""
            },
        );
    }
    Ok(())
}

/// The control/resume/checkpoint context threaded through the
/// lane-width dispatch of `cmd_faults`.
struct RunPaths<'a> {
    control: &'a RunControl,
    resume: Option<&'a str>,
    checkpoint: Option<&'a str>,
}

/// Runs one fault sweep at a fixed lane width: resume from a checkpoint
/// if asked (validated against this exact run configuration), and write
/// a checkpoint of whatever completed — atomically, so an interrupted
/// write can never destroy the previous checkpoint.
fn run_fault_sweep<W: iddq_netlist::PackedWord>(
    cut: &Netlist,
    faults: &[iddq_logicsim::fault_sweep::LogicFault],
    vectors: &[Vec<bool>],
    options: &iddq_logicsim::fault_sweep::FaultSweepOptions,
    run: &RunPaths<'_>,
) -> Result<iddq_control::Outcome<iddq_logicsim::fault_sweep::FaultSweepOutcome>, CliError> {
    use iddq_logicsim::fault_sweep::{sweep_resume, sweep_with_control, SweepCheckpoint};
    let outcome = match run.resume {
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read checkpoint `{path}`: {e}"))?;
            let cp = SweepCheckpoint::from_json(&text)?;
            sweep_resume::<W>(cut, faults, vectors, options, run.control, &cp)?
        }
        None => sweep_with_control::<W>(cut, faults, vectors, options, run.control),
    };
    if let Some(path) = run.checkpoint {
        let cp = SweepCheckpoint::capture::<W>(cut, faults, vectors, options, outcome.value());
        write_atomic(std::path::Path::new(path), &cp.to_json())?;
        eprintln!(
            "wrote checkpoint {path} ({:.1}% of the pattern grid done)",
            cp.progress() * 100.0
        );
    }
    Ok(outcome)
}

/// Stuck-at-everywhere plus sampled bridges: the same fault universe
/// `cmd_faults` sweeps, shared by the `seq` command and its smoke.
fn logic_fault_universe(
    cut: &Netlist,
    bridges: usize,
    seed: u64,
) -> Vec<iddq_logicsim::fault_sweep::LogicFault> {
    use iddq_logicsim::fault_sweep::LogicFault;
    use iddq_logicsim::logic_test::StuckAtFault;
    let mut faults: Vec<LogicFault> = cut
        .node_ids()
        .flat_map(|node| {
            [false, true]
                .map(|stuck_at_one| LogicFault::StuckAt(StuckAtFault { node, stuck_at_one }))
        })
        .collect();
    faults.extend(
        iddq_logicsim::faults::enumerate(
            cut,
            &iddq_logicsim::faults::FaultUniverseConfig {
                bridges,
                gos_fraction: 0.0,
                stuck_on_fraction: 0.0,
                ..Default::default()
            },
            seed,
        )
        .into_iter()
        .filter_map(|f| match f {
            iddq_logicsim::faults::IddqFault::Bridge { a, b, .. } => {
                Some(LogicFault::Bridge { a, b })
            }
            _ => None,
        }),
    );
    faults
}

/// The `seq` command: end-to-end sequential check on a generated
/// ISCAS-89-like circuit — a multi-frame fault sweep where every lane
/// carries one reset sequence, reporting how many detections needed
/// latched state (a first detection at frame > 0 of its sequence).
fn cmd_seq(rest: &[String]) -> Result<(), CliError> {
    use iddq_logicsim::fault_sweep::{sweep_with_control, FaultSweepOptions};
    use iddq_logicsim::BackendKind;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    if rest.iter().any(|a| a == "--smoke") {
        return seq_smoke();
    }

    let name = parse_flag(rest, "--circuit").unwrap_or_else(|| "s298".into());
    let profile = iddq_gen::seq::SeqProfile::by_name(&name).ok_or_else(|| {
        CliError::usage(format!("unknown sequential circuit `{name}` (s27..s5378)"))
    })?;
    let seed: u64 = parse_num(rest, "--seed", 42)?;
    let frames: usize = parse_num(rest, "--frames", 4usize)?;
    if frames == 0 {
        return Err(CliError::usage("--frames must be at least 1"));
    }
    let sequences: usize = parse_num(rest, "--sequences", 256usize)?;
    if sequences == 0 {
        return Err(CliError::usage("--sequences must be at least 1"));
    }
    let bridges: usize = parse_num(rest, "--bridges", 32usize)?;
    let backend: BackendKind = match parse_flag(rest, "--backend") {
        None => BackendKind::Delta,
        Some(v) => v.parse().map_err(|e| CliError::usage(format!("{e}")))?,
    };
    let options = FaultSweepOptions {
        threads: parse_num(rest, "--threads", 1usize)?,
        fault_shards: parse_num(rest, "--shards", 0usize)?,
        backend,
        frames,
        ..FaultSweepOptions::default()
    };

    let cut = iddq_gen::seq::generate(profile, seed);
    let faults = logic_fault_universe(&cut, bridges, seed);
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xfa17);
    let vectors: Vec<Vec<bool>> = (0..sequences * frames)
        .map(|_| (0..cut.num_inputs()).map(|_| rng.gen()).collect())
        .collect();

    let start = Instant::now();
    let outcome = sweep_with_control::<iddq_netlist::W256>(
        &cut,
        &faults,
        &vectors,
        &options,
        &RunControl::unlimited(),
    )
    .into_value();
    let elapsed = start.elapsed().as_secs_f64();
    let detected = outcome.detected.iter().filter(|&&d| d).count();
    // The sequential payoff: a first detection at frame > 0 of its
    // sequence means the exposing state was *reached*, not applied.
    let state_needed = outcome
        .first_detection
        .iter()
        .flatten()
        .filter(|&&v| v % frames > 0)
        .count();
    println!(
        "{}: {} dffs, {} faults x {sequences} sequences x {frames} frames: \
         {detected} detected ({:.1}% coverage), {state_needed} only beyond frame 0, \
         in {elapsed:.3} s, backend {backend}, {} thread(s)",
        cut.name(),
        cut.num_state_elements(),
        faults.len(),
        outcome.coverage * 100.0,
        if options.threads == 0 {
            "auto".to_owned()
        } else {
            options.threads.to_string()
        },
    );
    Ok(())
}

/// The fixed `seq --smoke` scenario: one small sequential circuit, one
/// combinational control — every check asserted, all under a minute.
fn seq_smoke() -> Result<(), CliError> {
    use iddq_logicsim::fault_sweep::{
        sweep_resume, sweep_with_control, FaultSweepOptions, SweepCheckpoint,
    };
    use iddq_logicsim::BackendKind;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    let mut checks: Vec<String> = Vec::new();
    let seed = 42u64;
    let frames = 3usize;
    let profile =
        iddq_gen::seq::SeqProfile::by_name("s27").ok_or_else(|| "s27 profile exists".to_owned())?;
    let cut = iddq_gen::seq::generate(profile, seed);
    let faults = logic_fault_universe(&cut, 8, seed);
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xfa17);
    let vectors: Vec<Vec<bool>> = (0..256 * frames)
        .map(|_| (0..cut.num_inputs()).map(|_| rng.gen()).collect())
        .collect();

    // 1. Base multi-frame sweep on the patch engine.
    let base_options = FaultSweepOptions {
        frames,
        backend: BackendKind::Delta,
        ..FaultSweepOptions::default()
    };
    let base = sweep_with_control::<u64>(
        &cut,
        &faults,
        &vectors,
        &base_options,
        &RunControl::unlimited(),
    )
    .into_value();
    let detected = base.detected.iter().filter(|&&d| d).count();
    if detected == 0 {
        return Err("seq smoke: base sweep detected nothing".to_owned().into());
    }
    checks.push(format!(
        "multi-frame sweep: {detected}/{} faults detected on {} ({} dffs, {frames} frames)",
        faults.len(),
        cut.name(),
        cut.num_state_elements(),
    ));

    // 2. Detections are invariant under backend, threads and shards.
    let grid_options = FaultSweepOptions {
        frames,
        backend: BackendKind::Csr,
        threads: 2,
        fault_shards: 3,
        ..FaultSweepOptions::default()
    };
    let grid = sweep_with_control::<u64>(
        &cut,
        &faults,
        &vectors,
        &grid_options,
        &RunControl::unlimited(),
    )
    .into_value();
    if grid.first_detection != base.first_detection {
        return Err("seq smoke: csr/threads/shards grid changed the detections"
            .to_owned()
            .into());
    }
    checks.push("grid invariance: csr x 2 threads x 3 shards bit-identical".into());

    // 3. Interrupt on a work quota, checkpoint, resume to completion.
    let interrupted = sweep_with_control::<u64>(
        &cut,
        &faults,
        &vectors,
        &base_options,
        &RunControl::with_budget(RunBudget::unlimited().with_quota(200)),
    );
    if interrupted.stop_reason().is_none() {
        return Err("seq smoke: quota 200 did not interrupt the sweep"
            .to_owned()
            .into());
    }
    let cp = SweepCheckpoint::capture::<u64>(
        &cut,
        &faults,
        &vectors,
        &base_options,
        interrupted.value(),
    );
    let resumed = sweep_resume::<u64>(
        &cut,
        &faults,
        &vectors,
        &base_options,
        &RunControl::unlimited(),
        &cp,
    )?
    .into_value();
    if resumed.first_detection != base.first_detection {
        return Err(
            "seq smoke: resumed sweep differs from the uninterrupted one"
                .to_owned()
                .into(),
        );
    }
    checks.push(format!(
        "checkpoint resume: interrupted at {:.0}% of the grid, resumed bit-identical",
        cp.progress() * 100.0
    ));

    // 4. On a DFF-free circuit, frame grouping is a pure relabelling.
    let comb = iddq_netlist::data::c17();
    let comb_faults = logic_fault_universe(&comb, 4, seed);
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xc0);
    let comb_vectors: Vec<Vec<bool>> = (0..192)
        .map(|_| (0..comb.num_inputs()).map(|_| rng.gen()).collect())
        .collect();
    let flat = sweep_with_control::<u64>(
        &comb,
        &comb_faults,
        &comb_vectors,
        &FaultSweepOptions::default(),
        &RunControl::unlimited(),
    )
    .into_value();
    let framed = sweep_with_control::<u64>(
        &comb,
        &comb_faults,
        &comb_vectors,
        &FaultSweepOptions {
            frames,
            ..FaultSweepOptions::default()
        },
        &RunControl::unlimited(),
    )
    .into_value();
    if flat.first_detection != framed.first_detection {
        return Err(
            "seq smoke: frames changed detections on a combinational circuit"
                .to_owned()
                .into(),
        );
    }
    checks.push(format!(
        "combinational invariance: c17 at frames {frames} == frames 1"
    ));

    // 5. Time-frame-expanded ATPG is deterministic and sequence-major.
    let iddq_faults = iddq_logicsim::faults::enumerate(&cut, &Default::default(), seed);
    let cfg = iddq_atpg::AtpgConfig::default();
    let a = iddq_atpg::generate_seq(&cut, &iddq_faults, &cfg, seed, frames)
        .map_err(|e| format!("seq smoke: unroll for ATPG: {e}"))?;
    let b = iddq_atpg::generate_seq(&cut, &iddq_faults, &cfg, seed, frames)
        .map_err(|e| format!("seq smoke: unroll for ATPG: {e}"))?;
    if a.vectors != b.vectors || a.vectors.len() % frames != 0 {
        return Err(
            "seq smoke: sequential ATPG is not deterministic sequence-major"
                .to_owned()
                .into(),
        );
    }
    checks.push(format!(
        "sequential ATPG: {} sequences, {:.1}% activation coverage, deterministic",
        a.vectors.len() / frames,
        a.coverage * 100.0
    ));

    for check in &checks {
        println!("smoke ok: {check}");
    }
    println!("seq smoke OK: {} checks passed", checks.len());
    Ok(())
}

fn cmd_stats(rest: &[String]) -> Result<(), CliError> {
    let path = rest
        .first()
        .filter(|a| !a.starts_with("--"))
        .ok_or_else(|| CliError::usage(USAGE))?;
    let cut = load(path)?;
    let depth = iddq_netlist::levelize::depth(&cut);
    println!(
        "{}: {} inputs, {} outputs, {} gates, depth {}",
        cut.name(),
        cut.num_inputs(),
        cut.num_outputs(),
        cut.gate_count(),
        depth
    );
    let mut by_kind: std::collections::BTreeMap<String, usize> = Default::default();
    for g in cut.gate_ids() {
        let node = cut.node(g);
        let kind = node.kind().cell_kind().expect("gate");
        let n = node.fanin().len();
        let cell = if n > 1 {
            format!("{kind}{n}")
        } else {
            kind.to_string()
        };
        *by_kind.entry(cell).or_default() += 1;
    }
    for (cell, count) in by_kind {
        println!("  {cell:<8} {count}");
    }
    if rest.iter().any(|a| a == "--memory") {
        report_memory(&cut, rest)?;
    }
    Ok(())
}

/// Formats a byte count with a binary-unit suffix.
fn human_bytes(bytes: usize) -> String {
    const MIB: f64 = 1024.0 * 1024.0;
    let b = bytes as f64;
    if b >= 1024.0 * MIB {
        format!("{:.2} GiB", b / (1024.0 * MIB))
    } else if b >= MIB {
        format!("{:.2} MiB", b / MIB)
    } else if b >= 1024.0 {
        format!("{:.1} KiB", b / 1024.0)
    } else {
        format!("{bytes} B")
    }
}

/// The `stats --memory` report: measured (capacity-accurate) footprints
/// of every engine representation of the circuit, each with its per-node
/// byte budget. This is the scaling proof for million-gate circuits —
/// the mutable graph is the only per-node-allocating structure; every
/// engine compiles into flat `u32`-indexed arrays whose per-node cost is
/// independent of circuit size.
fn report_memory(cut: &Netlist, rest: &[String]) -> Result<(), CliError> {
    let default_rho = PartitionConfig::paper_default().rho;
    let rho: u32 = parse_num(rest, "--rho", default_rho)?;
    if rho == 0 {
        return Err(CliError::usage("--rho must be at least 1"));
    }
    let nodes = cut.node_count();
    let line = |label: &str, bytes: usize, note: &str| {
        println!(
            "  {label:<22} {:>12}  ({:>7.1} B/node){}{note}",
            human_bytes(bytes),
            bytes as f64 / nodes.max(1) as f64,
            if note.is_empty() { "" } else { "  " },
        );
    };
    println!("memory at {nodes} nodes:");
    line("netlist graph", cut.memory_bytes(), "mutable front door");
    let sim = iddq_logicsim::Simulator::new(cut);
    line("csr schedule", sim.memory_bytes(), "immutable sweep kernel");
    for width in iddq_netlist::LaneWidth::ALL {
        let bytes = nodes * width.lanes() as usize / 8;
        line(&format!("packed values @{width}"), bytes, "one value/lane");
    }
    let delta = iddq_logicsim::delta::DeltaSim::<u64>::new(cut);
    line(
        "delta engine @64",
        delta.memory_bytes(),
        "incremental fault-patch state",
    );
    let control = RunControl::unlimited();
    let oracle =
        iddq_netlist::separation::SeparationOracle::new_streamed_with_control(cut, rho, &control)
            .into_value();
    line(
        &format!("separation oracle p{rho}"),
        oracle.memory_bytes(),
        &format!("{} entries, streamed build", oracle.entry_count()),
    );
    let table = iddq_netlist::separation::GateSeparationTable::direct(cut, rho, 1);
    line(
        &format!("gate-sep table p{rho}"),
        table.memory_bytes(),
        &format!("{} entries", table.entry_count()),
    );
    Ok(())
}

/// Per-node byte ceilings the `scale` check asserts. Generous versus the
/// measured footprints (~160 B/node graph, ~18 B/node CSR on the mega
/// profile) so only a genuine layout regression — a per-node allocation,
/// an index widened past u32, struct padding — trips them.
const SCALE_MAX_GRAPH_BYTES_PER_NODE: f64 = 256.0;
const SCALE_MAX_CSR_BYTES_PER_NODE: f64 = 48.0;

/// The `scale` command: a fast scale-regression check on a generated
/// mega-circuit. One wall-clock [`RunBudget`] spans every phase —
/// generation, CSR build, one full 64-pattern sweep, a GateSep analysis
/// context, and one resynthesis probe (apply + rollback, asserted to
/// restore the cost bit-identically) — so a regression that makes any
/// phase crawl fails fast instead of hanging CI, and the per-node memory
/// ceilings catch packed-state layout regressions.
fn cmd_scale(rest: &[String]) -> Result<(), CliError> {
    use iddq_core::{AnalysisTier, EvalContext, ResynthEval};
    let smoke = rest.iter().any(|a| a == "--smoke");
    let gates: usize = parse_num(rest, "--gates", if smoke { 100_000 } else { 1_000_000 })?;
    if gates == 0 {
        return Err(CliError::usage("--gates must be at least 1"));
    }
    let seed: u64 = parse_num(rest, "--seed", 0x5ca1e)?;
    let rho: u32 = parse_num(rest, "--rho", 3)?;
    if rho == 0 {
        return Err(CliError::usage("--rho must be at least 1"));
    }
    let budget_ms: u64 = parse_num(rest, "--budget-ms", if smoke { 60_000 } else { 600_000 })?;
    let control = RunControl::with_budget(
        RunBudget::unlimited().with_timeout(std::time::Duration::from_millis(budget_ms)),
    );
    let gate = |phase: &str| -> Result<(), CliError> {
        match control.check() {
            None => Ok(()),
            Some(reason) => Err(format!(
                "scale check over its {budget_ms} ms budget after {phase} ({reason})"
            )
            .into()),
        }
    };

    // Same profile as the bench's `scale` section, so the two agree on
    // what "the 10^5/10^6-gate circuit" means.
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    let inputs = ((gates as f64).sqrt().round() as usize).max(64);
    let t0 = Instant::now();
    let nl = iddq_gen::mega::generate(&iddq_gen::mega::MegaConfig {
        gates,
        inputs,
        depth: 16,
        seed,
    });
    let t_gen = t0.elapsed().as_secs_f64();
    gate("generation")?;

    let nodes = nl.node_count();
    let t0 = Instant::now();
    let sim = iddq_logicsim::Simulator::new(&nl);
    let t_build = t0.elapsed().as_secs_f64();
    gate("CSR build")?;
    let graph_per_node = nl.memory_bytes() as f64 / nodes as f64;
    let csr_per_node = sim.memory_bytes() as f64 / nodes as f64;
    println!(
        "mega {gates}: gen {t_gen:.2} s, csr build {t_build:.2} s; graph {} \
         ({graph_per_node:.1} B/node), csr {} ({csr_per_node:.1} B/node)",
        human_bytes(nl.memory_bytes()),
        human_bytes(sim.memory_bytes()),
    );
    if graph_per_node > SCALE_MAX_GRAPH_BYTES_PER_NODE {
        return Err(format!(
            "netlist graph at {graph_per_node:.1} B/node exceeds the \
             {SCALE_MAX_GRAPH_BYTES_PER_NODE:.0} B/node ceiling"
        )
        .into());
    }
    if csr_per_node > SCALE_MAX_CSR_BYTES_PER_NODE {
        return Err(format!(
            "csr schedule at {csr_per_node:.1} B/node exceeds the \
             {SCALE_MAX_CSR_BYTES_PER_NODE:.0} B/node ceiling"
        )
        .into());
    }

    let input_words: Vec<u64> = (0..nl.num_inputs() as u64)
        .map(|i| i.wrapping_mul(0x9e37_79b9_7f4a_7c15))
        .collect();
    let mut values = vec![0u64; sim.node_count()];
    let t0 = Instant::now();
    sim.eval_into(&input_words, &mut values);
    let t_sweep = t0.elapsed().as_secs_f64();
    gate("the full sweep")?;
    println!("  sweep: 64 patterns end-to-end in {:.1} ms", t_sweep * 1e3);

    let library = Library::generic_1um();
    let mut config = PartitionConfig::paper_default();
    config.rho = rho;
    let t0 = Instant::now();
    let ctx = EvalContext::builder(&nl, &library, config)
        .tier(AnalysisTier::GateSep)
        .build();
    let t_ctx = t0.elapsed().as_secs_f64();
    gate("the analysis context build")?;

    let widest = nl
        .gate_ids()
        .max_by_key(|&g| nl.node(g).fanin().len())
        .expect("a generated mega-circuit always has gates");
    let probe = iddq_synth::decompose_gate_patch(
        &nl,
        widest,
        iddq_synth::DecompositionStyle::Chain,
        2,
        nl.node_count() as u32,
    )?
    .ok_or_else(|| "the widest mega gate always decomposes".to_owned())?;
    let mut eval = ResynthEval::new(&ctx);
    let cost_before = eval.total_cost();
    let t0 = Instant::now();
    let impact = eval
        .apply(&probe)
        .map_err(|e| format!("scale probe: {e}"))?;
    eval.rollback();
    let t_probe = t0.elapsed().as_secs_f64();
    gate("the resynthesis probe")?;
    let cost_after = eval.total_cost();
    if cost_after.to_bits() != cost_before.to_bits() {
        return Err(
            format!("probe rollback is not bit-identical: {cost_before} -> {cost_after}").into(),
        );
    }
    println!(
        "  probe: context (rho {rho}) {t_ctx:.2} s; decompose gate {} \
         ({} ops, {} rows rescored) apply+rollback in {:.1} ms, \
         cost restored bit-identically",
        nl.node_name(widest),
        probe.ops.len(),
        impact.separation_recomputed,
        t_probe * 1e3,
    );
    println!(
        "scale OK: {gates} gates within the {:.0} s budget",
        budget_ms as f64 / 1e3
    );
    Ok(())
}

fn cmd_serve(rest: &[String]) -> Result<(), CliError> {
    use iddq_serve::{Client, Server, ServerConfig};

    if rest.iter().any(|a| a == "--smoke") {
        let report = iddq_serve::run_smoke()?;
        for check in &report.checks {
            println!("smoke ok: {check}");
        }
        println!("serve smoke OK: {} checks passed", report.checks.len());
        return Ok(());
    }

    let addr = parse_flag(rest, "--addr");
    if let Some(request) = parse_flag(rest, "--call") {
        // One-shot client mode.
        let addr = addr.ok_or_else(|| CliError::usage("--call needs --addr HOST:PORT"))?;
        let value: serde_json::Value = serde_json::from_str(&request)
            .map_err(|e| CliError::usage(format!("--call expects a JSON request: {e}")))?;
        let retries: u32 = parse_num(rest, "--retries", 3)?;
        let retry_seed: u64 = parse_num(rest, "--retry-seed", 0x1dd9)?;
        let mut client = Client::connect(&addr)?;
        let response =
            client.call_with_retry(&value, &iddq_serve::RetryPolicy::new(retries, retry_seed))?;
        println!("{}", serde_json::to_string(&response).unwrap_or_default());
        if response["status"] == "error" {
            return Err(format!(
                "server answered with an error: {}",
                response["error"]["message"].as_str().unwrap_or("unknown")
            )
            .into());
        }
        return Ok(());
    }

    let workers: usize = parse_num(rest, "--workers", 2)?;
    let queue: usize = parse_num(rest, "--queue", 16)?;
    let cache_mb: usize = parse_num(rest, "--cache-mb", 64)?;
    let rho: u32 = parse_num(rest, "--rho", 6)?;
    if workers == 0 || queue == 0 || rho == 0 {
        return Err(CliError::usage(
            "--workers, --queue and --rho must be at least 1",
        ));
    }
    let budget_ms: Option<u64> = parse_opt_num(rest, "--budget-ms")?;
    let max_secs: Option<u64> = parse_opt_num(rest, "--max-secs")?;
    let state_dir = parse_flag(rest, "--state-dir").unwrap_or_else(|| ".iddq-serve".into());
    let store_dir = parse_flag(rest, "--store-dir");
    let store_mb: u64 = parse_num(rest, "--store-mb", 256)?;
    let config = ServerConfig {
        addr: addr.unwrap_or_else(|| "127.0.0.1:0".into()),
        workers,
        queue_capacity: queue,
        cache_bytes: cache_mb << 20,
        state_dir: state_dir.into(),
        store_dir: store_dir.map(std::path::PathBuf::from),
        store_bytes: store_mb << 20,
        rho,
        global_budget: match budget_ms {
            None => RunBudget::unlimited(),
            Some(ms) => RunBudget::unlimited().with_timeout(std::time::Duration::from_millis(ms)),
        },
        ..ServerConfig::default()
    };
    let server = Server::start(config)?;
    // The address line is the startup contract: callers parse it to
    // learn the port when binding to :0.
    println!("listening on {}", server.local_addr());
    let drain = server.drain_signal();
    let deadline = max_secs.map(|s| Instant::now() + std::time::Duration::from_secs(s));
    // Serve until a client sends `drain` (or the kill token fires, or
    // --max-secs elapses), then finish accepted work and exit.
    loop {
        if drain.is_draining() || deadline.is_some_and(|d| Instant::now() >= d) {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(50));
    }
    let metrics = server.shutdown(std::time::Duration::from_secs(30));
    println!(
        "drained: {} completed, {} shed, {} partial, {} degraded, {} panics, {} restarts",
        metrics["completed"].as_u64().unwrap_or(0),
        metrics["shed"].as_u64().unwrap_or(0),
        metrics["partial"].as_u64().unwrap_or(0),
        metrics["degraded"].as_u64().unwrap_or(0),
        metrics["panics_caught"].as_u64().unwrap_or(0),
        metrics["worker_restarts"].as_u64().unwrap_or(0),
    );
    Ok(())
}

fn cmd_chaos(rest: &[String]) -> Result<(), CliError> {
    use iddq_serve::ChaosOptions;

    let options = if rest.iter().any(|a| a == "--smoke") {
        ChaosOptions::smoke()
    } else {
        ChaosOptions::full()
    };
    let schedules = options.sweep_schedules + options.store_schedules;
    println!(
        "chaos: {} sweep crash/restart schedules + {} store fault schedules...",
        options.sweep_schedules, options.store_schedules
    );
    // Any violated invariant surfaces here as a seed-stamped message
    // (exit 1); reaching the report means every schedule held.
    let report = iddq_serve::run_chaos(&options)?;
    println!(
        "  {} restarts survived, {} corrupt checkpoints recovered, \
         {} checkpoint saves failed typed",
        report.restarts, report.checkpoint_recoveries, report.save_failures
    );
    println!(
        "  store: {} hits (bit-identical), {} misses rebuilt, {} entries quarantined",
        report.store_hits, report.store_misses, report.quarantined
    );
    println!(
        "chaos OK: {schedules} schedules, {} faults injected, every digest bit-identical",
        report.faults_injected
    );
    Ok(())
}
