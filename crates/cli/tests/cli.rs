//! End-to-end tests of the `iddq` binary.

use std::path::PathBuf;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_iddq"))
}

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("iddq-cli-test-{}-{name}", std::process::id()));
    p
}

#[test]
fn help_prints_usage() {
    let out = bin().arg("help").output().expect("binary runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("synth"));
    assert!(text.contains("gen"));
}

#[test]
fn unknown_command_is_a_usage_error() {
    let out = bin().arg("frobnicate").output().expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn no_args_fails_with_code_2() {
    let out = bin().output().expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn gen_stats_synth_test_pipeline() {
    let bench_path = tmp("c432.bench");
    let json_path = tmp("c432.json");

    // gen
    let out = bin()
        .args(["gen", "c432", "--seed", "7", "--out"])
        .arg(&bench_path)
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // stats
    let out = bin().arg("stats").arg(&bench_path).output().expect("runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("160 gates"), "{text}");

    // synth with JSON dump
    let out = bin()
        .args(["synth"])
        .arg(&bench_path)
        .args(["--generations", "20", "--json"])
        .arg(&json_path)
        .output()
        .expect("runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("modules"), "{text}");
    let json: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&json_path).expect("json written"))
            .expect("valid json");
    assert_eq!(json["gates"], 160);
    assert!(json["feasible"].as_bool().expect("bool"));

    // iddq test experiment
    let out = bin().arg("test").arg(&bench_path).output().expect("runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("coverage"), "{text}");

    let _ = std::fs::remove_file(bench_path);
    let _ = std::fs::remove_file(json_path);
}

#[test]
fn gen_unknown_circuit_is_a_usage_error() {
    let out = bin().args(["gen", "c9999"]).output().expect("runs");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown circuit"));
}

#[test]
fn synth_missing_file_is_an_error() {
    let out = bin()
        .args(["synth", "/nonexistent.bench"])
        .output()
        .expect("runs");
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot read"));
}

#[test]
fn resynth_flag_runs() {
    let bench_path = tmp("resynth.bench");
    bin()
        .args(["gen", "c432", "--out"])
        .arg(&bench_path)
        .output()
        .expect("runs");
    let out = bin()
        .args(["synth"])
        .arg(&bench_path)
        .args(["--generations", "10", "--resynth"])
        .output()
        .expect("runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stderr).contains("resynthesis"));
    let _ = std::fs::remove_file(bench_path);
}

#[test]
fn sim_backend_and_threads_flags() {
    let bench_path = tmp("c432-backend.bench");
    let out = bin()
        .args(["gen", "c432", "--seed", "5", "--out"])
        .arg(&bench_path)
        .output()
        .expect("binary runs");
    assert!(out.status.success());

    let run = |extra: &[&str]| {
        let out = bin()
            .arg("sim")
            .arg(&bench_path)
            .args(["--patterns", "2048", "--seed", "7"])
            .args(extra)
            .output()
            .expect("binary runs");
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8_lossy(&out.stdout).into_owned()
    };
    let checksum = |t: &str| {
        t.split("checksum ")
            .nth(1)
            .expect("checksum printed")
            .trim()
            .to_string()
    };

    // Both engines evaluate the same pattern stream bit-for-bit.
    let csr = run(&["--backend", "csr"]);
    let delta = run(&["--backend", "delta"]);
    assert!(csr.contains("backend csr"), "{csr}");
    assert!(delta.contains("backend delta"), "{delta}");
    assert_eq!(checksum(&csr), checksum(&delta));

    // Threaded sharding is deterministic for a fixed thread count.
    let t2a = run(&["--threads", "2"]);
    let t2b = run(&["--threads", "2", "--backend", "delta"]);
    assert!(t2a.contains("2 thread(s)"), "{t2a}");
    assert_eq!(checksum(&t2a), checksum(&t2b));

    // An unknown backend is a usage error (exit 2).
    let out = bin()
        .arg("sim")
        .arg(&bench_path)
        .args(["--backend", "warp"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown backend"));

    let _ = std::fs::remove_file(bench_path);
}

#[test]
fn sim_lanes_flag_selects_width() {
    let bench_path = tmp("c432-lanes.bench");
    let out = bin()
        .args(["gen", "c432", "--seed", "11", "--out"])
        .arg(&bench_path)
        .output()
        .expect("binary runs");
    assert!(out.status.success());

    for lanes in ["64", "256", "512"] {
        let out = bin()
            .arg("sim")
            .arg(&bench_path)
            .args(["--patterns", "1024", "--lanes", lanes])
            .output()
            .expect("binary runs");
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        let text = String::from_utf8_lossy(&out.stdout);
        assert!(text.contains(&format!("lanes {lanes}")), "{text}");
    }

    let out = bin()
        .arg("sim")
        .arg(&bench_path)
        .args(["--lanes", "128"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown lane width"));

    let _ = std::fs::remove_file(bench_path);
}

#[test]
fn sim_and_faults_accept_lanes_auto() {
    let bench_path = tmp("c432-lanes-auto.bench");
    let out = bin()
        .args(["gen", "c432", "--seed", "17", "--out"])
        .arg(&bench_path)
        .output()
        .expect("binary runs");
    assert!(out.status.success());

    // `--lanes auto` calibrates on the loaded circuit, announces the
    // measured rates on stderr, and runs at the picked width.
    let out = bin()
        .arg("sim")
        .arg(&bench_path)
        .args(["--patterns", "1024", "--lanes", "auto"])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("lanes auto:"), "{err}");
    assert!(err.contains("picked"), "{err}");
    let text = String::from_utf8_lossy(&out.stdout);
    let picked = ["lanes 64", "lanes 256", "lanes 512"]
        .iter()
        .any(|w| text.contains(w));
    assert!(picked, "{text}");

    // The fault sweep accepts the same selector.
    let out = bin()
        .arg("faults")
        .arg(&bench_path)
        .args(["--vectors", "64", "--bridges", "4", "--lanes", "auto"])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stderr).contains("lanes auto:"));

    let _ = std::fs::remove_file(bench_path);
}

#[test]
fn stats_memory_reports_engine_footprints() {
    let bench_path = tmp("c432-memstats.bench");
    let out = bin()
        .args(["gen", "c432", "--seed", "19", "--out"])
        .arg(&bench_path)
        .output()
        .expect("binary runs");
    assert!(out.status.success());

    let out = bin()
        .arg("stats")
        .arg(&bench_path)
        .args(["--memory", "--rho", "4"])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    for field in [
        "memory at",
        "netlist graph",
        "csr schedule",
        "packed values @512",
        "delta engine @64",
        "separation oracle p4",
        "gate-sep table p4",
        "B/node",
    ] {
        assert!(text.contains(field), "missing `{field}` in: {text}");
    }

    // A zero saturation bound is the caller's mistake.
    let out = bin()
        .arg("stats")
        .arg(&bench_path)
        .args(["--memory", "--rho", "0"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));

    let _ = std::fs::remove_file(bench_path);
}

#[test]
fn faults_backends_lanes_and_dropping_agree() {
    let bench_path = tmp("c432-faults.bench");
    let out = bin()
        .args(["gen", "c432", "--seed", "13", "--out"])
        .arg(&bench_path)
        .output()
        .expect("binary runs");
    assert!(out.status.success());

    let run = |extra: &[&str]| {
        let out = bin()
            .arg("faults")
            .arg(&bench_path)
            .args(["--seed", "9", "--vectors", "96", "--bridges", "8"])
            .args(extra)
            .output()
            .expect("binary runs");
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8_lossy(&out.stdout).into_owned()
    };
    let coverage = |t: &str| {
        t.split(" detected (")
            .nth(1)
            .expect("coverage printed")
            .split(')')
            .next()
            .unwrap()
            .to_string()
    };

    // The fault-patch engine and the per-fault full re-simulation oracle
    // score the same universe identically, at every lane width, with and
    // without fault dropping, and under threading.
    let delta = run(&["--backend", "delta"]);
    assert!(delta.contains("backend delta"), "{delta}");
    assert!(delta.contains("mean dirty cone"), "{delta}");
    let csr = run(&["--backend", "csr"]);
    assert!(csr.contains("backend csr"), "{csr}");
    assert_eq!(coverage(&delta), coverage(&csr));
    for extra in [
        &["--lanes", "64"][..],
        &["--lanes", "512"][..],
        &["--no-drop"][..],
        &["--threads", "3", "--shards", "2"][..],
    ] {
        assert_eq!(coverage(&run(extra)), coverage(&delta), "{extra:?}");
    }

    // Unknown backend is a usage error (exit 2); a non-numeric flag
    // value likewise.
    let out = bin()
        .arg("faults")
        .arg(&bench_path)
        .args(["--backend", "warp"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    let out = bin()
        .arg("faults")
        .arg(&bench_path)
        .args(["--vectors", "many"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));

    let _ = std::fs::remove_file(bench_path);
}

#[test]
fn synth_fanout_bound_below_two_is_a_usage_error() {
    let bench_path = tmp("fanout-bound.bench");
    std::fs::write(&bench_path, WIDE_BENCH).expect("writable tmp");

    // The typed InvalidArg from `fanout_buffer` maps to exit code 2.
    let out = bin()
        .arg("synth")
        .arg(&bench_path)
        .args(["--fanout", "1"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("cannot host buffer cascades"), "{err}");

    // A legal bound runs the full flow.
    let out = bin()
        .arg("synth")
        .arg(&bench_path)
        .args(["--fanout", "4", "--generations", "5"])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stderr).contains("fan-out buffered"));

    let _ = std::fs::remove_file(bench_path);
}

#[test]
fn faults_quota_checkpoint_resume_roundtrip() {
    let bench_path = tmp("c432-ckpt.bench");
    let ckpt_path = tmp("c432-ckpt.json");
    let out = bin()
        .args(["gen", "c432", "--seed", "21", "--out"])
        .arg(&bench_path)
        .output()
        .expect("binary runs");
    assert!(out.status.success());

    // 512 vectors at 64 lanes = 8 pattern batches, so the quota has
    // real batch boundaries to stop at.
    let base_args = [
        "--seed",
        "9",
        "--vectors",
        "512",
        "--bridges",
        "8",
        "--lanes",
        "64",
    ];

    // Uninterrupted baseline.
    let full = bin()
        .arg("faults")
        .arg(&bench_path)
        .args(base_args)
        .output()
        .expect("binary runs");
    assert!(full.status.success());
    let full_text = String::from_utf8_lossy(&full.stdout).into_owned();

    // Quota-limited run: still exit 0, reports a partial grid, writes a
    // resumable checkpoint.
    let partial = bin()
        .arg("faults")
        .arg(&bench_path)
        .args(base_args)
        .args(["--quota", "150", "--checkpoint"])
        .arg(&ckpt_path)
        .output()
        .expect("binary runs");
    assert!(
        partial.status.success(),
        "{}",
        String::from_utf8_lossy(&partial.stderr)
    );
    let text = String::from_utf8_lossy(&partial.stdout);
    assert!(text.contains("partial: stopped early"), "{text}");
    assert!(ckpt_path.exists(), "checkpoint written");

    // Resumed run completes and reports the exact same coverage line as
    // the uninterrupted baseline.
    let resumed = bin()
        .arg("faults")
        .arg(&bench_path)
        .args(base_args)
        .args(["--resume"])
        .arg(&ckpt_path)
        .output()
        .expect("binary runs");
    assert!(
        resumed.status.success(),
        "{}",
        String::from_utf8_lossy(&resumed.stderr)
    );
    let resumed_text = String::from_utf8_lossy(&resumed.stdout);
    assert!(!resumed_text.contains("partial:"), "{resumed_text}");
    let coverage = |t: &str| {
        t.split(" detected (")
            .nth(1)
            .expect("coverage printed")
            .split(')')
            .next()
            .unwrap()
            .to_string()
    };
    assert_eq!(coverage(&resumed_text), coverage(&full_text));

    // Resuming against a different run configuration is a runtime
    // failure (exit 1), not a silent wrong answer.
    let mismatched = bin()
        .arg("faults")
        .arg(&bench_path)
        .args([
            "--seed",
            "9",
            "--vectors",
            "256",
            "--bridges",
            "8",
            "--lanes",
            "64",
            "--resume",
        ])
        .arg(&ckpt_path)
        .output()
        .expect("binary runs");
    assert_eq!(mismatched.status.code(), Some(1));
    let err = String::from_utf8_lossy(&mismatched.stderr);
    assert!(err.contains("checkpoint"), "{err}");

    let _ = std::fs::remove_file(bench_path);
    let _ = std::fs::remove_file(ckpt_path);
}

#[test]
fn faults_wall_clock_budget_still_exits_zero() {
    let bench_path = tmp("c1355-budget.bench");
    let out = bin()
        .args(["gen", "c1355", "--seed", "3", "--out"])
        .arg(&bench_path)
        .output()
        .expect("binary runs");
    assert!(out.status.success());

    // Whether the budget expires mid-run (partial) or the sweep finishes
    // first, a wall-clock-budgeted run is a success.
    let out = bin()
        .arg("faults")
        .arg(&bench_path)
        .args(["--vectors", "512", "--budget-ms", "20"])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("coverage"), "{text}");

    let _ = std::fs::remove_file(bench_path);
}

#[test]
fn sim_reports_throughput_and_checksum() {
    let bench_path = tmp("c432-sim.bench");
    let out = bin()
        .args(["gen", "c432", "--seed", "3", "--out"])
        .arg(&bench_path)
        .output()
        .expect("binary runs");
    assert!(out.status.success());

    let run = |seed: &str| {
        let out = bin()
            .arg("sim")
            .arg(&bench_path)
            .args(["--patterns", "4096", "--seed", seed])
            .output()
            .expect("binary runs");
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8_lossy(&out.stdout).into_owned()
    };
    let text = run("9");
    assert!(text.contains("patterns/s"), "{text}");
    let checksum = |t: &str| {
        t.split("checksum ")
            .nth(1)
            .expect("checksum printed")
            .trim()
            .to_string()
    };
    // Same seed → same packed pattern stream → same output checksum.
    assert_eq!(checksum(&run("9")), checksum(&text));
    assert_ne!(checksum(&run("10")), checksum(&text));

    let _ = std::fs::remove_file(bench_path);
}

/// A tiny hand-written circuit with one wide gate, so `--resynth` has a
/// real decomposition candidate to weigh.
const WIDE_BENCH: &str = "\
# tiny resynthesis target
INPUT(a)
INPUT(b)
INPUT(c)
INPUT(d)
INPUT(e)
OUTPUT(y)
OUTPUT(z)
w = NAND(a, b, c, d, e)
y = NAND(w, a)
z = NOR(w, e)
";

#[test]
fn synth_resynth_reports_candidates_and_chosen() {
    let bench_path = tmp("resynth.bench");
    std::fs::write(&bench_path, WIDE_BENCH).expect("writable tmp");

    let out = bin()
        .arg("synth")
        .arg(&bench_path)
        .args(["--resynth", "--generations", "5"])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    // The report lands on stderr: all three candidate costs, the winner,
    // and the analysis-build vs candidate-search wall-clock split.
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("resynthesis:"), "{err}");
    for field in ["original", "balanced", "chain", "->", "analyses", "search"] {
        assert!(err.contains(field), "missing `{field}` in: {err}");
    }
    // The flow still reports the synthesized result on stdout.
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("modules"), "{text}");

    let _ = std::fs::remove_file(bench_path);
}

#[test]
fn synth_resynth_per_gate_reports_mixed_cost() {
    let bench_path = tmp("resynth-pg.bench");
    std::fs::write(&bench_path, WIDE_BENCH).expect("writable tmp");

    let out = bin()
        .arg("synth")
        .arg(&bench_path)
        .args(["--resynth", "--per-gate", "--generations", "5"])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("resynthesis (per-gate):"), "{err}");
    assert!(err.contains("mixed"), "{err}");
    assert!(err.contains("analyses"), "{err}");
    assert!(err.contains("search"), "{err}");

    let _ = std::fs::remove_file(bench_path);
}

#[test]
fn synth_resynth_rejects_malformed_bench_with_code_1() {
    let bench_path = tmp("malformed.bench");
    std::fs::write(&bench_path, "INPUT(a)\nOUTPUT(y)\ny = FROB(a, what\n").expect("writable tmp");

    let out = bin()
        .arg("synth")
        .arg(&bench_path)
        .arg("--resynth")
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(1));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("error:"), "{err}");
    assert!(err.contains("parse"), "{err}");

    let _ = std::fs::remove_file(bench_path);
}
