//! End-to-end tests of `iddq serve`: the daemon process, the one-shot
//! `--call` client mode, and the `--smoke` scenario leg CI runs.

use std::io::{BufRead, BufReader};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_iddq"))
}

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("iddq-serve-cli-{}-{name}", std::process::id()));
    p
}

/// Waits for the child to exit, killing it after `timeout` so a hung
/// server fails the test instead of wedging the suite.
fn wait_with_timeout(child: &mut Child, timeout: Duration) -> Option<std::process::ExitStatus> {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        match child.try_wait().expect("try_wait") {
            Some(status) => return Some(status),
            None => std::thread::sleep(Duration::from_millis(25)),
        }
    }
    let _ = child.kill();
    let _ = child.wait();
    None
}

#[test]
fn serve_call_requires_an_addr() {
    let out = bin()
        .args(["serve", "--call", r#"{"op":"ping"}"#])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2), "usage error without --addr");
}

#[test]
fn serve_call_rejects_malformed_json_as_usage() {
    let out = bin()
        .args(["serve", "--call", "{ nope", "--addr", "127.0.0.1:1"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn serve_daemon_answers_calls_and_drains() {
    let state_dir = tmp("daemon-state");
    let mut server = bin()
        .args([
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--workers",
            "2",
            "--state-dir",
            state_dir.to_str().expect("utf8 path"),
        ])
        .stdout(Stdio::piped())
        .spawn()
        .expect("server spawns");
    // The startup contract: first stdout line names the bound address.
    let mut lines = BufReader::new(server.stdout.take().expect("piped stdout")).lines();
    let banner = lines
        .next()
        .expect("server prints its address")
        .expect("readable stdout");
    let addr = banner
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected banner: {banner}"))
        .to_owned();

    // One-shot client calls against the live daemon.
    let out = bin()
        .args([
            "serve",
            "--call",
            r#"{"id":1,"op":"ping"}"#,
            "--addr",
            &addr,
        ])
        .output()
        .expect("call runs");
    assert!(out.status.success(), "ping call: {out:?}");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains(r#""status":"ok""#), "got: {text}");

    let out = bin()
        .args([
            "serve",
            "--call",
            r#"{"id":2,"op":"faults","circuit":"c432","vectors":32}"#,
            "--addr",
            &addr,
        ])
        .output()
        .expect("faults call runs");
    assert!(out.status.success(), "faults call: {out:?}");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains(r#""digest""#), "got: {text}");

    // A typed error response maps to exit 1 with the response printed.
    let out = bin()
        .args([
            "serve",
            "--call",
            r#"{"id":3,"op":"faults","circuit":"nope9"}"#,
            "--addr",
            &addr,
        ])
        .output()
        .expect("bad-circuit call runs");
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stdout).contains(r#""status":"error""#));

    // Drain remotely; the daemon finishes and exits 0 on its own.
    let out = bin()
        .args(["serve", "--call", r#"{"op":"drain"}"#, "--addr", &addr])
        .output()
        .expect("drain call runs");
    assert!(out.status.success(), "drain call: {out:?}");
    let status =
        wait_with_timeout(&mut server, Duration::from_secs(60)).expect("drained server must exit");
    assert!(status.success(), "server exit: {status:?}");
    let _ = std::fs::remove_dir_all(&state_dir);
}

#[test]
fn serve_max_secs_exits_by_itself() {
    let state_dir = tmp("maxsecs-state");
    let mut server = bin()
        .args([
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--max-secs",
            "1",
            "--state-dir",
            state_dir.to_str().expect("utf8 path"),
        ])
        .stdout(Stdio::piped())
        .spawn()
        .expect("server spawns");
    let status = wait_with_timeout(&mut server, Duration::from_secs(60)).expect("server must exit");
    assert!(status.success());
    let _ = std::fs::remove_dir_all(&state_dir);
}

#[test]
fn serve_smoke_passes() {
    let out = bin()
        .args(["serve", "--smoke"])
        .output()
        .expect("smoke runs");
    assert!(
        out.status.success(),
        "smoke failed: {}\n{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("serve smoke OK"), "got: {text}");
}
