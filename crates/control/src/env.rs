//! Deterministic fault-injection environment for disk I/O.
//!
//! Every disk touchpoint in the workspace — sweep checkpoints, serve job
//! checkpoints, the persistent artifact store, bench JSON emission — goes
//! through the [`IoEnv`] trait instead of calling `std::fs` directly. In
//! production the passthrough [`RealEnv`] adds zero behaviour; in chaos
//! tests a seeded [`FaultyEnv`] interposes ENOSPC, short/torn writes,
//! failed renames, corrupt-on-read bytes and latency by a reproducible
//! schedule, which makes the recovery paths (atomic replace, checkpoint
//! CRC validation, store quarantine) testable as ordinary deterministic
//! properties instead of hand-run process-boundary experiments.
//!
//! The module also owns the **sealed payload** format shared by all
//! durable state files: a one-line header carrying a version tag, an
//! FNV-1a checksum and the payload length, followed by the payload bytes.
//! [`open_sealed`] rejects truncation, bit flips and version drift with a
//! descriptive message the caller maps onto its own typed error
//! (checkpoint mismatch for sweep state, quarantine for store entries) —
//! never a panic, never a silently half-read file.

use std::io;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use crate::EngineError;

/// Abstraction over the filesystem operations the workspace performs on
/// durable state. Implementations must be shareable across worker threads.
pub trait IoEnv: Send + Sync {
    /// Reads an entire file into a string.
    fn read_to_string(&self, path: &Path) -> io::Result<String>;

    /// Creates/truncates `path` with exactly `contents`.
    fn write(&self, path: &Path, contents: &[u8]) -> io::Result<()>;

    /// Atomically renames `from` onto `to` (same filesystem).
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;

    /// Removes a file.
    fn remove_file(&self, path: &Path) -> io::Result<()>;

    /// Recursively creates a directory.
    fn create_dir_all(&self, path: &Path) -> io::Result<()>;

    /// Lists the entries of a directory (files only, no ordering promise).
    fn read_dir(&self, path: &Path) -> io::Result<Vec<PathBuf>>;
}

/// The production environment: every operation is the `std::fs` call of
/// the same name, nothing added.
#[derive(Debug, Clone, Copy, Default)]
pub struct RealEnv;

impl IoEnv for RealEnv {
    fn read_to_string(&self, path: &Path) -> io::Result<String> {
        std::fs::read_to_string(path)
    }

    fn write(&self, path: &Path, contents: &[u8]) -> io::Result<()> {
        std::fs::write(path, contents)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        std::fs::create_dir_all(path)
    }

    fn read_dir(&self, path: &Path) -> io::Result<Vec<PathBuf>> {
        let mut out = Vec::new();
        for entry in std::fs::read_dir(path)? {
            let entry = entry?;
            if entry.file_type()?.is_file() {
                out.push(entry.path());
            }
        }
        Ok(out)
    }
}

/// Per-mille injection rates for each fault class of a [`FaultyEnv`].
///
/// Rates are out of 1000 and drawn independently per operation, so a plan
/// with `enospc: 100` fails roughly one write in ten. All-zero rates make
/// the env behave exactly like [`RealEnv`] over its root.
#[derive(Debug, Clone, Copy)]
pub struct FaultPlan {
    /// Writes failing with an injected out-of-space error (‰).
    pub enospc: u16,
    /// Writes persisting only a prefix of the bytes, then failing (‰).
    pub torn_write: u16,
    /// Renames failing, leaving the source file in place (‰).
    pub rename_fail: u16,
    /// Reads returning the file's bytes with one byte corrupted (‰).
    pub corrupt_read: u16,
    /// Operations stalling ~1 ms before proceeding (‰).
    pub latency: u16,
}

impl FaultPlan {
    /// No faults: the env degenerates to a passthrough (useful to confirm
    /// a chaos scenario's baseline inside the same harness).
    #[must_use]
    pub fn none() -> Self {
        FaultPlan {
            enospc: 0,
            torn_write: 0,
            rename_fail: 0,
            corrupt_read: 0,
            latency: 0,
        }
    }

    /// The default chaos mix: every class enabled at a rate high enough
    /// that a multi-step scenario almost always sees several injections.
    #[must_use]
    pub fn chaos() -> Self {
        FaultPlan {
            enospc: 120,
            torn_write: 120,
            rename_fail: 120,
            corrupt_read: 100,
            latency: 50,
        }
    }
}

/// Counts of injected faults, by class, since the env was created.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounts {
    /// Injected out-of-space write failures.
    pub enospc: u64,
    /// Injected torn (prefix-only) writes.
    pub torn_writes: u64,
    /// Injected rename failures.
    pub rename_fails: u64,
    /// Reads served with corrupted bytes.
    pub corrupt_reads: u64,
    /// Operations delayed.
    pub delays: u64,
}

impl FaultCounts {
    /// Total injections across all classes (delays included).
    #[must_use]
    pub fn total(&self) -> u64 {
        self.enospc + self.torn_writes + self.rename_fails + self.corrupt_reads + self.delays
    }
}

struct FaultState {
    rng: u64,
    counts: FaultCounts,
}

/// A fault-injecting [`IoEnv`]: performs real filesystem operations but
/// consults a seeded schedule before each one and injects failures per its
/// [`FaultPlan`].
///
/// Determinism: the injection decisions are a pure function of the seed
/// and the *sequence* of operations performed, so a single-threaded
/// scenario replays bit-identically from the same seed. Injected errors
/// carry the `"injected:"` prefix in their message so tests can tell them
/// from real environmental failures.
pub struct FaultyEnv {
    plan: FaultPlan,
    state: Mutex<FaultState>,
}

impl FaultyEnv {
    /// An env injecting faults per `plan`, scheduled by `seed`.
    #[must_use]
    pub fn new(seed: u64, plan: FaultPlan) -> Self {
        FaultyEnv {
            plan,
            state: Mutex::new(FaultState {
                // splitmix64 recommends a non-zero, well-mixed init.
                rng: seed ^ 0x9e37_79b9_7f4a_7c15,
                counts: FaultCounts::default(),
            }),
        }
    }

    /// Injection counts so far.
    #[must_use]
    pub fn counts(&self) -> FaultCounts {
        match self.state.lock() {
            Ok(s) => s.counts,
            Err(poisoned) => poisoned.into_inner().counts,
        }
    }

    fn with_state<R>(&self, f: impl FnOnce(&mut FaultState) -> R) -> R {
        match self.state.lock() {
            Ok(mut s) => f(&mut s),
            Err(poisoned) => f(&mut poisoned.into_inner()),
        }
    }

    /// One splitmix64 step.
    fn next_u64(state: &mut FaultState) -> u64 {
        state.rng = state.rng.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = state.rng;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Draws a ‰ roll: `true` with probability `rate`/1000.
    fn roll(state: &mut FaultState, rate: u16) -> bool {
        rate > 0 && Self::next_u64(state) % 1000 < u64::from(rate)
    }

    fn maybe_delay(&self) {
        let hit = self.with_state(|s| {
            if Self::roll(s, self.plan.latency) {
                s.counts.delays += 1;
                true
            } else {
                false
            }
        });
        if hit {
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
    }
}

impl IoEnv for FaultyEnv {
    fn read_to_string(&self, path: &Path) -> io::Result<String> {
        self.maybe_delay();
        let text = std::fs::read_to_string(path)?;
        let corrupt_at = self.with_state(|s| {
            if !text.is_empty() && Self::roll(s, self.plan.corrupt_read) {
                s.counts.corrupt_reads += 1;
                Some(Self::next_u64(s) as usize % text.len())
            } else {
                None
            }
        });
        match corrupt_at {
            None => Ok(text),
            Some(idx) => {
                let mut bytes = text.into_bytes();
                // Swap to a different ASCII byte so the result stays valid
                // UTF-8 (all sealed payloads are ASCII JSON); non-ASCII
                // positions fall back to index 0 of the header.
                let idx = if bytes[idx].is_ascii() { idx } else { 0 };
                bytes[idx] = if bytes[idx] == b'#' { b'%' } else { b'#' };
                String::from_utf8(bytes)
                    .map_err(|_| io::Error::other("injected: corrupt read produced non-UTF-8"))
            }
        }
    }

    fn write(&self, path: &Path, contents: &[u8]) -> io::Result<()> {
        self.maybe_delay();
        enum Fate {
            Ok,
            Enospc,
            Torn(usize),
        }
        let fate = self.with_state(|s| {
            if Self::roll(s, self.plan.enospc) {
                s.counts.enospc += 1;
                Fate::Enospc
            } else if !contents.is_empty() && Self::roll(s, self.plan.torn_write) {
                s.counts.torn_writes += 1;
                Fate::Torn(Self::next_u64(s) as usize % contents.len())
            } else {
                Fate::Ok
            }
        });
        match fate {
            Fate::Ok => std::fs::write(path, contents),
            Fate::Enospc => Err(io::Error::other("injected: no space left on device")),
            Fate::Torn(cut) => {
                // A torn write persists a prefix and then reports failure,
                // modelling a crash mid-write.
                std::fs::write(path, &contents[..cut])?;
                Err(io::Error::other(format!(
                    "injected: torn write ({cut}/{} bytes persisted)",
                    contents.len()
                )))
            }
        }
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        self.maybe_delay();
        let fail = self.with_state(|s| {
            if Self::roll(s, self.plan.rename_fail) {
                s.counts.rename_fails += 1;
                true
            } else {
                false
            }
        });
        if fail {
            return Err(io::Error::other("injected: rename failed"));
        }
        std::fs::rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        self.maybe_delay();
        std::fs::remove_file(path)
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        self.maybe_delay();
        std::fs::create_dir_all(path)
    }

    fn read_dir(&self, path: &Path) -> io::Result<Vec<PathBuf>> {
        self.maybe_delay();
        RealEnv.read_dir(path)
    }
}

/// Writes `contents` to `path` atomically through `env`: temp file in the
/// same directory, then rename over the target. Under any single injected
/// fault (ENOSPC, torn write, failed rename) the destination holds either
/// its complete old bytes or the complete new ones — never a prefix.
///
/// # Errors
///
/// Returns [`EngineError::Io`] when the temporary file cannot be written
/// or the rename fails; the temporary file is removed on failure.
pub fn write_atomic_in(env: &dyn IoEnv, path: &Path, contents: &str) -> Result<(), EngineError> {
    let io_err = |e: io::Error| EngineError::Io {
        path: path.display().to_string(),
        message: e.to_string(),
    };
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(format!(".tmp.{}", std::process::id()));
    let tmp = PathBuf::from(tmp);
    if let Err(e) = env.write(&tmp, contents.as_bytes()) {
        let _ = env.remove_file(&tmp);
        return Err(io_err(e));
    }
    env.rename(&tmp, path).map_err(|e| {
        let _ = env.remove_file(&tmp);
        io_err(e)
    })
}

/// FNV-1a over `bytes`: the workspace's standard cheap content checksum
/// (the same construction fingerprints netlists and detection maps).
#[must_use]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Version tag of the sealed payload format.
const SEAL_MAGIC: &str = "iddq-sealed v1";

/// Wraps `payload` in the sealed durable-state format: a header line
/// `iddq-sealed v1 crc:<16 hex> len:<bytes>` followed by the payload.
/// [`open_sealed`] verifies both fields, so truncation anywhere in the
/// file and any single corrupted byte are detected.
#[must_use]
pub fn seal(payload: &str) -> String {
    format!(
        "{SEAL_MAGIC} crc:{:016x} len:{}\n{payload}",
        fnv1a64(payload.as_bytes()),
        payload.len()
    )
}

/// Verifies a sealed file's header, length and checksum, returning the
/// payload.
///
/// # Errors
///
/// A human-readable description of the first violated check (missing or
/// foreign header, length mismatch i.e. truncation, checksum mismatch
/// i.e. corruption). Callers map this onto their typed error.
pub fn open_sealed(data: &str) -> Result<&str, String> {
    let Some((header, payload)) = data.split_once('\n') else {
        return Err("missing sealed header line".into());
    };
    let rest = header
        .strip_prefix(SEAL_MAGIC)
        .ok_or_else(|| format!("not a sealed payload (expected `{SEAL_MAGIC}` header)"))?;
    let mut crc: Option<u64> = None;
    let mut len: Option<usize> = None;
    for field in rest.split_whitespace() {
        if let Some(hex) = field.strip_prefix("crc:") {
            crc = u64::from_str_radix(hex, 16).ok();
        } else if let Some(dec) = field.strip_prefix("len:") {
            len = dec.parse().ok();
        }
    }
    let (Some(crc), Some(len)) = (crc, len) else {
        return Err("sealed header missing crc/len fields".into());
    };
    if payload.len() != len {
        return Err(format!(
            "sealed payload truncated: {} bytes present, {len} sealed",
            payload.len()
        ));
    }
    let got = fnv1a64(payload.as_bytes());
    if got != crc {
        return Err(format!(
            "sealed payload checksum mismatch: computed {got:016x}, sealed {crc:016x}"
        ));
    }
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("iddq-env-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn real_env_roundtrips() {
        let dir = temp_dir("real");
        let env = RealEnv;
        let p = dir.join("a.txt");
        env.write(&p, b"hello").unwrap();
        assert_eq!(env.read_to_string(&p).unwrap(), "hello");
        let q = dir.join("b.txt");
        env.rename(&p, &q).unwrap();
        assert_eq!(env.read_dir(&dir).unwrap(), vec![q.clone()]);
        env.remove_file(&q).unwrap();
        assert!(env.read_dir(&dir).unwrap().is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn faulty_env_is_deterministic_per_seed() {
        let dir = temp_dir("det");
        let runs: Vec<FaultCounts> = (0..2)
            .map(|_| {
                let env = FaultyEnv::new(42, FaultPlan::chaos());
                for i in 0..200 {
                    let p = dir.join(format!("f{i}"));
                    let _ = env.write(&p, b"payload bytes");
                    let _ = env.read_to_string(&p);
                    let _ = env.rename(&p, &dir.join("g"));
                }
                env.counts()
            })
            .collect();
        assert_eq!(runs[0], runs[1]);
        assert!(runs[0].total() > 0, "chaos plan injected nothing");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn zero_plan_injects_nothing() {
        let dir = temp_dir("zero");
        let env = FaultyEnv::new(7, FaultPlan::none());
        let p = dir.join("x");
        for _ in 0..100 {
            env.write(&p, b"abc").unwrap();
            assert_eq!(env.read_to_string(&p).unwrap(), "abc");
        }
        assert_eq!(env.counts().total(), 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn injected_errors_are_labelled() {
        let dir = temp_dir("label");
        // enospc-only plan at 100%: every write fails, nothing persisted.
        let env = FaultyEnv::new(1, {
            let mut p = FaultPlan::none();
            p.enospc = 1000;
            p
        });
        let p = dir.join("x");
        let err = env.write(&p, b"abc").unwrap_err();
        assert!(err.to_string().contains("injected:"), "{err}");
        assert!(!p.exists());
        assert_eq!(env.counts().enospc, 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_write_persists_a_strict_prefix() {
        let dir = temp_dir("torn");
        let env = FaultyEnv::new(3, {
            let mut p = FaultPlan::none();
            p.torn_write = 1000;
            p
        });
        let p = dir.join("x");
        let err = env.write(&p, b"0123456789").unwrap_err();
        assert!(err.to_string().contains("torn write"), "{err}");
        let on_disk = std::fs::read(&p).unwrap();
        assert!(on_disk.len() < 10);
        assert_eq!(&on_disk[..], &b"0123456789"[..on_disk.len()]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_read_flips_exactly_one_byte() {
        let dir = temp_dir("corrupt");
        let env = FaultyEnv::new(5, {
            let mut p = FaultPlan::none();
            p.corrupt_read = 1000;
            p
        });
        let p = dir.join("x");
        std::fs::write(&p, "abcdefgh").unwrap();
        let got = env.read_to_string(&p).unwrap();
        assert_eq!(got.len(), 8);
        let diffs = got
            .bytes()
            .zip("abcdefgh".bytes())
            .filter(|(a, b)| a != b)
            .count();
        assert_eq!(diffs, 1);
        assert_eq!(env.counts().corrupt_reads, 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn write_atomic_in_survives_rename_failure() {
        let dir = temp_dir("atomic");
        let target = dir.join("state.json");
        write_atomic_in(&RealEnv, &target, "old").unwrap();
        let env = FaultyEnv::new(9, {
            let mut p = FaultPlan::none();
            p.rename_fail = 1000;
            p
        });
        let err = write_atomic_in(&env, &target, "new").unwrap_err();
        assert!(matches!(err, EngineError::Io { .. }));
        assert_eq!(std::fs::read_to_string(&target).unwrap(), "old");
        // Temp debris cleaned up.
        assert_eq!(RealEnv.read_dir(&dir).unwrap().len(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn seal_roundtrip_and_rejections() {
        let sealed = seal("{\"a\":1}");
        assert_eq!(open_sealed(&sealed).unwrap(), "{\"a\":1}");
        // Every truncation point fails typed, never panics.
        for cut in 0..sealed.len() {
            assert!(open_sealed(&sealed[..cut]).is_err(), "cut={cut}");
        }
        // Any single byte flip fails.
        for i in 0..sealed.len() {
            let mut bytes = sealed.clone().into_bytes();
            bytes[i] = if bytes[i] == b'0' { b'1' } else { b'0' };
            if let Ok(s) = String::from_utf8(bytes) {
                if s != sealed {
                    assert!(open_sealed(&s).is_err(), "flip at {i}");
                }
            }
        }
        assert!(open_sealed("plain old json").is_err());
        assert!(open_sealed("").is_err());
    }

    #[test]
    fn seal_empty_payload() {
        let sealed = seal("");
        assert_eq!(open_sealed(&sealed).unwrap(), "");
    }
}
