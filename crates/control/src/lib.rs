//! Cooperative control layer for long-running engine paths.
//!
//! Every long-running entry point of the workspace — fault sweeps, the
//! IDDQ experiment, the evolution search, the resynthesis probes, the
//! parallel separation build — threads a [`RunControl`] through its
//! shard/batch/generation boundaries and returns a typed [`Outcome`]:
//! either the work [`Outcome::Complete`]d, or a budget/cancellation hit
//! degraded it gracefully to [`Outcome::Partial`] results with progress
//! stats instead of hanging or aborting the process.
//!
//! # Failure semantics
//!
//! The workspace distinguishes three ways an engine call can end short of
//! a complete answer, and each has its own vocabulary:
//!
//! * **Invalid input** — untrusted input (a netlist file, a patch, a CLI
//!   argument) is rejected with a typed [`EngineError`] *before* any work
//!   runs. Library crates never abort the process on caller-supplied
//!   data; panics are reserved for internal invariant violations.
//! * **Interruption** — a [`CancelToken`] fired or a [`RunBudget`]
//!   (wall-clock deadline or work quota) ran out. The engine stops at the
//!   next checkpoint boundary and returns `Partial { value, coverage,
//!   reason }`: everything computed so far, the fraction of planned work
//!   that finished, and the [`StopReason`]. Partial results are exact
//!   prefixes, never approximations — the deterministic min-merge of the
//!   sweep engines guarantees that any completed subset of the
//!   fault-shard × pattern-batch grid merges to the same per-fault
//!   earliest detections an uninterrupted run would have produced on that
//!   subset.
//! * **Worker panic** — a poisoned task inside a parallel region is
//!   caught at the worker boundary (`catch_unwind`); its grid cells are
//!   treated as not-run and the call returns `Partial` with
//!   [`StopReason::WorkerPanicked`] instead of aborting the process.
//!
//! # Cancellation protocol
//!
//! Cancellation is *cooperative*: [`CancelToken::cancel`] sets a shared
//! flag, and engines poll [`RunControl::check`] at coarse boundaries
//! (a pattern batch, a generation, a BFS source batch — never inside the
//! packed inner loops). Between boundaries the engine is non-blocking, so
//! the cancellation latency is one boundary interval. Workers observing a
//! stop finish nothing speculative: they record exactly which work units
//! completed, which is what makes checkpointed resume bit-exact.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

mod env;

pub use env::{
    fnv1a64, open_sealed, seal, write_atomic_in, FaultCounts, FaultPlan, FaultyEnv, IoEnv, RealEnv,
};

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why an engine call stopped before completing its planned work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// A [`CancelToken`] was cancelled.
    Cancelled,
    /// The wall-clock deadline of the [`RunBudget`] passed.
    DeadlineExceeded,
    /// The work quota of the [`RunBudget`] was spent.
    QuotaExhausted,
    /// A worker task panicked; its share of the work is missing and the
    /// process survived (worker-boundary `catch_unwind`).
    WorkerPanicked,
}

impl fmt::Display for StopReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            StopReason::Cancelled => "cancelled",
            StopReason::DeadlineExceeded => "deadline exceeded",
            StopReason::QuotaExhausted => "work quota exhausted",
            StopReason::WorkerPanicked => "worker panicked",
        })
    }
}

/// Outcome of a budgeted/cancellable engine call.
///
/// `Partial` is a *graceful degradation*, not an error: `value` holds
/// everything computed before the stop, and `coverage` states how much of
/// the planned work finished (in `[0, 1]`). What "work" means is
/// documented per engine (grid cells for sweeps, generations for the
/// evolution search, probes for resynthesis, BFS sources for the
/// separation build).
#[derive(Debug, Clone, PartialEq)]
pub enum Outcome<T> {
    /// All planned work ran.
    Complete(T),
    /// The run stopped early; `value` holds the exact results of the
    /// completed fraction.
    Partial {
        /// Results of the completed work units.
        value: T,
        /// Fraction of planned work that completed, in `[0, 1]`.
        coverage: f64,
        /// Why the run stopped.
        reason: StopReason,
    },
}

impl<T> Outcome<T> {
    /// `true` iff all planned work ran.
    pub fn is_complete(&self) -> bool {
        matches!(self, Outcome::Complete(_))
    }

    /// The carried value, complete or partial.
    pub fn value(&self) -> &T {
        match self {
            Outcome::Complete(v) | Outcome::Partial { value: v, .. } => v,
        }
    }

    /// Consumes the outcome, returning the carried value.
    pub fn into_value(self) -> T {
        match self {
            Outcome::Complete(v) | Outcome::Partial { value: v, .. } => v,
        }
    }

    /// Fraction of planned work completed: `1.0` for `Complete`.
    pub fn coverage(&self) -> f64 {
        match self {
            Outcome::Complete(_) => 1.0,
            Outcome::Partial { coverage, .. } => *coverage,
        }
    }

    /// The stop reason, if the run ended early.
    pub fn stop_reason(&self) -> Option<StopReason> {
        match self {
            Outcome::Complete(_) => None,
            Outcome::Partial { reason, .. } => Some(*reason),
        }
    }

    /// Maps the carried value, preserving completeness metadata.
    pub fn map<U>(self, f: impl FnOnce(T) -> U) -> Outcome<U> {
        match self {
            Outcome::Complete(v) => Outcome::Complete(f(v)),
            Outcome::Partial {
                value,
                coverage,
                reason,
            } => Outcome::Partial {
                value: f(value),
                coverage,
                reason,
            },
        }
    }
}

/// A clonable cooperative cancellation handle.
///
/// All clones share one flag: any of them can [`CancelToken::cancel`],
/// and engines holding any clone observe it at their next boundary check.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation; idempotent and visible to all clones.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation has been requested.
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }
}

/// Resource limits for one engine call: a wall-clock deadline and/or a
/// work quota (patterns applied, descendants evaluated, probes scored —
/// the unit is documented per engine).
#[derive(Debug, Clone, Copy, Default)]
pub struct RunBudget {
    /// Absolute deadline; `None` = unlimited wall clock.
    pub deadline: Option<Instant>,
    /// Total work units allowed; `None` = unlimited.
    pub quota: Option<u64>,
}

impl RunBudget {
    /// No limits.
    #[must_use]
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// Caps wall-clock time, measured from now.
    #[must_use]
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.deadline = Some(Instant::now() + timeout);
        self
    }

    /// Caps total work units.
    #[must_use]
    pub fn with_quota(mut self, quota: u64) -> Self {
        self.quota = Some(quota);
        self
    }

    /// Whether any limit is set at all.
    #[must_use]
    pub fn is_limited(&self) -> bool {
        self.deadline.is_some() || self.quota.is_some()
    }

    /// Composes two budgets into the *tightest* of both: the earlier
    /// deadline and the smaller quota win. This is how a serving layer
    /// combines its own global budget (a drain deadline, a per-job work
    /// cap) with a per-request deadline — the request can only ever
    /// shrink what the server allows, never extend it.
    #[must_use]
    pub fn tightest(self, other: RunBudget) -> RunBudget {
        let min_opt = |a: Option<Instant>, b: Option<Instant>| match (a, b) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        RunBudget {
            deadline: min_opt(self.deadline, other.deadline),
            quota: match (self.quota, other.quota) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            },
        }
    }

    /// Milliseconds of wall clock left before the deadline: `None` when no
    /// deadline is set, `Some(0)` once it has passed. Degradation
    /// heuristics use this to decide whether an expensive analysis still
    /// fits in the time that remains.
    #[must_use]
    pub fn remaining_ms(&self) -> Option<u64> {
        self.deadline.map(|d| {
            d.saturating_duration_since(Instant::now())
                .as_millis()
                .min(u128::from(u64::MAX)) as u64
        })
    }
}

/// Two-phase shutdown signal for a long-running service.
///
/// * [`DrainSignal::drain`] — *graceful*: stop admitting new work, let
///   everything already accepted run to completion, then exit. Engines
///   keep their [`RunControl`]s untouched.
/// * [`DrainSignal::kill`] — *abrupt*: additionally cancel the embedded
///   [`CancelToken`] so in-flight budgeted work stops at its next
///   checkpoint boundary. This is the crash-simulation path: whatever a
///   killed job persisted (checkpoints written at slice boundaries) is
///   what a restarted service resumes from.
///
/// All clones share state; `drain` and `kill` are idempotent, and `kill`
/// implies `drain`.
#[derive(Debug, Clone, Default)]
pub struct DrainSignal {
    draining: Arc<AtomicBool>,
    kill: CancelToken,
}

impl DrainSignal {
    /// A fresh signal: not draining, not killed.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests a graceful drain (idempotent, visible to all clones).
    pub fn drain(&self) {
        self.draining.store(true, Ordering::Relaxed);
    }

    /// Requests an abrupt stop: drains *and* cancels the kill token so
    /// cooperative engines stop at their next boundary.
    pub fn kill(&self) {
        self.drain();
        self.kill.cancel();
    }

    /// Whether a drain (graceful or abrupt) has been requested.
    #[must_use]
    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::Relaxed)
    }

    /// Whether an abrupt stop has been requested.
    #[must_use]
    pub fn is_killed(&self) -> bool {
        self.kill.is_cancelled()
    }

    /// The cancellation token a killed service fires; thread it into every
    /// in-flight [`RunControl`] so kill reaches running engines.
    #[must_use]
    pub fn kill_token(&self) -> &CancelToken {
        &self.kill
    }
}

/// The control block threaded through an engine call: one cancellation
/// token, one budget, and a shared work counter all workers charge.
///
/// Engines call [`RunControl::charge`] as they complete work units and
/// [`RunControl::check`] at shard/batch/generation boundaries; a
/// `Some(reason)` answer means "stop at this boundary and report what you
/// have". Checks are cheap (two relaxed atomic loads; the deadline reads
/// the clock only when one is set), so per-batch polling costs nothing
/// against the packed inner loops.
#[derive(Debug, Clone, Default)]
pub struct RunControl {
    token: CancelToken,
    budget: RunBudget,
    spent: Arc<AtomicU64>,
}

impl RunControl {
    /// A control block that never stops anything (the default for the
    /// plain, non-budgeted entry points).
    #[must_use]
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// A control block observing `token`.
    #[must_use]
    pub fn with_token(token: CancelToken) -> Self {
        RunControl {
            token,
            ..Self::default()
        }
    }

    /// A control block enforcing `budget`.
    #[must_use]
    pub fn with_budget(budget: RunBudget) -> Self {
        RunControl {
            budget,
            ..Self::default()
        }
    }

    /// Replaces the budget, keeping the token and spend counter.
    #[must_use]
    pub fn and_budget(mut self, budget: RunBudget) -> Self {
        self.budget = budget;
        self
    }

    /// The cancellation token this control observes.
    #[must_use]
    pub fn token(&self) -> &CancelToken {
        &self.token
    }

    /// Records `units` of completed work against the quota.
    pub fn charge(&self, units: u64) {
        if self.budget.quota.is_some() {
            self.spent.fetch_add(units, Ordering::Relaxed);
        }
    }

    /// Work units charged so far.
    #[must_use]
    pub fn spent(&self) -> u64 {
        self.spent.load(Ordering::Relaxed)
    }

    /// Boundary poll: `Some(reason)` iff the engine should stop here.
    ///
    /// Cancellation wins over budget reasons when both apply.
    #[must_use]
    pub fn check(&self) -> Option<StopReason> {
        if self.token.is_cancelled() {
            return Some(StopReason::Cancelled);
        }
        if let Some(q) = self.budget.quota {
            if self.spent.load(Ordering::Relaxed) >= q {
                return Some(StopReason::QuotaExhausted);
            }
        }
        if let Some(d) = self.budget.deadline {
            if Instant::now() >= d {
                return Some(StopReason::DeadlineExceeded);
            }
        }
        None
    }
}

/// The unified error taxonomy for untrusted input across the engine
/// crates.
///
/// Library crates reject bad input with these variants instead of
/// panicking; the CLI maps them onto its exit-code discipline (usage
/// errors exit 2, runtime errors exit 1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// A caller-supplied parameter is out of its documented domain
    /// (e.g. a fan-out bound below 2). CLI: exit 2.
    InvalidArg(String),
    /// A text input failed to parse; `line` is 1-based. CLI: exit 1.
    Parse {
        /// 1-based line number of the offending input line.
        line: usize,
        /// What was wrong with it.
        message: String,
    },
    /// A structural rule of the netlist model was violated (dangling
    /// reference, cycle, arity). CLI: exit 1.
    Structure(String),
    /// A structural patch could not be applied. CLI: exit 1.
    Patch(String),
    /// A checkpoint file does not match the run it is resumed into.
    /// CLI: exit 1.
    CheckpointMismatch(String),
    /// An I/O operation failed. CLI: exit 1.
    Io {
        /// The path involved.
        path: String,
        /// The underlying error, stringified.
        message: String,
    },
}

impl EngineError {
    /// `true` iff this is a usage error (the caller passed a parameter
    /// outside its documented domain), which the CLI maps to exit 2; all
    /// other variants are runtime errors (exit 1).
    #[must_use]
    pub fn is_usage(&self) -> bool {
        matches!(self, EngineError::InvalidArg(_))
    }
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::InvalidArg(m) => write!(f, "invalid argument: {m}"),
            EngineError::Parse { line, message } => write!(f, "line {line}: {message}"),
            EngineError::Structure(m) => write!(f, "structural error: {m}"),
            EngineError::Patch(m) => write!(f, "patch rejected: {m}"),
            EngineError::CheckpointMismatch(m) => write!(f, "checkpoint mismatch: {m}"),
            EngineError::Io { path, message } => write!(f, "{path}: {message}"),
        }
    }
}

impl std::error::Error for EngineError {}

/// Writes `contents` to `path` atomically: the bytes land in a sibling
/// temporary file first and are renamed over the target, so an
/// interrupted (cancelled, budget-killed, crashed) writer can never leave
/// a truncated file behind — the target either keeps its old contents or
/// holds the complete new ones.
///
/// # Errors
///
/// Returns [`EngineError::Io`] when the temporary file cannot be written
/// or the rename fails (the temporary file is cleaned up on rename
/// failure).
pub fn write_atomic(path: &std::path::Path, contents: &str) -> Result<(), EngineError> {
    write_atomic_in(&RealEnv, path, contents)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_control_never_stops() {
        let c = RunControl::unlimited();
        c.charge(u64::MAX / 2);
        assert_eq!(c.check(), None);
        // Unlimited quota means charges are not even counted.
        assert_eq!(c.spent(), 0);
    }

    #[test]
    fn cancel_token_is_shared_across_clones() {
        let t = CancelToken::new();
        let c = RunControl::with_token(t.clone());
        assert_eq!(c.check(), None);
        t.cancel();
        assert_eq!(c.check(), Some(StopReason::Cancelled));
        assert!(c.token().is_cancelled());
    }

    #[test]
    fn quota_exhausts_after_charges() {
        let c = RunControl::with_budget(RunBudget::unlimited().with_quota(10));
        c.charge(4);
        assert_eq!(c.check(), None);
        c.charge(6);
        assert_eq!(c.check(), Some(StopReason::QuotaExhausted));
        assert_eq!(c.spent(), 10);
    }

    #[test]
    fn deadline_in_the_past_stops_immediately() {
        let c = RunControl::with_budget(RunBudget::unlimited().with_timeout(Duration::ZERO));
        assert_eq!(c.check(), Some(StopReason::DeadlineExceeded));
    }

    #[test]
    fn cancellation_outranks_budget() {
        let t = CancelToken::new();
        let c = RunControl::with_token(t.clone()).and_budget(RunBudget::unlimited().with_quota(0));
        assert_eq!(c.check(), Some(StopReason::QuotaExhausted));
        t.cancel();
        assert_eq!(c.check(), Some(StopReason::Cancelled));
    }

    #[test]
    fn outcome_accessors() {
        let c: Outcome<u32> = Outcome::Complete(7);
        assert!(c.is_complete());
        assert_eq!(c.coverage(), 1.0);
        assert_eq!(c.stop_reason(), None);
        assert_eq!(*c.value(), 7);
        let p = Outcome::Partial {
            value: 3u32,
            coverage: 0.25,
            reason: StopReason::Cancelled,
        };
        assert!(!p.is_complete());
        assert_eq!(p.coverage(), 0.25);
        assert_eq!(p.stop_reason(), Some(StopReason::Cancelled));
        assert_eq!(p.clone().map(|v| v * 2).into_value(), 6);
    }

    #[test]
    fn write_atomic_replaces_and_never_truncates() {
        let dir = std::env::temp_dir().join(format!("iddq-control-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let target = dir.join("out.json");
        write_atomic(&target, "first").unwrap();
        assert_eq!(std::fs::read_to_string(&target).unwrap(), "first");
        write_atomic(&target, "second, longer contents").unwrap();
        assert_eq!(
            std::fs::read_to_string(&target).unwrap(),
            "second, longer contents"
        );
        // No temporary debris left behind.
        assert_eq!(std::fs::read_dir(&dir).unwrap().count(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn write_atomic_reports_io_errors() {
        let err = write_atomic(std::path::Path::new("/nonexistent-dir/x/y.json"), "data")
            .expect_err("directory does not exist");
        assert!(matches!(err, EngineError::Io { .. }));
        assert!(!err.is_usage());
    }

    #[test]
    fn tightest_takes_earlier_deadline_and_smaller_quota() {
        let a = RunBudget::unlimited()
            .with_timeout(Duration::from_secs(10))
            .with_quota(100);
        let b = RunBudget::unlimited()
            .with_timeout(Duration::from_secs(1))
            .with_quota(500);
        let t = a.tightest(b);
        assert_eq!(t.deadline, b.deadline);
        assert_eq!(t.quota, Some(100));
        // A one-sided limit survives composition with an unlimited budget.
        let u = RunBudget::unlimited().tightest(a);
        assert_eq!(u.deadline, a.deadline);
        assert_eq!(u.quota, Some(100));
        assert!(!RunBudget::unlimited()
            .tightest(RunBudget::unlimited())
            .is_limited());
    }

    #[test]
    fn remaining_ms_tracks_deadline() {
        assert_eq!(RunBudget::unlimited().remaining_ms(), None);
        let far = RunBudget::unlimited().with_timeout(Duration::from_secs(3600));
        let ms = far.remaining_ms().unwrap();
        assert!(ms > 3_500_000 && ms <= 3_600_000, "ms={ms}");
        let past = RunBudget::unlimited().with_timeout(Duration::ZERO);
        assert_eq!(past.remaining_ms(), Some(0));
    }

    #[test]
    fn drain_signal_two_phases() {
        let s = DrainSignal::new();
        let clone = s.clone();
        assert!(!s.is_draining() && !s.is_killed());
        clone.drain();
        assert!(s.is_draining());
        assert!(!s.is_killed());
        assert!(!s.kill_token().is_cancelled());
        clone.kill();
        assert!(s.is_draining() && s.is_killed());
        assert!(s.kill_token().is_cancelled());
        // A control threaded with the kill token observes the kill.
        let c = RunControl::with_token(s.kill_token().clone());
        assert_eq!(c.check(), Some(StopReason::Cancelled));
    }

    #[test]
    fn kill_implies_drain() {
        let s = DrainSignal::new();
        s.kill();
        assert!(s.is_draining());
    }

    #[test]
    fn usage_classification() {
        assert!(EngineError::InvalidArg("bound".into()).is_usage());
        assert!(!EngineError::Parse {
            line: 3,
            message: "bad".into()
        }
        .is_usage());
    }
}
