//! Properties of the atomic writer and the sealed payload format under
//! injected faults: across arbitrary fault schedules the destination file
//! is always either the old bytes or the new bytes (never a prefix, never
//! debris), and a sealed payload opens iff it is byte-identical to what
//! was sealed.

use proptest::prelude::*;

use iddq_control::{
    open_sealed, seal, write_atomic_in, EngineError, FaultPlan, FaultyEnv, IoEnv, RealEnv,
};
use std::path::PathBuf;

fn temp_dir(tag: &str, seed: u64) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "iddq-control-prop-{tag}-{}-{seed:x}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A fault plan drawn from the seed: each class gets an independent rate
/// in 0..=1000, so schedules range from fault-free to always-failing.
fn plan_from(seed: u64) -> FaultPlan {
    let part = |shift: u32| ((seed >> shift) % 1001) as u16;
    FaultPlan {
        enospc: part(0),
        torn_write: part(12),
        rename_fail: part(24),
        corrupt_read: part(36),
        latency: 0, // pure timing noise, pointless in this property
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The destination of `write_atomic_in` reads as exactly the last
    /// successfully committed generation after every attempt — old bytes
    /// or new bytes, never a torn prefix — across arbitrary fault
    /// schedules, and failures are typed `Io` errors.
    #[test]
    fn atomic_writer_is_all_or_nothing(seed in any::<u64>(), attempts in 1usize..24) {
        let dir = temp_dir("atomic", seed);
        let target = dir.join("state.json");
        let env = FaultyEnv::new(seed, plan_from(seed));
        let mut committed: Option<String> = None;
        for gen in 0..attempts {
            let next = format!("generation {gen} :: {}", "x".repeat(gen * 7 % 90));
            match write_atomic_in(&env, &target, &next) {
                Ok(()) => committed = Some(next),
                Err(e) => prop_assert!(matches!(e, EngineError::Io { .. })),
            }
            // Read back through the real env: the file on disk must be a
            // complete generation regardless of what was injected.
            match &committed {
                None => prop_assert!(!target.exists()),
                Some(want) => {
                    let got = RealEnv.read_to_string(&target).unwrap();
                    prop_assert_eq!(&got, want);
                }
            }
        }
        // No temporary debris: the directory holds at most the target.
        let entries = RealEnv.read_dir(&dir).unwrap();
        prop_assert!(entries.len() <= 1, "debris: {entries:?}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Sealed payloads written through a faulty env either open to the
    /// exact original payload or fail typed — corrupt-on-read bytes can
    /// never smuggle a silently different payload through the seal.
    #[test]
    fn seal_detects_faulty_reads(seed in any::<u64>(), len in 0usize..200) {
        let dir = temp_dir("seal", seed);
        let target = dir.join("sealed.json");
        let payload: String = (0..len)
            .map(|i| char::from(b'a' + ((seed as usize + i * 31) % 26) as u8))
            .collect();
        write_atomic_in(&RealEnv, &target, &seal(&payload)).unwrap();
        let env = FaultyEnv::new(seed, plan_from(seed));
        for _ in 0..8 {
            if let Ok(text) = env.read_to_string(&target) {
                match open_sealed(&text) {
                    Ok(got) => prop_assert_eq!(got, payload.as_str()),
                    Err(msg) => prop_assert!(!msg.is_empty()),
                }
            }
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Truncating a sealed file at any byte offset is detected.
    #[test]
    fn seal_rejects_every_truncation(len in 0usize..64) {
        let payload: String = (0..len).map(|i| char::from(b'A' + (i % 26) as u8)).collect();
        let sealed = seal(&payload);
        for cut in 0..sealed.len() {
            prop_assert!(open_sealed(&sealed[..cut]).is_err(), "cut={cut}");
        }
        prop_assert_eq!(open_sealed(&sealed).unwrap(), payload.as_str());
    }
}
