//! Partitioning configuration: cost weights and constraint parameters.

use iddq_bic::sizing::SizingSpec;
use serde::{Deserialize, Serialize};

/// The weight factors `α₁ … α₅` of the global cost function.
///
/// # Example
///
/// ```rust
/// use iddq_core::Weights;
///
/// let w = Weights::paper();
/// assert_eq!(w.delay, 1e5); // delay overhead dominates, as in §5.1
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Weights {
    /// `α₁` — sensor area term `c₁ = log A`.
    pub area: f64,
    /// `α₂` — delay overhead term `c₂ = (D_BIC − D)/D`.
    pub delay: f64,
    /// `α₃` — intra-module wiring term `c₃ = log S(Π)`.
    pub interconnect: f64,
    /// `α₄` — test application time term `c₄`.
    pub test_time: f64,
    /// `α₅` — module count term `c₅ = K` (test clock/output routing).
    pub module_count: f64,
}

impl Weights {
    /// The exact weights of the paper's §5.1:
    /// `C(Π) = 9·c₁ + 10⁵·c₂ + c₃ + c₄ + 10·c₅`.
    #[must_use]
    pub fn paper() -> Self {
        Weights {
            area: 9.0,
            delay: 1e5,
            interconnect: 1.0,
            test_time: 1.0,
            module_count: 10.0,
        }
    }
}

impl Default for Weights {
    fn default() -> Self {
        Weights::paper()
    }
}

/// Full configuration of the PART-IDDQ instance.
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionConfig {
    /// Cost weights.
    pub weights: Weights,
    /// Required discriminability `d` (paper: "a typical value is 10").
    pub d_min: f64,
    /// Sensor sizing parameters (`r*`, area model, decay model).
    pub sizing: SizingSpec,
    /// Saturation bound `ρ` for the separation metric of §3.3.
    pub rho: u32,
    /// Size of the precomputed test-vector set (only scales the absolute
    /// test time report; the `c₄` overhead ratio is per-vector).
    pub num_vectors: usize,
    /// Penalty added to the cost per constraint violation, keeping the
    /// search ordered while strongly repelling infeasible regions.
    pub violation_penalty: f64,
    /// Dirty-cone budget of the incremental delay re-simulation, as a
    /// fraction of the node count: when a batch of gate moves re-weights
    /// more gates than this, [`Evaluated::settle`](crate::Evaluated)
    /// falls back to one full batch arrival sweep instead of event-driven
    /// cone propagation. A move dirties the *weights* of both touched
    /// modules, so coarse partitions (few, large modules) settle by batch
    /// while fine partitions ride the cone walk; the Monte-Carlo
    /// descendants of the evolution strategy (whole-module moves) always
    /// cross the budget. The default 0.1 sits at the measured crossover,
    /// where a cone walk's per-node overhead (~3–4× a sweep node) breaks
    /// even against the full sweep.
    pub incremental_delay_limit: f64,
}

impl PartitionConfig {
    /// Paper-default parameters: weights of §5.1, `d = 10`, `r* = 200 mV`,
    /// `ρ = 6`.
    #[must_use]
    pub fn paper_default() -> Self {
        PartitionConfig {
            weights: Weights::paper(),
            d_min: 10.0,
            sizing: SizingSpec::paper_default(),
            rho: 6,
            num_vectors: 1024,
            violation_penalty: 1e7,
            incremental_delay_limit: 0.1,
        }
    }
}

impl Default for PartitionConfig {
    fn default() -> Self {
        PartitionConfig::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_weights_match_section_5_1() {
        let w = Weights::paper();
        assert_eq!(w.area, 9.0);
        assert_eq!(w.delay, 1e5);
        assert_eq!(w.interconnect, 1.0);
        assert_eq!(w.test_time, 1.0);
        assert_eq!(w.module_count, 10.0);
    }

    #[test]
    fn default_config_is_feasibly_parameterized() {
        let c = PartitionConfig::default();
        assert!(c.d_min > 1.0, "IDDQ test needs d > 1 (paper §2)");
        assert!(c.sizing.r_star_mv >= 100.0 && c.sizing.r_star_mv <= 300.0);
        assert!(c.rho > 0);
        assert!(c.violation_penalty > 1e6);
    }
}
