//! The feasibility function `r(Π)` of §2.
//!
//! Two constraints make an IDDQ test physically meaningful:
//!
//! * **Discriminability** `d(M_i) = I_DDQ,th / I_DDQ,nd,i ≥ d` — a sensor
//!   whose module leaks close to the threshold cannot distinguish a
//!   defective from a fault-free measurement ("For the feasibility of an
//!   IDDQ test, d > 1 is required, and a typical value is 10").
//! * **Rail perturbation** `R_s,i · î_DD,max,i ≤ r*` with a realizable
//!   `R_s,i` — the bypass device must hold the virtual ground within the
//!   noise margin during normal operation.

use serde::{Deserialize, Serialize};

use crate::evaluator::Evaluated;

/// Per-module constraint evaluation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModuleConstraint {
    /// Module index.
    pub module: usize,
    /// Discriminability `d(M_i)`.
    pub discriminability: f64,
    /// Whether the discriminability constraint holds.
    pub discriminability_ok: bool,
    /// Whether a rail-compliant bypass device is realizable.
    pub rail_ok: bool,
}

/// Whole-partition constraint report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConstraintReport {
    /// Per-module details.
    pub modules: Vec<ModuleConstraint>,
    /// `r(Π)`: all constraints satisfied.
    pub feasible: bool,
}

/// Evaluates `r(Π)` over an evaluated partition.
///
/// # Example
///
/// ```rust
/// use iddq_celllib::Library;
/// use iddq_core::{config::PartitionConfig, constraints, Evaluated, EvalContext, Partition};
/// use iddq_netlist::data;
///
/// let c17 = data::c17();
/// let lib = Library::generic_1um();
/// let ctx = EvalContext::new(&c17, &lib, PartitionConfig::paper_default());
/// let e = Evaluated::new(&ctx, Partition::single_module(&c17));
/// let r = constraints::evaluate(&e);
/// assert!(r.feasible);
/// assert!(r.modules[0].discriminability > 10.0);
/// ```
#[must_use]
pub fn evaluate(eval: &Evaluated<'_>) -> ConstraintReport {
    let ctx = eval.context();
    let mut modules = Vec::with_capacity(eval.stats().len());
    let mut feasible = true;
    for (m, s) in eval.stats().iter().enumerate() {
        let leak_ua = s.leakage_na / 1000.0;
        let discriminability = if leak_ua > 0.0 {
            ctx.technology.iddq_threshold_ua / leak_ua
        } else {
            f64::INFINITY
        };
        let discriminability_ok = discriminability >= ctx.config.d_min;
        let rail_ok = eval.sensor(m).is_ok();
        feasible &= discriminability_ok && rail_ok;
        modules.push(ModuleConstraint {
            module: m,
            discriminability,
            discriminability_ok,
            rail_ok,
        });
    }
    ConstraintReport { modules, feasible }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PartitionConfig;
    use crate::context::EvalContext;
    use crate::partition::Partition;
    use iddq_celllib::Library;
    use iddq_netlist::data;

    #[test]
    fn c17_single_module_feasible() {
        let nl = data::c17();
        let lib = Library::generic_1um();
        let ctx = EvalContext::new(&nl, &lib, PartitionConfig::paper_default());
        let e = Evaluated::new(&ctx, Partition::single_module(&nl));
        let r = evaluate(&e);
        assert!(r.feasible);
        assert_eq!(r.modules.len(), 1);
    }

    #[test]
    fn strict_d_min_fails() {
        let nl = data::c17();
        let lib = Library::generic_1um();
        let mut cfg = PartitionConfig::paper_default();
        cfg.d_min = 1e12;
        let ctx = EvalContext::new(&nl, &lib, cfg);
        let e = Evaluated::new(&ctx, Partition::single_module(&nl));
        let r = evaluate(&e);
        assert!(!r.feasible);
        assert!(!r.modules[0].discriminability_ok);
        assert!(r.modules[0].rail_ok, "rail constraint independent of d");
    }

    #[test]
    fn report_agrees_with_cost_violations() {
        let nl = data::ripple_adder(16);
        let lib = Library::generic_1um();
        let ctx = EvalContext::new(&nl, &lib, PartitionConfig::paper_default());
        let e = Evaluated::new(&ctx, Partition::single_module(&nl));
        let r = evaluate(&e);
        let c = e.cost();
        assert_eq!(r.feasible, c.feasible());
    }
}
