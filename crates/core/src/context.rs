//! One-time analysis context shared by every partition evaluation.

use iddq_celllib::{Library, NodeTables, Technology};
use iddq_netlist::cone::ConeIndex;
use iddq_netlist::separation::{GateSeparationTable, SeparationOracle};
use iddq_netlist::{levelize, Netlist, TimeSet};

use crate::config::PartitionConfig;

/// Precomputed, partition-independent analysis of one `(netlist, library,
/// config)` triple.
///
/// Everything the cost estimators need repeatedly — transition-time sets
/// (§3.1), the separation oracle (§3.3), nominal critical-path timing
/// (§3.2) and flattened cell tables — is computed once here; evaluating or
/// mutating a partition then never touches the netlist text again.
///
/// # Example
///
/// ```rust
/// use iddq_celllib::Library;
/// use iddq_core::{config::PartitionConfig, EvalContext};
/// use iddq_netlist::data;
///
/// let c17 = data::c17();
/// let lib = Library::generic_1um();
/// let ctx = EvalContext::new(&c17, &lib, PartitionConfig::paper_default());
/// assert!(ctx.nominal_delay_ps > 0.0);
/// assert_eq!(ctx.gates.len(), 6);
/// ```
#[derive(Debug)]
pub struct EvalContext<'a> {
    /// The circuit under test.
    pub netlist: &'a Netlist,
    /// The cell library (kept for structure-patching consumers that must
    /// re-derive per-gate rows when a gate's kind or arity changes).
    pub library: &'a Library,
    /// Configuration (weights, constraints, sizing).
    pub config: PartitionConfig,
    /// Technology snapshot from the library.
    pub technology: Technology,
    /// Flattened per-node electrical tables.
    pub tables: NodeTables,
    /// §3.1 transition-time sets per node, on the technology grid.
    pub times: Vec<TimeSet>,
    /// One past the largest transition time over all nodes (histogram
    /// length for the per-module activity analysis).
    pub horizon: usize,
    /// Bounded-BFS separation oracle (§3.3).
    pub separation: SeparationOracle,
    /// Gate-only neighbour-weight table distilled from the oracle: the
    /// per-move separation delta in [`crate::evaluator::Evaluated`] is one
    /// contiguous scan of this table against the dense assignment vector,
    /// instead of a hash/closure walk over the full (input-polluted)
    /// neighbourhood.
    pub sep_table: GateSeparationTable,
    /// Fanout-cone index driving the incremental delay re-simulation.
    pub cones: ConeIndex,
    /// Nominal (sensor-free) critical path delay `D`, picoseconds.
    pub nominal_delay_ps: f64,
    /// All gate ids, in topological order.
    pub gates: Vec<iddq_netlist::NodeId>,
}

impl<'a> EvalContext<'a> {
    /// Runs the one-time analyses.
    #[must_use]
    pub fn new(netlist: &'a Netlist, library: &'a Library, config: PartitionConfig) -> Self {
        let tables = NodeTables::new(netlist, library);
        let times = levelize::transition_times(netlist, &tables.grid_delay);
        let horizon = times
            .iter()
            .filter_map(TimeSet::max)
            .max()
            .map(|t| t as usize + 1)
            .unwrap_or(1);
        let separation = SeparationOracle::new(netlist, config.rho);
        let sep_table = separation.gate_table(netlist);
        let cones = ConeIndex::new(netlist);
        let nominal_delay_ps = levelize::critical_path_delay(netlist, &tables.delay_ps);
        let gates = netlist
            .topo_order()
            .iter()
            .copied()
            .filter(|&id| netlist.is_gate(id))
            .collect();
        EvalContext {
            netlist,
            library,
            config,
            technology: library.technology().clone(),
            tables,
            times,
            horizon,
            separation,
            sep_table,
            cones,
            nominal_delay_ps,
            gates,
        }
    }

    /// Average per-gate leakage in nanoamps — used by the §4.2 module-size
    /// estimate.
    #[must_use]
    pub fn mean_gate_leakage_na(&self) -> f64 {
        if self.gates.is_empty() {
            return 0.0;
        }
        self.gates
            .iter()
            .map(|g| self.tables.leakage_na[g.index()])
            .sum::<f64>()
            / self.gates.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iddq_netlist::data;

    fn test_library() -> &'static Library {
        static LIB: std::sync::OnceLock<Library> = std::sync::OnceLock::new();
        LIB.get_or_init(Library::generic_1um)
    }

    fn ctx_for(netlist: &Netlist) -> EvalContext<'_> {
        EvalContext::new(netlist, test_library(), PartitionConfig::paper_default())
    }

    #[test]
    fn horizon_covers_all_transition_times() {
        let nl = data::c17();
        let ctx = ctx_for(&nl);
        for id in nl.node_ids() {
            if let Some(t) = ctx.times[id.index()].max() {
                assert!((t as usize) < ctx.horizon);
            }
        }
    }

    #[test]
    fn nominal_delay_is_three_nand_levels() {
        let nl = data::c17();
        let ctx = ctx_for(&nl);
        let nand_delay = ctx.tables.delay_ps[nl.find("10").unwrap().index()];
        assert!((ctx.nominal_delay_ps - 3.0 * nand_delay).abs() < 1e-9);
    }

    #[test]
    fn gates_in_topological_order() {
        let nl = data::ripple_adder(4);
        let ctx = ctx_for(&nl);
        let mut pos = vec![0usize; nl.node_count()];
        for (i, id) in nl.topo_order().iter().enumerate() {
            pos[id.index()] = i;
        }
        for w in ctx.gates.windows(2) {
            assert!(pos[w[0].index()] < pos[w[1].index()]);
        }
    }

    #[test]
    fn mean_leakage_positive() {
        let nl = data::c17();
        assert!(ctx_for(&nl).mean_gate_leakage_na() > 0.0);
    }
}
