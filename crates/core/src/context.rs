//! Tiered, parallel construction of the one-time analysis context shared
//! by every partition evaluation.
//!
//! # The tier lattice
//!
//! Not every consumer needs every analysis, and the analyses have very
//! different costs — on large circuits the §3.3 separation oracle
//! dominates the build. [`EvalContextBuilder`] therefore constructs an
//! [`EvalContext`] at one of three tiers:
//!
//! | tier ([`AnalysisTier`]) | contains | needed by |
//! |---|---|---|
//! | `Timing` | cell tables, §3.1 transition-time sets, fanout-cone index, nominal critical path, topo gate list | everything below builds on it |
//! | `GateSep` | `Timing` + the gate-only `ρ − d` neighbour-weight table ([`GateSeparationTable`]), built *directly* from the netlist | [`crate::resynth::ResynthEval`] and the patch-scored resynthesis searches (`iddq-synth::cost_aware[_per_gate]`) |
//! | `Separation` | `Timing` + the full ρ-bounded [`SeparationOracle`] (+ the table distilled from it) | [`crate::Evaluated`], [`crate::standard`], [`crate::evolution`], [`crate::flow`] — anything that queries node-to-node distances |
//!
//! `Timing ⊂ GateSep ⊂ Separation`: each tier strictly extends the one
//! below. The resynthesis flows deliberately stop at `GateSep` — the full
//! oracle also carries every primary-input row they never read, and on
//! c7552 skipping it removes most of the construction cost that used to
//! floor every candidate search.
//!
//! # Parallelism
//!
//! The separation build is one independent bounded BFS per node;
//! [`EvalContextBuilder::threads`] shards it across workers (the stitched
//! result is bit-identical to the serial build, so a parallel context is
//! interchangeable with a serial one everywhere).
//!
//! [`EvalContextBuilder::reference_oracle`] pins the build to the
//! historical hash-map constructor
//! ([`SeparationOracle::new_reference`]) — the differential baseline the
//! `context_build` benchmark section gates the flat engine against.

use iddq_celllib::{Library, NodeTables, Technology};
use iddq_netlist::cone::ConeIndex;
use iddq_netlist::separation::{GateSeparationTable, SeparationOracle};
use iddq_netlist::{levelize, Netlist, TimeSet};

use crate::config::PartitionConfig;

/// How much analysis an [`EvalContext`] carries (see the
/// [module docs](self) for the lattice).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum AnalysisTier {
    /// Tables, transition times, cones and nominal delay only.
    Timing,
    /// `Timing` plus the gate-only separation table (no full oracle).
    GateSep,
    /// `Timing` plus the full separation oracle (and its gate table) —
    /// what [`EvalContext::new`] builds.
    Separation,
}

/// Precomputed, partition-independent analysis of one `(netlist, library,
/// config)` triple.
///
/// Everything the cost estimators need repeatedly — transition-time sets
/// (§3.1), the separation analyses (§3.3), nominal critical-path timing
/// (§3.2) and flattened cell tables — is computed once here; evaluating or
/// mutating a partition then never touches the netlist text again.
///
/// The separation analyses are tiered (see the [module docs](self)):
/// [`EvalContext::separation`] and [`EvalContext::sep_table`] panic when
/// the context was built below the tier that provides them, with
/// [`EvalContext::try_separation`] / [`EvalContext::try_sep_table`] as the
/// non-panicking forms.
///
/// # Example
///
/// ```rust
/// use iddq_celllib::Library;
/// use iddq_core::{config::PartitionConfig, EvalContext};
/// use iddq_netlist::data;
///
/// let c17 = data::c17();
/// let lib = Library::generic_1um();
/// let ctx = EvalContext::new(&c17, &lib, PartitionConfig::paper_default());
/// assert!(ctx.nominal_delay_ps > 0.0);
/// assert_eq!(ctx.gates.len(), 6);
/// ```
#[derive(Debug)]
pub struct EvalContext<'a> {
    /// The circuit under test.
    pub netlist: &'a Netlist,
    /// The cell library (kept for structure-patching consumers that must
    /// re-derive per-gate rows when a gate's kind or arity changes).
    pub library: &'a Library,
    /// Configuration (weights, constraints, sizing).
    pub config: PartitionConfig,
    /// Technology snapshot from the library.
    pub technology: Technology,
    /// Flattened per-node electrical tables.
    pub tables: NodeTables,
    /// §3.1 transition-time sets per node, on the technology grid.
    pub times: Vec<TimeSet>,
    /// One past the largest transition time over all nodes (histogram
    /// length for the per-module activity analysis).
    pub horizon: usize,
    /// Fanout-cone index driving the incremental delay re-simulation.
    pub cones: ConeIndex,
    /// Nominal (sensor-free) critical path delay `D`, picoseconds.
    pub nominal_delay_ps: f64,
    /// All gate ids, in topological order.
    pub gates: Vec<iddq_netlist::NodeId>,
    /// Which tier was built.
    tier: AnalysisTier,
    /// Bounded-BFS separation oracle (§3.3); `Separation` tier only.
    separation: Option<SeparationOracle>,
    /// Gate-only neighbour-weight table: the per-move separation delta in
    /// [`crate::evaluator::Evaluated`] is one contiguous scan of this
    /// table against the dense assignment vector. `GateSep` tier and up.
    sep_table: Option<GateSeparationTable>,
}

/// Staged construction of an [`EvalContext`] — pick a tier, a thread
/// count, and (for benchmarking) the reference oracle constructor.
///
/// # Example
///
/// ```rust
/// use iddq_celllib::Library;
/// use iddq_core::context::AnalysisTier;
/// use iddq_core::{config::PartitionConfig, EvalContext, ResynthEval};
/// use iddq_netlist::data;
///
/// let c17 = data::c17();
/// let lib = Library::generic_1um();
/// // A lightweight context for patch-scored resynthesis: no full oracle.
/// let ctx = EvalContext::builder(&c17, &lib, PartitionConfig::paper_default())
///     .tier(AnalysisTier::GateSep)
///     .build();
/// assert_eq!(ctx.tier(), AnalysisTier::GateSep);
/// assert!(ctx.try_separation().is_none());
/// let mut eval = ResynthEval::new(&ctx);
/// assert!(eval.total_cost().is_finite());
/// ```
#[derive(Debug)]
pub struct EvalContextBuilder<'a> {
    netlist: &'a Netlist,
    library: &'a Library,
    config: PartitionConfig,
    tier: AnalysisTier,
    threads: usize,
    reference_oracle: bool,
}

impl<'a> EvalContextBuilder<'a> {
    /// Starts a builder at the full `Separation` tier, serial build.
    #[must_use]
    pub fn new(netlist: &'a Netlist, library: &'a Library, config: PartitionConfig) -> Self {
        EvalContextBuilder {
            netlist,
            library,
            config,
            tier: AnalysisTier::Separation,
            threads: 1,
            reference_oracle: false,
        }
    }

    /// Selects how much analysis to build (default:
    /// [`AnalysisTier::Separation`]).
    #[must_use]
    pub fn tier(mut self, tier: AnalysisTier) -> Self {
        self.tier = tier;
        self
    }

    /// Shards the separation BFS across `threads` workers (`0` and `1`
    /// both mean serial). The result is bit-identical for every thread
    /// count.
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Builds the separation oracle with the historical hash-map
    /// constructor ([`SeparationOracle::new_reference`]) instead of the
    /// flat engine — the differential/benchmark baseline. Only meaningful
    /// at the `Separation` tier.
    #[must_use]
    pub fn reference_oracle(mut self) -> Self {
        self.reference_oracle = true;
        self
    }

    /// `V·ρ` threshold above which the `Separation` tier switches from
    /// the sharded parallel oracle build to the memory-lean streamed
    /// build ([`SeparationOracle::new_streamed_with_control`]): beyond
    /// ~400k nodes at ρ = 5 the oracle table dominates RAM and the
    /// streamed build's single-copy peak wins over sharded build speed.
    /// Both builds produce bit-identical oracles.
    pub const STREAMED_ORACLE_MIN_WORK: usize = 2_000_000;

    /// Runs the analyses of the selected tier.
    #[must_use]
    pub fn build(self) -> EvalContext<'a> {
        let EvalContextBuilder {
            netlist,
            library,
            config,
            tier,
            threads,
            reference_oracle,
        } = self;
        let tables = NodeTables::new(netlist, library);
        let times = levelize::transition_times(netlist, &tables.grid_delay);
        let horizon = times
            .iter()
            .filter_map(TimeSet::max)
            .max()
            .map(|t| t as usize + 1)
            .unwrap_or(1);
        let cones = ConeIndex::new(netlist);
        let nominal_delay_ps = levelize::critical_path_delay(netlist, &tables.delay_ps);
        let gates = netlist
            .topo_order()
            .iter()
            .copied()
            .filter(|&id| netlist.is_gate(id))
            .collect();
        let (separation, sep_table) = match tier {
            AnalysisTier::Timing => (None, None),
            AnalysisTier::GateSep => (
                None,
                Some(GateSeparationTable::direct(netlist, config.rho, threads)),
            ),
            AnalysisTier::Separation => {
                let oracle = if reference_oracle {
                    SeparationOracle::new_reference(netlist, config.rho)
                } else if netlist.node_count() * config.rho as usize
                    >= EvalContextBuilder::STREAMED_ORACLE_MIN_WORK
                {
                    // Large V·ρ: the memory-lean streamed build keeps the
                    // peak at one table + one scratch instead of the
                    // sharded build's stitched-copy peak (bit-identical
                    // result either way).
                    SeparationOracle::new_streamed_with_control(
                        netlist,
                        config.rho,
                        &iddq_control::RunControl::unlimited(),
                    )
                    .into_value()
                } else {
                    SeparationOracle::new_parallel(netlist, config.rho, threads)
                };
                let table = oracle.gate_table(netlist);
                (Some(oracle), Some(table))
            }
        };
        EvalContext {
            netlist,
            library,
            config,
            technology: library.technology().clone(),
            tables,
            times,
            horizon,
            cones,
            nominal_delay_ps,
            gates,
            tier,
            separation,
            sep_table,
        }
    }
}

impl<'a> EvalContext<'a> {
    /// Runs the one-time analyses at the full `Separation` tier (serial
    /// build). Use [`EvalContext::builder`] for lighter tiers or a
    /// parallel build.
    #[must_use]
    pub fn new(netlist: &'a Netlist, library: &'a Library, config: PartitionConfig) -> Self {
        EvalContextBuilder::new(netlist, library, config).build()
    }

    /// Starts an [`EvalContextBuilder`].
    #[must_use]
    pub fn builder(
        netlist: &'a Netlist,
        library: &'a Library,
        config: PartitionConfig,
    ) -> EvalContextBuilder<'a> {
        EvalContextBuilder::new(netlist, library, config)
    }

    /// The tier this context was built at.
    #[must_use]
    pub fn tier(&self) -> AnalysisTier {
        self.tier
    }

    /// The §3.3 separation oracle.
    ///
    /// # Panics
    ///
    /// Panics if the context was built below [`AnalysisTier::Separation`].
    #[must_use]
    pub fn separation(&self) -> &SeparationOracle {
        self.separation.as_ref().unwrap_or_else(|| {
            panic!(
                "EvalContext tier {:?} carries no separation oracle — build \
                 with AnalysisTier::Separation",
                self.tier
            )
        })
    }

    /// The separation oracle, if this tier carries one.
    #[must_use]
    pub fn try_separation(&self) -> Option<&SeparationOracle> {
        self.separation.as_ref()
    }

    /// The gate-only `ρ − d` neighbour-weight table.
    ///
    /// # Panics
    ///
    /// Panics if the context was built below [`AnalysisTier::GateSep`].
    #[must_use]
    pub fn sep_table(&self) -> &GateSeparationTable {
        self.sep_table.as_ref().unwrap_or_else(|| {
            panic!(
                "EvalContext tier {:?} carries no gate separation table — \
                 build with AnalysisTier::GateSep or above",
                self.tier
            )
        })
    }

    /// The gate separation table, if this tier carries one.
    #[must_use]
    pub fn try_sep_table(&self) -> Option<&GateSeparationTable> {
        self.sep_table.as_ref()
    }

    /// Average per-gate leakage in nanoamps — used by the §4.2 module-size
    /// estimate.
    #[must_use]
    pub fn mean_gate_leakage_na(&self) -> f64 {
        if self.gates.is_empty() {
            return 0.0;
        }
        self.gates
            .iter()
            .map(|g| self.tables.leakage_na[g.index()])
            .sum::<f64>()
            / self.gates.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iddq_netlist::data;

    fn test_library() -> &'static Library {
        static LIB: std::sync::OnceLock<Library> = std::sync::OnceLock::new();
        LIB.get_or_init(Library::generic_1um)
    }

    fn ctx_for(netlist: &Netlist) -> EvalContext<'_> {
        EvalContext::new(netlist, test_library(), PartitionConfig::paper_default())
    }

    #[test]
    fn horizon_covers_all_transition_times() {
        let nl = data::c17();
        let ctx = ctx_for(&nl);
        for id in nl.node_ids() {
            if let Some(t) = ctx.times[id.index()].max() {
                assert!((t as usize) < ctx.horizon);
            }
        }
    }

    #[test]
    fn nominal_delay_is_three_nand_levels() {
        let nl = data::c17();
        let ctx = ctx_for(&nl);
        let nand_delay = ctx.tables.delay_ps[nl.find("10").unwrap().index()];
        assert!((ctx.nominal_delay_ps - 3.0 * nand_delay).abs() < 1e-9);
    }

    #[test]
    fn gates_in_topological_order() {
        let nl = data::ripple_adder(4);
        let ctx = ctx_for(&nl);
        let mut pos = vec![0usize; nl.node_count()];
        for (i, id) in nl.topo_order().iter().enumerate() {
            pos[id.index()] = i;
        }
        for w in ctx.gates.windows(2) {
            assert!(pos[w[0].index()] < pos[w[1].index()]);
        }
    }

    #[test]
    fn mean_leakage_positive() {
        let nl = data::c17();
        assert!(ctx_for(&nl).mean_gate_leakage_na() > 0.0);
    }

    #[test]
    fn default_build_is_full_tier() {
        let nl = data::c17();
        let ctx = ctx_for(&nl);
        assert_eq!(ctx.tier(), AnalysisTier::Separation);
        assert!(ctx.try_separation().is_some());
        assert!(ctx.try_sep_table().is_some());
        assert_eq!(ctx.separation().rho(), ctx.config.rho);
    }

    #[test]
    fn gatesep_tier_table_equals_full_tier_table() {
        let nl = data::ripple_adder(8);
        let full = ctx_for(&nl);
        let light = EvalContext::builder(&nl, test_library(), PartitionConfig::paper_default())
            .tier(AnalysisTier::GateSep)
            .build();
        assert_eq!(light.tier(), AnalysisTier::GateSep);
        assert!(light.try_separation().is_none());
        assert_eq!(light.sep_table(), full.sep_table());
    }

    #[test]
    fn timing_tier_has_timing_analyses_only() {
        let nl = data::c17();
        let ctx = EvalContext::builder(&nl, test_library(), PartitionConfig::paper_default())
            .tier(AnalysisTier::Timing)
            .build();
        assert!(ctx.try_separation().is_none());
        assert!(ctx.try_sep_table().is_none());
        assert!(ctx.nominal_delay_ps > 0.0);
        assert_eq!(ctx.gates.len(), 6);
    }

    #[test]
    #[should_panic(expected = "no separation oracle")]
    fn separation_accessor_panics_below_tier() {
        let nl = data::c17();
        let ctx = EvalContext::builder(&nl, test_library(), PartitionConfig::paper_default())
            .tier(AnalysisTier::GateSep)
            .build();
        let _ = ctx.separation();
    }

    #[test]
    #[should_panic(expected = "no gate separation table")]
    fn sep_table_accessor_panics_below_tier() {
        let nl = data::c17();
        let ctx = EvalContext::builder(&nl, test_library(), PartitionConfig::paper_default())
            .tier(AnalysisTier::Timing)
            .build();
        let _ = ctx.sep_table();
    }

    #[test]
    fn parallel_and_reference_builds_match_serial() {
        let nl = data::ripple_adder(10);
        let serial = ctx_for(&nl);
        for build in [
            EvalContext::builder(&nl, test_library(), PartitionConfig::paper_default()).threads(4),
            EvalContext::builder(&nl, test_library(), PartitionConfig::paper_default())
                .reference_oracle(),
        ] {
            let ctx = build.build();
            assert_eq!(ctx.separation(), serial.separation());
            assert_eq!(ctx.sep_table(), serial.sep_table());
        }
    }

    #[test]
    fn tier_ordering_reflects_the_lattice() {
        assert!(AnalysisTier::Timing < AnalysisTier::GateSep);
        assert!(AnalysisTier::GateSep < AnalysisTier::Separation);
    }
}
