//! Tiered, parallel construction of the one-time analysis context shared
//! by every partition evaluation.
//!
//! # The tier lattice
//!
//! Not every consumer needs every analysis, and the analyses have very
//! different costs — on large circuits the §3.3 separation oracle
//! dominates the build. [`EvalContextBuilder`] therefore constructs an
//! [`EvalContext`] at one of three tiers:
//!
//! | tier ([`AnalysisTier`]) | contains | needed by |
//! |---|---|---|
//! | `Timing` | cell tables, §3.1 transition-time sets, fanout-cone index, nominal critical path, topo gate list | everything below builds on it |
//! | `GateSep` | `Timing` + the gate-only `ρ − d` neighbour-weight table ([`GateSeparationTable`]), built *directly* from the netlist | [`crate::resynth::ResynthEval`] and the patch-scored resynthesis searches (`iddq-synth::cost_aware[_per_gate]`) |
//! | `Separation` | `Timing` + the full ρ-bounded [`SeparationOracle`] (+ the table distilled from it) | [`crate::Evaluated`], [`crate::standard`], [`crate::evolution`], [`crate::flow`] — anything that queries node-to-node distances |
//!
//! `Timing ⊂ GateSep ⊂ Separation`: each tier strictly extends the one
//! below. The resynthesis flows deliberately stop at `GateSep` — the full
//! oracle also carries every primary-input row they never read, and on
//! c7552 skipping it removes most of the construction cost that used to
//! floor every candidate search.
//!
//! # Parallelism
//!
//! The separation build is one independent bounded BFS per node;
//! [`EvalContextBuilder::threads`] shards it across workers (the stitched
//! result is bit-identical to the serial build, so a parallel context is
//! interchangeable with a serial one everywhere).
//!
//! [`EvalContextBuilder::reference_oracle`] pins the build to the
//! historical hash-map constructor
//! ([`SeparationOracle::new_reference`]) — the differential baseline the
//! `context_build` benchmark section gates the flat engine against.

use iddq_celllib::{Library, NodeTables, Technology};
use iddq_netlist::cone::ConeIndex;
use iddq_netlist::separation::{GateSeparationTable, SeparationOracle};
use iddq_netlist::{levelize, Netlist, TimeSet};

use crate::config::PartitionConfig;

/// How much analysis an [`EvalContext`] carries (see the
/// [module docs](self) for the lattice).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum AnalysisTier {
    /// Tables, transition times, cones and nominal delay only.
    Timing,
    /// `Timing` plus the gate-only separation table (no full oracle).
    GateSep,
    /// `Timing` plus the full separation oracle (and its gate table) —
    /// what [`EvalContext::new`] builds.
    Separation,
}

impl AnalysisTier {
    /// The next cheaper tier in the lattice, or `None` at the floor:
    /// `Separation → GateSep → Timing → ∅`. Degradation logic walks this
    /// chain until the candidate tier fits its budget.
    #[must_use]
    pub fn downgrade(self) -> Option<AnalysisTier> {
        match self {
            AnalysisTier::Separation => Some(AnalysisTier::GateSep),
            AnalysisTier::GateSep => Some(AnalysisTier::Timing),
            AnalysisTier::Timing => None,
        }
    }

    /// Canonical lower-case name, the wire form of the serving protocol.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            AnalysisTier::Timing => "timing",
            AnalysisTier::GateSep => "gatesep",
            AnalysisTier::Separation => "separation",
        }
    }
}

impl std::fmt::Display for AnalysisTier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl std::str::FromStr for AnalysisTier {
    type Err = iddq_control::EngineError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "timing" => Ok(AnalysisTier::Timing),
            "gatesep" => Ok(AnalysisTier::GateSep),
            "separation" => Ok(AnalysisTier::Separation),
            other => Err(iddq_control::EngineError::InvalidArg(format!(
                "unknown analysis tier {other:?} (expected timing | gatesep | separation)"
            ))),
        }
    }
}

/// Resource ceilings consulted by [`plan_tier`] before an analysis build
/// is committed to: how much wall clock is left on the request and how
/// much memory the artifact may occupy. `None` means unconstrained.
#[derive(Debug, Clone, Copy, Default)]
pub struct TierBudget {
    /// Milliseconds left before the caller's deadline.
    pub remaining_ms: Option<u64>,
    /// Ceiling on the analysis artifact's heap footprint, bytes.
    pub memory_bytes: Option<usize>,
}

/// The tier [`plan_tier`] decided to build, and whether that is a
/// degradation from what the caller asked for.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TierPlan {
    /// The tier that fits the budget.
    pub tier: AnalysisTier,
    /// `true` iff `tier` is below the requested tier.
    pub degraded: bool,
    /// Human-readable reason for the downgrade (empty when not degraded).
    pub reason: String,
}

/// Conservative build-rate assumption for the separation analyses,
/// table entries per millisecond: used by [`plan_tier`] to translate a
/// remaining-deadline budget into a largest-affordable table. Calibrated
/// well below the measured flat-BFS engine rate so the planner errs
/// toward degrading early rather than blowing a deadline mid-build.
pub const SEPARATION_ENTRIES_PER_MS: u64 = 20_000;

/// Picks the most capable [`AnalysisTier`] at or below `requested` whose
/// estimated build cost fits `budget`, walking the
/// [`AnalysisTier::downgrade`] chain: `Separation → GateSep → Timing`.
///
/// The cost model is deliberately cheap — a sampled
/// [`SeparationOracle::estimate_bytes`] probe (no table is built) and the
/// fixed [`SEPARATION_ENTRIES_PER_MS`] rate — because this runs on the
/// admission path of every `stats` request the server plans. `Timing`
/// always fits: its analyses are linear passes the request would not be
/// admitted without.
#[must_use]
pub fn plan_tier(
    netlist: &Netlist,
    rho: u32,
    requested: AnalysisTier,
    budget: &TierBudget,
) -> TierPlan {
    let full_bytes = match requested {
        AnalysisTier::Timing => 0,
        _ => SeparationOracle::estimate_bytes(netlist, rho),
    };
    // The gate-only table skips every primary-input row and stores only
    // gate→gate pairs; scale the full-table estimate by the squared gate
    // fraction (both the row count and the per-row ball shrink).
    let gate_fraction = if netlist.node_count() == 0 {
        0.0
    } else {
        netlist.gate_count() as f64 / netlist.node_count() as f64
    };
    let mut tier = requested;
    let mut reason = String::new();
    loop {
        let est_bytes = match tier {
            AnalysisTier::Timing => break,
            AnalysisTier::GateSep => (full_bytes as f64 * gate_fraction * gate_fraction) as usize,
            AnalysisTier::Separation => full_bytes,
        };
        let over_memory = budget.memory_bytes.is_some_and(|cap| est_bytes > cap);
        let over_deadline = budget.remaining_ms.is_some_and(|ms| {
            let entries = est_bytes as u64 / 8;
            entries.div_ceil(SEPARATION_ENTRIES_PER_MS) > ms
        });
        if !over_memory && !over_deadline {
            break;
        }
        if reason.is_empty() {
            reason = format!(
                "{} tier needs ~{} bytes{}",
                tier.as_str(),
                est_bytes,
                if over_memory {
                    " (over memory ceiling)"
                } else {
                    " (over deadline budget)"
                }
            );
        }
        match tier.downgrade() {
            Some(lower) => tier = lower,
            None => break,
        }
    }
    TierPlan {
        degraded: tier < requested,
        tier,
        reason: if tier < requested {
            reason
        } else {
            String::new()
        },
    }
}

/// Precomputed, partition-independent analysis of one `(netlist, library,
/// config)` triple.
///
/// Everything the cost estimators need repeatedly — transition-time sets
/// (§3.1), the separation analyses (§3.3), nominal critical-path timing
/// (§3.2) and flattened cell tables — is computed once here; evaluating or
/// mutating a partition then never touches the netlist text again.
///
/// The separation analyses are tiered (see the [module docs](self)):
/// [`EvalContext::separation`] and [`EvalContext::sep_table`] panic when
/// the context was built below the tier that provides them, with
/// [`EvalContext::try_separation`] / [`EvalContext::try_sep_table`] as the
/// non-panicking forms.
///
/// # Example
///
/// ```rust
/// use iddq_celllib::Library;
/// use iddq_core::{config::PartitionConfig, EvalContext};
/// use iddq_netlist::data;
///
/// let c17 = data::c17();
/// let lib = Library::generic_1um();
/// let ctx = EvalContext::new(&c17, &lib, PartitionConfig::paper_default());
/// assert!(ctx.nominal_delay_ps > 0.0);
/// assert_eq!(ctx.gates.len(), 6);
/// ```
#[derive(Debug)]
pub struct EvalContext<'a> {
    /// The circuit under test.
    pub netlist: &'a Netlist,
    /// The cell library (kept for structure-patching consumers that must
    /// re-derive per-gate rows when a gate's kind or arity changes).
    pub library: &'a Library,
    /// Configuration (weights, constraints, sizing).
    pub config: PartitionConfig,
    /// Technology snapshot from the library.
    pub technology: Technology,
    /// Flattened per-node electrical tables.
    pub tables: NodeTables,
    /// §3.1 transition-time sets per node, on the technology grid.
    pub times: Vec<TimeSet>,
    /// One past the largest transition time over all nodes (histogram
    /// length for the per-module activity analysis).
    pub horizon: usize,
    /// Fanout-cone index driving the incremental delay re-simulation.
    pub cones: ConeIndex,
    /// Nominal (sensor-free) critical path delay `D`, picoseconds.
    pub nominal_delay_ps: f64,
    /// All gate ids, in topological order.
    pub gates: Vec<iddq_netlist::NodeId>,
    /// Which tier was built.
    tier: AnalysisTier,
    /// Bounded-BFS separation oracle (§3.3); `Separation` tier only.
    separation: Option<SeparationOracle>,
    /// Gate-only neighbour-weight table: the per-move separation delta in
    /// [`crate::evaluator::Evaluated`] is one contiguous scan of this
    /// table against the dense assignment vector. `GateSep` tier and up.
    sep_table: Option<GateSeparationTable>,
}

/// Staged construction of an [`EvalContext`] — pick a tier, a thread
/// count, and (for benchmarking) the reference oracle constructor.
///
/// # Example
///
/// ```rust
/// use iddq_celllib::Library;
/// use iddq_core::context::AnalysisTier;
/// use iddq_core::{config::PartitionConfig, EvalContext, ResynthEval};
/// use iddq_netlist::data;
///
/// let c17 = data::c17();
/// let lib = Library::generic_1um();
/// // A lightweight context for patch-scored resynthesis: no full oracle.
/// let ctx = EvalContext::builder(&c17, &lib, PartitionConfig::paper_default())
///     .tier(AnalysisTier::GateSep)
///     .build();
/// assert_eq!(ctx.tier(), AnalysisTier::GateSep);
/// assert!(ctx.try_separation().is_none());
/// let mut eval = ResynthEval::new(&ctx);
/// assert!(eval.total_cost().is_finite());
/// ```
#[derive(Debug)]
pub struct EvalContextBuilder<'a> {
    netlist: &'a Netlist,
    library: &'a Library,
    config: PartitionConfig,
    tier: AnalysisTier,
    threads: usize,
    reference_oracle: bool,
}

impl<'a> EvalContextBuilder<'a> {
    /// Starts a builder at the full `Separation` tier, serial build.
    #[must_use]
    pub fn new(netlist: &'a Netlist, library: &'a Library, config: PartitionConfig) -> Self {
        EvalContextBuilder {
            netlist,
            library,
            config,
            tier: AnalysisTier::Separation,
            threads: 1,
            reference_oracle: false,
        }
    }

    /// Selects how much analysis to build (default:
    /// [`AnalysisTier::Separation`]).
    #[must_use]
    pub fn tier(mut self, tier: AnalysisTier) -> Self {
        self.tier = tier;
        self
    }

    /// Shards the separation BFS across `threads` workers (`0` and `1`
    /// both mean serial). The result is bit-identical for every thread
    /// count.
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Builds the separation oracle with the historical hash-map
    /// constructor ([`SeparationOracle::new_reference`]) instead of the
    /// flat engine — the differential/benchmark baseline. Only meaningful
    /// at the `Separation` tier.
    #[must_use]
    pub fn reference_oracle(mut self) -> Self {
        self.reference_oracle = true;
        self
    }

    /// `V·ρ` threshold above which the `Separation` tier switches from
    /// the sharded parallel oracle build to the memory-lean streamed
    /// build ([`SeparationOracle::new_streamed_with_control`]): beyond
    /// ~400k nodes at ρ = 5 the oracle table dominates RAM and the
    /// streamed build's single-copy peak wins over sharded build speed.
    /// Both builds produce bit-identical oracles.
    pub const STREAMED_ORACLE_MIN_WORK: usize = 2_000_000;

    /// Runs the analyses of the selected tier.
    #[must_use]
    pub fn build(self) -> EvalContext<'a> {
        let EvalContextBuilder {
            netlist,
            library,
            config,
            tier,
            threads,
            reference_oracle,
        } = self;
        let tables = NodeTables::new(netlist, library);
        let times = levelize::transition_times(netlist, &tables.grid_delay);
        let horizon = times
            .iter()
            .filter_map(TimeSet::max)
            .max()
            .map(|t| t as usize + 1)
            .unwrap_or(1);
        let cones = ConeIndex::new(netlist);
        let nominal_delay_ps = levelize::critical_path_delay(netlist, &tables.delay_ps);
        let gates = netlist
            .topo_order()
            .iter()
            .copied()
            .filter(|&id| netlist.is_gate(id))
            .collect();
        let (separation, sep_table) = match tier {
            AnalysisTier::Timing => (None, None),
            AnalysisTier::GateSep => (
                None,
                Some(GateSeparationTable::direct(netlist, config.rho, threads)),
            ),
            AnalysisTier::Separation => {
                let oracle = if reference_oracle {
                    SeparationOracle::new_reference(netlist, config.rho)
                } else if netlist.node_count() * config.rho as usize
                    >= EvalContextBuilder::STREAMED_ORACLE_MIN_WORK
                {
                    // Large V·ρ: the memory-lean streamed build keeps the
                    // peak at one table + one scratch instead of the
                    // sharded build's stitched-copy peak (bit-identical
                    // result either way).
                    SeparationOracle::new_streamed_with_control(
                        netlist,
                        config.rho,
                        &iddq_control::RunControl::unlimited(),
                    )
                    .into_value()
                } else {
                    SeparationOracle::new_parallel(netlist, config.rho, threads)
                };
                let table = oracle.gate_table(netlist);
                (Some(oracle), Some(table))
            }
        };
        EvalContext {
            netlist,
            library,
            config,
            technology: library.technology().clone(),
            tables,
            times,
            horizon,
            cones,
            nominal_delay_ps,
            gates,
            tier,
            separation,
            sep_table,
        }
    }
}

impl<'a> EvalContext<'a> {
    /// Runs the one-time analyses at the full `Separation` tier (serial
    /// build). Use [`EvalContext::builder`] for lighter tiers or a
    /// parallel build.
    #[must_use]
    pub fn new(netlist: &'a Netlist, library: &'a Library, config: PartitionConfig) -> Self {
        EvalContextBuilder::new(netlist, library, config).build()
    }

    /// Starts an [`EvalContextBuilder`].
    #[must_use]
    pub fn builder(
        netlist: &'a Netlist,
        library: &'a Library,
        config: PartitionConfig,
    ) -> EvalContextBuilder<'a> {
        EvalContextBuilder::new(netlist, library, config)
    }

    /// The tier this context was built at.
    #[must_use]
    pub fn tier(&self) -> AnalysisTier {
        self.tier
    }

    /// The §3.3 separation oracle.
    ///
    /// # Panics
    ///
    /// Panics if the context was built below [`AnalysisTier::Separation`].
    #[must_use]
    pub fn separation(&self) -> &SeparationOracle {
        self.separation.as_ref().unwrap_or_else(|| {
            panic!(
                "EvalContext tier {:?} carries no separation oracle — build \
                 with AnalysisTier::Separation",
                self.tier
            )
        })
    }

    /// The separation oracle, if this tier carries one.
    #[must_use]
    pub fn try_separation(&self) -> Option<&SeparationOracle> {
        self.separation.as_ref()
    }

    /// The gate-only `ρ − d` neighbour-weight table.
    ///
    /// # Panics
    ///
    /// Panics if the context was built below [`AnalysisTier::GateSep`].
    #[must_use]
    pub fn sep_table(&self) -> &GateSeparationTable {
        self.sep_table.as_ref().unwrap_or_else(|| {
            panic!(
                "EvalContext tier {:?} carries no gate separation table — \
                 build with AnalysisTier::GateSep or above",
                self.tier
            )
        })
    }

    /// The gate separation table, if this tier carries one.
    #[must_use]
    pub fn try_sep_table(&self) -> Option<&GateSeparationTable> {
        self.sep_table.as_ref()
    }

    /// Average per-gate leakage in nanoamps — used by the §4.2 module-size
    /// estimate.
    #[must_use]
    pub fn mean_gate_leakage_na(&self) -> f64 {
        if self.gates.is_empty() {
            return 0.0;
        }
        self.gates
            .iter()
            .map(|g| self.tables.leakage_na[g.index()])
            .sum::<f64>()
            / self.gates.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iddq_netlist::data;

    fn test_library() -> &'static Library {
        static LIB: std::sync::OnceLock<Library> = std::sync::OnceLock::new();
        LIB.get_or_init(Library::generic_1um)
    }

    fn ctx_for(netlist: &Netlist) -> EvalContext<'_> {
        EvalContext::new(netlist, test_library(), PartitionConfig::paper_default())
    }

    #[test]
    fn horizon_covers_all_transition_times() {
        let nl = data::c17();
        let ctx = ctx_for(&nl);
        for id in nl.node_ids() {
            if let Some(t) = ctx.times[id.index()].max() {
                assert!((t as usize) < ctx.horizon);
            }
        }
    }

    #[test]
    fn nominal_delay_is_three_nand_levels() {
        let nl = data::c17();
        let ctx = ctx_for(&nl);
        let nand_delay = ctx.tables.delay_ps[nl.find("10").unwrap().index()];
        assert!((ctx.nominal_delay_ps - 3.0 * nand_delay).abs() < 1e-9);
    }

    #[test]
    fn gates_in_topological_order() {
        let nl = data::ripple_adder(4);
        let ctx = ctx_for(&nl);
        let mut pos = vec![0usize; nl.node_count()];
        for (i, id) in nl.topo_order().iter().enumerate() {
            pos[id.index()] = i;
        }
        for w in ctx.gates.windows(2) {
            assert!(pos[w[0].index()] < pos[w[1].index()]);
        }
    }

    #[test]
    fn mean_leakage_positive() {
        let nl = data::c17();
        assert!(ctx_for(&nl).mean_gate_leakage_na() > 0.0);
    }

    #[test]
    fn default_build_is_full_tier() {
        let nl = data::c17();
        let ctx = ctx_for(&nl);
        assert_eq!(ctx.tier(), AnalysisTier::Separation);
        assert!(ctx.try_separation().is_some());
        assert!(ctx.try_sep_table().is_some());
        assert_eq!(ctx.separation().rho(), ctx.config.rho);
    }

    #[test]
    fn gatesep_tier_table_equals_full_tier_table() {
        let nl = data::ripple_adder(8);
        let full = ctx_for(&nl);
        let light = EvalContext::builder(&nl, test_library(), PartitionConfig::paper_default())
            .tier(AnalysisTier::GateSep)
            .build();
        assert_eq!(light.tier(), AnalysisTier::GateSep);
        assert!(light.try_separation().is_none());
        assert_eq!(light.sep_table(), full.sep_table());
    }

    #[test]
    fn timing_tier_has_timing_analyses_only() {
        let nl = data::c17();
        let ctx = EvalContext::builder(&nl, test_library(), PartitionConfig::paper_default())
            .tier(AnalysisTier::Timing)
            .build();
        assert!(ctx.try_separation().is_none());
        assert!(ctx.try_sep_table().is_none());
        assert!(ctx.nominal_delay_ps > 0.0);
        assert_eq!(ctx.gates.len(), 6);
    }

    #[test]
    #[should_panic(expected = "no separation oracle")]
    fn separation_accessor_panics_below_tier() {
        let nl = data::c17();
        let ctx = EvalContext::builder(&nl, test_library(), PartitionConfig::paper_default())
            .tier(AnalysisTier::GateSep)
            .build();
        let _ = ctx.separation();
    }

    #[test]
    #[should_panic(expected = "no gate separation table")]
    fn sep_table_accessor_panics_below_tier() {
        let nl = data::c17();
        let ctx = EvalContext::builder(&nl, test_library(), PartitionConfig::paper_default())
            .tier(AnalysisTier::Timing)
            .build();
        let _ = ctx.sep_table();
    }

    #[test]
    fn parallel_and_reference_builds_match_serial() {
        let nl = data::ripple_adder(10);
        let serial = ctx_for(&nl);
        for build in [
            EvalContext::builder(&nl, test_library(), PartitionConfig::paper_default()).threads(4),
            EvalContext::builder(&nl, test_library(), PartitionConfig::paper_default())
                .reference_oracle(),
        ] {
            let ctx = build.build();
            assert_eq!(ctx.separation(), serial.separation());
            assert_eq!(ctx.sep_table(), serial.sep_table());
        }
    }

    #[test]
    fn tier_ordering_reflects_the_lattice() {
        assert!(AnalysisTier::Timing < AnalysisTier::GateSep);
        assert!(AnalysisTier::GateSep < AnalysisTier::Separation);
    }

    #[test]
    fn tier_downgrade_chain_and_names() {
        assert_eq!(
            AnalysisTier::Separation.downgrade(),
            Some(AnalysisTier::GateSep)
        );
        assert_eq!(
            AnalysisTier::GateSep.downgrade(),
            Some(AnalysisTier::Timing)
        );
        assert_eq!(AnalysisTier::Timing.downgrade(), None);
        for tier in [
            AnalysisTier::Timing,
            AnalysisTier::GateSep,
            AnalysisTier::Separation,
        ] {
            assert_eq!(tier.as_str().parse::<AnalysisTier>().unwrap(), tier);
        }
        assert_eq!(
            "SEPARATION".parse::<AnalysisTier>().unwrap(),
            AnalysisTier::Separation
        );
        assert!("turbo".parse::<AnalysisTier>().is_err());
    }

    #[test]
    fn plan_tier_unconstrained_grants_request() {
        let nl = data::ripple_adder(16);
        let plan = plan_tier(&nl, 4, AnalysisTier::Separation, &TierBudget::default());
        assert_eq!(plan.tier, AnalysisTier::Separation);
        assert!(!plan.degraded);
        assert!(plan.reason.is_empty());
    }

    #[test]
    fn plan_tier_degrades_under_memory_pressure() {
        let nl = data::ripple_adder(64);
        // A ceiling below even the gate-only table forces the floor.
        let starved = plan_tier(
            &nl,
            4,
            AnalysisTier::Separation,
            &TierBudget {
                remaining_ms: None,
                memory_bytes: Some(16),
            },
        );
        assert_eq!(starved.tier, AnalysisTier::Timing);
        assert!(starved.degraded);
        assert!(starved.reason.contains("memory"));
        // A generous ceiling keeps the full tier.
        let roomy = plan_tier(
            &nl,
            4,
            AnalysisTier::Separation,
            &TierBudget {
                remaining_ms: None,
                memory_bytes: Some(usize::MAX),
            },
        );
        assert_eq!(roomy.tier, AnalysisTier::Separation);
        assert!(!roomy.degraded);
    }

    #[test]
    fn plan_tier_degrades_under_deadline_pressure() {
        let nl = data::ripple_adder(64);
        let rushed = plan_tier(
            &nl,
            4,
            AnalysisTier::Separation,
            &TierBudget {
                remaining_ms: Some(0),
                memory_bytes: None,
            },
        );
        assert!(rushed.tier < AnalysisTier::Separation);
        assert!(rushed.degraded);
        assert!(rushed.reason.contains("deadline"));
    }

    #[test]
    fn plan_tier_never_upgrades_a_timing_request() {
        let nl = data::c17();
        let plan = plan_tier(&nl, 4, AnalysisTier::Timing, &TierBudget::default());
        assert_eq!(plan.tier, AnalysisTier::Timing);
        assert!(!plan.degraded);
    }
}
