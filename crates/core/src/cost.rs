//! The global cost function `C(Π) = Σ αᵢ·cᵢ(Π)`.

use serde::{Deserialize, Serialize};

use crate::config::Weights;

/// All cost terms of one partition evaluation, before and after
/// weighting.
///
/// Terms follow §3 of the paper:
///
/// * `c1 = log A` — total BIC sensor area (log-compressed "so all
///   components of the objective function have similar range"),
/// * `c2 = (D_BIC − D)/D` — relative critical-path delay overhead,
/// * `c3 = log S(Π)` — intra-module separation (wiring difficulty),
/// * `c4` — relative test-application-time overhead (logic settle plus
///   the slowest sensor's decay+sense window, per vector),
/// * `c5 = K` — module count (test clock/output routing).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostBreakdown {
    /// `c₁`: log of total sensor area.
    pub c1_area: f64,
    /// `c₂`: relative delay overhead.
    pub c2_delay: f64,
    /// `c₃`: log of total separation.
    pub c3_interconnect: f64,
    /// `c₄`: relative test-time overhead.
    pub c4_test_time: f64,
    /// `c₅`: module count.
    pub c5_modules: f64,
    /// Number of violated constraints (discriminability + rail
    /// perturbation, counted per module).
    pub violations: usize,
    /// Raw (un-logged) total sensor area, for reporting — the figure the
    /// paper's Table 1 prints.
    pub sensor_area: f64,
    /// Absolute degraded critical path `D_BIC`, ps.
    pub dbic_ps: f64,
    /// Absolute per-vector test time `D_BIC + max_i Δ(τᵢ)`, ps.
    pub vector_time_ps: f64,
}

impl CostBreakdown {
    /// The constraint evaluation function `r(Π)`: 1 iff all constraints
    /// hold.
    #[must_use]
    pub fn feasible(&self) -> bool {
        self.violations == 0
    }

    /// Weighted total `Σ αᵢ·cᵢ` plus the violation penalty.
    #[must_use]
    pub fn total(&self, weights: &Weights, violation_penalty: f64) -> f64 {
        weights.area * self.c1_area
            + weights.delay * self.c2_delay
            + weights.interconnect * self.c3_interconnect
            + weights.test_time * self.c4_test_time
            + weights.module_count * self.c5_modules
            + violation_penalty * self.violations as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CostBreakdown {
        CostBreakdown {
            c1_area: 14.0,
            c2_delay: 0.06,
            c3_interconnect: 8.0,
            c4_test_time: 4.0,
            c5_modules: 3.0,
            violations: 0,
            sensor_area: 1.2e6,
            dbic_ps: 5000.0,
            vector_time_ps: 30_000.0,
        }
    }

    #[test]
    fn weighted_total_matches_paper_formula() {
        let c = sample();
        let w = Weights::paper();
        let want = 9.0 * 14.0 + 1e5 * 0.06 + 8.0 + 4.0 + 10.0 * 3.0;
        assert!((c.total(&w, 1e7) - want).abs() < 1e-9);
    }

    #[test]
    fn violations_dominate() {
        let mut c = sample();
        let w = Weights::paper();
        let ok = c.total(&w, 1e7);
        c.violations = 2;
        assert!(c.total(&w, 1e7) > ok + 1.9e7);
        assert!(!c.feasible());
    }
}
