//! Incremental partition evaluation.
//!
//! The evolution algorithm evaluates thousands of neighbouring partitions;
//! the paper notes that "after gate moving, costs are recomputed just for
//! the modified modules, and the global costs of the partition are
//! updated" (§4.2). [`Evaluated`] implements exactly that: per-module
//! activity histograms, leakage/capacitance sums and separation totals are
//! maintained under [`Evaluated::move_gate`], and [`Evaluated::cost`]
//! derives the five cost terms from the cached statistics.

use iddq_analog::network::delay_degradation;
use iddq_bic::sizing::{size_sensor, SizingError};
use iddq_bic::BicSensor;
use iddq_netlist::NodeId;

use crate::context::EvalContext;
use crate::cost::CostBreakdown;
use crate::partition::{MoveOutcome, Partition};

/// Cached per-module statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct ModuleStats {
    /// Summed peak currents of gates able to switch at each grid time —
    /// the §3.1 estimator's inner table. `î_DD,max,i` is its maximum.
    pub current_hist: Vec<f64>,
    /// Number of gates able to switch at each grid time (`n(t)`).
    pub count_hist: Vec<u32>,
    /// `î_DD,max,i` in µA (max of `current_hist`).
    pub peak_current_ua: f64,
    /// Peak simultaneous activity `max_t n(t)`.
    pub peak_activity: u32,
    /// Fault-free quiescent current `I_DDQ,nd,i`, nanoamps.
    pub leakage_na: f64,
    /// Virtual-rail parasitic capacitance `C_s,i`, femtofarads.
    pub rail_cap_ff: f64,
    /// Sum of member cell areas (reporting only).
    pub cell_area: f64,
    /// Module separation `S(M_i)` (§3.3).
    pub separation: u64,
}

impl ModuleStats {
    fn empty(horizon: usize) -> Self {
        ModuleStats {
            current_hist: vec![0.0; horizon],
            count_hist: vec![0; horizon],
            peak_current_ua: 0.0,
            peak_activity: 0,
            leakage_na: 0.0,
            rail_cap_ff: 0.0,
            cell_area: 0.0,
            separation: 0,
        }
    }

    fn rescan_peaks(&mut self) {
        self.peak_current_ua = self.current_hist.iter().copied().fold(0.0, f64::max);
        self.peak_activity = self.count_hist.iter().copied().max().unwrap_or(0);
    }
}

/// A partition plus its incrementally maintained statistics, bound to an
/// [`EvalContext`].
///
/// # Example
///
/// ```rust
/// use iddq_celllib::Library;
/// use iddq_core::{config::PartitionConfig, Evaluated, EvalContext, Partition};
/// use iddq_netlist::data;
///
/// let c17 = data::c17();
/// let lib = Library::generic_1um();
/// let ctx = EvalContext::new(&c17, &lib, PartitionConfig::paper_default());
/// let eval = Evaluated::new(&ctx, Partition::single_module(&c17));
/// let cost = eval.cost();
/// assert!(cost.feasible());
/// assert!(cost.sensor_area > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct Evaluated<'a> {
    ctx: &'a EvalContext<'a>,
    partition: Partition,
    stats: Vec<ModuleStats>,
}

impl<'a> Evaluated<'a> {
    /// Evaluates `partition` from scratch.
    #[must_use]
    pub fn new(ctx: &'a EvalContext<'a>, partition: Partition) -> Self {
        let stats = partition
            .modules()
            .iter()
            .map(|gates| Self::stats_for(ctx, gates))
            .collect();
        Evaluated {
            ctx,
            partition,
            stats,
        }
    }

    /// Full (non-incremental) statistics of one gate set.
    #[must_use]
    pub fn stats_for(ctx: &EvalContext<'_>, gates: &[NodeId]) -> ModuleStats {
        let mut s = ModuleStats::empty(ctx.horizon);
        for &g in gates {
            let gi = g.index();
            for t in ctx.times[gi].iter() {
                s.current_hist[t as usize] += ctx.tables.peak_current_ua[gi];
                s.count_hist[t as usize] += 1;
            }
            s.leakage_na += ctx.tables.leakage_na[gi];
            s.rail_cap_ff += ctx.tables.c_rail_ff[gi];
            s.cell_area += ctx.tables.area[gi];
        }
        s.separation = ctx.separation.module_separation(gates);
        s.rescan_peaks();
        s
    }

    /// The underlying partition.
    #[must_use]
    pub fn partition(&self) -> &Partition {
        &self.partition
    }

    /// The bound context.
    #[must_use]
    pub fn context(&self) -> &'a EvalContext<'a> {
        self.ctx
    }

    /// Per-module statistics, index-aligned with
    /// [`Partition::modules`].
    #[must_use]
    pub fn stats(&self) -> &[ModuleStats] {
        &self.stats
    }

    /// Moves one gate to `target`, updating statistics incrementally.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`Partition::move_gate`].
    pub fn move_gate(&mut self, gate: NodeId, target: usize) -> MoveOutcome {
        let source = match self.partition.module_of(gate) {
            Some(s) => s,
            None => panic!("cannot move a primary input"),
        };
        if source == target {
            return MoveOutcome {
                source,
                removed_module: None,
            };
        }
        // Separation deltas need the membership *before* the move.
        let gi = gate.index();
        let sep_out = self
            .ctx
            .separation
            .separation_to_module(gate, self.partition.module(source));
        let sep_in = self
            .ctx
            .separation
            .separation_to_module(gate, self.partition.module(target));

        let outcome = self.partition.move_gate(gate, target);

        // Histogram and sum updates.
        {
            let s = &mut self.stats[source];
            for t in self.ctx.times[gi].iter() {
                s.current_hist[t as usize] -= self.ctx.tables.peak_current_ua[gi];
                s.count_hist[t as usize] -= 1;
            }
            s.leakage_na -= self.ctx.tables.leakage_na[gi];
            s.rail_cap_ff -= self.ctx.tables.c_rail_ff[gi];
            s.cell_area -= self.ctx.tables.area[gi];
            s.separation -= sep_out;
            s.rescan_peaks();
        }
        {
            let s = &mut self.stats[target];
            for t in self.ctx.times[gi].iter() {
                s.current_hist[t as usize] += self.ctx.tables.peak_current_ua[gi];
                s.count_hist[t as usize] += 1;
            }
            s.leakage_na += self.ctx.tables.leakage_na[gi];
            s.rail_cap_ff += self.ctx.tables.c_rail_ff[gi];
            s.cell_area += self.ctx.tables.area[gi];
            s.separation += sep_in;
            s.rescan_peaks();
        }
        if outcome.removed_module.is_some() {
            self.stats.swap_remove(outcome.source);
        }
        outcome
    }

    /// Sizes the BIC sensor of module `m` from its cached statistics.
    ///
    /// # Errors
    ///
    /// Propagates [`SizingError`] (rail perturbation / empty module).
    pub fn sensor(&self, m: usize) -> Result<BicSensor, SizingError> {
        let s = &self.stats[m];
        size_sensor(
            s.peak_current_ua,
            s.rail_cap_ff,
            &self.ctx.config.sizing,
            &self.ctx.technology,
        )
    }

    /// Boundary gates of module `m`: members directly connected (in the
    /// undirected circuit graph) to a gate outside `m` — the mutation
    /// candidates of §4.2.
    #[must_use]
    pub fn boundary_gates(&self, m: usize) -> Vec<NodeId> {
        self.partition
            .module(m)
            .iter()
            .copied()
            .filter(|&g| {
                self.ctx
                    .netlist
                    .undirected_neighbors(g)
                    .any(|n| self.ctx.netlist.is_gate(n) && self.partition.module_of(n) != Some(m))
            })
            .collect()
    }

    /// Modules (other than the gate's own) that `gate` is directly
    /// connected to — the legal mutation targets ("put into the target
    /// module they are connected with", §4.2).
    #[must_use]
    pub fn connected_modules(&self, gate: NodeId) -> Vec<usize> {
        let own = self.partition.module_of(gate);
        let mut out: Vec<usize> = self
            .ctx
            .netlist
            .undirected_neighbors(gate)
            .filter_map(|n| self.partition.module_of(n))
            .filter(|&m| Some(m) != own)
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Evaluates the full cost breakdown from the cached statistics.
    ///
    /// Complexity: `O(K)` sensor sizing + one `O(V + E)` longest-path
    /// sweep for the delay terms.
    #[must_use]
    pub fn cost(&self) -> CostBreakdown {
        let ctx = self.ctx;
        let k = self.stats.len();
        let mut violations = 0usize;
        let mut sensor_area = 0.0f64;
        let mut total_separation = 0u64;
        let mut max_delta_ps = 0.0f64;

        // Per-module sensor figures; rail-infeasible modules fall back to
        // the most conductive realizable bypass for delay purposes.
        let mut rs_ohm = vec![0.0f64; k];
        for (m, s) in self.stats.iter().enumerate() {
            total_separation += s.separation;
            let leak_ua = s.leakage_na / 1000.0;
            if leak_ua <= 0.0 || ctx.technology.iddq_threshold_ua / leak_ua < ctx.config.d_min {
                violations += 1;
            }
            match self.sensor(m) {
                Ok(sensor) => {
                    sensor_area += sensor.area;
                    rs_ohm[m] = sensor.rs_ohm;
                    max_delta_ps = max_delta_ps.max(sensor.delta_ps(s.peak_current_ua));
                }
                Err(SizingError::RailPerturbation) => {
                    violations += 1;
                    let rs = ctx.technology.r_bypass_min_ohm;
                    rs_ohm[m] = rs;
                    sensor_area += ctx.config.sizing.a0 + ctx.config.sizing.a1 / rs;
                }
                Err(SizingError::EmptyModule) => {
                    // Cannot happen: Partition never keeps empty modules.
                    violations += 1;
                }
            }
        }

        // Degraded longest path D_BIC: every gate's delay is scaled by the
        // δ of its module's worst simultaneous activity (§3.2, with the
        // per-module peak n(t) as a pessimistic simplification consistent
        // with the §3.1 simultaneity assumption).
        let mut arr = vec![0.0f64; ctx.netlist.node_count()];
        let mut dbic_ps = 0.0f64;
        for &id in ctx.netlist.topo_order() {
            let node = ctx.netlist.node(id);
            let in_max = node
                .fanin()
                .iter()
                .map(|f| arr[f.index()])
                .fold(0.0f64, f64::max);
            let w = if node.kind().is_gate() {
                let m = self.partition.module_of(id).expect("gates are assigned");
                let s = &self.stats[m];
                let delta = delay_degradation(
                    f64::from(s.peak_activity),
                    rs_ohm[m],
                    s.rail_cap_ff,
                    ctx.tables.r_on_kohm[id.index()],
                    ctx.tables.c_out_ff[id.index()],
                );
                ctx.tables.delay_ps[id.index()] * delta
            } else {
                0.0
            };
            arr[id.index()] = in_max + w;
        }
        for &o in ctx.netlist.outputs() {
            dbic_ps = dbic_ps.max(arr[o.index()]);
        }

        let d = ctx.nominal_delay_ps.max(f64::MIN_POSITIVE);
        let vector_time_ps = dbic_ps + max_delta_ps;
        CostBreakdown {
            c1_area: sensor_area.max(1.0).ln(),
            c2_delay: (dbic_ps - ctx.nominal_delay_ps) / d,
            c3_interconnect: (1.0 + total_separation as f64).ln(),
            c4_test_time: (vector_time_ps - ctx.nominal_delay_ps) / d,
            c5_modules: k as f64,
            violations,
            sensor_area,
            dbic_ps,
            vector_time_ps,
        }
    }

    /// Weighted scalar cost (the optimizer's objective).
    #[must_use]
    pub fn total_cost(&self) -> f64 {
        self.cost()
            .total(&self.ctx.config.weights, self.ctx.config.violation_penalty)
    }

    /// Recomputes all statistics from scratch and asserts they match the
    /// incremental state — the correctness oracle for the incremental
    /// updates (used by tests and debug assertions).
    ///
    /// # Panics
    ///
    /// Panics if any cached statistic drifted from the ground truth.
    pub fn verify_consistency(&self) {
        for (m, gates) in self.partition.modules().iter().enumerate() {
            let fresh = Self::stats_for(self.ctx, gates);
            let cached = &self.stats[m];
            assert_eq!(fresh.count_hist, cached.count_hist, "module {m} count hist");
            assert_eq!(fresh.separation, cached.separation, "module {m} separation");
            assert!(
                (fresh.leakage_na - cached.leakage_na).abs() < 1e-6,
                "module {m} leakage"
            );
            assert!(
                (fresh.rail_cap_ff - cached.rail_cap_ff).abs() < 1e-6,
                "module {m} rail cap"
            );
            assert!(
                (fresh.peak_current_ua - cached.peak_current_ua).abs() < 1e-6,
                "module {m} peak current"
            );
            assert_eq!(
                fresh.peak_activity, cached.peak_activity,
                "module {m} activity"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PartitionConfig;
    use iddq_celllib::Library;
    use iddq_netlist::data;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn single_module_cost_is_finite_and_feasible() {
        let lib = Library::generic_1um();
        let nl = data::c17();
        let ctx = EvalContext::new(&nl, &lib, PartitionConfig::paper_default());
        let e = Evaluated::new(&ctx, Partition::single_module(&nl));
        let c = e.cost();
        assert!(c.feasible());
        assert!(c.sensor_area > 0.0);
        assert!(c.c2_delay >= 0.0);
        assert!(c.total(&ctx.config.weights, 0.0).is_finite());
    }

    #[test]
    fn more_modules_cost_more_fixed_area() {
        let lib = Library::generic_1um();
        let nl = data::c17();
        let ctx = EvalContext::new(&nl, &lib, PartitionConfig::paper_default());
        let gs = data::c17_paper_gates(&nl);
        let one = Evaluated::new(&ctx, Partition::single_module(&nl)).cost();
        let two = Evaluated::new(
            &ctx,
            Partition::from_groups(&nl, vec![gs[..3].to_vec(), gs[3..].to_vec()]).unwrap(),
        )
        .cost();
        assert_eq!(one.c5_modules, 1.0);
        assert_eq!(two.c5_modules, 2.0);
        // Two detection circuits cost more fixed area than one.
        assert!(two.sensor_area > 0.0 && one.sensor_area > 0.0);
    }

    #[test]
    fn incremental_moves_match_full_recompute() {
        let lib = Library::generic_1um();
        let nl = data::ripple_adder(6);
        let ctx = EvalContext::new(&nl, &lib, PartitionConfig::paper_default());
        let gates: Vec<_> = nl.gate_ids().collect();
        let half = gates.len() / 2;
        let p = Partition::from_groups(&nl, vec![gates[..half].to_vec(), gates[half..].to_vec()])
            .unwrap();
        let mut e = Evaluated::new(&ctx, p);
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..200 {
            let g = gates[rng.gen_range(0..gates.len())];
            let k = e.partition().module_count();
            if k < 2 {
                break;
            }
            let target = rng.gen_range(0..k);
            e.move_gate(g, target);
            e.verify_consistency();
        }
    }

    #[test]
    fn incremental_cost_equals_fresh_cost() {
        let lib = Library::generic_1um();
        let nl = data::ripple_adder(8);
        let ctx = EvalContext::new(&nl, &lib, PartitionConfig::paper_default());
        let gates: Vec<_> = nl.gate_ids().collect();
        let third = gates.len() / 3;
        let p = Partition::from_groups(
            &nl,
            vec![
                gates[..third].to_vec(),
                gates[third..2 * third].to_vec(),
                gates[2 * third..].to_vec(),
            ],
        )
        .unwrap();
        let mut e = Evaluated::new(&ctx, p);
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            let g = gates[rng.gen_range(0..gates.len())];
            let target = rng.gen_range(0..e.partition().module_count());
            e.move_gate(g, target);
        }
        let incremental = e.cost();
        let fresh = Evaluated::new(&ctx, e.partition().clone()).cost();
        assert!((incremental.c1_area - fresh.c1_area).abs() < 1e-9);
        assert!((incremental.c2_delay - fresh.c2_delay).abs() < 1e-9);
        assert!((incremental.c3_interconnect - fresh.c3_interconnect).abs() < 1e-9);
        assert!((incremental.c4_test_time - fresh.c4_test_time).abs() < 1e-9);
        assert_eq!(incremental.c5_modules, fresh.c5_modules);
    }

    #[test]
    fn boundary_gates_of_c17_halves() {
        let lib = Library::generic_1um();
        let nl = data::c17();
        let ctx = EvalContext::new(&nl, &lib, PartitionConfig::paper_default());
        let gs = data::c17_paper_gates(&nl);
        // Paper's optimum {(g1,g3,g5),(g2,g4,g6)}: every gate touches the
        // other half (c17 is tiny and tightly connected).
        let p = Partition::from_groups(
            &nl,
            vec![vec![gs[0], gs[2], gs[4]], vec![gs[1], gs[3], gs[5]]],
        )
        .unwrap();
        let e = Evaluated::new(&ctx, p);
        let b0 = e.boundary_gates(0);
        assert!(!b0.is_empty());
        for g in b0 {
            assert_eq!(e.partition().module_of(g), Some(0));
        }
    }

    #[test]
    fn connected_modules_lists_neighbours_only() {
        let lib = Library::generic_1um();
        let nl = data::c17();
        let ctx = EvalContext::new(&nl, &lib, PartitionConfig::paper_default());
        let gs = data::c17_paper_gates(&nl);
        let p = Partition::from_groups(
            &nl,
            vec![vec![gs[0]], vec![gs[1]], vec![gs[2], gs[3], gs[4], gs[5]]],
        )
        .unwrap();
        let e = Evaluated::new(&ctx, p);
        // g1 (gate 10) feeds gate 22 (module 2); shares PI 3 with g2=11
        // but PIs don't link modules in the gate graph... they do via
        // undirected neighbours only when directly connected. 10's gate
        // neighbours: 22 (module 2). So connected = [2].
        assert_eq!(e.connected_modules(gs[0]), vec![2]);
    }

    #[test]
    fn oversized_module_violates_discriminability() {
        // Shrink the threshold so even c17's six gates leak too much.
        let lib = Library::generic_1um();
        let nl = data::c17();
        let mut cfg = PartitionConfig::paper_default();
        cfg.d_min = 1e9;
        let ctx = EvalContext::new(&nl, &lib, cfg);
        let e = Evaluated::new(&ctx, Partition::single_module(&nl));
        let c = e.cost();
        assert!(!c.feasible());
        assert!(c.violations >= 1);
        let w = ctx.config.weights;
        assert!(c.total(&w, 1e7) > 1e6);
    }

    #[test]
    fn module_removal_keeps_stats_aligned() {
        let lib = Library::generic_1um();
        let nl = data::c17();
        let ctx = EvalContext::new(&nl, &lib, PartitionConfig::paper_default());
        let gs = data::c17_paper_gates(&nl);
        let p = Partition::from_groups(
            &nl,
            vec![vec![gs[0]], vec![gs[1], gs[2]], vec![gs[3], gs[4], gs[5]]],
        )
        .unwrap();
        let mut e = Evaluated::new(&ctx, p);
        // Empty module 0; module 2 renumbers into slot 0.
        e.move_gate(gs[0], 1);
        assert_eq!(e.partition().module_count(), 2);
        e.verify_consistency();
        let c = e.cost();
        assert_eq!(c.c5_modules, 2.0);
    }

    #[test]
    fn delay_overhead_grows_with_activity_concentration() {
        // All gates in one module (high simultaneous activity sharing one
        // bypass) vs spreading gates across modules.
        let lib = Library::generic_1um();
        let nl = data::ripple_adder(12);
        let ctx = EvalContext::new(&nl, &lib, PartitionConfig::paper_default());
        let one = Evaluated::new(&ctx, Partition::single_module(&nl)).cost();
        assert!(one.c2_delay > 0.0, "sensor must cost some delay");
        assert!(one.dbic_ps > ctx.nominal_delay_ps);
    }
}

#[cfg(test)]
mod estimator_edge_tests {
    use super::*;
    use crate::config::PartitionConfig;
    use crate::partition::Partition;
    use iddq_celllib::Library;
    use iddq_netlist::{CellKind, NetlistBuilder};

    /// Two inverter chains of different depth in one module: their
    /// transition windows are disjoint singletons per grid step, so the
    /// module peak equals the *maximum* single-time sum, not the total.
    #[test]
    fn staggered_gates_do_not_sum_into_the_peak() {
        let mut b = NetlistBuilder::new("stagger");
        let i = b.add_input("i");
        let g1 = b.add_gate("g1", CellKind::Not, vec![i]).unwrap();
        let g2 = b.add_gate("g2", CellKind::Not, vec![g1]).unwrap();
        let g3 = b.add_gate("g3", CellKind::Not, vec![g2]).unwrap();
        b.mark_output(g3);
        let nl = b.build().unwrap();
        let lib = Library::generic_1um();
        let ctx = EvalContext::new(&nl, &lib, PartitionConfig::paper_default());
        let eval = Evaluated::new(&ctx, Partition::single_module(&nl));
        let s = &eval.stats()[0];
        let per_gate = ctx.tables.peak_current_ua[g1.index()];
        // A pure chain has singleton, pairwise-disjoint transition times.
        assert!((s.peak_current_ua - per_gate).abs() < 1e-9);
        assert_eq!(s.peak_activity, 1);
    }

    /// Reconvergent fan-out within one module *does* stack: both branch
    /// gates can switch at the same grid time.
    #[test]
    fn parallel_branches_stack_into_the_peak() {
        let mut b = NetlistBuilder::new("par");
        let i = b.add_input("i");
        let a = b.add_gate("a", CellKind::Not, vec![i]).unwrap();
        let c = b.add_gate("c", CellKind::Not, vec![i]).unwrap();
        let o = b.add_gate("o", CellKind::And, vec![a, c]).unwrap();
        b.mark_output(o);
        let nl = b.build().unwrap();
        let lib = Library::generic_1um();
        let ctx = EvalContext::new(&nl, &lib, PartitionConfig::paper_default());
        let eval = Evaluated::new(&ctx, Partition::single_module(&nl));
        let s = &eval.stats()[0];
        let per_inv = ctx.tables.peak_current_ua[a.index()];
        assert!(s.peak_current_ua >= 2.0 * per_inv - 1e-9);
        assert!(s.peak_activity >= 2);
    }

    /// An infeasible (rail-violating) module is reported as such and the
    /// report leaves its sensor fields empty.
    #[test]
    fn infeasible_module_reported_without_sensor() {
        let nl = iddq_netlist::data::c17();
        let lib = Library::generic_1um();
        let mut cfg = PartitionConfig::paper_default();
        // Impossibly strict rail budget: r* = 1e-6 mV.
        cfg.sizing.r_star_mv = 1e-6;
        let ctx = EvalContext::new(&nl, &lib, cfg);
        let eval = Evaluated::new(&ctx, Partition::single_module(&nl));
        let cost = eval.cost();
        assert!(!cost.feasible());
        let report = crate::flow::report_for(&eval);
        assert!(!report.feasible);
        assert!(report.modules[0].rs_ohm.is_none());
        assert!(report.modules[0].sensor_area.is_none());
    }
}
