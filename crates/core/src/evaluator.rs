//! Incremental partition evaluation.
//!
//! The evolution algorithm evaluates thousands of neighbouring partitions;
//! the paper notes that "after gate moving, costs are recomputed just for
//! the modified modules, and the global costs of the partition are
//! updated" (§4.2). [`Evaluated`] implements exactly that, at *two*
//! levels:
//!
//! * **Module statistics** — per-module activity histograms,
//!   leakage/capacitance sums and separation totals are maintained under
//!   [`Evaluated::move_gate`], and per-module sensor figures (sizing,
//!   area, decay time, violations) are re-derived eagerly for the touched
//!   modules only.
//! * **Delay re-simulation** — the degraded longest-path sweep (`D_BIC`,
//!   the only `O(V + E)` term of the cost) is maintained *incrementally*:
//!   each gate's degraded delay weight and arrival time persist across
//!   moves, and [`Evaluated::settle`] re-propagates arrivals only through
//!   the fanout cones of the gates whose weight actually changed, in
//!   level order via the netlist's [`ConeIndex`]. When a batch of moves
//!   re-weights more gates than
//!   [`incremental_delay_limit`](crate::config::PartitionConfig::incremental_delay_limit)
//!   allows, settling falls back to one full batch sweep — the
//!   Monte-Carlo descendants, which move whole modules, routinely take
//!   that path.
//!
//! [`Evaluated::cost`] assembles the five cost terms from the cached
//! statistics in `O(K)` plus an `O(outputs)` max over the settled arrival
//! state.
//!
//! # Transactions
//!
//! [`Evaluated::begin_txn`] arms an undo log: every subsequent move and
//! settle records exact inverse information, and
//! [`Evaluated::rollback_txn`] restores the evaluator — partition, module
//! statistics, sensor figures, weights, arrivals, dirty set —
//! *bit-for-bit* to the state at `begin_txn`. The evolution strategy
//! scores every descendant on a per-worker scratch evaluator through
//! apply → settle → score → rollback, and only materializes the
//! descendants that survive selection.

use iddq_analog::network::delay_degradation;
use iddq_bic::sizing::{size_sensor, SizingError};
use iddq_bic::BicSensor;
use iddq_netlist::cone::{ConeStep, ConeWalker};
use iddq_netlist::NodeId;

use crate::context::EvalContext;
use crate::cost::CostBreakdown;
use crate::partition::{MoveOutcome, MoveUndo, Partition};

/// Cached per-module statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct ModuleStats {
    /// Summed peak currents of gates able to switch at each grid time —
    /// the §3.1 estimator's inner table. `î_DD,max,i` is its maximum.
    pub current_hist: Vec<f64>,
    /// Number of gates able to switch at each grid time (`n(t)`).
    pub count_hist: Vec<u32>,
    /// `î_DD,max,i` in µA (max of `current_hist`).
    pub peak_current_ua: f64,
    /// Peak simultaneous activity `max_t n(t)`.
    pub peak_activity: u32,
    /// Fault-free quiescent current `I_DDQ,nd,i`, nanoamps.
    pub leakage_na: f64,
    /// Virtual-rail parasitic capacitance `C_s,i`, femtofarads.
    pub rail_cap_ff: f64,
    /// Sum of member cell areas (reporting only).
    pub cell_area: f64,
    /// Module separation `S(M_i)` (§3.3).
    pub separation: u64,
}

impl ModuleStats {
    fn empty(horizon: usize) -> Self {
        ModuleStats {
            current_hist: vec![0.0; horizon],
            count_hist: vec![0; horizon],
            peak_current_ua: 0.0,
            peak_activity: 0,
            leakage_na: 0.0,
            rail_cap_ff: 0.0,
            cell_area: 0.0,
            separation: 0,
        }
    }

    fn rescan_peaks(&mut self) {
        self.peak_current_ua = self.current_hist.iter().copied().fold(0.0, f64::max);
        self.peak_activity = self.count_hist.iter().copied().max().unwrap_or(0);
    }
}

/// Derived per-module sensor figures, re-computed eagerly whenever the
/// module's statistics change. Shared with the structure-patching
/// [`crate::resynth::ResynthEval`], whose scoring must be bit-identical.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct ModuleSensor {
    /// Sized (or fallback) bypass resistance, Ω.
    pub(crate) rs_ohm: f64,
    /// Contribution to the global sensor area.
    pub(crate) area: f64,
    /// Per-vector decay+sense time Δ(τ) in ps (0 when infeasible).
    pub(crate) delta_ps: f64,
    /// Constraint violations charged to this module (0–2).
    pub(crate) violations: usize,
}

pub(crate) fn sensor_figures(ctx: &EvalContext<'_>, s: &ModuleStats) -> ModuleSensor {
    let mut violations = 0usize;
    let leak_ua = s.leakage_na / 1000.0;
    if leak_ua <= 0.0 || ctx.technology.iddq_threshold_ua / leak_ua < ctx.config.d_min {
        violations += 1;
    }
    match size_sensor(
        s.peak_current_ua,
        s.rail_cap_ff,
        &ctx.config.sizing,
        &ctx.technology,
    ) {
        Ok(sensor) => ModuleSensor {
            rs_ohm: sensor.rs_ohm,
            area: sensor.area,
            delta_ps: sensor.delta_ps(s.peak_current_ua),
            violations,
        },
        // Rail-infeasible modules fall back to the most conductive
        // realizable bypass for delay purposes.
        Err(SizingError::RailPerturbation) => {
            let rs = ctx.technology.r_bypass_min_ohm;
            ModuleSensor {
                rs_ohm: rs,
                area: ctx.config.sizing.a0 + ctx.config.sizing.a1 / rs,
                delta_ps: 0.0,
                violations: violations + 1,
            }
        }
        // Cannot happen: Partition never keeps empty modules.
        Err(SizingError::EmptyModule) => ModuleSensor {
            rs_ohm: 0.0,
            area: 0.0,
            delta_ps: 0.0,
            violations: violations + 1,
        },
    }
}

/// Degraded delay weight of one gate under its module's sensor (§3.2),
/// from the gate's raw electrical row — the shared kernel both
/// [`Evaluated`] and [`crate::resynth::ResynthEval`] call, so the two
/// paths stay bit-identical.
pub(crate) fn degraded_weight(
    delay_ps: f64,
    r_on_kohm: f64,
    c_out_ff: f64,
    s: &ModuleStats,
    sens: &ModuleSensor,
) -> f64 {
    let delta = delay_degradation(
        f64::from(s.peak_activity),
        sens.rs_ohm,
        s.rail_cap_ff,
        r_on_kohm,
        c_out_ff,
    );
    delay_ps * delta
}

/// Degraded delay weight of one gate under its module's sensor (§3.2).
fn gate_weight(ctx: &EvalContext<'_>, gate: NodeId, s: &ModuleStats, sens: &ModuleSensor) -> f64 {
    let gi = gate.index();
    degraded_weight(
        ctx.tables.delay_ps[gi],
        ctx.tables.r_on_kohm[gi],
        ctx.tables.c_out_ff[gi],
        s,
        sens,
    )
}

/// Assembles the five cost terms from module-level aggregates — the tail
/// of [`Evaluated::cost`], shared with the structure-patching evaluation
/// (which supplies its *own* nominal delay, since patches move the
/// critical path).
pub(crate) fn assemble_cost(
    modules: usize,
    violations: usize,
    sensor_area: f64,
    total_separation: u64,
    max_delta_ps: f64,
    dbic_ps: f64,
    nominal_delay_ps: f64,
) -> CostBreakdown {
    let d = nominal_delay_ps.max(f64::MIN_POSITIVE);
    let vector_time_ps = dbic_ps + max_delta_ps;
    CostBreakdown {
        c1_area: sensor_area.max(1.0).ln(),
        c2_delay: (dbic_ps - nominal_delay_ps) / d,
        c3_interconnect: (1.0 + total_separation as f64).ln(),
        c4_test_time: (vector_time_ps - nominal_delay_ps) / d,
        c5_modules: modules as f64,
        violations,
        sensor_area,
        dbic_ps,
        vector_time_ps,
    }
}

/// Full weighted longest-path sweep into `arr` (the batch path).
fn full_arrival_sweep(ctx: &EvalContext<'_>, weight: &[f64], arr: &mut [f64]) {
    for &id in ctx.netlist.topo_order() {
        let node = ctx.netlist.node(id);
        let in_max = node
            .fanin()
            .iter()
            .map(|f| arr[f.index()])
            .fold(0.0f64, f64::max);
        arr[id.index()] = in_max + weight[id.index()];
    }
}

/// One entry of the transactional undo log.
#[derive(Debug, Clone)]
enum TxnOp {
    /// Snapshot of one module's statistics + sensor figures before a
    /// mutation (indices are valid at that point of the, strictly
    /// reversed, replay).
    Stats {
        index: usize,
        stats: ModuleStats,
        sensor: ModuleSensor,
    },
    /// One partition gate move.
    Move(MoveUndo),
    /// Mirror of the `swap_remove` performed on the stats/sensor vectors
    /// when a module emptied, carrying the discarded values.
    Removed {
        index: usize,
        moved_from: usize,
        stats: ModuleStats,
        sensor: ModuleSensor,
    },
    /// One overwritten per-module sensor figure (written by settles).
    Sensor { index: usize, old: ModuleSensor },
    /// One overwritten gate weight.
    Weight { node: u32, old: f64 },
    /// One overwritten arrival time.
    Arr { node: u32, old: f64 },
}

#[derive(Debug, Clone, Default)]
struct TxnLog {
    ops: Vec<TxnOp>,
    dirty_at_begin: Vec<usize>,
    /// Module indices whose pre-transaction state is already captured by
    /// a [`TxnOp::Stats`] entry, under the *current* numbering — kept in
    /// sync with swap-remove renumbering exactly like the dirty list, so
    /// each touched module pays one snapshot per transaction, not one
    /// per move.
    snapshotted: Vec<usize>,
    /// A settle fell back to the full batch sweep: rollback recomputes
    /// the arrival state from the restored weights instead of replaying
    /// per-node entries.
    arr_rewritten: bool,
}

/// A partition plus its incrementally maintained statistics, bound to an
/// [`EvalContext`].
///
/// # Example
///
/// ```rust
/// use iddq_celllib::Library;
/// use iddq_core::{config::PartitionConfig, Evaluated, EvalContext, Partition};
/// use iddq_netlist::data;
///
/// let c17 = data::c17();
/// let lib = Library::generic_1um();
/// let ctx = EvalContext::new(&c17, &lib, PartitionConfig::paper_default());
/// let eval = Evaluated::new(&ctx, Partition::single_module(&c17));
/// let cost = eval.cost();
/// assert!(cost.feasible());
/// assert!(cost.sensor_area > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct Evaluated<'a> {
    ctx: &'a EvalContext<'a>,
    partition: Partition,
    stats: Vec<ModuleStats>,
    sensors: Vec<ModuleSensor>,
    /// Per-node degraded delay weight (0 for primary inputs).
    weight: Vec<f64>,
    /// Per-node arrival time under `weight` (valid when `dirty` is
    /// empty).
    arr: Vec<f64>,
    /// Modules whose gate weights are stale (deduplicated).
    dirty: Vec<usize>,
    txn: Option<TxnLog>,
}

impl<'a> Evaluated<'a> {
    /// Evaluates `partition` from scratch.
    #[must_use]
    pub fn new(ctx: &'a EvalContext<'a>, partition: Partition) -> Self {
        let stats: Vec<ModuleStats> = partition
            .modules()
            .iter()
            .map(|gates| Self::stats_for(ctx, gates))
            .collect();
        let sensors: Vec<ModuleSensor> = stats.iter().map(|s| sensor_figures(ctx, s)).collect();
        let n = ctx.netlist.node_count();
        let mut weight = vec![0.0f64; n];
        for (m, gates) in partition.modules().iter().enumerate() {
            for &g in gates {
                weight[g.index()] = gate_weight(ctx, g, &stats[m], &sensors[m]);
            }
        }
        let mut arr = vec![0.0f64; n];
        full_arrival_sweep(ctx, &weight, &mut arr);
        Evaluated {
            ctx,
            partition,
            stats,
            sensors,
            weight,
            arr,
            dirty: Vec::new(),
            txn: None,
        }
    }

    /// Full (non-incremental) statistics of one gate set.
    #[must_use]
    pub fn stats_for(ctx: &EvalContext<'_>, gates: &[NodeId]) -> ModuleStats {
        let mut s = ModuleStats::empty(ctx.horizon);
        for &g in gates {
            let gi = g.index();
            for t in ctx.times[gi].iter() {
                s.current_hist[t as usize] += ctx.tables.peak_current_ua[gi];
                s.count_hist[t as usize] += 1;
            }
            s.leakage_na += ctx.tables.leakage_na[gi];
            s.rail_cap_ff += ctx.tables.c_rail_ff[gi];
            s.cell_area += ctx.tables.area[gi];
        }
        s.separation = ctx.separation().module_separation(gates);
        s.rescan_peaks();
        s
    }

    /// The underlying partition.
    #[must_use]
    pub fn partition(&self) -> &Partition {
        &self.partition
    }

    /// The bound context.
    #[must_use]
    pub fn context(&self) -> &'a EvalContext<'a> {
        self.ctx
    }

    /// Per-module statistics, index-aligned with
    /// [`Partition::modules`].
    #[must_use]
    pub fn stats(&self) -> &[ModuleStats] {
        &self.stats
    }

    fn mark_dirty(&mut self, m: usize) {
        if !self.dirty.contains(&m) {
            self.dirty.push(m);
        }
    }

    /// Moves one gate to `target`, updating statistics and sensor figures
    /// incrementally and marking the delay state stale for the touched
    /// modules (settled lazily by [`Evaluated::settle`] /
    /// [`Evaluated::cost`]).
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`Partition::move_gate`].
    pub fn move_gate(&mut self, gate: NodeId, target: usize) -> MoveOutcome {
        let source = match self.partition.module_of(gate) {
            Some(s) => s,
            None => panic!("cannot move a primary input"),
        };
        if source == target {
            return MoveOutcome {
                source,
                removed_module: None,
            };
        }
        // Separation deltas need the membership *before* the move. The
        // cached gate-table form scans the gate's precomputed gate-only
        // neighbour weights once per module with direct assignment-vector
        // tests — module-size independent, which is what keeps Monte-Carlo
        // (whole-module) move sequences affordable.
        let gi = gate.index();
        let assignment = self.partition.assignment();
        let sep_out = self.ctx.sep_table().separation_to_members(
            gate,
            self.partition.module(source).len(),
            true,
            assignment,
            source as u32,
        );
        let sep_in = self.ctx.sep_table().separation_to_members(
            gate,
            self.partition.module(target).len(),
            false,
            assignment,
            target as u32,
        );

        if self.txn.is_some() {
            self.snapshot_module(source);
            self.snapshot_module(target);
        }

        let (outcome, undo) = self.partition.move_gate_undoable(gate, target);
        if let Some(log) = self.txn.as_mut() {
            log.ops.push(TxnOp::Move(undo));
        }

        // Histogram and sum updates.
        {
            let s = &mut self.stats[source];
            for t in self.ctx.times[gi].iter() {
                s.current_hist[t as usize] -= self.ctx.tables.peak_current_ua[gi];
                s.count_hist[t as usize] -= 1;
            }
            s.leakage_na -= self.ctx.tables.leakage_na[gi];
            s.rail_cap_ff -= self.ctx.tables.c_rail_ff[gi];
            s.cell_area -= self.ctx.tables.area[gi];
            s.separation -= sep_out;
            s.rescan_peaks();
        }
        {
            let s = &mut self.stats[target];
            for t in self.ctx.times[gi].iter() {
                s.current_hist[t as usize] += self.ctx.tables.peak_current_ua[gi];
                s.count_hist[t as usize] += 1;
            }
            s.leakage_na += self.ctx.tables.leakage_na[gi];
            s.rail_cap_ff += self.ctx.tables.c_rail_ff[gi];
            s.cell_area += self.ctx.tables.area[gi];
            s.separation += sep_in;
            s.rescan_peaks();
        }
        if let Some(removal) = outcome.removed_module {
            let removed_stats = self.stats.swap_remove(removal.removed);
            let removed_sensor = self.sensors.swap_remove(removal.removed);
            if let Some(log) = self.txn.as_mut() {
                log.ops.push(TxnOp::Removed {
                    index: removal.removed,
                    moved_from: removal.moved_from,
                    stats: removed_stats,
                    sensor: removed_sensor,
                });
                // Snapshot and dirty bookkeeping follow the swap-remove
                // renumbering.
                log.snapshotted.retain(|&m| m != removal.removed);
                for m in &mut log.snapshotted {
                    if *m == removal.moved_from {
                        *m = removal.removed;
                    }
                }
            }
            self.dirty.retain(|&m| m != removal.removed);
            for m in &mut self.dirty {
                if *m == removal.moved_from {
                    *m = removal.removed;
                }
            }
            let final_target = if target == removal.moved_from {
                removal.removed
            } else {
                target
            };
            self.mark_dirty(final_target);
        } else {
            self.mark_dirty(source);
            self.mark_dirty(target);
        }
        outcome
    }

    /// Captures module `m`'s pre-transaction statistics and sensor
    /// figures once per transaction (under the current numbering).
    // Private helper with a single call site, inside an open
    // transaction by construction.
    #[allow(clippy::expect_used)]
    fn snapshot_module(&mut self, m: usize) {
        let log = self.txn.as_mut().expect("only called inside a txn");
        if log.snapshotted.contains(&m) {
            return;
        }
        log.snapshotted.push(m);
        log.ops.push(TxnOp::Stats {
            index: m,
            stats: self.stats[m].clone(),
            sensor: self.sensors[m],
        });
    }

    /// Whether the cached delay state is stale (some moves not yet
    /// settled).
    #[must_use]
    pub fn needs_settle(&self) -> bool {
        !self.dirty.is_empty()
    }

    /// Brings the persistent delay-simulation state (gate weights and
    /// arrival times) up to date with the current statistics, allocating
    /// a fresh cone walker. Hot paths should reuse one walker via
    /// [`Evaluated::settle_with`].
    pub fn settle(&mut self) {
        if self.dirty.is_empty() {
            return;
        }
        let mut walker = ConeWalker::new(&self.ctx.cones);
        self.settle_with(&mut walker);
    }

    /// [`Evaluated::settle`] with a caller-owned [`ConeWalker`] (bound to
    /// this context's [`ConeIndex`](iddq_netlist::cone::ConeIndex)), so
    /// repeated settles are allocation-free.
    ///
    /// Gate weights are recomputed for the gates of the touched modules;
    /// arrival times are then re-propagated *event-driven* through the
    /// fanout cones of the gates whose weight actually changed, in level
    /// order, stopping wherever the recomputed arrival is bit-identical.
    /// If more gates changed weight than the configured
    /// `incremental_delay_limit` fraction of the circuit, one full batch
    /// sweep runs instead.
    pub fn settle_with(&mut self, walker: &mut ConeWalker) {
        if self.dirty.is_empty() {
            return;
        }
        let ctx = self.ctx;
        let dirty = std::mem::take(&mut self.dirty);
        let mut seeds: Vec<NodeId> = Vec::new();
        for &m in &dirty {
            // Sensor figures re-derive once per touched module per
            // settle, not once per move.
            let sensor = sensor_figures(ctx, &self.stats[m]);
            let old_sensor = std::mem::replace(&mut self.sensors[m], sensor);
            if let Some(log) = self.txn.as_mut() {
                log.ops.push(TxnOp::Sensor {
                    index: m,
                    old: old_sensor,
                });
            }
            for &g in self.partition.module(m) {
                let w = gate_weight(ctx, g, &self.stats[m], &self.sensors[m]);
                let old = self.weight[g.index()];
                if w.to_bits() != old.to_bits() {
                    if let Some(log) = self.txn.as_mut() {
                        log.ops.push(TxnOp::Weight { node: g.0, old });
                    }
                    self.weight[g.index()] = w;
                    seeds.push(g);
                }
            }
        }
        let limit = (ctx.config.incremental_delay_limit * ctx.netlist.node_count() as f64) as usize;
        if seeds.len() > limit {
            // Batch fallback: one full sweep, logged wholesale.
            if let Some(log) = self.txn.as_mut() {
                log.arr_rewritten = true;
            }
            full_arrival_sweep(ctx, &self.weight, &mut self.arr);
        } else {
            let Evaluated {
                ref weight,
                ref mut arr,
                ref mut txn,
                ..
            } = *self;
            let log_arr = txn
                .as_mut()
                .filter(|t| !t.arr_rewritten)
                .map(|t| &mut t.ops);
            let mut log_arr = log_arr;
            walker.walk(&ctx.cones, seeds.iter().copied(), |id| {
                let node = ctx.netlist.node(id);
                let in_max = node
                    .fanin()
                    .iter()
                    .map(|f| arr[f.index()])
                    .fold(0.0f64, f64::max);
                let new = in_max + weight[id.index()];
                let old = arr[id.index()];
                if new.to_bits() == old.to_bits() {
                    ConeStep::Stop
                } else {
                    if let Some(ops) = log_arr.as_deref_mut() {
                        ops.push(TxnOp::Arr { node: id.0, old });
                    }
                    arr[id.index()] = new;
                    ConeStep::Propagate
                }
            });
        }
    }

    /// Arms the transactional undo log. Every subsequent
    /// [`Evaluated::move_gate`] and settle records inverse information
    /// until [`Evaluated::rollback_txn`] or [`Evaluated::commit_txn`].
    ///
    /// # Panics
    ///
    /// Panics if a transaction is already active (transactions do not
    /// nest).
    pub fn begin_txn(&mut self) {
        assert!(self.txn.is_none(), "transactions do not nest");
        self.txn = Some(TxnLog {
            ops: Vec::new(),
            dirty_at_begin: self.dirty.clone(),
            snapshotted: Vec::new(),
            arr_rewritten: false,
        });
    }

    /// Restores the evaluator bit-for-bit to the state at
    /// [`Evaluated::begin_txn`] and closes the transaction.
    ///
    /// # Panics
    ///
    /// Panics if no transaction is active.
    // Documented panic contract: rolling back without `begin_txn`
    // is a caller bug, mirrored by `delta::DeltaSim::rollback`.
    #[allow(clippy::expect_used)]
    pub fn rollback_txn(&mut self) {
        let log = self.txn.take().expect("no active transaction");
        for op in log.ops.into_iter().rev() {
            match op {
                TxnOp::Stats {
                    index,
                    stats,
                    sensor,
                } => {
                    self.stats[index] = stats;
                    self.sensors[index] = sensor;
                }
                TxnOp::Move(undo) => self.partition.undo_move(&undo),
                TxnOp::Removed {
                    index,
                    moved_from,
                    stats,
                    sensor,
                } => {
                    // Mirror of Partition::undo_move step 1 on the stats
                    // and sensor vectors.
                    if index == moved_from {
                        self.stats.push(stats);
                        self.sensors.push(sensor);
                    } else {
                        let displaced = std::mem::replace(&mut self.stats[index], stats);
                        self.stats.push(displaced);
                        let displaced = std::mem::replace(&mut self.sensors[index], sensor);
                        self.sensors.push(displaced);
                    }
                }
                TxnOp::Sensor { index, old } => self.sensors[index] = old,
                TxnOp::Weight { node, old } => self.weight[node as usize] = old,
                TxnOp::Arr { node, old } => self.arr[node as usize] = old,
            }
        }
        if log.arr_rewritten {
            // The arrival state is a pure function of the (now restored)
            // weights: one sweep reproduces the pre-transaction values
            // bit-for-bit.
            full_arrival_sweep(self.ctx, &self.weight, &mut self.arr);
        }
        self.dirty = log.dirty_at_begin;
    }

    /// Keeps all changes made during the transaction and drops the undo
    /// log.
    ///
    /// # Panics
    ///
    /// Panics if no transaction is active.
    pub fn commit_txn(&mut self) {
        assert!(self.txn.take().is_some(), "no active transaction");
    }

    /// Sizes the BIC sensor of module `m` from its cached statistics.
    ///
    /// # Errors
    ///
    /// Propagates [`SizingError`] (rail perturbation / empty module).
    pub fn sensor(&self, m: usize) -> Result<BicSensor, SizingError> {
        let s = &self.stats[m];
        size_sensor(
            s.peak_current_ua,
            s.rail_cap_ff,
            &self.ctx.config.sizing,
            &self.ctx.technology,
        )
    }

    /// Boundary gates of module `m`: members directly connected (in the
    /// undirected circuit graph) to a gate outside `m` — the mutation
    /// candidates of §4.2.
    #[must_use]
    pub fn boundary_gates(&self, m: usize) -> Vec<NodeId> {
        self.partition
            .module(m)
            .iter()
            .copied()
            .filter(|&g| {
                self.ctx
                    .netlist
                    .undirected_neighbors(g)
                    .any(|n| self.ctx.netlist.is_gate(n) && self.partition.module_of(n) != Some(m))
            })
            .collect()
    }

    /// Modules (other than the gate's own) that `gate` is directly
    /// connected to — the legal mutation targets ("put into the target
    /// module they are connected with", §4.2).
    #[must_use]
    pub fn connected_modules(&self, gate: NodeId) -> Vec<usize> {
        let own = self.partition.module_of(gate);
        let mut out: Vec<usize> = self
            .ctx
            .netlist
            .undirected_neighbors(gate)
            .filter_map(|n| self.partition.module_of(n))
            .filter(|&m| Some(m) != own)
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Evaluates the full cost breakdown from the cached statistics.
    ///
    /// Complexity: `O(K)` term assembly plus `O(outputs)` over the
    /// settled arrival state. If moves are pending (see
    /// [`Evaluated::needs_settle`]), a temporary full sweep runs instead
    /// — call [`Evaluated::settle`] first on hot paths.
    #[must_use]
    pub fn cost(&self) -> CostBreakdown {
        let ctx = self.ctx;
        let k = self.stats.len();
        // Sensor figures of modules touched since the last settle are
        // stale; re-derive them into a (small) side list.
        let fresh: Vec<(usize, ModuleSensor)> = self
            .dirty
            .iter()
            .map(|&m| (m, sensor_figures(ctx, &self.stats[m])))
            .collect();
        let sensor_at = |m: usize| -> ModuleSensor {
            fresh
                .iter()
                .find(|(i, _)| *i == m)
                .map_or(self.sensors[m], |(_, s)| *s)
        };
        let mut violations = 0usize;
        let mut sensor_area = 0.0f64;
        let mut total_separation = 0u64;
        let mut max_delta_ps = 0.0f64;
        for (m, s) in self.stats.iter().enumerate() {
            let sens = sensor_at(m);
            total_separation += s.separation;
            violations += sens.violations;
            sensor_area += sens.area;
            max_delta_ps = max_delta_ps.max(sens.delta_ps);
        }

        // Degraded longest path D_BIC from the persistent arrival state —
        // or a temporary sweep when moves have not been settled.
        let dbic_ps = if self.dirty.is_empty() {
            ctx.netlist
                .outputs()
                .iter()
                .map(|o| self.arr[o.index()])
                .fold(0.0f64, f64::max)
        } else {
            let mut arr = vec![0.0f64; ctx.netlist.node_count()];
            let mut weight = self.weight.clone();
            for &(m, sens) in &fresh {
                for &g in self.partition.module(m) {
                    weight[g.index()] = gate_weight(ctx, g, &self.stats[m], &sens);
                }
            }
            full_arrival_sweep(ctx, &weight, &mut arr);
            ctx.netlist
                .outputs()
                .iter()
                .map(|o| arr[o.index()])
                .fold(0.0f64, f64::max)
        };

        assemble_cost(
            k,
            violations,
            sensor_area,
            total_separation,
            max_delta_ps,
            dbic_ps,
            ctx.nominal_delay_ps,
        )
    }

    /// Weighted scalar cost (the optimizer's objective).
    #[must_use]
    pub fn total_cost(&self) -> f64 {
        self.cost()
            .total(&self.ctx.config.weights, self.ctx.config.violation_penalty)
    }

    /// Recomputes all statistics from scratch and asserts they match the
    /// incremental state — the correctness oracle for the incremental
    /// updates (used by tests and debug assertions). With a settled delay
    /// state, also cross-checks sensor figures, gate weights and arrival
    /// times against a fresh batch computation.
    ///
    /// # Panics
    ///
    /// Panics if any cached statistic drifted from the ground truth.
    pub fn verify_consistency(&self) {
        for (m, gates) in self.partition.modules().iter().enumerate() {
            let fresh = Self::stats_for(self.ctx, gates);
            let cached = &self.stats[m];
            assert_eq!(fresh.count_hist, cached.count_hist, "module {m} count hist");
            assert_eq!(fresh.separation, cached.separation, "module {m} separation");
            assert!(
                (fresh.leakage_na - cached.leakage_na).abs() < 1e-6,
                "module {m} leakage"
            );
            assert!(
                (fresh.rail_cap_ff - cached.rail_cap_ff).abs() < 1e-6,
                "module {m} rail cap"
            );
            assert!(
                (fresh.peak_current_ua - cached.peak_current_ua).abs() < 1e-6,
                "module {m} peak current"
            );
            assert_eq!(
                fresh.peak_activity, cached.peak_activity,
                "module {m} activity"
            );
        }
        if self.dirty.is_empty() {
            for (m, s) in self.stats.iter().enumerate() {
                let fresh = sensor_figures(self.ctx, s);
                let cached = self.sensors[m];
                assert_eq!(fresh.violations, cached.violations, "module {m} violations");
                assert!((fresh.rs_ohm - cached.rs_ohm).abs() < 1e-9, "module {m} rs");
                assert!((fresh.area - cached.area).abs() < 1e-9, "module {m} area");
                for &g in self.partition.module(m) {
                    let w = gate_weight(self.ctx, g, s, &cached);
                    assert!((w - self.weight[g.index()]).abs() < 1e-9, "gate {g} weight");
                }
            }
            let mut arr = vec![0.0f64; self.ctx.netlist.node_count()];
            full_arrival_sweep(self.ctx, &self.weight, &mut arr);
            for id in self.ctx.netlist.node_ids() {
                assert!(
                    (arr[id.index()] - self.arr[id.index()]).abs() < 1e-9,
                    "node {id} arrival"
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PartitionConfig;
    use iddq_celllib::Library;
    use iddq_netlist::data;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn single_module_cost_is_finite_and_feasible() {
        let lib = Library::generic_1um();
        let nl = data::c17();
        let ctx = EvalContext::new(&nl, &lib, PartitionConfig::paper_default());
        let e = Evaluated::new(&ctx, Partition::single_module(&nl));
        let c = e.cost();
        assert!(c.feasible());
        assert!(c.sensor_area > 0.0);
        assert!(c.c2_delay >= 0.0);
        assert!(c.total(&ctx.config.weights, 0.0).is_finite());
    }

    #[test]
    fn more_modules_cost_more_fixed_area() {
        let lib = Library::generic_1um();
        let nl = data::c17();
        let ctx = EvalContext::new(&nl, &lib, PartitionConfig::paper_default());
        let gs = data::c17_paper_gates(&nl);
        let one = Evaluated::new(&ctx, Partition::single_module(&nl)).cost();
        let two = Evaluated::new(
            &ctx,
            Partition::from_groups(&nl, vec![gs[..3].to_vec(), gs[3..].to_vec()]).unwrap(),
        )
        .cost();
        assert_eq!(one.c5_modules, 1.0);
        assert_eq!(two.c5_modules, 2.0);
        // Two detection circuits cost more fixed area than one.
        assert!(two.sensor_area > 0.0 && one.sensor_area > 0.0);
    }

    #[test]
    fn incremental_moves_match_full_recompute() {
        let lib = Library::generic_1um();
        let nl = data::ripple_adder(6);
        let ctx = EvalContext::new(&nl, &lib, PartitionConfig::paper_default());
        let gates: Vec<_> = nl.gate_ids().collect();
        let half = gates.len() / 2;
        let p = Partition::from_groups(&nl, vec![gates[..half].to_vec(), gates[half..].to_vec()])
            .unwrap();
        let mut e = Evaluated::new(&ctx, p);
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..200 {
            let g = gates[rng.gen_range(0..gates.len())];
            let k = e.partition().module_count();
            if k < 2 {
                break;
            }
            let target = rng.gen_range(0..k);
            e.move_gate(g, target);
            e.settle();
            e.verify_consistency();
        }
    }

    #[test]
    fn incremental_cost_equals_fresh_cost() {
        let lib = Library::generic_1um();
        let nl = data::ripple_adder(8);
        let ctx = EvalContext::new(&nl, &lib, PartitionConfig::paper_default());
        let gates: Vec<_> = nl.gate_ids().collect();
        let third = gates.len() / 3;
        let p = Partition::from_groups(
            &nl,
            vec![
                gates[..third].to_vec(),
                gates[third..2 * third].to_vec(),
                gates[2 * third..].to_vec(),
            ],
        )
        .unwrap();
        let mut e = Evaluated::new(&ctx, p);
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            let g = gates[rng.gen_range(0..gates.len())];
            let target = rng.gen_range(0..e.partition().module_count());
            e.move_gate(g, target);
        }
        // Unsettled (temporary-sweep) and settled (persistent-state) cost
        // must both agree with a from-scratch evaluation.
        let unsettled = e.cost();
        e.settle();
        let incremental = e.cost();
        let fresh = Evaluated::new(&ctx, e.partition().clone()).cost();
        for (label, got) in [("unsettled", unsettled), ("settled", incremental)] {
            assert!((got.c1_area - fresh.c1_area).abs() < 1e-9, "{label}");
            assert!((got.c2_delay - fresh.c2_delay).abs() < 1e-9, "{label}");
            assert!(
                (got.c3_interconnect - fresh.c3_interconnect).abs() < 1e-9,
                "{label}"
            );
            assert!(
                (got.c4_test_time - fresh.c4_test_time).abs() < 1e-9,
                "{label}"
            );
            assert_eq!(got.c5_modules, fresh.c5_modules, "{label}");
        }
    }

    #[test]
    fn txn_rollback_restores_bitwise() {
        let lib = Library::generic_1um();
        let nl = data::ripple_adder(8);
        let ctx = EvalContext::new(&nl, &lib, PartitionConfig::paper_default());
        let gates: Vec<_> = nl.gate_ids().collect();
        let third = gates.len() / 3;
        let p = Partition::from_groups(
            &nl,
            vec![
                gates[..third].to_vec(),
                gates[third..2 * third].to_vec(),
                gates[2 * third..].to_vec(),
            ],
        )
        .unwrap();
        let mut e = Evaluated::new(&ctx, p);
        let mut rng = SmallRng::seed_from_u64(11);
        for round in 0..60 {
            let snap_partition = e.partition().clone();
            let snap_stats = e.stats.clone();
            let snap_sensors = e.sensors.clone();
            let snap_weight = e.weight.clone();
            let snap_arr = e.arr.clone();
            let snap_cost = e.total_cost();

            e.begin_txn();
            for _ in 0..rng.gen_range(1..8) {
                let g = gates[rng.gen_range(0..gates.len())];
                let target = rng.gen_range(0..e.partition().module_count());
                e.move_gate(g, target);
            }
            e.settle();
            let _ = e.total_cost();
            e.rollback_txn();

            assert_eq!(e.partition(), &snap_partition, "round {round}");
            assert_eq!(e.stats, snap_stats, "round {round}");
            assert_eq!(e.sensors, snap_sensors, "round {round}");
            assert_eq!(
                e.weight.iter().map(|w| w.to_bits()).collect::<Vec<_>>(),
                snap_weight.iter().map(|w| w.to_bits()).collect::<Vec<_>>(),
                "round {round} weights"
            );
            assert_eq!(
                e.arr.iter().map(|w| w.to_bits()).collect::<Vec<_>>(),
                snap_arr.iter().map(|w| w.to_bits()).collect::<Vec<_>>(),
                "round {round} arrivals"
            );
            assert_eq!(
                e.total_cost().to_bits(),
                snap_cost.to_bits(),
                "round {round}"
            );
        }
    }

    #[test]
    fn txn_rollback_through_batch_fallback() {
        // Force the full-sweep path (limit 0) and check rollback still
        // restores the arrival state bit-for-bit.
        let lib = Library::generic_1um();
        let nl = data::ripple_adder(8);
        let mut cfg = PartitionConfig::paper_default();
        cfg.incremental_delay_limit = 0.0;
        let ctx = EvalContext::new(&nl, &lib, cfg);
        let gates: Vec<_> = nl.gate_ids().collect();
        let half = gates.len() / 2;
        let p = Partition::from_groups(&nl, vec![gates[..half].to_vec(), gates[half..].to_vec()])
            .unwrap();
        let mut e = Evaluated::new(&ctx, p);
        let snap_arr = e.arr.clone();
        let snap_cost = e.total_cost();
        e.begin_txn();
        e.move_gate(gates[0], 1);
        e.settle();
        let _ = e.total_cost();
        e.rollback_txn();
        assert_eq!(
            e.arr.iter().map(|w| w.to_bits()).collect::<Vec<_>>(),
            snap_arr.iter().map(|w| w.to_bits()).collect::<Vec<_>>(),
        );
        assert_eq!(e.total_cost().to_bits(), snap_cost.to_bits());
    }

    #[test]
    fn txn_commit_keeps_changes() {
        let lib = Library::generic_1um();
        let nl = data::c17();
        let ctx = EvalContext::new(&nl, &lib, PartitionConfig::paper_default());
        let gs = data::c17_paper_gates(&nl);
        let p = Partition::from_groups(
            &nl,
            vec![vec![gs[0], gs[2], gs[4]], vec![gs[1], gs[3], gs[5]]],
        )
        .unwrap();
        let mut e = Evaluated::new(&ctx, p);
        e.begin_txn();
        e.move_gate(gs[0], 1);
        e.settle();
        e.commit_txn();
        assert_eq!(e.partition().module_of(gs[0]), Some(1));
        e.verify_consistency();
    }

    #[test]
    fn scored_rollback_equals_clone_scoring() {
        // The evolution pattern: scoring on a scratch with rollback must
        // produce the same cost as scoring on a fresh clone.
        let lib = Library::generic_1um();
        let nl = data::ripple_adder(10);
        let ctx = EvalContext::new(&nl, &lib, PartitionConfig::paper_default());
        let gates: Vec<_> = nl.gate_ids().collect();
        let third = gates.len() / 3;
        let p = Partition::from_groups(
            &nl,
            vec![
                gates[..third].to_vec(),
                gates[third..2 * third].to_vec(),
                gates[2 * third..].to_vec(),
            ],
        )
        .unwrap();
        let parent = Evaluated::new(&ctx, p);
        let mut scratch = parent.clone();
        let mut rng = SmallRng::seed_from_u64(23);
        for _ in 0..40 {
            let moves: Vec<(NodeId, usize)> = (0..rng.gen_range(1..5))
                .map(|_| {
                    (
                        gates[rng.gen_range(0..gates.len())],
                        rng.gen_range(0..parent.partition().module_count()),
                    )
                })
                .collect();
            scratch.begin_txn();
            let mut aborted = false;
            for &(g, t) in &moves {
                if t >= scratch.partition().module_count() {
                    aborted = true;
                    break;
                }
                scratch.move_gate(g, t);
            }
            let scored = if aborted {
                None
            } else {
                scratch.settle();
                Some(scratch.total_cost())
            };
            scratch.rollback_txn();
            if let Some(scored) = scored {
                let mut clone = parent.clone();
                for &(g, t) in &moves {
                    clone.move_gate(g, t);
                }
                clone.settle();
                assert_eq!(scored.to_bits(), clone.total_cost().to_bits());
            }
        }
    }

    #[test]
    fn boundary_gates_of_c17_halves() {
        let lib = Library::generic_1um();
        let nl = data::c17();
        let ctx = EvalContext::new(&nl, &lib, PartitionConfig::paper_default());
        let gs = data::c17_paper_gates(&nl);
        // Paper's optimum {(g1,g3,g5),(g2,g4,g6)}: every gate touches the
        // other half (c17 is tiny and tightly connected).
        let p = Partition::from_groups(
            &nl,
            vec![vec![gs[0], gs[2], gs[4]], vec![gs[1], gs[3], gs[5]]],
        )
        .unwrap();
        let e = Evaluated::new(&ctx, p);
        let b0 = e.boundary_gates(0);
        assert!(!b0.is_empty());
        for g in b0 {
            assert_eq!(e.partition().module_of(g), Some(0));
        }
    }

    #[test]
    fn connected_modules_lists_neighbours_only() {
        let lib = Library::generic_1um();
        let nl = data::c17();
        let ctx = EvalContext::new(&nl, &lib, PartitionConfig::paper_default());
        let gs = data::c17_paper_gates(&nl);
        let p = Partition::from_groups(
            &nl,
            vec![vec![gs[0]], vec![gs[1]], vec![gs[2], gs[3], gs[4], gs[5]]],
        )
        .unwrap();
        let e = Evaluated::new(&ctx, p);
        // g1 (gate 10) feeds gate 22 (module 2); shares PI 3 with g2=11
        // but PIs don't link modules in the gate graph... they do via
        // undirected neighbours only when directly connected. 10's gate
        // neighbours: 22 (module 2). So connected = [2].
        assert_eq!(e.connected_modules(gs[0]), vec![2]);
    }

    #[test]
    fn oversized_module_violates_discriminability() {
        // Shrink the threshold so even c17's six gates leak too much.
        let lib = Library::generic_1um();
        let nl = data::c17();
        let mut cfg = PartitionConfig::paper_default();
        cfg.d_min = 1e9;
        let ctx = EvalContext::new(&nl, &lib, cfg);
        let e = Evaluated::new(&ctx, Partition::single_module(&nl));
        let c = e.cost();
        assert!(!c.feasible());
        assert!(c.violations >= 1);
        let w = ctx.config.weights;
        assert!(c.total(&w, 1e7) > 1e6);
    }

    #[test]
    fn module_removal_keeps_stats_aligned() {
        let lib = Library::generic_1um();
        let nl = data::c17();
        let ctx = EvalContext::new(&nl, &lib, PartitionConfig::paper_default());
        let gs = data::c17_paper_gates(&nl);
        let p = Partition::from_groups(
            &nl,
            vec![vec![gs[0]], vec![gs[1], gs[2]], vec![gs[3], gs[4], gs[5]]],
        )
        .unwrap();
        let mut e = Evaluated::new(&ctx, p);
        // Empty module 0; module 2 renumbers into slot 0.
        e.move_gate(gs[0], 1);
        assert_eq!(e.partition().module_count(), 2);
        e.settle();
        e.verify_consistency();
        let c = e.cost();
        assert_eq!(c.c5_modules, 2.0);
    }

    #[test]
    fn delay_overhead_grows_with_activity_concentration() {
        // All gates in one module (high simultaneous activity sharing one
        // bypass) vs spreading gates across modules.
        let lib = Library::generic_1um();
        let nl = data::ripple_adder(12);
        let ctx = EvalContext::new(&nl, &lib, PartitionConfig::paper_default());
        let one = Evaluated::new(&ctx, Partition::single_module(&nl)).cost();
        assert!(one.c2_delay > 0.0, "sensor must cost some delay");
        assert!(one.dbic_ps > ctx.nominal_delay_ps);
    }
}

#[cfg(test)]
mod estimator_edge_tests {
    use super::*;
    use crate::config::PartitionConfig;
    use crate::partition::Partition;
    use iddq_celllib::Library;
    use iddq_netlist::{CellKind, NetlistBuilder};

    /// Two inverter chains of different depth in one module: their
    /// transition windows are disjoint singletons per grid step, so the
    /// module peak equals the *maximum* single-time sum, not the total.
    #[test]
    fn staggered_gates_do_not_sum_into_the_peak() {
        let mut b = NetlistBuilder::new("stagger");
        let i = b.add_input("i");
        let g1 = b.add_gate("g1", CellKind::Not, vec![i]).unwrap();
        let g2 = b.add_gate("g2", CellKind::Not, vec![g1]).unwrap();
        let g3 = b.add_gate("g3", CellKind::Not, vec![g2]).unwrap();
        b.mark_output(g3);
        let nl = b.build().unwrap();
        let lib = Library::generic_1um();
        let ctx = EvalContext::new(&nl, &lib, PartitionConfig::paper_default());
        let eval = Evaluated::new(&ctx, Partition::single_module(&nl));
        let s = &eval.stats()[0];
        let per_gate = ctx.tables.peak_current_ua[g1.index()];
        // A pure chain has singleton, pairwise-disjoint transition times.
        assert!((s.peak_current_ua - per_gate).abs() < 1e-9);
        assert_eq!(s.peak_activity, 1);
    }

    /// Reconvergent fan-out within one module *does* stack: both branch
    /// gates can switch at the same grid time.
    #[test]
    fn parallel_branches_stack_into_the_peak() {
        let mut b = NetlistBuilder::new("par");
        let i = b.add_input("i");
        let a = b.add_gate("a", CellKind::Not, vec![i]).unwrap();
        let c = b.add_gate("c", CellKind::Not, vec![i]).unwrap();
        let o = b.add_gate("o", CellKind::And, vec![a, c]).unwrap();
        b.mark_output(o);
        let nl = b.build().unwrap();
        let lib = Library::generic_1um();
        let ctx = EvalContext::new(&nl, &lib, PartitionConfig::paper_default());
        let eval = Evaluated::new(&ctx, Partition::single_module(&nl));
        let s = &eval.stats()[0];
        let per_inv = ctx.tables.peak_current_ua[a.index()];
        assert!(s.peak_current_ua >= 2.0 * per_inv - 1e-9);
        assert!(s.peak_activity >= 2);
    }

    /// An infeasible (rail-violating) module is reported as such and the
    /// report leaves its sensor fields empty.
    #[test]
    fn infeasible_module_reported_without_sensor() {
        let nl = iddq_netlist::data::c17();
        let lib = Library::generic_1um();
        let mut cfg = PartitionConfig::paper_default();
        // Impossibly strict rail budget: r* = 1e-6 mV.
        cfg.sizing.r_star_mv = 1e-6;
        let ctx = EvalContext::new(&nl, &lib, cfg);
        let eval = Evaluated::new(&ctx, Partition::single_module(&nl));
        let cost = eval.cost();
        assert!(!cost.feasible());
        let report = crate::flow::report_for(&eval);
        assert!(!report.feasible);
        assert!(report.modules[0].rs_ohm.is_none());
        assert!(report.modules[0].sensor_area.is_none());
    }
}
