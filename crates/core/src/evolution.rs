//! The evolution-based partitioning algorithm (§4).
//!
//! One cycle of the strategy (adapted from Rechenberg/Schwefel via Saab &
//! Rao, as the paper describes):
//!
//! 1. **Recombination** — "just one parent is sufficient for a child, and
//!    recombination is just duplication": each of the μ parents is copied
//!    λ times.
//! 2. **Mutation** — per child, a random module `M_start` is selected, its
//!    boundary gates are determined, `m_move ∈ {1, …, min(m,
//!    m_boundary)}` gates are chosen uniformly and each moves into a
//!    connected target module. Additionally χ *Monte-Carlo* descendants
//!    per parent move a random number of random gates of a random module
//!    into a random module — the high-variance step that "reduces the
//!    probability of being caught in a local minimum". Emptied modules
//!    are deleted.
//! 3. **Step-width adaptation** — each descendant's `m` is redrawn from a
//!    normal distribution with variance ε around its parent's `m`.
//! 4. **Selection** — parents older than the maximum lifetime `o` are
//!    deleted; the μ best of the remaining individuals become the next
//!    parents.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use iddq_netlist::NodeId;

use crate::context::EvalContext;
use crate::evaluator::Evaluated;
use crate::partition::Partition;
use crate::start;

/// Strategy parameters (the glossary's `μ, λ, χ, o, m, ε`).
#[derive(Debug, Clone, PartialEq)]
pub struct EvolutionConfig {
    /// μ — number of parents.
    pub mu: usize,
    /// λ — mutated children per parent.
    pub lambda: usize,
    /// χ — Monte-Carlo descendants per parent.
    pub chi: usize,
    /// o — maximum lifetime in generations.
    pub max_lifetime: u32,
    /// Initial mutation step width `m` (max gates moved per mutation).
    pub m_init: f64,
    /// ε — standard deviation of the step-width adaptation.
    pub epsilon: f64,
    /// Maximum number of generations.
    pub generations: usize,
    /// Stop early after this many generations without best-cost
    /// improvement.
    pub stagnation: usize,
    /// Worker threads for descendant evaluation (1 = sequential). The
    /// result is identical for any thread count: every descendant draws
    /// from its own seeded RNG stream.
    pub threads: usize,
}

impl Default for EvolutionConfig {
    fn default() -> Self {
        EvolutionConfig {
            mu: 6,
            lambda: 4,
            chi: 2,
            max_lifetime: 8,
            m_init: 4.0,
            epsilon: 1.0,
            generations: 400,
            stagnation: 60,
            threads: 1,
        }
    }
}

/// One individual of the population.
#[derive(Debug, Clone)]
struct Individual<'a> {
    eval: Evaluated<'a>,
    cost: f64,
    m: f64,
    age: u32,
}

/// Progress record per generation (for convergence plots).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GenerationLog {
    /// Generation index.
    pub generation: usize,
    /// Best cost in the population.
    pub best_cost: f64,
    /// Population mean cost.
    pub mean_cost: f64,
    /// Module count of the best individual.
    pub best_modules: usize,
}

/// Result of an optimization run.
#[derive(Debug, Clone)]
pub struct EvolutionOutcome {
    /// The best partition found.
    pub best: Partition,
    /// Its weighted cost.
    pub best_cost: f64,
    /// Convergence trace.
    pub log: Vec<GenerationLog>,
    /// Total partitions evaluated.
    pub evaluations: usize,
}

/// Runs the evolution strategy from chain-grown start partitions.
///
/// Deterministic for fixed `(ctx, config, seed)`.
///
/// # Panics
///
/// Panics if `config.mu == 0` or the netlist has no gates.
#[must_use]
pub fn optimize(ctx: &EvalContext<'_>, config: &EvolutionConfig, seed: u64) -> EvolutionOutcome {
    assert!(config.mu > 0, "need at least one parent");
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xe501);
    let module_size = start::estimate_module_size(ctx);
    let module_count = start::estimate_module_count(ctx);
    // Chain partitions target a size that yields the estimated count.
    let size_for_count = ctx.gates.len().div_ceil(module_count).max(1);
    let _ = module_size;

    let mut population: Vec<Individual<'_>> = (0..config.mu)
        .map(|i| {
            let p = start::chain_partition(ctx, size_for_count, seed.wrapping_add(i as u64));
            let eval = Evaluated::new(ctx, p);
            let cost = eval.total_cost();
            Individual {
                eval,
                cost,
                m: config.m_init,
                age: 0,
            }
        })
        .collect();
    let mut evaluations = population.len();

    let mut log = Vec::new();
    let mut best_cost = f64::INFINITY;
    let mut best: Option<Partition> = None;
    let mut stagnant = 0usize;

    for generation in 0..config.generations {
        // Descendant tasks: (parent index, Monte-Carlo?, private seed).
        // Each task gets its own RNG derived from the master stream, so
        // the outcome is identical whatever the thread count.
        let tasks: Vec<(usize, bool, u64)> = population
            .iter()
            .enumerate()
            .flat_map(|(pi, _)| {
                (0..config.lambda)
                    .map(move |_| (pi, false))
                    .chain((0..config.chi).map(move |_| (pi, true)))
            })
            .map(|(pi, mc)| (pi, mc, rng.gen::<u64>()))
            .collect();
        let run_task = |&(pi, mc, s): &(usize, bool, u64)| {
            let mut child_rng = SmallRng::seed_from_u64(s);
            let parent = &population[pi];
            if mc {
                monte_carlo(parent, config, &mut child_rng)
            } else {
                mutate(parent, config, &mut child_rng)
            }
        };
        let results: Vec<Option<Individual<'_>>> = if config.threads > 1 && tasks.len() > 1 {
            let chunk = tasks.len().div_ceil(config.threads);
            std::thread::scope(|scope| {
                let handles: Vec<_> = tasks
                    .chunks(chunk)
                    .map(|slice| {
                        scope.spawn(move || slice.iter().map(run_task).collect::<Vec<_>>())
                    })
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|h| h.join().expect("descendant worker never panics"))
                    .collect()
            })
        } else {
            tasks.iter().map(run_task).collect()
        };
        let mut offspring: Vec<Individual<'_>> = results.into_iter().flatten().collect();
        evaluations += offspring.len();
        // Selection pool: aged parents + all descendants.
        for p in &mut population {
            p.age += 1;
        }
        population.retain(|p| p.age <= config.max_lifetime);
        population.append(&mut offspring);
        population.sort_by(|a, b| a.cost.total_cmp(&b.cost));
        population.truncate(config.mu);
        if population.is_empty() {
            // All parents aged out with no offspring (degenerate tiny
            // circuits): restart from chains.
            let p = start::chain_partition(ctx, size_for_count, seed ^ generation as u64);
            let eval = Evaluated::new(ctx, p);
            let cost = eval.total_cost();
            evaluations += 1;
            population.push(Individual {
                eval,
                cost,
                m: config.m_init,
                age: 0,
            });
        }

        let gen_best = &population[0];
        let mean_cost = population.iter().map(|i| i.cost).sum::<f64>() / population.len() as f64;
        log.push(GenerationLog {
            generation,
            best_cost: gen_best.cost,
            mean_cost,
            best_modules: gen_best.eval.partition().module_count(),
        });
        if gen_best.cost + 1e-12 < best_cost {
            best_cost = gen_best.cost;
            best = Some(gen_best.eval.partition().clone());
            stagnant = 0;
        } else {
            stagnant += 1;
            if stagnant >= config.stagnation {
                break;
            }
        }
    }

    let best = best.expect("at least one generation ran");
    EvolutionOutcome {
        best,
        best_cost,
        log,
        evaluations,
    }
}

/// The §4.2 mutation: move up to `m` boundary gates of a random module
/// into connected modules. Returns `None` when no move is possible
/// (single-module partitions have no boundary).
fn mutate<'a>(
    parent: &Individual<'a>,
    config: &EvolutionConfig,
    rng: &mut SmallRng,
) -> Option<Individual<'a>> {
    let k = parent.eval.partition().module_count();
    if k < 2 {
        return None;
    }
    let mut child = parent.eval.clone();
    let m_start = rng.gen_range(0..k);
    let boundary = child.boundary_gates(m_start);
    if boundary.is_empty() {
        return None;
    }
    let m_step = adapt_step(parent.m, config.epsilon, rng);
    let cap = (m_step.round() as usize).clamp(1, boundary.len());
    let m_move = rng.gen_range(1..=cap);
    let mut moved = 0usize;
    let mut candidates = boundary;
    while moved < m_move && !candidates.is_empty() {
        let gi = rng.gen_range(0..candidates.len());
        let gate = candidates.swap_remove(gi);
        // Gate may have been re-homed indirectly by module removal; the
        // connected-target list is computed against the current state.
        let targets = child.connected_modules(gate);
        if targets.is_empty() {
            continue;
        }
        let target = targets[rng.gen_range(0..targets.len())];
        child.move_gate(gate, target);
        moved += 1;
        if child.partition().module_count() < 2 {
            break;
        }
    }
    if moved == 0 {
        return None;
    }
    let cost = child.total_cost();
    Some(Individual {
        eval: child,
        cost,
        m: m_step,
        age: 0,
    })
}

/// The Monte-Carlo descendant: a random number of random gates of a random
/// module moves into a random module ("the random variation of these
/// descendants is higher compared with mutations").
fn monte_carlo<'a>(
    parent: &Individual<'a>,
    config: &EvolutionConfig,
    rng: &mut SmallRng,
) -> Option<Individual<'a>> {
    let k = parent.eval.partition().module_count();
    if k < 2 {
        return None;
    }
    let mut child = parent.eval.clone();
    let source = rng.gen_range(0..k);
    let target = {
        let mut t = rng.gen_range(0..k - 1);
        if t >= source {
            t += 1;
        }
        t
    };
    let size = child.partition().module(source).len();
    let count = rng.gen_range(1..=size);
    let gates: Vec<NodeId> = {
        let mut pool: Vec<NodeId> = child.partition().module(source).to_vec();
        (0..count)
            .map(|_| pool.swap_remove(rng.gen_range(0..pool.len())))
            .collect()
    };
    // Module indices shift when `source` empties; track the target by a
    // representative gate instead.
    let target_rep = child.partition().module(target)[0];
    for g in gates {
        let t = child
            .partition()
            .module_of(target_rep)
            .expect("representative stays assigned");
        child.move_gate(g, t);
    }
    let m_step = adapt_step(parent.m, config.epsilon, rng);
    let cost = child.total_cost();
    Some(Individual {
        eval: child,
        cost,
        m: m_step,
        age: 0,
    })
}

/// Redraws the mutation step width from `N(m, ε²)`, floored at 1.
fn adapt_step(m: f64, epsilon: f64, rng: &mut SmallRng) -> f64 {
    // Box–Muller transform; `rand` ships no normal distribution and the
    // approved crate set excludes rand_distr.
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
    (m + epsilon * z).max(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PartitionConfig;
    use iddq_celllib::Library;
    use iddq_netlist::data;

    fn quick_config() -> EvolutionConfig {
        EvolutionConfig {
            mu: 4,
            lambda: 3,
            chi: 1,
            max_lifetime: 6,
            m_init: 2.0,
            epsilon: 1.0,
            generations: 60,
            stagnation: 20,
            threads: 1,
        }
    }

    #[test]
    fn optimizes_c17_to_feasible_two_modules_or_fewer() {
        let nl = data::c17();
        let lib = Library::generic_1um();
        let ctx = EvalContext::new(&nl, &lib, PartitionConfig::paper_default());
        let out = optimize(&ctx, &quick_config(), 1);
        out.best.validate(&nl).unwrap();
        let eval = Evaluated::new(&ctx, out.best.clone());
        assert!(eval.cost().feasible());
        assert!(out.best_cost.is_finite());
    }

    #[test]
    fn best_cost_never_increases_in_log() {
        let nl = data::ripple_adder(12);
        let lib = Library::generic_1um();
        let ctx = EvalContext::new(&nl, &lib, PartitionConfig::paper_default());
        let out = optimize(&ctx, &quick_config(), 3);
        let mut best = f64::INFINITY;
        for entry in &out.log {
            best = best.min(entry.best_cost);
            // The running best observed so far must be reflected.
            assert!(entry.best_cost >= best - 1e-9);
        }
        assert!(out.evaluations > quick_config().mu);
    }

    #[test]
    fn deterministic_for_seed() {
        let nl = data::ripple_adder(8);
        let lib = Library::generic_1um();
        let ctx = EvalContext::new(&nl, &lib, PartitionConfig::paper_default());
        let a = optimize(&ctx, &quick_config(), 42);
        let b = optimize(&ctx, &quick_config(), 42);
        assert_eq!(a.best, b.best);
        assert_eq!(a.best_cost, b.best_cost);
    }

    #[test]
    fn improves_over_start_partitions() {
        let nl = data::ripple_adder(24);
        let lib = Library::generic_1um();
        let ctx = EvalContext::new(&nl, &lib, PartitionConfig::paper_default());
        let size = crate::start::estimate_module_size(&ctx);
        let count = crate::start::estimate_module_count(&ctx);
        let chain = crate::start::chain_partition(&ctx, ctx.gates.len().div_ceil(count).max(1), 42);
        let start_cost = Evaluated::new(&ctx, chain).total_cost();
        let out = optimize(&ctx, &quick_config(), 42);
        assert!(
            out.best_cost <= start_cost,
            "{} vs {start_cost}",
            out.best_cost
        );
        let _ = size;
    }

    #[test]
    fn step_width_adaptation_floors_at_one() {
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..200 {
            assert!(adapt_step(1.0, 10.0, &mut rng) >= 1.0);
        }
    }

    #[test]
    fn thread_count_does_not_change_the_result() {
        let nl = data::ripple_adder(10);
        let lib = Library::generic_1um();
        let ctx = EvalContext::new(&nl, &lib, PartitionConfig::paper_default());
        let seq = optimize(&ctx, &quick_config(), 11);
        let par_cfg = EvolutionConfig {
            threads: 4,
            ..quick_config()
        };
        let par = optimize(&ctx, &par_cfg, 11);
        assert_eq!(seq.best, par.best);
        assert_eq!(seq.best_cost, par.best_cost);
        assert_eq!(seq.evaluations, par.evaluations);
    }

    #[test]
    fn mutation_returns_none_for_single_module() {
        let nl = data::c17();
        let lib = Library::generic_1um();
        let ctx = EvalContext::new(&nl, &lib, PartitionConfig::paper_default());
        let eval = Evaluated::new(&ctx, Partition::single_module(&nl));
        let cost = eval.total_cost();
        let parent = Individual {
            eval,
            cost,
            m: 2.0,
            age: 0,
        };
        let mut rng = SmallRng::seed_from_u64(0);
        assert!(mutate(&parent, &quick_config(), &mut rng).is_none());
        assert!(monte_carlo(&parent, &quick_config(), &mut rng).is_none());
    }
}
