//! The evolution-based partitioning algorithm (§4).
//!
//! One cycle of the strategy (adapted from Rechenberg/Schwefel via Saab &
//! Rao, as the paper describes):
//!
//! 1. **Recombination** — "just one parent is sufficient for a child, and
//!    recombination is just duplication": each of the μ parents is copied
//!    λ times.
//! 2. **Mutation** — per child, a random module `M_start` is selected, its
//!    boundary gates are determined, `m_move ∈ {1, …, min(m,
//!    m_boundary)}` gates are chosen uniformly and each moves into a
//!    connected target module. Additionally χ *Monte-Carlo* descendants
//!    per parent move a random number of random gates of a random module
//!    into a random module — the high-variance step that "reduces the
//!    probability of being caught in a local minimum". Emptied modules
//!    are deleted.
//! 3. **Step-width adaptation** — each descendant's `m` is redrawn from a
//!    normal distribution with variance ε around its parent's `m`.
//! 4. **Selection** — parents older than the maximum lifetime `o` are
//!    deleted; the μ best of the remaining individuals become the next
//!    parents.
//!
//! # Scoring through patch + rollback
//!
//! Descendants are *scored*, not built: each worker keeps one scratch
//! [`Evaluated`] per parent and, per descendant, applies the mutation
//! moves inside a transaction, settles the incremental delay state
//! (event-driven cone propagation for the small mutation steps, batch
//! fallback for the module-sized Monte-Carlo steps), reads the cost and
//! rolls back. Only the descendants that survive selection are
//! materialized by replaying their recorded moves on a parent clone —
//! the `μ(λ+χ) − μ` losers per generation never pay for a full
//! evaluator construction. Rollback is bit-exact, so results are
//! identical for any thread count.

use std::panic::{catch_unwind, AssertUnwindSafe};

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use iddq_control::{Outcome, RunControl, StopReason};
use iddq_netlist::cone::ConeWalker;
use iddq_netlist::NodeId;

use crate::context::EvalContext;
use crate::evaluator::Evaluated;
use crate::partition::Partition;
use crate::start;

/// Strategy parameters (the glossary's `μ, λ, χ, o, m, ε`).
#[derive(Debug, Clone, PartialEq)]
pub struct EvolutionConfig {
    /// μ — number of parents.
    pub mu: usize,
    /// λ — mutated children per parent.
    pub lambda: usize,
    /// χ — Monte-Carlo descendants per parent.
    pub chi: usize,
    /// o — maximum lifetime in generations.
    pub max_lifetime: u32,
    /// Initial mutation step width `m` (max gates moved per mutation).
    pub m_init: f64,
    /// ε — standard deviation of the step-width adaptation.
    pub epsilon: f64,
    /// Maximum number of generations.
    pub generations: usize,
    /// Stop early after this many generations without best-cost
    /// improvement.
    pub stagnation: usize,
    /// Worker threads for descendant scoring (1 = sequential). The
    /// result is identical for any thread count: every descendant draws
    /// from its own seeded RNG stream and scratch rollback is bit-exact.
    pub threads: usize,
}

impl Default for EvolutionConfig {
    fn default() -> Self {
        EvolutionConfig {
            mu: 6,
            lambda: 4,
            chi: 2,
            max_lifetime: 8,
            m_init: 4.0,
            epsilon: 1.0,
            generations: 400,
            stagnation: 60,
            threads: 1,
        }
    }
}

/// One individual of the population.
#[derive(Debug, Clone)]
struct Individual<'a> {
    eval: Evaluated<'a>,
    cost: f64,
    m: f64,
    age: u32,
}

/// A scored-but-not-materialized descendant: parent index plus the exact
/// move list to replay if it survives selection.
#[derive(Debug, Clone)]
struct ScoredChild {
    parent: usize,
    moves: Vec<(NodeId, usize)>,
    cost: f64,
    m: f64,
}

/// What scoring one descendant yields: its recorded `(gate, target)`
/// moves, its settled cost, and its adapted step width.
type Scored = (Vec<(NodeId, usize)>, f64, f64);

/// Progress record per generation (for convergence plots).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GenerationLog {
    /// Generation index.
    pub generation: usize,
    /// Best cost in the population.
    pub best_cost: f64,
    /// Population mean cost.
    pub mean_cost: f64,
    /// Module count of the best individual.
    pub best_modules: usize,
}

/// Result of an optimization run.
#[derive(Debug, Clone)]
pub struct EvolutionOutcome {
    /// The best partition found.
    pub best: Partition,
    /// Its weighted cost.
    pub best_cost: f64,
    /// Convergence trace.
    pub log: Vec<GenerationLog>,
    /// Total partitions evaluated.
    pub evaluations: usize,
}

/// Runs the evolution strategy from chain-grown start partitions.
///
/// Deterministic for fixed `(ctx, config, seed)`.
///
/// # Panics
///
/// Panics if `config.mu == 0` or the netlist has no gates.
#[must_use]
pub fn optimize(ctx: &EvalContext<'_>, config: &EvolutionConfig, seed: u64) -> EvolutionOutcome {
    optimize_with_control(ctx, config, seed, &RunControl::unlimited()).into_value()
}

/// [`optimize`] under an [`iddq_control::RunControl`]: cancellable,
/// budget-aware, and panic-isolated.
///
/// The control is polled at every generation boundary and charged one
/// work unit per descendant scored. A budget or cancellation hit stops
/// the search at the next boundary and returns [`Outcome::Partial`]
/// carrying the best partition found so far; `coverage` is the fraction
/// of the configured generations that ran. A panic inside a scoring
/// chunk is caught at the worker boundary: that chunk's descendants are
/// lost, the generation finishes with the survivors, and the run stops
/// with [`StopReason::WorkerPanicked`]. Stagnation-based early exit is a
/// *normal* termination and still yields [`Outcome::Complete`].
///
/// # Panics
///
/// Panics if `config.mu == 0` or the netlist has no gates (caller bugs,
/// not runtime conditions).
#[must_use]
// The `expect`s inside assert the scratch-arena and
// parent-materialization accounting of the generation loop — each
// slot is provably filled exactly once before it is taken.
#[allow(clippy::expect_used)]
pub fn optimize_with_control(
    ctx: &EvalContext<'_>,
    config: &EvolutionConfig,
    seed: u64,
    control: &RunControl,
) -> Outcome<EvolutionOutcome> {
    assert!(config.mu > 0, "need at least one parent");
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xe501);
    let module_size = start::estimate_module_size(ctx);
    let module_count = start::estimate_module_count(ctx);
    // Chain partitions target a size that yields the estimated count.
    let size_for_count = ctx.gates.len().div_ceil(module_count).max(1);
    let _ = module_size;

    let mut population: Vec<Individual<'_>> = (0..config.mu)
        .map(|i| {
            let p = start::chain_partition(ctx, size_for_count, seed.wrapping_add(i as u64));
            let eval = Evaluated::new(ctx, p);
            let cost = eval.total_cost();
            Individual {
                eval,
                cost,
                m: config.m_init,
                age: 0,
            }
        })
        .collect();
    let mut evaluations = population.len();

    let mut log = Vec::new();
    let mut best_cost = f64::INFINITY;
    let mut best: Option<Partition> = None;
    let mut stagnant = 0usize;
    let mut stopped: Option<StopReason> = None;
    let mut generations_run = 0usize;

    for generation in 0..config.generations {
        if let Some(reason) = control.check() {
            stopped = Some(reason);
            break;
        }
        // Descendant tasks: (parent index, Monte-Carlo?, private seed).
        // Each task gets its own RNG derived from the master stream, so
        // the outcome is identical whatever the thread count.
        let tasks: Vec<(usize, bool, u64)> = population
            .iter()
            .enumerate()
            .flat_map(|(pi, _)| {
                (0..config.lambda)
                    .map(move |_| (pi, false))
                    .chain((0..config.chi).map(move |_| (pi, true)))
            })
            .map(|(pi, mc)| (pi, mc, rng.gen::<u64>()))
            .collect();
        // One worker: one cone walker, one scratch evaluator reused
        // across all consecutive descendants of the same parent —
        // apply → settle → score → rollback, no per-loser clones.
        let run_chunk = |slice: &[(usize, bool, u64)]| -> Vec<Option<ScoredChild>> {
            let mut walker = ConeWalker::new(&ctx.cones);
            let mut scratch: Option<(usize, Evaluated<'_>)> = None;
            slice
                .iter()
                .map(|&(pi, mc, s)| {
                    let mut child_rng = SmallRng::seed_from_u64(s);
                    if scratch.as_ref().map(|(owner, _)| *owner) != Some(pi) {
                        scratch = Some((pi, population[pi].eval.clone()));
                    }
                    let (_, eval) = scratch.as_mut().expect("scratch just ensured");
                    let parent_m = population[pi].m;
                    let scored = if mc {
                        monte_carlo(eval, parent_m, config, &mut child_rng, &mut walker)
                    } else {
                        mutate(eval, parent_m, config, &mut child_rng, &mut walker)
                    };
                    scored.map(|(moves, cost, m)| ScoredChild {
                        parent: pi,
                        moves,
                        cost,
                        m,
                    })
                })
                .collect()
        };
        // Scoring chunks run under a panic boundary: a poisoned chunk
        // loses its descendants (the scratch evaluators are private
        // clones, so no shared state is corrupted), the generation
        // finishes with the survivors, and the run then stops.
        let mut panicked = false;
        let scored: Vec<Option<ScoredChild>> = if config.threads > 1 && tasks.len() > 1 {
            let chunk = tasks.len().div_ceil(config.threads);
            let per_chunk: Vec<Option<Vec<Option<ScoredChild>>>> = std::thread::scope(|scope| {
                let run_chunk = &run_chunk;
                let handles: Vec<_> = tasks
                    .chunks(chunk)
                    .map(|slice| {
                        scope
                            .spawn(move || catch_unwind(AssertUnwindSafe(|| run_chunk(slice))).ok())
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().ok().flatten())
                    .collect()
            });
            per_chunk
                .into_iter()
                .flat_map(|r| match r {
                    Some(cells) => cells,
                    None => {
                        panicked = true;
                        Vec::new()
                    }
                })
                .collect()
        } else {
            match catch_unwind(AssertUnwindSafe(|| run_chunk(&tasks))) {
                Ok(cells) => cells,
                Err(_) => {
                    panicked = true;
                    Vec::new()
                }
            }
        };
        let children: Vec<ScoredChild> = scored.into_iter().flatten().collect();
        evaluations += children.len();
        control.charge(tasks.len() as u64);

        // Selection pool: aged parents + all descendants, in that order
        // (stable sort keeps it deterministic under cost ties).
        for p in &mut population {
            p.age += 1;
        }
        enum Cand {
            Parent(usize),
            Child(usize),
        }
        let mut pool: Vec<(f64, Cand)> = population
            .iter()
            .enumerate()
            .filter(|(_, p)| p.age <= config.max_lifetime)
            .map(|(i, p)| (p.cost, Cand::Parent(i)))
            .collect();
        pool.extend(
            children
                .iter()
                .enumerate()
                .map(|(i, c)| (c.cost, Cand::Child(i))),
        );
        pool.sort_by(|a, b| a.0.total_cmp(&b.0));
        pool.truncate(config.mu);

        // Materialize the survivors: children replay their recorded
        // moves on a clone of their parent; parents move over directly.
        let mut next: Vec<Individual<'_>> = Vec::with_capacity(pool.len());
        {
            let mut walker = ConeWalker::new(&ctx.cones);
            for (_, cand) in &pool {
                if let Cand::Child(ci) = cand {
                    let child = &children[*ci];
                    let mut eval = population[child.parent].eval.clone();
                    for &(g, t) in &child.moves {
                        eval.move_gate(g, t);
                    }
                    eval.settle_with(&mut walker);
                    debug_assert_eq!(
                        eval.total_cost().to_bits(),
                        child.cost.to_bits(),
                        "materialized cost must equal scored cost"
                    );
                    next.push(Individual {
                        eval,
                        cost: child.cost,
                        m: child.m,
                        age: 0,
                    });
                }
            }
        }
        // Second pass: move surviving parents in pool order, interleaving
        // with the materialized children to preserve the sorted order.
        let mut parents: Vec<Option<Individual<'_>>> = population.into_iter().map(Some).collect();
        let mut materialized = next.into_iter();
        population = pool
            .iter()
            .map(|(_, cand)| match cand {
                Cand::Parent(i) => parents[*i].take().expect("each parent selected once"),
                Cand::Child(_) => materialized.next().expect("one materialization per child"),
            })
            .collect();

        if population.is_empty() {
            // All parents aged out with no offspring (degenerate tiny
            // circuits): restart from chains.
            let p = start::chain_partition(ctx, size_for_count, seed ^ generation as u64);
            let eval = Evaluated::new(ctx, p);
            let cost = eval.total_cost();
            evaluations += 1;
            population.push(Individual {
                eval,
                cost,
                m: config.m_init,
                age: 0,
            });
        }

        let gen_best = &population[0];
        let mean_cost = population.iter().map(|i| i.cost).sum::<f64>() / population.len() as f64;
        log.push(GenerationLog {
            generation,
            best_cost: gen_best.cost,
            mean_cost,
            best_modules: gen_best.eval.partition().module_count(),
        });
        if gen_best.cost + 1e-12 < best_cost {
            best_cost = gen_best.cost;
            best = Some(gen_best.eval.partition().clone());
            stagnant = 0;
        } else {
            stagnant += 1;
            if stagnant >= config.stagnation {
                generations_run = generation + 1;
                break;
            }
        }
        generations_run = generation + 1;
        if panicked {
            stopped = Some(StopReason::WorkerPanicked);
            break;
        }
    }

    // A stop before the first improvement still has the evaluated start
    // population to report: take its best member.
    let (best, best_cost) = match best {
        Some(p) => (p, best_cost),
        None => {
            let gen_best = population
                .iter()
                .min_by(|a, b| a.cost.total_cmp(&b.cost))
                .unwrap_or(&population[0]);
            (gen_best.eval.partition().clone(), gen_best.cost)
        }
    };
    let value = EvolutionOutcome {
        best,
        best_cost,
        log,
        evaluations,
    };
    match stopped {
        None => Outcome::Complete(value),
        Some(reason) => Outcome::Partial {
            value,
            coverage: if config.generations == 0 {
                1.0
            } else {
                generations_run as f64 / config.generations as f64
            },
            reason,
        },
    }
}

/// Scores one §4.2 mutation on the scratch evaluator: move up to `m`
/// boundary gates of a random module into connected modules, settle,
/// read the cost, roll back. Returns `None` when no move is possible
/// (single-module partitions have no boundary); the scratch is always
/// restored to the parent state.
fn mutate(
    scratch: &mut Evaluated<'_>,
    parent_m: f64,
    config: &EvolutionConfig,
    rng: &mut SmallRng,
    walker: &mut ConeWalker,
) -> Option<Scored> {
    let k = scratch.partition().module_count();
    if k < 2 {
        return None;
    }
    let m_start = rng.gen_range(0..k);
    let boundary = scratch.boundary_gates(m_start);
    if boundary.is_empty() {
        return None;
    }
    let m_step = adapt_step(parent_m, config.epsilon, rng);
    let cap = (m_step.round() as usize).clamp(1, boundary.len());
    let m_move = rng.gen_range(1..=cap);
    scratch.begin_txn();
    let mut moves: Vec<(NodeId, usize)> = Vec::with_capacity(m_move);
    let mut candidates = boundary;
    while moves.len() < m_move && !candidates.is_empty() {
        let gi = rng.gen_range(0..candidates.len());
        let gate = candidates.swap_remove(gi);
        // Gate may have been re-homed indirectly by module removal; the
        // connected-target list is computed against the current state.
        let targets = scratch.connected_modules(gate);
        if targets.is_empty() {
            continue;
        }
        let target = targets[rng.gen_range(0..targets.len())];
        scratch.move_gate(gate, target);
        moves.push((gate, target));
        if scratch.partition().module_count() < 2 {
            break;
        }
    }
    if moves.is_empty() {
        scratch.rollback_txn();
        return None;
    }
    scratch.settle_with(walker);
    let cost = scratch.total_cost();
    scratch.rollback_txn();
    Some((moves, cost, m_step))
}

/// Scores one Monte-Carlo descendant: a random number of random gates of
/// a random module moves into a random module ("the random variation of
/// these descendants is higher compared with mutations"). Module-sized
/// move sets exceed the incremental dirty-cone budget, so settling takes
/// the batch full-sweep path.
// Same scratch-arena accounting as the generation loop above.
#[allow(clippy::expect_used)]
fn monte_carlo(
    scratch: &mut Evaluated<'_>,
    parent_m: f64,
    config: &EvolutionConfig,
    rng: &mut SmallRng,
    walker: &mut ConeWalker,
) -> Option<Scored> {
    let k = scratch.partition().module_count();
    if k < 2 {
        return None;
    }
    let source = rng.gen_range(0..k);
    let target = {
        let mut t = rng.gen_range(0..k - 1);
        if t >= source {
            t += 1;
        }
        t
    };
    let size = scratch.partition().module(source).len();
    let count = rng.gen_range(1..=size);
    let gates: Vec<NodeId> = {
        let mut pool: Vec<NodeId> = scratch.partition().module(source).to_vec();
        (0..count)
            .map(|_| pool.swap_remove(rng.gen_range(0..pool.len())))
            .collect()
    };
    // Module indices shift when `source` empties; track the target by a
    // representative gate instead.
    let target_rep = scratch.partition().module(target)[0];
    scratch.begin_txn();
    let mut moves: Vec<(NodeId, usize)> = Vec::with_capacity(gates.len());
    for g in gates {
        let t = scratch
            .partition()
            .module_of(target_rep)
            .expect("representative stays assigned");
        scratch.move_gate(g, t);
        moves.push((g, t));
    }
    let m_step = adapt_step(parent_m, config.epsilon, rng);
    scratch.settle_with(walker);
    let cost = scratch.total_cost();
    scratch.rollback_txn();
    Some((moves, cost, m_step))
}

/// Redraws the mutation step width from `N(m, ε²)`, floored at 1.
fn adapt_step(m: f64, epsilon: f64, rng: &mut SmallRng) -> f64 {
    // Box–Muller transform; `rand` ships no normal distribution and the
    // approved crate set excludes rand_distr.
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
    (m + epsilon * z).max(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PartitionConfig;
    use iddq_celllib::Library;
    use iddq_netlist::data;

    fn quick_config() -> EvolutionConfig {
        EvolutionConfig {
            mu: 4,
            lambda: 3,
            chi: 1,
            max_lifetime: 6,
            m_init: 2.0,
            epsilon: 1.0,
            generations: 60,
            stagnation: 20,
            threads: 1,
        }
    }

    #[test]
    fn optimizes_c17_to_feasible_two_modules_or_fewer() {
        let nl = data::c17();
        let lib = Library::generic_1um();
        let ctx = EvalContext::new(&nl, &lib, PartitionConfig::paper_default());
        let out = optimize(&ctx, &quick_config(), 1);
        out.best.validate(&nl).unwrap();
        let eval = Evaluated::new(&ctx, out.best.clone());
        assert!(eval.cost().feasible());
        assert!(out.best_cost.is_finite());
    }

    #[test]
    fn best_cost_never_increases_in_log() {
        let nl = data::ripple_adder(12);
        let lib = Library::generic_1um();
        let ctx = EvalContext::new(&nl, &lib, PartitionConfig::paper_default());
        let out = optimize(&ctx, &quick_config(), 3);
        let mut best = f64::INFINITY;
        for entry in &out.log {
            best = best.min(entry.best_cost);
            // The running best observed so far must be reflected.
            assert!(entry.best_cost >= best - 1e-9);
        }
        assert!(out.evaluations > quick_config().mu);
    }

    #[test]
    fn deterministic_for_seed() {
        let nl = data::ripple_adder(8);
        let lib = Library::generic_1um();
        let ctx = EvalContext::new(&nl, &lib, PartitionConfig::paper_default());
        let a = optimize(&ctx, &quick_config(), 42);
        let b = optimize(&ctx, &quick_config(), 42);
        assert_eq!(a.best, b.best);
        assert_eq!(a.best_cost, b.best_cost);
    }

    #[test]
    fn improves_over_start_partitions() {
        let nl = data::ripple_adder(24);
        let lib = Library::generic_1um();
        let ctx = EvalContext::new(&nl, &lib, PartitionConfig::paper_default());
        let size = crate::start::estimate_module_size(&ctx);
        let count = crate::start::estimate_module_count(&ctx);
        let chain = crate::start::chain_partition(&ctx, ctx.gates.len().div_ceil(count).max(1), 42);
        let start_cost = Evaluated::new(&ctx, chain).total_cost();
        let out = optimize(&ctx, &quick_config(), 42);
        assert!(
            out.best_cost <= start_cost,
            "{} vs {start_cost}",
            out.best_cost
        );
        let _ = size;
    }

    #[test]
    fn step_width_adaptation_floors_at_one() {
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..200 {
            assert!(adapt_step(1.0, 10.0, &mut rng) >= 1.0);
        }
    }

    #[test]
    fn thread_count_does_not_change_the_result() {
        let nl = data::ripple_adder(10);
        let lib = Library::generic_1um();
        let ctx = EvalContext::new(&nl, &lib, PartitionConfig::paper_default());
        let seq = optimize(&ctx, &quick_config(), 11);
        let par_cfg = EvolutionConfig {
            threads: 4,
            ..quick_config()
        };
        let par = optimize(&ctx, &par_cfg, 11);
        assert_eq!(seq.best, par.best);
        assert_eq!(seq.best_cost, par.best_cost);
        assert_eq!(seq.evaluations, par.evaluations);
    }

    #[test]
    fn incremental_limit_does_not_change_the_search() {
        // Forcing every settle onto the batch path must reproduce the
        // incremental run exactly — the two paths are bit-equal.
        let nl = data::ripple_adder(10);
        let lib = Library::generic_1um();
        let ctx_inc = EvalContext::new(&nl, &lib, PartitionConfig::paper_default());
        let mut batch_cfg = PartitionConfig::paper_default();
        batch_cfg.incremental_delay_limit = 0.0;
        let ctx_batch = EvalContext::new(&nl, &lib, batch_cfg);
        let a = optimize(&ctx_inc, &quick_config(), 17);
        let b = optimize(&ctx_batch, &quick_config(), 17);
        assert_eq!(a.best, b.best);
        assert_eq!(a.best_cost, b.best_cost);
        assert_eq!(a.evaluations, b.evaluations);
    }

    #[test]
    fn quota_budget_stops_early_with_best_so_far() {
        use iddq_control::RunBudget;
        let nl = data::ripple_adder(10);
        let lib = Library::generic_1um();
        let ctx = EvalContext::new(&nl, &lib, PartitionConfig::paper_default());
        // One generation scores mu*(lambda+chi) = 16 descendants; a
        // 40-unit quota allows at most a few generations of 60.
        let control = RunControl::with_budget(RunBudget::unlimited().with_quota(40));
        let out = optimize_with_control(&ctx, &quick_config(), 7, &control);
        match out {
            Outcome::Partial {
                value,
                coverage,
                reason,
            } => {
                assert_eq!(reason, StopReason::QuotaExhausted);
                assert!(coverage < 1.0);
                assert!(value.best_cost.is_finite());
                value.best.validate(&nl).unwrap();
            }
            Outcome::Complete(_) => panic!("a 40-evaluation quota cannot finish 60 generations"),
        }
    }

    #[test]
    fn pre_cancelled_optimize_reports_start_population_best() {
        let nl = data::c17();
        let lib = Library::generic_1um();
        let ctx = EvalContext::new(&nl, &lib, PartitionConfig::paper_default());
        let control = RunControl::unlimited();
        control.token().cancel();
        let out = optimize_with_control(&ctx, &quick_config(), 1, &control);
        assert_eq!(out.stop_reason(), Some(StopReason::Cancelled));
        let value = out.into_value();
        assert!(value.best_cost.is_finite());
        value.best.validate(&nl).unwrap();
        assert!(value.log.is_empty());
    }

    #[test]
    fn mutation_returns_none_for_single_module() {
        let nl = data::c17();
        let lib = Library::generic_1um();
        let ctx = EvalContext::new(&nl, &lib, PartitionConfig::paper_default());
        let mut eval = Evaluated::new(&ctx, Partition::single_module(&nl));
        let mut walker = ConeWalker::new(&ctx.cones);
        let mut rng = SmallRng::seed_from_u64(0);
        assert!(mutate(&mut eval, 2.0, &quick_config(), &mut rng, &mut walker).is_none());
        assert!(monte_carlo(&mut eval, 2.0, &quick_config(), &mut rng, &mut walker).is_none());
    }
}
