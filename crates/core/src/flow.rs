//! End-to-end synthesis entry points and reporting.
//!
//! [`synthesize`] runs the full flow of the paper: build the analysis
//! context, grow start partitions, optimize with the evolution strategy
//! and emit a [`SynthesisReport`] with every per-module electrical figure
//! (sensor size, discriminability, time constants). [`compare_standard`]
//! additionally builds the §5 baseline at the same module count, the
//! comparison Table 1 reports.

use serde::{Deserialize, Serialize};

use iddq_celllib::Library;
use iddq_netlist::Netlist;

use crate::config::PartitionConfig;
use crate::constraints;
use crate::context::EvalContext;
use crate::cost::CostBreakdown;
use crate::evaluator::Evaluated;
use crate::evolution::{self, EvolutionConfig, GenerationLog};
use crate::partition::Partition;
use crate::standard;

/// Per-module figures of a synthesized design.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModuleReport {
    /// Module index.
    pub index: usize,
    /// Gate count.
    pub gates: usize,
    /// `î_DD,max,i` in µA.
    pub peak_current_ua: f64,
    /// Fault-free `I_DDQ,nd,i` in nA.
    pub leakage_na: f64,
    /// Discriminability `d(M_i)`.
    pub discriminability: f64,
    /// Sized bypass resistance `R_s,i` in Ω (`None` if infeasible).
    pub rs_ohm: Option<f64>,
    /// Sensor area `A_0 + A_1/R_s,i` (`None` if infeasible).
    pub sensor_area: Option<f64>,
    /// Sensor time constant `τ_s,i` in ps.
    pub tau_ps: Option<f64>,
    /// Per-vector decay+sense time `Δ(τ_s,i)` in ps.
    pub delta_ps: Option<f64>,
}

/// Complete result record (serializable for EXPERIMENTS.md tooling).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SynthesisReport {
    /// Circuit name.
    pub circuit: String,
    /// Gate count of the CUT.
    pub gates: usize,
    /// Per-module details.
    pub modules: Vec<ModuleReport>,
    /// Cost breakdown of the final partition.
    pub cost: CostBreakdown,
    /// Weighted total cost.
    pub total_cost: f64,
    /// `r(Π)` of the final partition.
    pub feasible: bool,
    /// Nominal critical path `D` in ps.
    pub nominal_delay_ps: f64,
    /// Estimated total test time (`num_vectors · (D_BIC + max Δ)`) in ps.
    pub test_time_ps: f64,
}

/// Output of [`synthesize`].
#[derive(Debug, Clone)]
pub struct SynthesisResult {
    /// The optimized partition.
    pub partition: Partition,
    /// Structured report.
    pub report: SynthesisReport,
    /// Evolution convergence trace.
    pub log: Vec<GenerationLog>,
    /// Number of partitions evaluated.
    pub evaluations: usize,
}

/// Builds the report for an arbitrary evaluated partition.
#[must_use]
pub fn report_for(eval: &Evaluated<'_>) -> SynthesisReport {
    let ctx = eval.context();
    let cons = constraints::evaluate(eval);
    let cost = eval.cost();
    let modules = eval
        .stats()
        .iter()
        .enumerate()
        .map(|(i, s)| {
            let sensor = eval.sensor(i).ok();
            ModuleReport {
                index: i,
                gates: eval.partition().module(i).len(),
                peak_current_ua: s.peak_current_ua,
                leakage_na: s.leakage_na,
                discriminability: cons.modules[i].discriminability,
                rs_ohm: sensor.as_ref().map(|x| x.rs_ohm),
                sensor_area: sensor.as_ref().map(|x| x.area),
                tau_ps: sensor.as_ref().map(iddq_bic::BicSensor::tau_ps),
                delta_ps: sensor.as_ref().map(|x| x.delta_ps(s.peak_current_ua)),
            }
        })
        .collect();
    SynthesisReport {
        circuit: ctx.netlist.name().to_owned(),
        gates: ctx.netlist.gate_count(),
        modules,
        cost,
        total_cost: cost.total(&ctx.config.weights, ctx.config.violation_penalty),
        feasible: cons.feasible,
        nominal_delay_ps: ctx.nominal_delay_ps,
        test_time_ps: cost.vector_time_ps * ctx.config.num_vectors as f64,
    }
}

/// Runs the complete evolution-based synthesis flow with default
/// optimizer parameters.
#[must_use]
pub fn synthesize(
    netlist: &Netlist,
    library: &Library,
    config: &PartitionConfig,
    seed: u64,
) -> SynthesisResult {
    synthesize_with(netlist, library, config, &EvolutionConfig::default(), seed)
}

/// Runs the flow with explicit optimizer parameters.
///
/// The analysis context is built once at the full tier, with the
/// separation BFS sharded across `evo.threads` workers (bit-identical to
/// a serial build).
#[must_use]
pub fn synthesize_with(
    netlist: &Netlist,
    library: &Library,
    config: &PartitionConfig,
    evo: &EvolutionConfig,
    seed: u64,
) -> SynthesisResult {
    let ctx = EvalContext::builder(netlist, library, config.clone())
        .threads(evo.threads)
        .build();
    synthesize_in(&ctx, evo, seed)
}

/// Runs the flow on a caller-supplied (full-tier) context, so callers
/// that already hold the analyses — e.g. to share the separation oracle
/// with defect enumeration — do not pay for a second build.
///
/// # Panics
///
/// Panics if `ctx` was built below
/// [`AnalysisTier::Separation`](crate::AnalysisTier::Separation).
#[must_use]
pub fn synthesize_in(ctx: &EvalContext<'_>, evo: &EvolutionConfig, seed: u64) -> SynthesisResult {
    let outcome = evolution::optimize(ctx, evo, seed);
    let eval = Evaluated::new(ctx, outcome.best.clone());
    let report = report_for(&eval);
    SynthesisResult {
        partition: outcome.best,
        report,
        log: outcome.log,
        evaluations: outcome.evaluations,
    }
}

/// Side-by-side evolution vs §5-standard comparison at equal module count
/// (the Table 1 experiment).
#[derive(Debug, Clone)]
pub struct Comparison {
    /// Evolution result.
    pub evolution: SynthesisResult,
    /// Standard-partitioning report at the same module sizes.
    pub standard: SynthesisReport,
    /// Standard partition itself.
    pub standard_partition: Partition,
}

/// Runs both methods; the standard baseline receives the evolution
/// result's module sizes, exactly as §5 prescribes.
#[must_use]
pub fn compare_standard(
    netlist: &Netlist,
    library: &Library,
    config: &PartitionConfig,
    evo: &EvolutionConfig,
    seed: u64,
) -> Comparison {
    let ctx = EvalContext::builder(netlist, library, config.clone())
        .threads(evo.threads)
        .build();
    let evolution = synthesize_in(&ctx, evo, seed);

    // Same module *count* as the evolution result, balanced sizes — the
    // electrically determined size of §5 ("we take the numbers obtained by
    // the evolution based algorithm").
    let sizes = standard::equal_sizes(netlist.gate_count(), evolution.partition.module_count());
    let std_p = standard::standard_partition(&ctx, &sizes);
    let std_eval = Evaluated::new(&ctx, std_p.clone());
    let std_report = report_for(&std_eval);

    Comparison {
        evolution,
        standard: std_report,
        standard_partition: std_p,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iddq_netlist::data;

    #[test]
    fn c17_flow_end_to_end() {
        let nl = data::c17();
        let lib = Library::generic_1um();
        let cfg = PartitionConfig::paper_default();
        let r = synthesize(&nl, &lib, &cfg, 7);
        assert!(r.report.feasible);
        assert_eq!(r.report.gates, 6);
        assert_eq!(r.report.circuit, "c17");
        assert!(r.report.test_time_ps > 0.0);
        for m in &r.report.modules {
            assert!(m.discriminability >= cfg.d_min);
            assert!(m.rs_ohm.is_some());
        }
    }

    #[test]
    fn comparison_produces_equal_module_counts() {
        let nl = data::ripple_adder(20);
        let lib = Library::generic_1um();
        let cfg = PartitionConfig::paper_default();
        let evo = crate::evolution::EvolutionConfig {
            generations: 40,
            ..Default::default()
        };
        let cmp = compare_standard(&nl, &lib, &cfg, &evo, 5);
        assert_eq!(
            cmp.evolution.report.modules.len(),
            cmp.standard.modules.len()
        );
    }

    #[test]
    fn report_serializes_to_json() {
        let nl = data::c17();
        let lib = Library::generic_1um();
        let cfg = PartitionConfig::paper_default();
        let r = synthesize(&nl, &lib, &cfg, 1);
        // serde round-trip via the Serialize impl (serde_json lives in the
        // bench crate; here a token check that the derives compile and the
        // data model is self-consistent).
        let cloned = r.report.clone();
        assert_eq!(cloned, r.report);
    }
}
