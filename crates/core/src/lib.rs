//! The paper's contribution: partitioning a CMOS circuit into BIC-sensed
//! modules for IDDQ testability.
//!
//! The **PART-IDDQ** problem (paper §2): find a partition `Π* = {M_1, …,
//! M_K}` of the gates that satisfies
//!
//! * *discriminability* — `d(M_i) = I_DDQ,th / I_DDQ,nd,i ≥ d` for every
//!   module (typically `d = 10`), and
//! * *virtual-rail perturbation* — `R_s,i · î_DD,max,i ≤ r*` for a
//!   realizable bypass device,
//!
//! while minimizing the weighted cost
//!
//! ```text
//! C(Π) = α₁·c₁ + α₂·c₂ + α₃·c₃ + α₄·c₄ + α₅·c₅
//!        (area)  (delay) (wiring) (test time) (module count)
//! ```
//!
//! The problem is NP-hard; the paper optimizes it with an evolution
//! strategy (μ parents, λ children each, χ Monte-Carlo descendants,
//! maximum lifetime o, adaptive mutation width m with variance ε).
//!
//! Module map:
//!
//! * [`config`] — weights and parameters (paper defaults included),
//! * [`context`] — one-time analysis of a netlist + library
//!   (transition-time sets, separation analyses, nominal timing), built
//!   flat, tiered ([`AnalysisTier`]) and optionally parallel via
//!   [`EvalContextBuilder`],
//! * [`partition`] — the plain partition data type,
//! * [`evaluator`] — incremental cost evaluation ([`Evaluated`]),
//! * [`resynth`] — structure-patched cost evaluation ([`ResynthEval`]):
//!   resynthesis candidates scored by patch apply/rollback on one
//!   persistent evaluation instead of netlist rebuilds,
//! * [`constraints`] — the feasibility function `r(Π)`,
//! * [`start`] — §4.2 chain-grown start partitions,
//! * [`evolution`] — §4 the evolution strategy,
//! * [`optimizers`] — simulated-annealing / greedy baselines for
//!   ablation (the alternatives §4 lists),
//! * [`standard`] — §5 the straightforward baseline partitioner,
//! * [`flow`] — end-to-end synthesis entry points and reporting.
//!
//! # Failure semantics
//!
//! The searches are budget-aware: [`evolution::optimize_with_control`]
//! (and the separation-oracle build behind
//! [`EvalContextBuilder`]) accept an [`iddq_control::RunControl`] and
//! return an [`iddq_control::Outcome`]. The evolution loop checks its
//! control at *generation boundaries* and charges one quota unit per
//! descendant scored; on a stop it returns the best individual found so
//! far as [`iddq_control::Outcome::Partial`] with `coverage` =
//! generations run / generations requested. Scoring chunks run under
//! `catch_unwind`: a panicking chunk forfeits its descendants for that
//! generation and stops the search with
//! [`iddq_control::StopReason::WorkerPanicked`] after the survivors are
//! selected, so a poisoned worker can never corrupt the population. A
//! partially built separation oracle keeps unbuilt rows empty, which
//! saturates their distances at ρ — the sound, pessimistic default.
//!
//! # Quickstart
//!
//! ```rust
//! use iddq_celllib::Library;
//! use iddq_core::{config::PartitionConfig, flow};
//! use iddq_netlist::data;
//!
//! let c17 = data::c17();
//! let lib = Library::generic_1um();
//! let cfg = PartitionConfig::paper_default();
//! let result = flow::synthesize(&c17, &lib, &cfg, 42);
//! assert!(result.report.feasible);
//! assert!(result.report.modules.len() >= 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod config;
pub mod constraints;
pub mod context;
pub mod cost;
pub mod evaluator;
pub mod evolution;
pub mod flow;
pub mod optimizers;
pub mod partition;
pub mod resynth;
pub mod standard;
pub mod start;

pub use config::{PartitionConfig, Weights};
pub use context::{plan_tier, AnalysisTier, EvalContext, EvalContextBuilder, TierBudget, TierPlan};
pub use cost::CostBreakdown;
pub use evaluator::Evaluated;
pub use partition::Partition;
pub use resynth::ResynthEval;
