//! Alternative optimizers for PART-IDDQ.
//!
//! §4 of the paper motivates the evolution strategy by noting that "a
//! variety of algorithms has been proposed for such kind of problems
//! (force-driven, simulated annealing, Monte Carlo, genetic, e.g.)". This
//! module implements the two classic baselines from that list over the
//! *same* incremental evaluator and the same neighbourhood moves, so the
//! optimizer choice can be ablated cleanly:
//!
//! * [`simulated_annealing`] — Metropolis acceptance with geometric
//!   cooling,
//! * [`greedy_local_search`] — first-improvement hill climbing with
//!   random restarts (degenerates to the pure Monte-Carlo-free limit of
//!   the evolution strategy).
//!
//! Both start from the same §4.2 chain partitions as the evolution
//! strategy. The `optimizer_compare` binary in `iddq-bench` runs the
//! head-to-head.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::context::EvalContext;
use crate::evaluator::Evaluated;
use crate::partition::Partition;
use crate::start;

/// Result of a baseline optimizer run.
#[derive(Debug, Clone)]
pub struct OptimizerOutcome {
    /// Best partition found.
    pub best: Partition,
    /// Its weighted cost.
    pub best_cost: f64,
    /// Partitions evaluated.
    pub evaluations: usize,
}

/// One random neighbourhood move, shared by all optimizers: with
/// probability `mc_prob` a high-variance Monte-Carlo move (random gates of
/// a random module to a random module), otherwise a §4.2 boundary move.
/// Returns `false` if no move was possible (single-module partition).
// The representative gate is re-resolved through `module_of` after
// every move precisely because indices shift; an unassigned gate
// would mean the partition lost a gate — an invariant, not an input.
#[allow(clippy::expect_used)]
fn random_move(eval: &mut Evaluated<'_>, mc_prob: f64, rng: &mut SmallRng) -> bool {
    let k = eval.partition().module_count();
    if k < 2 {
        return false;
    }
    if rng.gen_bool(mc_prob) {
        // Monte-Carlo: a random run of gates from one module to another.
        let source = rng.gen_range(0..k);
        let mut target = rng.gen_range(0..k - 1);
        if target >= source {
            target += 1;
        }
        let size = eval.partition().module(source).len();
        let count = rng.gen_range(1..=size.min(8));
        // Module indices shift when the source empties (swap-remove), so
        // track the target through a representative gate and stop as soon
        // as a module disappears.
        let target_rep = eval.partition().module(target)[0];
        for _ in 0..count {
            let t = eval
                .partition()
                .module_of(target_rep)
                .expect("representative stays assigned");
            if t == source || t >= eval.partition().module_count() {
                break;
            }
            let pool = eval.partition().module(source);
            if pool.is_empty() {
                break;
            }
            let gate = pool[rng.gen_range(0..pool.len())];
            let outcome = eval.move_gate(gate, t);
            if outcome.removed_module.is_some() {
                break;
            }
        }
        true
    } else {
        // Boundary move.
        let m = rng.gen_range(0..k);
        let boundary = eval.boundary_gates(m);
        if boundary.is_empty() {
            return false;
        }
        let gate = boundary[rng.gen_range(0..boundary.len())];
        let targets = eval.connected_modules(gate);
        if targets.is_empty() {
            return false;
        }
        let target = targets[rng.gen_range(0..targets.len())];
        eval.move_gate(gate, target);
        true
    }
}

/// Simulated-annealing parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct AnnealingConfig {
    /// Initial temperature (in cost units). Choose around the typical
    /// cost delta of a single move; [`AnnealingConfig::default`] works for
    /// the paper's §5.1 weights.
    pub t_initial: f64,
    /// Geometric cooling factor per temperature step.
    pub alpha: f64,
    /// Moves attempted per temperature step.
    pub moves_per_temperature: usize,
    /// Stop when the temperature falls below this.
    pub t_final: f64,
    /// Probability of a Monte-Carlo (vs boundary) move.
    pub mc_prob: f64,
}

impl Default for AnnealingConfig {
    fn default() -> Self {
        AnnealingConfig {
            t_initial: 200.0,
            alpha: 0.92,
            moves_per_temperature: 60,
            t_final: 0.5,
            mc_prob: 0.15,
        }
    }
}

/// Classic simulated annealing over the PART-IDDQ neighbourhood.
///
/// # Panics
///
/// Panics if the netlist has no gates or the configuration is degenerate
/// (`alpha` outside `(0, 1)`).
#[must_use]
pub fn simulated_annealing(
    ctx: &EvalContext<'_>,
    config: &AnnealingConfig,
    seed: u64,
) -> OptimizerOutcome {
    assert!(config.alpha > 0.0 && config.alpha < 1.0, "alpha in (0,1)");
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x5a5a);
    let count = start::estimate_module_count(ctx);
    let size = ctx.gates.len().div_ceil(count).max(1);
    let mut current = Evaluated::new(ctx, start::chain_partition(ctx, size, seed));
    let mut current_cost = current.total_cost();
    let mut best = current.partition().clone();
    let mut best_cost = current_cost;
    let mut evaluations = 1usize;

    let mut t = config.t_initial;
    while t > config.t_final {
        for _ in 0..config.moves_per_temperature {
            let mut candidate = current.clone();
            if !random_move(&mut candidate, config.mc_prob, &mut rng) {
                continue;
            }
            let cost = candidate.total_cost();
            evaluations += 1;
            let accept = cost <= current_cost
                || rng.gen_bool(((current_cost - cost) / t).exp().clamp(0.0, 1.0));
            if accept {
                current = candidate;
                current_cost = cost;
                if cost < best_cost {
                    best_cost = cost;
                    best = current.partition().clone();
                }
            }
        }
        t *= config.alpha;
    }
    OptimizerOutcome {
        best,
        best_cost,
        evaluations,
    }
}

/// Greedy first-improvement local search with random restarts.
///
/// Each restart walks from a fresh chain partition, accepting only
/// strictly improving random moves, until `patience` consecutive
/// non-improving proposals.
///
/// # Panics
///
/// Panics if the netlist has no gates or `restarts == 0`.
#[must_use]
// `best` is seeded on the first restart and `restarts >= 1` is the
// documented domain of the function.
#[allow(clippy::expect_used)]
pub fn greedy_local_search(
    ctx: &EvalContext<'_>,
    restarts: usize,
    patience: usize,
    seed: u64,
) -> OptimizerOutcome {
    assert!(restarts > 0, "need at least one restart");
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x6eed);
    let count = start::estimate_module_count(ctx);
    let size = ctx.gates.len().div_ceil(count).max(1);
    let mut best: Option<(f64, Partition)> = None;
    let mut evaluations = 0usize;

    for r in 0..restarts {
        let mut current = Evaluated::new(
            ctx,
            start::chain_partition(ctx, size, seed.wrapping_add(r as u64)),
        );
        let mut current_cost = current.total_cost();
        evaluations += 1;
        let mut stale = 0usize;
        while stale < patience {
            let mut candidate = current.clone();
            if !random_move(&mut candidate, 0.1, &mut rng) {
                break;
            }
            let cost = candidate.total_cost();
            evaluations += 1;
            if cost < current_cost {
                current = candidate;
                current_cost = cost;
                stale = 0;
            } else {
                stale += 1;
            }
        }
        if best
            .as_ref()
            .map(|(c, _)| current_cost < *c)
            .unwrap_or(true)
        {
            best = Some((current_cost, current.partition().clone()));
        }
    }
    let (best_cost, best) = best.expect("restarts > 0");
    OptimizerOutcome {
        best,
        best_cost,
        evaluations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PartitionConfig;
    use iddq_celllib::Library;
    use iddq_netlist::data;

    fn test_library() -> &'static Library {
        static LIB: std::sync::OnceLock<Library> = std::sync::OnceLock::new();
        LIB.get_or_init(Library::generic_1um)
    }

    fn ctx_of(nl: &iddq_netlist::Netlist) -> EvalContext<'_> {
        EvalContext::new(nl, test_library(), PartitionConfig::paper_default())
    }

    fn quick_sa() -> AnnealingConfig {
        AnnealingConfig {
            t_initial: 100.0,
            alpha: 0.85,
            moves_per_temperature: 20,
            t_final: 1.0,
            ..Default::default()
        }
    }

    #[test]
    fn annealing_produces_valid_feasible_partition() {
        let nl = data::ripple_adder(12);
        let ctx = ctx_of(&nl);
        let out = simulated_annealing(&ctx, &quick_sa(), 1);
        out.best.validate(&nl).unwrap();
        assert!(out.best_cost.is_finite());
        assert!(out.evaluations > 10);
    }

    #[test]
    fn annealing_improves_over_start() {
        let nl = data::ripple_adder(16);
        let ctx = ctx_of(&nl);
        let count = start::estimate_module_count(&ctx);
        let size = ctx.gates.len().div_ceil(count).max(1);
        let start_cost = Evaluated::new(&ctx, start::chain_partition(&ctx, size, 2)).total_cost();
        let out = simulated_annealing(&ctx, &quick_sa(), 2);
        assert!(out.best_cost <= start_cost);
    }

    #[test]
    fn greedy_produces_valid_partition_and_improves() {
        let nl = data::ripple_adder(12);
        let ctx = ctx_of(&nl);
        let count = start::estimate_module_count(&ctx);
        let size = ctx.gates.len().div_ceil(count).max(1);
        let start_cost = Evaluated::new(&ctx, start::chain_partition(&ctx, size, 3)).total_cost();
        let out = greedy_local_search(&ctx, 3, 40, 3);
        out.best.validate(&nl).unwrap();
        assert!(out.best_cost <= start_cost);
    }

    #[test]
    fn both_are_deterministic() {
        let nl = data::ripple_adder(8);
        let ctx = ctx_of(&nl);
        let a = simulated_annealing(&ctx, &quick_sa(), 9);
        let b = simulated_annealing(&ctx, &quick_sa(), 9);
        assert_eq!(a.best, b.best);
        let g1 = greedy_local_search(&ctx, 2, 20, 9);
        let g2 = greedy_local_search(&ctx, 2, 20, 9);
        assert_eq!(g1.best, g2.best);
    }

    #[test]
    fn single_gate_module_handles_degenerate_moves() {
        // Tiny circuit: moves may be impossible; must not panic.
        let nl = data::c17();
        let ctx = ctx_of(&nl);
        let out = greedy_local_search(&ctx, 2, 10, 0);
        out.best.validate(&nl).unwrap();
    }

    #[test]
    #[should_panic(expected = "alpha in (0,1)")]
    fn bad_alpha_panics() {
        let nl = data::c17();
        let ctx = ctx_of(&nl);
        let cfg = AnnealingConfig {
            alpha: 1.5,
            ..Default::default()
        };
        let _ = simulated_annealing(&ctx, &cfg, 0);
    }
}
