//! The plain partition data type `Π = {M₁, …, M_K}`.

use std::fmt;

use iddq_netlist::{Netlist, NodeId};

/// Marker for nodes outside any module (primary inputs).
pub const NO_MODULE: u32 = u32::MAX;

/// A partition of the netlist's gates into disjoint modules.
///
/// Invariants (checked by [`Partition::validate`], maintained by the
/// mutation operations):
///
/// * every gate belongs to exactly one module,
/// * primary inputs belong to none,
/// * `module_of` and `modules` agree,
/// * no module is empty (empty modules are dropped, as in the paper's
///   Monte-Carlo step: "if all gates of `M` are moved, this module is
///   deleted").
///
/// # Example
///
/// ```rust
/// use iddq_core::Partition;
/// use iddq_netlist::data;
///
/// let c17 = data::c17();
/// let gs = data::c17_paper_gates(&c17);
/// // The paper's optimum: {(g1,g3,g5), (g2,g4,g6)}.
/// let p = Partition::from_groups(&c17, vec![
///     vec![gs[0], gs[2], gs[4]],
///     vec![gs[1], gs[3], gs[5]],
/// ]).unwrap();
/// assert_eq!(p.module_count(), 2);
/// assert_eq!(p.module_of(gs[2]), Some(0));
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct Partition {
    module_of: Vec<u32>,
    modules: Vec<Vec<NodeId>>,
}

/// Errors from partition construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PartitionError {
    /// A gate appears in more than one group.
    Duplicated(NodeId),
    /// A gate is missing from every group.
    Uncovered(NodeId),
    /// A group references a primary input.
    InputInGroup(NodeId),
    /// A group is empty.
    EmptyGroup,
}

impl fmt::Display for PartitionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PartitionError::Duplicated(g) => write!(f, "gate {g} assigned twice"),
            PartitionError::Uncovered(g) => write!(f, "gate {g} not covered by any module"),
            PartitionError::InputInGroup(g) => write!(f, "primary input {g} listed in a module"),
            PartitionError::EmptyGroup => write!(f, "empty module in group list"),
        }
    }
}

impl std::error::Error for PartitionError {}

impl Partition {
    /// Builds a partition from explicit gate groups.
    ///
    /// # Errors
    ///
    /// Returns a [`PartitionError`] if the groups are not a disjoint,
    /// exhaustive, input-free cover of the gates.
    pub fn from_groups(
        netlist: &Netlist,
        groups: Vec<Vec<NodeId>>,
    ) -> Result<Self, PartitionError> {
        let mut module_of = vec![NO_MODULE; netlist.node_count()];
        for (mi, group) in groups.iter().enumerate() {
            if group.is_empty() {
                return Err(PartitionError::EmptyGroup);
            }
            for &g in group {
                if !netlist.is_gate(g) {
                    return Err(PartitionError::InputInGroup(g));
                }
                if module_of[g.index()] != NO_MODULE {
                    return Err(PartitionError::Duplicated(g));
                }
                module_of[g.index()] = mi as u32;
            }
        }
        for g in netlist.gate_ids() {
            if module_of[g.index()] == NO_MODULE {
                return Err(PartitionError::Uncovered(g));
            }
        }
        Ok(Partition {
            module_of,
            modules: groups,
        })
    }

    /// The trivial single-module partition.
    ///
    /// # Panics
    ///
    /// Panics if the netlist has no gates.
    #[must_use]
    // A single group holding every gate exactly once is a valid
    // cover by construction.
    #[allow(clippy::expect_used)]
    pub fn single_module(netlist: &Netlist) -> Self {
        let gates: Vec<NodeId> = netlist.gate_ids().collect();
        assert!(!gates.is_empty(), "netlist has no gates");
        Partition::from_groups(netlist, vec![gates]).expect("single cover is valid")
    }

    /// Number of (non-empty) modules `K`.
    #[must_use]
    pub fn module_count(&self) -> usize {
        self.modules.len()
    }

    /// The gates of module `m`.
    ///
    /// # Panics
    ///
    /// Panics if `m` is out of range.
    #[must_use]
    pub fn module(&self, m: usize) -> &[NodeId] {
        &self.modules[m]
    }

    /// All modules.
    #[must_use]
    pub fn modules(&self) -> &[Vec<NodeId>] {
        &self.modules
    }

    /// The module index of a gate (`None` for primary inputs).
    #[must_use]
    pub fn module_of(&self, id: NodeId) -> Option<usize> {
        match self.module_of[id.index()] {
            NO_MODULE => None,
            m => Some(m as usize),
        }
    }

    /// Dense assignment vector (one entry per node, [`NO_MODULE`] for
    /// primary inputs) — the representation `iddq-logicsim` consumes.
    #[must_use]
    pub fn assignment(&self) -> &[u32] {
        &self.module_of
    }

    /// Moves `gate` into module `target`, dropping its old module if it
    /// becomes empty. Returns the old module index.
    ///
    /// When a module is dropped, the *last* module is renumbered into its
    /// slot (swap-remove semantics); callers tracking module indices must
    /// use the returned [`MoveOutcome`].
    ///
    /// # Panics
    ///
    /// Panics if `gate` is a primary input or `target` is out of range.
    pub fn move_gate(&mut self, gate: NodeId, target: usize) -> MoveOutcome {
        self.move_gate_undoable(gate, target).0
    }

    /// [`Partition::move_gate`] that additionally returns an exact undo
    /// record for [`Partition::undo_move`].
    ///
    /// # Panics
    ///
    /// As [`Partition::move_gate`].
    // The module lists mirror `module_of` on every mutation; a
    // missing entry is a bug in this struct.
    #[allow(clippy::expect_used)]
    pub fn move_gate_undoable(&mut self, gate: NodeId, target: usize) -> (MoveOutcome, MoveUndo) {
        let source = self.module_of[gate.index()];
        assert!(source != NO_MODULE, "cannot move a primary input");
        assert!(target < self.modules.len(), "target module out of range");
        let source = source as usize;
        if source == target {
            let outcome = MoveOutcome {
                source,
                removed_module: None,
            };
            return (
                outcome,
                MoveUndo {
                    gate,
                    source,
                    source_pos: 0,
                    target,
                    noop: true,
                    removal: None,
                },
            );
        }
        let pos = self.modules[source]
            .iter()
            .position(|&g| g == gate)
            .expect("module lists consistent with assignment");
        self.modules[source].swap_remove(pos);
        self.modules[target].push(gate);
        self.module_of[gate.index()] = target as u32;

        let removal = if self.modules[source].is_empty() {
            let last = self.modules.len() - 1;
            self.modules.swap_remove(source);
            if source != last {
                // The old `last` now lives at `source`: renumber its gates.
                for &g in &self.modules[source] {
                    self.module_of[g.index()] = source as u32;
                }
            }
            Some(ModuleRemoval {
                removed: source,
                moved_from: last,
            })
        } else {
            None
        };
        (
            MoveOutcome {
                source,
                removed_module: removal,
            },
            MoveUndo {
                gate,
                source,
                source_pos: pos,
                target,
                noop: false,
                removal,
            },
        )
    }

    /// Exactly reverts one [`Partition::move_gate_undoable`], including
    /// gate-list order and module renumbering.
    ///
    /// Undo records must be applied in strict reverse order of the moves
    /// they came from: each undo assumes the partition is in the state
    /// immediately following its move.
    pub fn undo_move(&mut self, undo: &MoveUndo) {
        if undo.noop {
            return;
        }
        // 1. Re-create the emptied source module, pushing the module that
        //    was swapped into its slot back to the end.
        if let Some(removal) = undo.removal {
            if removal.removed == removal.moved_from {
                self.modules.push(Vec::new());
            } else {
                let displaced = std::mem::take(&mut self.modules[removal.removed]);
                self.modules.push(displaced);
                for &g in &self.modules[removal.moved_from] {
                    self.module_of[g.index()] = removal.moved_from as u32;
                }
            }
        }
        // 2. The gate is the most recent push into the target module.
        let popped = self.modules[undo.target].pop();
        debug_assert_eq!(popped, Some(undo.gate), "undo out of order");
        // 3. Restore the gate at its exact old position (inverting the
        //    swap_remove: the displaced old-last element returns to the
        //    end).
        let src = &mut self.modules[undo.source];
        src.push(undo.gate);
        let last = src.len() - 1;
        src.swap(undo.source_pos, last);
        self.module_of[undo.gate.index()] = undo.source as u32;
    }

    /// Checks all structural invariants against `netlist`.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant.
    pub fn validate(&self, netlist: &Netlist) -> Result<(), PartitionError> {
        Partition::from_groups(netlist, self.modules.clone()).map(|_| ())
    }

    /// Sizes of all modules (handy for balance assertions in tests).
    #[must_use]
    pub fn module_sizes(&self) -> Vec<usize> {
        self.modules.iter().map(Vec::len).collect()
    }
}

/// Exact inverse of one gate move (see [`Partition::undo_move`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MoveUndo {
    gate: NodeId,
    /// Module the gate came from.
    source: usize,
    /// Exact position of the gate inside the source gate list.
    source_pos: usize,
    /// Module the gate went to.
    target: usize,
    /// Source equalled target: nothing changed.
    noop: bool,
    removal: Option<ModuleRemoval>,
}

impl MoveUndo {
    /// Whether the move removed (emptied) its source module.
    #[must_use]
    pub fn removed_module(&self) -> Option<ModuleRemoval> {
        self.removal
    }
}

/// Result of a [`Partition::move_gate`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MoveOutcome {
    /// Module the gate came from (index *before* any removal).
    pub source: usize,
    /// Set when the source module became empty and was removed.
    pub removed_module: Option<ModuleRemoval>,
}

/// Renumbering information after an empty module was dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModuleRemoval {
    /// Index the empty module occupied.
    pub removed: usize,
    /// Index the (former) last module moved from — it now occupies
    /// `removed`. Equal to `removed` when the last module itself emptied.
    pub moved_from: usize,
}

impl fmt::Debug for Partition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Partition")
            .field("modules", &self.modules)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iddq_netlist::data;

    fn c17_halves() -> (iddq_netlist::Netlist, Partition) {
        let nl = data::c17();
        let gs = data::c17_paper_gates(&nl);
        let p = Partition::from_groups(
            &nl,
            vec![vec![gs[0], gs[2], gs[4]], vec![gs[1], gs[3], gs[5]]],
        )
        .unwrap();
        (nl, p)
    }

    #[test]
    fn from_groups_valid() {
        let (nl, p) = c17_halves();
        assert_eq!(p.module_count(), 2);
        p.validate(&nl).unwrap();
        assert_eq!(p.module_sizes(), vec![3, 3]);
    }

    #[test]
    fn duplicate_gate_rejected() {
        let nl = data::c17();
        let gs = data::c17_paper_gates(&nl);
        let err = Partition::from_groups(&nl, vec![vec![gs[0]], vec![gs[0]]]).unwrap_err();
        assert_eq!(err, PartitionError::Duplicated(gs[0]));
    }

    #[test]
    fn uncovered_gate_rejected() {
        let nl = data::c17();
        let gs = data::c17_paper_gates(&nl);
        let err =
            Partition::from_groups(&nl, vec![vec![gs[0], gs[1], gs[2], gs[3], gs[4]]]).unwrap_err();
        assert_eq!(err, PartitionError::Uncovered(gs[5]));
    }

    #[test]
    fn input_in_group_rejected() {
        let nl = data::c17();
        let pi = nl.inputs()[0];
        let err = Partition::from_groups(&nl, vec![vec![pi]]).unwrap_err();
        assert_eq!(err, PartitionError::InputInGroup(pi));
    }

    #[test]
    fn empty_group_rejected() {
        let nl = data::c17();
        let err = Partition::from_groups(&nl, vec![vec![]]).unwrap_err();
        assert_eq!(err, PartitionError::EmptyGroup);
    }

    #[test]
    fn move_gate_updates_both_views() {
        let (nl, mut p) = c17_halves();
        let gs = data::c17_paper_gates(&nl);
        let out = p.move_gate(gs[0], 1);
        assert_eq!(out.source, 0);
        assert!(out.removed_module.is_none());
        assert_eq!(p.module_of(gs[0]), Some(1));
        assert_eq!(p.module_sizes(), vec![2, 4]);
        p.validate(&nl).unwrap();
    }

    #[test]
    fn emptying_a_module_removes_it() {
        let (nl, mut p) = c17_halves();
        let gs = data::c17_paper_gates(&nl);
        p.move_gate(gs[0], 1);
        p.move_gate(gs[2], 1);
        let out = p.move_gate(gs[4], 1);
        assert!(out.removed_module.is_some());
        assert_eq!(p.module_count(), 1);
        p.validate(&nl).unwrap();
        // All six gates in the surviving module.
        assert_eq!(p.module_sizes(), vec![6]);
    }

    #[test]
    fn swap_remove_renumbers_last_module() {
        let nl = data::c17();
        let gs = data::c17_paper_gates(&nl);
        let mut p = Partition::from_groups(
            &nl,
            vec![vec![gs[0], gs[1]], vec![gs[2]], vec![gs[3], gs[4], gs[5]]],
        )
        .unwrap();
        // Empty module 1: gs[2] moves to module 0; module 2 renumbers to 1.
        let out = p.move_gate(gs[2], 0);
        let removal = out.removed_module.unwrap();
        assert_eq!(removal.removed, 1);
        assert_eq!(removal.moved_from, 2);
        assert_eq!(p.module_of(gs[3]), Some(1));
        p.validate(&nl).unwrap();
    }

    #[test]
    fn move_to_same_module_is_noop() {
        let (nl, mut p) = c17_halves();
        let gs = data::c17_paper_gates(&nl);
        let before = p.clone();
        p.move_gate(gs[0], 0);
        assert_eq!(p, before);
        p.validate(&nl).unwrap();
    }

    #[test]
    fn single_module_covers_everything() {
        let nl = data::ripple_adder(3);
        let p = Partition::single_module(&nl);
        assert_eq!(p.module_count(), 1);
        assert_eq!(p.module(0).len(), nl.gate_count());
        p.validate(&nl).unwrap();
    }

    #[test]
    fn undo_move_restores_exact_state() {
        let (nl, mut p) = c17_halves();
        let gs = data::c17_paper_gates(&nl);
        let before = p.clone();
        let (_, undo) = p.move_gate_undoable(gs[0], 1);
        assert_ne!(p, before);
        p.undo_move(&undo);
        assert_eq!(p, before);
        p.validate(&nl).unwrap();
    }

    #[test]
    fn undo_move_restores_through_module_removal() {
        let nl = data::c17();
        let gs = data::c17_paper_gates(&nl);
        let mut p = Partition::from_groups(
            &nl,
            vec![vec![gs[0], gs[1]], vec![gs[2]], vec![gs[3], gs[4], gs[5]]],
        )
        .unwrap();
        let before = p.clone();
        // Empties module 1; module 2 renumbers into its slot.
        let (out, undo) = p.move_gate_undoable(gs[2], 0);
        assert!(out.removed_module.is_some());
        assert_eq!(undo.removed_module(), out.removed_module);
        p.undo_move(&undo);
        assert_eq!(p, before);
        p.validate(&nl).unwrap();
    }

    #[test]
    fn undo_move_sequence_in_reverse_order() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let nl = data::ripple_adder(6);
        let gates: Vec<NodeId> = nl.gate_ids().collect();
        let third = gates.len() / 3;
        let mut p = Partition::from_groups(
            &nl,
            vec![
                gates[..third].to_vec(),
                gates[third..2 * third].to_vec(),
                gates[2 * third..].to_vec(),
            ],
        )
        .unwrap();
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..50 {
            let before = p.clone();
            let mut undos = Vec::new();
            for _ in 0..rng.gen_range(1..6) {
                let g = gates[rng.gen_range(0..gates.len())];
                let t = rng.gen_range(0..p.module_count());
                undos.push(p.move_gate_undoable(g, t).1);
            }
            for u in undos.iter().rev() {
                p.undo_move(u);
            }
            assert_eq!(p, before);
            p.validate(&nl).unwrap();
        }
    }

    #[test]
    fn undo_of_last_module_self_removal() {
        // Source is the *last* module: removal.removed == moved_from.
        let nl = data::c17();
        let gs = data::c17_paper_gates(&nl);
        let mut p = Partition::from_groups(
            &nl,
            vec![vec![gs[0], gs[1], gs[2], gs[3], gs[4]], vec![gs[5]]],
        )
        .unwrap();
        let before = p.clone();
        let (out, undo) = p.move_gate_undoable(gs[5], 0);
        let removal = out.removed_module.unwrap();
        assert_eq!(removal.removed, removal.moved_from);
        p.undo_move(&undo);
        assert_eq!(p, before);
        p.validate(&nl).unwrap();
    }

    #[test]
    fn assignment_vector_matches() {
        let (nl, p) = c17_halves();
        for g in nl.gate_ids() {
            assert_eq!(p.assignment()[g.index()] as usize, p.module_of(g).unwrap());
        }
        for &i in nl.inputs() {
            assert_eq!(p.assignment()[i.index()], NO_MODULE);
        }
    }
}
