//! Structure-patched cost evaluation — resynthesis candidates scored by
//! patch instead of netlist rebuild.
//!
//! [`crate::Evaluated`] answers *"this partition, but with a gate moved"*
//! incrementally; [`ResynthEval`] answers *"this circuit, but with a
//! region rewritten"*. It owns a mutable mirror of the circuit structure
//! plus every structure-derived quantity the paper's cost function needs —
//! per-gate electrical rows, §3.1 transition-time sets, the §3.3
//! separation neighbour weights, topological levels and the nominal
//! critical path — and a [`Patch`] of gate edits (kind flips, rewires,
//! node insertion/removal, see [`iddq_netlist::patch`]) refreshes only the
//! state the edit actually dirtied:
//!
//! * **electrical rows** — a cell row depends only on `(kind, fan-in
//!   count)`, so edited and inserted gates re-derive their row from the
//!   library and nothing else moves;
//! * **transition times** — recomputed through a level-ordered dirty-cone
//!   walk that stops wherever the recomputed [`TimeSet`] is identical;
//! * **separation** — the single-module separation is maintained through
//!   the identity `S(M) = ρ·|pairs| − Σ_g W(g)/2`, where `W(g)` is the
//!   gate's `ρ − d` neighbour weight: any pair whose bounded distance an
//!   edit can move has both endpoints inside the ρ-ball of the edited
//!   region (every new or vanished ≤ρ-path runs through an edited node),
//!   so only that ball's `W` values are re-derived by bounded BFS;
//! * **levels** — batched re-levelization with atomic cycle rejection,
//!   exactly like the logic-side `DeltaSim`.
//!
//! [`ResynthEval::total_cost`] then assembles the paper's single-module
//! cost (the partition-independent objective `iddq-synth` steers by)
//! through the *same* kernels `Evaluated` uses. The result is bit-exact
//! with the rebuild path — building the patched netlist via
//! [`iddq_netlist::patch::materialize`], running a fresh
//! [`EvalContext::new`] and scoring `Evaluated::new(…, single module)` —
//! because every derived quantity is a pure function of the structure and
//! both paths evaluate it with identical operation order. The proptests in
//! `iddq-synth` pin this equality down to the last bit, and the
//! `resynth_patch` bench section gates the speedup it buys.
//!
//! # Lifecycle
//!
//! [`ResynthEval::apply`] validates and applies a patch atomically (a
//! rejected patch leaves the evaluation untouched), pushes the inverse
//! onto an undo stack; [`ResynthEval::rollback`] re-applies the inverse
//! through the same machinery — since every derived quantity is a pure
//! deterministic function of structure, a rollback restores the
//! evaluation bit-for-bit without snapshots; [`ResynthEval::commit`]
//! makes the applied patches permanent. The candidate-search pattern is
//! apply → score → rollback per candidate, commit for the winner.

use iddq_celllib::NodeTables;
use iddq_netlist::cone::DynamicCones;
use iddq_netlist::patch::{Patch, PatchError, PatchOp};
use iddq_netlist::{CellKind, NodeId, TimeSet};

use crate::context::EvalContext;
use crate::cost::CostBreakdown;
use crate::evaluator::{assemble_cost, degraded_weight, sensor_figures, ModuleStats};

/// One entry of the undo stack: the structural inverse plus snapshots of
/// the derived state the apply overwrote, so a rollback restores instead
/// of recomputing (the probe loops of `iddq-synth` roll back one patch
/// per candidate — making that O(changed) instead of O(dirty-region)
/// roughly halves the scoring cost).
#[derive(Debug)]
struct UndoFrame {
    inverse: Patch,
    /// `(node, previous set)` for every transition-time set the apply
    /// changed or popped, in change order.
    times_log: Vec<(u32, TimeSet)>,
    /// `(gate, previous weight)` for every separation weight the apply
    /// changed or popped.
    w_log: Vec<(u32, u64)>,
    /// `Σ near_w` before the apply.
    sum_w_before: u64,
}

/// Persistent buffers of the region-sized separation refresh (the
/// flat-CSR adjacency snapshot plus the epoch-stamped BFS scratch) —
/// kept on the evaluation so repeated whole-circuit probes reuse the
/// allocations instead of rebuilding them per apply.
#[derive(Debug, Default)]
struct RefreshScratch {
    adj_offsets: Vec<u32>,
    adj_pool: Vec<u32>,
    stamp: Vec<u64>,
    epoch: u64,
    queue: Vec<u32>,
}

/// Work accounting of one [`ResynthEval::apply`] / rollback.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PatchImpact {
    /// Nodes visited by the transition-time dirty-cone walk.
    pub times_visited: usize,
    /// Gates whose separation neighbour weight was re-derived.
    pub separation_recomputed: usize,
}

/// A persistent, structure-patchable single-module cost evaluation (see
/// the [module docs](self)).
///
/// # Example
///
/// ```rust
/// use iddq_celllib::Library;
/// use iddq_core::{config::PartitionConfig, resynth::ResynthEval, EvalContext};
/// use iddq_netlist::patch::{Patch, PatchOp};
/// use iddq_netlist::{data, CellKind};
///
/// let c17 = data::c17();
/// let lib = Library::generic_1um();
/// let ctx = EvalContext::new(&c17, &lib, PartitionConfig::paper_default());
/// let mut eval = ResynthEval::new(&ctx);
/// let base = eval.total_cost();
/// // Score "c17 with gate 22 turned into an AND" without a rebuild.
/// let g22 = c17.find("22").unwrap();
/// eval.apply(&Patch::single(PatchOp::SetKind { gate: g22, kind: CellKind::And }))
///     .unwrap();
/// let _mutated = eval.total_cost();
/// eval.rollback();
/// assert_eq!(eval.total_cost().to_bits(), base.to_bits());
/// ```
#[derive(Debug)]
pub struct ResynthEval<'a> {
    ctx: &'a EvalContext<'a>,
    /// `None` for primary inputs.
    kinds: Vec<Option<CellKind>>,
    /// Levels + fan-in/fanout adjacency + walks (the structure mirror).
    cones: DynamicCones,
    /// Per-node electrical rows, maintained under kind/arity changes.
    tables: NodeTables,
    /// §3.1 transition-time sets, maintained by dirty-cone walks.
    times: Vec<TimeSet>,
    /// Per-gate `Σ (ρ − d)` neighbour weight (0 for primary inputs).
    near_w: Vec<u64>,
    /// `Σ_g near_w[g]` — twice the in-bound pair weight.
    sum_w: u64,
    gate_count: usize,
    outputs: Vec<u32>,
    /// Undo frames (inverse patch + derived-state snapshots), innermost
    /// last.
    undo: Vec<UndoFrame>,
    /// Per-apply change logs, drained into the [`UndoFrame`] on success
    /// and discarded on rejection (the repair pass recomputes instead).
    times_log: Vec<(u32, TimeSet)>,
    w_log: Vec<(u32, u64)>,
    /// Node ids sorted by (level, id) — a topological order over the
    /// current structure, rebuilt lazily.
    order: Vec<u32>,
    order_dirty: bool,
    /// Nominal critical-path delay of the current structure, recomputed
    /// lazily (patches move both delays and paths).
    nominal_delay_ps: f64,
    nominal_dirty: bool,
    // Scoring scratch (reused across `cost` calls).
    hist_cur: Vec<f64>,
    hist_cnt: Vec<u32>,
    weight: Vec<f64>,
    arr: Vec<f64>,
    /// Region-sized separation-refresh scratch (see [`RefreshScratch`]).
    refresh_scratch: RefreshScratch,
}

impl<'a> ResynthEval<'a> {
    /// Mirrors the context's netlist and seeds every derived quantity from
    /// the context's precomputed analyses (no BFS, no sweep).
    ///
    /// The context needs the gate separation table but **not** the full
    /// oracle — an [`crate::context::AnalysisTier::GateSep`] build
    /// suffices and skips most of the analysis-construction cost (the
    /// costs produced on either tier are bit-identical, property-tested).
    ///
    /// # Panics
    ///
    /// Panics if `ctx` was built at the bare `Timing` tier.
    #[must_use]
    pub fn new(ctx: &'a EvalContext<'a>) -> Self {
        let nl = ctx.netlist;
        let kinds: Vec<Option<CellKind>> = nl
            .node_ids()
            .map(|id| nl.node(id).kind().cell_kind())
            .collect();
        let near_w: Vec<u64> = nl
            .node_ids()
            .map(|id| {
                if nl.is_gate(id) {
                    ctx.sep_table().near_weight(id)
                } else {
                    0
                }
            })
            .collect();
        let sum_w = near_w.iter().sum();
        let n = nl.node_count();
        ResynthEval {
            ctx,
            kinds,
            cones: DynamicCones::new(nl),
            tables: ctx.tables.clone(),
            times: ctx.times.clone(),
            near_w,
            sum_w,
            gate_count: ctx.gates.len(),
            outputs: nl.outputs().iter().map(|o| o.0).collect(),
            undo: Vec::new(),
            times_log: Vec::new(),
            w_log: Vec::new(),
            order: Vec::new(),
            order_dirty: true,
            nominal_delay_ps: ctx.nominal_delay_ps,
            nominal_dirty: false,
            hist_cur: Vec::new(),
            hist_cnt: Vec::new(),
            weight: vec![0.0; n],
            arr: vec![0.0; n],
            refresh_scratch: RefreshScratch::default(),
        }
    }

    /// Current node count (patches grow and shrink it).
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.kinds.len()
    }

    /// Current gate count.
    #[must_use]
    pub fn gate_count(&self) -> usize {
        self.gate_count
    }

    /// Number of applied-but-uncommitted patches on the undo stack.
    #[must_use]
    pub fn pending_patches(&self) -> usize {
        self.undo.len()
    }

    /// Applies a patch: structural edit, batched re-levelization, then a
    /// refresh of the dirtied derived state. The inverse lands on the
    /// undo stack.
    ///
    /// # Errors
    ///
    /// Returns a [`PatchError`] (evaluation unchanged) when an op targets
    /// a non-gate, uses an illegal arity or id, would create a cycle, or
    /// is a [`PatchOp::SetForce`] (no cost semantics).
    pub fn apply(&mut self, patch: &Patch) -> Result<PatchImpact, PatchError> {
        let sum_w_before = self.sum_w;
        self.times_log.clear();
        self.w_log.clear();
        let (inverse, impact) = self.apply_inner(patch)?;
        self.undo.push(UndoFrame {
            inverse,
            times_log: std::mem::take(&mut self.times_log),
            w_log: std::mem::take(&mut self.w_log),
            sum_w_before,
        });
        Ok(impact)
    }

    /// Rolls the most recent uncommitted patch back: the structural
    /// inverse is re-applied and the derived state is *restored* from the
    /// frame's snapshots (bit-identical to the state before the matching
    /// apply, and O(changed entries) instead of a dirty-region
    /// recomputation).
    ///
    /// # Panics
    ///
    /// Panics if there is no patch to roll back.
    // Documented panic contract (empty undo stack); the recorded
    // inverse restores the exact prior structure by construction.
    #[allow(clippy::expect_used)]
    pub fn rollback(&mut self) -> PatchImpact {
        let frame = self.undo.pop().expect("no patch to roll back");
        self.times_log.clear();
        self.w_log.clear();
        self.apply_structure(&frame.inverse)
            .unwrap_or_else(|_| panic!("inverse of an accepted patch is always valid"));
        let relevel_seeds: Vec<u32> = frame
            .inverse
            .ops
            .iter()
            .filter(|op| matches!(op, PatchOp::SetFanin { .. }))
            .map(|op| op.gate().0)
            .filter(|&g| (g as usize) < self.kinds.len())
            .filter(|&g| self.cones.local_level(g as usize) != self.cones.level(g as usize))
            .collect();
        if !relevel_seeds.is_empty() {
            self.cones
                .relevel(&relevel_seeds)
                .expect("restoring the original levels cannot fail");
        }
        // Restore snapshots newest-first; entries for nodes the structural
        // revert popped again (insertions of the rolled-back patch) are
        // skipped.
        self.times_log.clear();
        self.w_log.clear();
        let alive = self.kinds.len();
        let mut impact = PatchImpact::default();
        for (i, ts) in frame.times_log.into_iter().rev() {
            if (i as usize) < alive {
                self.times[i as usize] = ts;
                impact.times_visited += 1;
            }
        }
        for (g, w) in frame.w_log.into_iter().rev() {
            if (g as usize) < alive {
                self.near_w[g as usize] = w;
                impact.separation_recomputed += 1;
            }
        }
        self.sum_w = frame.sum_w_before;
        self.order_dirty = true;
        self.nominal_dirty = true;
        impact
    }

    /// Makes all applied patches permanent by clearing the undo stack.
    pub fn commit(&mut self) {
        self.undo.clear();
    }

    fn apply_inner(&mut self, patch: &Patch) -> Result<(Patch, PatchImpact), PatchError> {
        let rho = self.ctx.config.rho;
        // ρ-ball of the adjacency edits over the *pre-patch* graph: every
        // pair whose bounded distance the patch can move has both
        // endpoints in here (or in the post-patch ball computed later).
        let old_seeds: Vec<u32> = patch
            .ops
            .iter()
            .filter(|op| op.changes_adjacency())
            .map(|op| op.gate().0)
            .filter(|&g| (g as usize) < self.kinds.len())
            .collect();
        let old_ball = self
            .cones
            .undirected_ball(&old_seeds, rho.saturating_sub(1));

        let inverse = match self.apply_structure(patch) {
            Ok(inverse) => inverse,
            Err((e, _reverted_prefix)) => {
                // Mid-patch validation failure: the structural prefix was
                // already reverted by `apply_structure`; repair the
                // derived state (deterministic recomputation over the
                // restored structure reproduces the original values).
                self.refresh(patch, &old_ball);
                return Err(e);
            }
        };
        // Batched re-levelization, seeded by the rewired gates whose local
        // level moved (the airtight cycle prune, as in `DeltaSim`).
        let relevel_seeds: Vec<u32> = patch
            .ops
            .iter()
            .filter(|op| matches!(op, PatchOp::SetFanin { .. }))
            .map(|op| op.gate().0)
            .filter(|&g| (g as usize) < self.kinds.len())
            .filter(|&g| self.cones.local_level(g as usize) != self.cones.level(g as usize))
            .collect();
        if !relevel_seeds.is_empty() {
            if let Err(on) = self.cones.relevel(&relevel_seeds) {
                // Cycle: levels untouched (atomic relevel); revert the
                // structural edit and repair derived state.
                self.apply_structure(&inverse)
                    .unwrap_or_else(|_| panic!("re-applying an inverse cannot fail"));
                self.refresh(patch, &old_ball);
                return Err(PatchError::Cycle(NodeId(on)));
            }
        }
        let impact = self.refresh(patch, &old_ball);
        Ok((inverse, impact))
    }

    /// Applies the structural ops in order, returning the inverse patch.
    /// On mid-patch validation failure the already-applied prefix is
    /// reverted (structure only — the caller repairs derived state) and
    /// the inverse of that reverted prefix is returned alongside the
    /// error.
    #[allow(clippy::result_large_err)]
    fn apply_structure(&mut self, patch: &Patch) -> Result<Patch, (PatchError, Patch)> {
        let mut inverse: Vec<PatchOp> = Vec::with_capacity(patch.ops.len());
        for op in &patch.ops {
            if let Err(e) = self.validate_op(op) {
                for inv in inverse.iter().rev() {
                    self.apply_op(inv);
                }
                return Err((e, Patch { ops: inverse }));
            }
            inverse.push(self.apply_op(op));
        }
        inverse.reverse();
        Ok(Patch { ops: inverse })
    }

    fn validate_op(&self, op: &PatchOp) -> Result<(), PatchError> {
        let gate = op.gate();
        let gi = gate.index();
        match op {
            PatchOp::SetForce { .. } => Err(PatchError::Unsupported(
                "value forces have no cost semantics",
            )),
            PatchOp::AddGate { kind, fanin, .. } => {
                let expected = self.kinds.len() as u32;
                if gate.0 != expected {
                    return Err(PatchError::NotAppend { gate, expected });
                }
                if !kind.accepts_fanin(fanin.len()) {
                    return Err(PatchError::BadArity {
                        gate,
                        kind: *kind,
                        got: fanin.len(),
                    });
                }
                for &f in fanin {
                    if f.index() >= self.kinds.len() {
                        return Err(PatchError::UnknownNode(f));
                    }
                }
                Ok(())
            }
            PatchOp::SetKind { kind, .. } => {
                self.gate_kind(gate)?;
                let arity = self.cones.fanin(gi).len();
                if !kind.accepts_fanin(arity) {
                    return Err(PatchError::BadArity {
                        gate,
                        kind: *kind,
                        got: arity,
                    });
                }
                Ok(())
            }
            PatchOp::SetFanin { fanin, .. } => {
                let kind = self.gate_kind(gate)?;
                if !kind.accepts_fanin(fanin.len()) {
                    return Err(PatchError::BadArity {
                        gate,
                        kind,
                        got: fanin.len(),
                    });
                }
                for &f in fanin {
                    if f.index() >= self.kinds.len() {
                        return Err(PatchError::UnknownNode(f));
                    }
                }
                Ok(())
            }
            PatchOp::RemoveGate { .. } => {
                let _ = self.gate_kind(gate)?;
                // A primary output is load-bearing even with no gate
                // consumers: removal would leave a dangling output id.
                if gi + 1 != self.kinds.len()
                    || !self.cones.fanout(gi).is_empty()
                    || self.outputs.contains(&gate.0)
                {
                    return Err(PatchError::NotRemovable(gate));
                }
                Ok(())
            }
        }
    }

    fn gate_kind(&self, gate: NodeId) -> Result<CellKind, PatchError> {
        let gi = gate.index();
        if gi >= self.kinds.len() {
            return Err(PatchError::UnknownNode(gate));
        }
        self.kinds[gi].ok_or(PatchError::NotAGate(gate))
    }

    /// Applies one validated op (structure + electrical row + placeholder
    /// growth of the derived vectors), returning its inverse.
    // Ops reach here only after validation, so gate slots are
    // populated and the parallel arrays stay aligned.
    #[allow(clippy::expect_used)]
    fn apply_op(&mut self, op: &PatchOp) -> PatchOp {
        match op {
            PatchOp::SetKind { gate, kind } => {
                let gi = gate.index();
                let old = self.kinds[gi].expect("validated as gate");
                self.kinds[gi] = Some(*kind);
                self.set_table_row(gi);
                PatchOp::SetKind {
                    gate: *gate,
                    kind: old,
                }
            }
            PatchOp::SetFanin { gate, fanin } => {
                let gi = gate.index();
                let new: Vec<u32> = fanin.iter().map(|f| f.0).collect();
                let old = self.cones.set_fanin(gi, &new);
                if old.len() != new.len() {
                    // The cell row is keyed by (kind, arity).
                    self.set_table_row(gi);
                }
                PatchOp::SetFanin {
                    gate: *gate,
                    fanin: old.into_iter().map(NodeId).collect(),
                }
            }
            PatchOp::AddGate { gate, kind, fanin } => {
                let list: Vec<u32> = fanin.iter().map(|f| f.0).collect();
                self.kinds.push(Some(*kind));
                self.cones.push_node(&list);
                self.push_table_row();
                self.set_table_row(gate.index());
                self.times.push(TimeSet::new());
                self.near_w.push(0);
                self.gate_count += 1;
                self.weight.push(0.0);
                self.arr.push(0.0);
                PatchOp::RemoveGate { gate: *gate }
            }
            PatchOp::RemoveGate { gate } => {
                let kind = self.kinds.pop().flatten().expect("validated gate");
                let fanin = self.cones.pop_node();
                self.pop_table_row();
                let popped_times = self.times.pop().expect("aligned");
                self.times_log.push((gate.0, popped_times));
                // Partner weights in the ball are re-derived by `refresh`;
                // the popped gate's own weight leaves the sum here (and
                // lands in the log so a rollback can restore it).
                let popped_w = self.near_w.pop().expect("aligned");
                self.sum_w -= popped_w;
                self.w_log.push((gate.0, popped_w));
                self.gate_count -= 1;
                self.weight.pop();
                self.arr.pop();
                PatchOp::AddGate {
                    gate: *gate,
                    kind,
                    fanin: fanin.into_iter().map(NodeId).collect(),
                }
            }
            PatchOp::SetForce { .. } => unreachable!("rejected by validation"),
        }
    }

    /// Re-derives the electrical row of gate `i` from the library — the
    /// same lookup [`NodeTables::new`] performs, so rows stay bit-exact
    /// with a rebuilt context.
    // Only called for validated gate indices.
    #[allow(clippy::expect_used)]
    fn set_table_row(&mut self, i: usize) {
        let kind = self.kinds[i].expect("gates only");
        let cell = self.ctx.library.cell(kind, self.cones.fanin(i).len());
        let t = &mut self.tables;
        t.delay_ps[i] = cell.delay_ps;
        t.grid_delay[i] = self.ctx.technology.to_grid(cell.delay_ps);
        t.peak_current_ua[i] = cell.peak_current_ua;
        t.r_on_kohm[i] = cell.r_on_kohm;
        t.c_out_ff[i] = cell.c_out_ff;
        t.c_rail_ff[i] = cell.c_rail_ff;
        t.leakage_na[i] = cell.leakage_na;
        t.area[i] = cell.area;
    }

    fn push_table_row(&mut self) {
        let t = &mut self.tables;
        t.delay_ps.push(0.0);
        t.grid_delay.push(0);
        t.peak_current_ua.push(0.0);
        t.r_on_kohm.push(0.0);
        t.c_out_ff.push(0.0);
        t.c_rail_ff.push(0.0);
        t.leakage_na.push(0.0);
        t.area.push(0.0);
    }

    fn pop_table_row(&mut self) {
        let t = &mut self.tables;
        t.delay_ps.pop();
        t.grid_delay.pop();
        t.peak_current_ua.pop();
        t.r_on_kohm.pop();
        t.c_out_ff.pop();
        t.c_rail_ff.pop();
        t.leakage_na.pop();
        t.area.pop();
    }

    /// Refreshes the structure-derived state the (applied or reverted)
    /// ops may have dirtied: transition-time sets through a dirty-cone
    /// walk, separation neighbour weights through bounded BFS over the
    /// union of the pre- and post-edit ρ-balls, and the lazy
    /// order/nominal-delay flags.
    fn refresh(&mut self, patch: &Patch, old_ball: &[u32]) -> PatchImpact {
        let rho = self.ctx.config.rho;
        let alive = self.kinds.len();
        // --- transition times -------------------------------------------
        let time_seeds: Vec<u32> = patch
            .ops
            .iter()
            .map(|op| op.gate().0)
            .filter(|&g| (g as usize) < alive)
            .collect();
        let ResynthEval {
            ref mut cones,
            ref mut times,
            ref mut times_log,
            ref tables,
            ref kinds,
            ..
        } = *self;
        let times_visited = cones.walker().walk(time_seeds.iter().copied(), |i, fanin| {
            let i = i as usize;
            if kinds[i].is_none() {
                // Primary inputs transition at t = 0, always.
                return false;
            }
            let d = tables.grid_delay[i];
            let mut acc = TimeSet::new();
            for &f in fanin {
                acc.union_with_shifted(&times[f as usize], d);
            }
            if acc == times[i] {
                false
            } else {
                times_log.push((i as u32, std::mem::replace(&mut times[i], acc)));
                true
            }
        });
        // --- separation neighbour weights -------------------------------
        let new_seeds: Vec<u32> = patch
            .ops
            .iter()
            .filter(|op| op.changes_adjacency())
            .map(|op| op.gate().0)
            .filter(|&g| (g as usize) < alive)
            .collect();
        let mut ball = self
            .cones
            .undirected_ball(&new_seeds, rho.saturating_sub(1));
        ball.extend(old_ball.iter().copied().filter(|&g| (g as usize) < alive));
        ball.sort_unstable();
        ball.dedup();
        let ResynthEval {
            ref mut cones,
            ref kinds,
            ref mut near_w,
            ref mut sum_w,
            ref mut w_log,
            ref mut refresh_scratch,
            ..
        } = *self;
        let mut separation_recomputed = 0usize;
        let mut store = |g: u32, w: u64| {
            let old = near_w[g as usize];
            if w != old {
                w_log.push((g, old));
                *sum_w += w;
                *sum_w -= old;
                near_w[g as usize] = w;
            }
        };
        if ball.len() * 8 > alive {
            // Region-sized edit (the whole-circuit candidates of
            // `cost_aware` re-derive nearly every gate): flatten the
            // patched adjacency into one CSR snapshot first, so the
            // per-gate bounded BFS runs over contiguous arrays instead
            // of chasing one heap allocation per neighbour list. The
            // weights are plain sums, so this path is bit-identical to
            // the per-gate walk below. The snapshot content is per-patch
            // (the structure just changed) but the buffers persist on
            // the evaluation, so repeated probes don't reallocate.
            let RefreshScratch {
                ref mut adj_offsets,
                ref mut adj_pool,
                ref mut stamp,
                ref mut epoch,
                ref mut queue,
            } = *refresh_scratch;
            adj_offsets.clear();
            adj_offsets.push(0);
            adj_pool.clear();
            for i in 0..alive {
                adj_pool.extend_from_slice(cones.fanin(i));
                adj_pool.extend_from_slice(cones.fanout(i));
                adj_offsets.push(adj_pool.len() as u32);
            }
            stamp.resize(alive, 0);
            for &g in &ball {
                if kinds[g as usize].is_none() {
                    continue;
                }
                *epoch += 1;
                stamp[g as usize] = *epoch;
                queue.clear();
                queue.push(g);
                let (mut head, mut tail) = (0usize, 1usize);
                let mut d = 0u32;
                let mut w = 0u64;
                while d + 1 < rho && head < tail {
                    d += 1;
                    for k in head..tail {
                        let u = queue[k] as usize;
                        for &v in &adj_pool[adj_offsets[u] as usize..adj_offsets[u + 1] as usize] {
                            if stamp[v as usize] != *epoch {
                                stamp[v as usize] = *epoch;
                                queue.push(v);
                                if kinds[v as usize].is_some() {
                                    w += u64::from(rho - d);
                                }
                            }
                        }
                    }
                    head = tail;
                    tail = queue.len();
                }
                store(g, w);
                separation_recomputed += 1;
            }
        } else {
            for &g in &ball {
                if kinds[g as usize].is_none() {
                    continue;
                }
                let mut w = 0u64;
                cones.bounded_bfs(g, rho.saturating_sub(1), |n, d| {
                    if kinds[n as usize].is_some() {
                        w += u64::from(rho - d);
                    }
                });
                store(g, w);
                separation_recomputed += 1;
            }
        }
        self.order_dirty = true;
        self.nominal_dirty = true;
        PatchImpact {
            times_visited,
            separation_recomputed,
        }
    }

    /// Rebuilds the lazy (level, id)-sorted topological order and the
    /// nominal critical-path delay when stale.
    fn settle_structure(&mut self) {
        if self.order_dirty {
            let n = self.kinds.len();
            self.order = (0..n as u32).collect();
            let cones = &self.cones;
            self.order
                .sort_unstable_by_key(|&i| (cones.level(i as usize), i));
            self.order_dirty = false;
        }
        if self.nominal_dirty {
            for &i in &self.order {
                let i = i as usize;
                let in_max = self
                    .cones
                    .fanin(i)
                    .iter()
                    .map(|&f| self.arr[f as usize])
                    .fold(0.0f64, f64::max);
                self.arr[i] = in_max + self.tables.delay_ps[i];
            }
            self.nominal_delay_ps = self
                .outputs
                .iter()
                .map(|&o| self.arr[o as usize])
                .fold(0.0f64, f64::max);
            self.nominal_dirty = false;
        }
    }

    /// Full cost breakdown of the current (patched) structure as one
    /// module — bit-exact with `Evaluated::new(&EvalContext::new(
    /// materialized, …), single module).cost()`.
    pub fn cost(&mut self) -> CostBreakdown {
        self.settle_structure();
        let n = self.kinds.len();
        // Histogram horizon: one past the largest transition time.
        let horizon = self
            .times
            .iter()
            .filter_map(TimeSet::max)
            .max()
            .map_or(1, |t| t as usize + 1);
        self.hist_cur.clear();
        self.hist_cur.resize(horizon, 0.0);
        self.hist_cnt.clear();
        self.hist_cnt.resize(horizon, 0);
        let mut leakage_na = 0.0f64;
        let mut rail_cap_ff = 0.0f64;
        let mut cell_area = 0.0f64;
        for i in 0..n {
            if self.kinds[i].is_none() {
                continue;
            }
            for t in self.times[i].iter() {
                self.hist_cur[t as usize] += self.tables.peak_current_ua[i];
                self.hist_cnt[t as usize] += 1;
            }
            leakage_na += self.tables.leakage_na[i];
            rail_cap_ff += self.tables.c_rail_ff[i];
            cell_area += self.tables.area[i];
        }
        let pairs = (self.gate_count as u64) * (self.gate_count as u64 - 1) / 2;
        debug_assert_eq!(self.sum_w % 2, 0, "neighbour weights are symmetric");
        let separation = u64::from(self.ctx.config.rho) * pairs - self.sum_w / 2;
        let stats = ModuleStats {
            current_hist: Vec::new(),
            count_hist: Vec::new(),
            peak_current_ua: self.hist_cur.iter().copied().fold(0.0, f64::max),
            peak_activity: self.hist_cnt.iter().copied().max().unwrap_or(0),
            leakage_na,
            rail_cap_ff,
            cell_area,
            separation,
        };
        let sens = sensor_figures(self.ctx, &stats);
        // Degraded longest path over the current structure: one weight
        // pass plus one level-ordered arrival sweep.
        for i in 0..n {
            self.weight[i] = match self.kinds[i] {
                Some(_) => degraded_weight(
                    self.tables.delay_ps[i],
                    self.tables.r_on_kohm[i],
                    self.tables.c_out_ff[i],
                    &stats,
                    &sens,
                ),
                None => 0.0,
            };
        }
        for &i in &self.order {
            let i = i as usize;
            let in_max = self
                .cones
                .fanin(i)
                .iter()
                .map(|&f| self.arr[f as usize])
                .fold(0.0f64, f64::max);
            self.arr[i] = in_max + self.weight[i];
        }
        let dbic_ps = self
            .outputs
            .iter()
            .map(|&o| self.arr[o as usize])
            .fold(0.0f64, f64::max);
        // The `arr` scratch now holds degraded arrivals; the nominal sweep
        // in `settle_structure` rewrites it next time, keyed by
        // `nominal_dirty`.
        self.nominal_dirty = true;
        assemble_cost(
            1,
            sens.violations,
            0.0 + sens.area,
            separation,
            0.0f64.max(sens.delta_ps),
            dbic_ps,
            self.nominal_delay_ps,
        )
    }

    /// Weighted scalar cost of the current structure (the resynthesis
    /// objective).
    #[must_use]
    pub fn total_cost(&mut self) -> f64 {
        self.cost()
            .total(&self.ctx.config.weights, self.ctx.config.violation_penalty)
    }

    /// Recomputes every derived quantity from scratch and asserts it
    /// matches the incrementally maintained state — the correctness
    /// oracle for tests.
    ///
    /// # Panics
    ///
    /// Panics if any maintained quantity drifted from the ground truth.
    pub fn verify_consistency(&mut self) {
        self.settle_structure();
        let n = self.kinds.len();
        let rho = self.ctx.config.rho;
        // Electrical rows.
        for i in 0..n {
            if let Some(kind) = self.kinds[i] {
                let cell = self.ctx.library.cell(kind, self.cones.fanin(i).len());
                assert_eq!(self.tables.delay_ps[i].to_bits(), cell.delay_ps.to_bits());
                assert_eq!(
                    self.tables.peak_current_ua[i].to_bits(),
                    cell.peak_current_ua.to_bits()
                );
            }
        }
        // Transition times, recomputed in topological order.
        let mut want: Vec<TimeSet> = vec![TimeSet::new(); n];
        for &i in &self.order {
            let i = i as usize;
            want[i] = if self.kinds[i].is_none() {
                TimeSet::singleton(0)
            } else {
                let d = self.tables.grid_delay[i];
                let mut acc = TimeSet::new();
                for &f in self.cones.fanin(i) {
                    acc.union_with_shifted(&want[f as usize], d);
                }
                acc
            };
            assert_eq!(want[i], self.times[i], "transition times of node {i}");
        }
        // Separation neighbour weights.
        let mut sum = 0u64;
        for g in 0..n as u32 {
            if self.kinds[g as usize].is_none() {
                assert_eq!(self.near_w[g as usize], 0);
                continue;
            }
            let kinds = &self.kinds;
            let mut w = 0u64;
            self.cones.bounded_bfs(g, rho.saturating_sub(1), |m, d| {
                if kinds[m as usize].is_some() {
                    w += u64::from(rho - d);
                }
            });
            assert_eq!(w, self.near_w[g as usize], "neighbour weight of gate {g}");
            sum += w;
        }
        assert_eq!(sum, self.sum_w);
        // Levels.
        for i in 0..n {
            assert_eq!(
                self.cones.level(i),
                self.cones.local_level(i),
                "level of node {i}"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PartitionConfig;
    use crate::evaluator::Evaluated;
    use crate::partition::Partition;
    use iddq_celllib::Library;
    use iddq_netlist::patch::materialize;
    use iddq_netlist::{data, Netlist};

    fn rebuild_cost(nl: &Netlist, lib: &Library, cfg: &PartitionConfig) -> f64 {
        let ctx = EvalContext::new(nl, lib, cfg.clone());
        Evaluated::new(&ctx, Partition::single_module(nl)).total_cost()
    }

    #[test]
    fn fresh_eval_matches_evaluated_bitwise() {
        let lib = Library::generic_1um();
        let cfg = PartitionConfig::paper_default();
        for nl in [data::c17(), data::ripple_adder(6)] {
            let ctx = EvalContext::new(&nl, &lib, cfg.clone());
            let mut eval = ResynthEval::new(&ctx);
            let want = Evaluated::new(&ctx, Partition::single_module(&nl)).total_cost();
            assert_eq!(eval.total_cost().to_bits(), want.to_bits());
            eval.verify_consistency();
        }
    }

    #[test]
    fn kind_flip_matches_rebuild_and_rolls_back() {
        let lib = Library::generic_1um();
        let cfg = PartitionConfig::paper_default();
        let nl = data::c17();
        let ctx = EvalContext::new(&nl, &lib, cfg.clone());
        let mut eval = ResynthEval::new(&ctx);
        let base = eval.total_cost();
        let patch = Patch::single(PatchOp::SetKind {
            gate: nl.find("22").unwrap(),
            kind: CellKind::And,
        });
        eval.apply(&patch).unwrap();
        eval.verify_consistency();
        let patched = eval.total_cost();
        let oracle = rebuild_cost(&materialize(&nl, &patch).unwrap(), &lib, &cfg);
        assert_eq!(patched.to_bits(), oracle.to_bits());
        eval.rollback();
        assert_eq!(eval.total_cost().to_bits(), base.to_bits());
        eval.verify_consistency();
    }

    #[test]
    fn region_rewrite_matches_rebuild_bitwise() {
        // The decomposition patch shape: insert a 2-input tree, rewire
        // the consumer — scored by patch vs a full rebuild of the
        // materialized candidate.
        let lib = Library::generic_1um();
        let cfg = PartitionConfig::paper_default();
        let nl = data::ripple_adder(5);
        let ctx = EvalContext::new(&nl, &lib, cfg.clone());
        let mut eval = ResynthEval::new(&ctx);
        let base = eval.total_cost();
        let gate = nl
            .gate_ids()
            .find(|&g| nl.node(g).fanin().len() >= 2)
            .unwrap();
        let leaves = nl.node(gate).fanin().to_vec();
        let n = nl.node_count() as u32;
        let patch = Patch {
            ops: vec![
                PatchOp::AddGate {
                    gate: NodeId(n),
                    kind: CellKind::And,
                    fanin: leaves.clone(),
                },
                PatchOp::AddGate {
                    gate: NodeId(n + 1),
                    kind: CellKind::Not,
                    fanin: vec![NodeId(n)],
                },
                PatchOp::SetFanin {
                    gate,
                    fanin: vec![NodeId(n + 1), leaves[0]],
                },
            ],
        };
        eval.apply(&patch).unwrap();
        eval.verify_consistency();
        let patched = eval.total_cost();
        let oracle = rebuild_cost(&materialize(&nl, &patch).unwrap(), &lib, &cfg);
        assert_eq!(patched.to_bits(), oracle.to_bits());
        eval.rollback();
        eval.verify_consistency();
        assert_eq!(eval.total_cost().to_bits(), base.to_bits());
        assert_eq!(eval.node_count(), nl.node_count());
    }

    #[test]
    fn rejected_patches_leave_the_evaluation_untouched() {
        let lib = Library::generic_1um();
        let cfg = PartitionConfig::paper_default();
        let nl = data::c17();
        let ctx = EvalContext::new(&nl, &lib, cfg.clone());
        let mut eval = ResynthEval::new(&ctx);
        let base = eval.total_cost();
        let g10 = nl.find("10").unwrap();
        let g22 = nl.find("22").unwrap();
        // Cycle.
        let err = eval
            .apply(&Patch::single(PatchOp::SetFanin {
                gate: g10,
                fanin: vec![g22, nl.find("3").unwrap()],
            }))
            .unwrap_err();
        assert!(matches!(err, PatchError::Cycle(_)));
        // Mid-patch failure after an insertion.
        let err = eval
            .apply(&Patch {
                ops: vec![
                    PatchOp::AddGate {
                        gate: NodeId(nl.node_count() as u32),
                        kind: CellKind::Not,
                        fanin: vec![g10],
                    },
                    PatchOp::SetKind {
                        gate: g10,
                        kind: CellKind::Not,
                    },
                ],
            })
            .unwrap_err();
        assert!(matches!(err, PatchError::BadArity { .. }));
        // Forces are rejected outright.
        let err = eval
            .apply(&Patch::single(PatchOp::SetForce {
                node: g10,
                force: Some(true),
            }))
            .unwrap_err();
        assert!(matches!(err, PatchError::Unsupported(_)));
        // The tail node 23 is a consumer-free gate, but it is a primary
        // output: popping it would dangle the output list.
        let tail = NodeId(nl.node_count() as u32 - 1);
        assert!(nl.outputs().contains(&tail));
        let err = eval
            .apply(&Patch::single(PatchOp::RemoveGate { gate: tail }))
            .unwrap_err();
        assert!(matches!(err, PatchError::NotRemovable(_)));
        assert_eq!(eval.node_count(), nl.node_count());
        assert_eq!(eval.pending_patches(), 0);
        eval.verify_consistency();
        assert_eq!(eval.total_cost().to_bits(), base.to_bits());
    }

    #[test]
    fn stacked_patches_roll_back_in_order() {
        let lib = Library::generic_1um();
        let cfg = PartitionConfig::paper_default();
        let nl = data::ripple_adder(4);
        let ctx = EvalContext::new(&nl, &lib, cfg.clone());
        let mut eval = ResynthEval::new(&ctx);
        let base = eval.total_cost();
        let gates: Vec<NodeId> = nl.gate_ids().collect();
        eval.apply(&Patch::single(PatchOp::AddGate {
            gate: NodeId(nl.node_count() as u32),
            kind: CellKind::Nand,
            fanin: vec![gates[0], gates[1]],
        }))
        .unwrap();
        let after_first = eval.total_cost();
        eval.apply(&Patch::single(PatchOp::SetKind {
            gate: gates[2],
            kind: CellKind::Nor,
        }))
        .unwrap();
        eval.rollback();
        assert_eq!(eval.total_cost().to_bits(), after_first.to_bits());
        eval.rollback();
        assert_eq!(eval.total_cost().to_bits(), base.to_bits());
        eval.verify_consistency();
    }

    #[test]
    fn commit_keeps_changes() {
        let lib = Library::generic_1um();
        let cfg = PartitionConfig::paper_default();
        let nl = data::c17();
        let ctx = EvalContext::new(&nl, &lib, cfg.clone());
        let mut eval = ResynthEval::new(&ctx);
        let patch = Patch::single(PatchOp::SetKind {
            gate: nl.find("16").unwrap(),
            kind: CellKind::And,
        });
        eval.apply(&patch).unwrap();
        let patched = eval.total_cost();
        eval.commit();
        assert_eq!(eval.pending_patches(), 0);
        assert_eq!(eval.total_cost().to_bits(), patched.to_bits());
    }
}
