//! Structure-patched cost evaluation — resynthesis candidates scored by
//! patch instead of netlist rebuild.
//!
//! [`crate::Evaluated`] answers *"this partition, but with a gate moved"*
//! incrementally; [`ResynthEval`] answers *"this circuit, but with a
//! region rewritten"*. It owns a mutable mirror of the circuit structure
//! plus every structure-derived quantity the paper's cost function needs —
//! per-gate electrical rows, §3.1 transition-time sets, the §3.3
//! separation neighbour weights, topological levels and the nominal
//! critical path — and a [`Patch`] of gate edits (kind flips, rewires,
//! node insertion/removal, see [`iddq_netlist::patch`]) refreshes only the
//! state the edit actually dirtied:
//!
//! * **electrical rows** — a cell row depends only on `(kind, fan-in
//!   count)`, so edited and inserted gates re-derive their row from the
//!   library and nothing else moves;
//! * **transition times** — recomputed through a level-ordered dirty-cone
//!   walk that stops wherever the recomputed [`TimeSet`] is identical;
//! * **separation** — the single-module separation is maintained through
//!   the identity `S(M) = ρ·|pairs| − Σ_g W(g)/2`, where `W(g)` is the
//!   gate's `ρ − d` neighbour weight: any pair whose bounded distance an
//!   edit can move has both endpoints inside the ρ-ball of the edited
//!   region (every new or vanished ≤ρ-path runs through an edited node).
//!   By default the evaluation carries **incremental ΔW maintenance**:
//!   per-gate flat sorted near rows (seeded from the context's
//!   [`iddq_netlist::separation::GateSeparationTable`]) let each apply
//!   rescore *only the pairs whose bounded path crosses an edited node*.
//!   For edited nodes `X`, through-`X` distances decompose exactly —
//!   `d_X(g, h) = min_{x∈X} d(g, x) + d(x, h)` (shortest walks
//!   concatenate) — and paths avoiding `X` are identical before and
//!   after the edit, so one bounded BFS *per edited node* (instead of
//!   per ball gate) resolves every pair except the genuinely
//!   decremental ones (`d_old = d_oldX` and `d_newX > d_oldX`: the old
//!   shortest route crossed an edit and the detour got worse), whose
//!   endpoints fall back to one exact bounded BFS each. The original
//!   full ρ-ball re-derivation is retained behind
//!   [`ResynthEval::new_full_refresh`] as the differential reference,
//!   and the two are pinned bit-identical by proptests;
//! * **levels** — batched re-levelization with atomic cycle rejection,
//!   exactly like the logic-side `DeltaSim`.
//!
//! [`ResynthEval::total_cost`] then assembles the paper's single-module
//! cost (the partition-independent objective `iddq-synth` steers by)
//! through the *same* kernels `Evaluated` uses. The result is bit-exact
//! with the rebuild path — building the patched netlist via
//! [`iddq_netlist::patch::materialize`], running a fresh
//! [`EvalContext::new`] and scoring `Evaluated::new(…, single module)` —
//! because every derived quantity is a pure function of the structure and
//! both paths evaluate it with identical operation order. The proptests in
//! `iddq-synth` pin this equality down to the last bit, and the
//! `resynth_patch` bench section gates the speedup it buys.
//!
//! # Lifecycle
//!
//! [`ResynthEval::apply`] validates and applies a patch atomically (a
//! rejected patch leaves the evaluation untouched), pushes the inverse
//! onto an undo stack; [`ResynthEval::rollback`] re-applies the inverse
//! through the same machinery — since every derived quantity is a pure
//! deterministic function of structure, a rollback restores the
//! evaluation bit-for-bit without snapshots; [`ResynthEval::commit`]
//! makes the applied patches permanent. The candidate-search pattern is
//! apply → score → rollback per candidate, commit for the winner.

use iddq_celllib::NodeTables;
use iddq_netlist::cone::DynamicCones;
use iddq_netlist::patch::{Patch, PatchError, PatchOp};
use iddq_netlist::{CellKind, NodeId, TimeSet};

use crate::context::EvalContext;
use crate::cost::CostBreakdown;
use crate::evaluator::{assemble_cost, degraded_weight, sensor_figures, ModuleStats};

/// One entry of the undo stack: the structural inverse plus snapshots of
/// the derived state the apply overwrote, so a rollback restores instead
/// of recomputing (the probe loops of `iddq-synth` roll back one patch
/// per candidate — making that O(changed) instead of O(dirty-region)
/// roughly halves the scoring cost).
#[derive(Debug)]
struct UndoFrame {
    inverse: Patch,
    /// `(node, previous set)` for every transition-time set the apply
    /// changed or popped, in change order.
    times_log: Vec<(u32, TimeSet)>,
    /// `(gate, previous weight)` for every separation weight the apply
    /// changed or popped.
    w_log: Vec<(u32, u64)>,
    /// `(gate, previous near row)` for every maintained ΔW row the apply
    /// changed or popped (at most one entry per gate — rows are
    /// snapshotted on first touch). Empty when the evaluation runs
    /// without incremental rows.
    row_log: Vec<(u32, Vec<(u32, u32)>)>,
    /// The whole maintained-row table, when this apply was a bulk edit
    /// that evicted it instead of rebuilding per-gate rows it can never
    /// use incrementally (an O(1) move both ways — rollback restores
    /// it, commit drops it for good).
    rows_evicted: Option<Vec<Vec<(u32, u32)>>>,
    /// `Σ near_w` before the apply.
    sum_w_before: u64,
}

/// The separation dirty set of one apply, captured on the *pre-patch*
/// structure (the post-patch side is derived inside the refresh).
#[derive(Debug)]
enum SepDirty {
    /// Full path: the ρ−1-ball of the edited nodes before the patch;
    /// every gate in the union of this and the post-patch ball gets its
    /// neighbour weight re-derived by bounded BFS.
    Ball(Vec<u32>),
    /// Incremental ΔW path: for each edited node `x` (alive before the
    /// patch), the pre-patch `(gate, distance)` list of `x`'s ρ−1-ball —
    /// gates only, `x` itself at distance 0, sorted by distance. Only
    /// pairs whose shortest bounded path crosses an edited node are
    /// rescored.
    Dists(Vec<(u32, Vec<(u32, u32)>)>),
}

/// Edit-set ceiling of the incremental ΔW path. Pair enumeration costs
/// `O(pairs-through-X · |X|)` with the through-distance columns scanned
/// per pair, while the full ball refresh costs `O(|ball(X, ρ)| · BFS)`
/// — once a patch edits many nodes the balls overlap and the region
/// rebuild amortizes far better (a whole-netlist decomposition patch is
/// the extreme case). Eight keeps every local probe (gate decompose,
/// small buffer trees, rewires) on the incremental path and routes bulk
/// rewrites to the ball refresh.
const DELTA_SEP_MAX_EDITS: usize = 8;

/// Persistent buffers of the incremental ΔW refresh. All per-slot
/// vectors are compacted to the union of the edited nodes' distance
/// lists each apply; the node→slot map is epoch-stamped so it never
/// needs clearing. Nothing here hashes — the pair enumeration works
/// entirely over dense, stamped arrays.
#[derive(Debug, Default)]
struct DeltaScratch {
    /// node → refresh epoch in which `slot` is valid.
    slot_epoch: Vec<u64>,
    /// node → compact slot id (valid iff `slot_epoch` matches).
    slot: Vec<u32>,
    epoch: u64,
    /// slot → node id, in assignment order.
    nodes: Vec<u32>,
    /// slot → `2K` bounded through-distance columns (old then new, one
    /// per edited node); `ρ` encodes "no route within bound".
    dists: Vec<u32>,
    /// slot → marker of the endpoint whose partner scan last saw it
    /// (pair dedup without a hash set).
    seen: Vec<u32>,
    /// slot → row already snapshotted into the undo log this apply.
    logged: Vec<bool>,
    /// slot → accumulated exact weight delta.
    delta: Vec<i64>,
    /// node → avoid-X BFS epoch in which `bfs_dist` is valid.
    bfs_stamp: Vec<u64>,
    /// node → bounded distance from the current cover endpoint in the
    /// graph minus the edited nodes (`ρ` on the edited nodes).
    bfs_dist: Vec<u32>,
    bfs_epoch: u64,
    /// Level-ring queue of the avoid-X BFS.
    bfs_queue: Vec<u32>,
}

/// Persistent buffers of the region-sized separation refresh (the
/// flat-CSR adjacency snapshot plus the epoch-stamped BFS scratch) —
/// kept on the evaluation so repeated whole-circuit probes reuse the
/// allocations instead of rebuilding them per apply.
#[derive(Debug, Default)]
struct RefreshScratch {
    adj_offsets: Vec<u32>,
    adj_pool: Vec<u32>,
    stamp: Vec<u64>,
    epoch: u64,
    queue: Vec<u32>,
}

/// Work accounting of one [`ResynthEval::apply`] / rollback.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PatchImpact {
    /// Nodes visited by the transition-time dirty-cone walk.
    pub times_visited: usize,
    /// Gates whose separation neighbour weight was re-derived.
    pub separation_recomputed: usize,
}

/// A persistent, structure-patchable single-module cost evaluation (see
/// the [module docs](self)).
///
/// # Example
///
/// ```rust
/// use iddq_celllib::Library;
/// use iddq_core::{config::PartitionConfig, resynth::ResynthEval, EvalContext};
/// use iddq_netlist::patch::{Patch, PatchOp};
/// use iddq_netlist::{data, CellKind};
///
/// let c17 = data::c17();
/// let lib = Library::generic_1um();
/// let ctx = EvalContext::new(&c17, &lib, PartitionConfig::paper_default());
/// let mut eval = ResynthEval::new(&ctx);
/// let base = eval.total_cost();
/// // Score "c17 with gate 22 turned into an AND" without a rebuild.
/// let g22 = c17.find("22").unwrap();
/// eval.apply(&Patch::single(PatchOp::SetKind { gate: g22, kind: CellKind::And }))
///     .unwrap();
/// let _mutated = eval.total_cost();
/// eval.rollback();
/// assert_eq!(eval.total_cost().to_bits(), base.to_bits());
/// ```
#[derive(Debug)]
pub struct ResynthEval<'a> {
    ctx: &'a EvalContext<'a>,
    /// `None` for primary inputs.
    kinds: Vec<Option<CellKind>>,
    /// Levels + fan-in/fanout adjacency + walks (the structure mirror).
    cones: DynamicCones,
    /// Per-node electrical rows, maintained under kind/arity changes.
    tables: NodeTables,
    /// §3.1 transition-time sets, maintained by dirty-cone walks.
    times: Vec<TimeSet>,
    /// Per-gate `Σ (ρ − d)` neighbour weight (0 for primary inputs).
    near_w: Vec<u64>,
    /// Incrementally maintained near rows: for each gate, the
    /// `(partner gate, bounded distance)` list of its in-bound pairs
    /// (`1 ≤ d ≤ ρ−1`), sorted by partner id — the same shape as a
    /// [`iddq_netlist::separation::GateSeparationTable`] row with the
    /// weight written as a distance. `None` disables incremental ΔW
    /// maintenance ([`ResynthEval::new_full_refresh`], or after a
    /// committed bulk edit evicted the table — rebuilt lazily by the
    /// next fast-path-eligible apply when `incremental` is set); rows
    /// for primary inputs are empty.
    rows: Option<Vec<Vec<(u32, u32)>>>,
    /// Whether incremental ΔW maintenance is wanted at all
    /// ([`ResynthEval::new`] vs [`ResynthEval::new_full_refresh`]). When
    /// set and a committed bulk edit has left `rows` as `None`, the
    /// table is rebuilt lazily (see `rebuild_rows`).
    incremental: bool,
    /// `Σ_g near_w[g]` — twice the in-bound pair weight.
    sum_w: u64,
    gate_count: usize,
    outputs: Vec<u32>,
    /// Undo frames (inverse patch + derived-state snapshots), innermost
    /// last.
    undo: Vec<UndoFrame>,
    /// Per-apply change logs, drained into the [`UndoFrame`] on success
    /// and discarded on rejection (the repair pass recomputes instead).
    times_log: Vec<(u32, TimeSet)>,
    w_log: Vec<(u32, u64)>,
    row_log: Vec<(u32, Vec<(u32, u32)>)>,
    /// The row table taken out by a bulk-edit apply in flight, drained
    /// into the [`UndoFrame`] on success and restored on rejection.
    rows_evicted: Option<Vec<Vec<(u32, u32)>>>,
    /// Node ids sorted by (level, id) — a topological order over the
    /// current structure, rebuilt lazily.
    order: Vec<u32>,
    order_dirty: bool,
    /// Nominal critical-path delay of the current structure, recomputed
    /// lazily (patches move both delays and paths).
    nominal_delay_ps: f64,
    nominal_dirty: bool,
    // Scoring scratch (reused across `cost` calls).
    hist_cur: Vec<f64>,
    hist_cnt: Vec<u32>,
    weight: Vec<f64>,
    arr: Vec<f64>,
    /// Region-sized separation-refresh scratch (see [`RefreshScratch`]).
    refresh_scratch: RefreshScratch,
    /// Incremental ΔW refresh scratch (see [`DeltaScratch`]).
    delta_scratch: DeltaScratch,
}

impl<'a> ResynthEval<'a> {
    /// Mirrors the context's netlist and seeds every derived quantity from
    /// the context's precomputed analyses (no BFS, no sweep).
    ///
    /// The context needs the gate separation table but **not** the full
    /// oracle — an [`crate::context::AnalysisTier::GateSep`] build
    /// suffices and skips most of the analysis-construction cost (the
    /// costs produced on either tier are bit-identical, property-tested).
    ///
    /// # Panics
    ///
    /// Panics if `ctx` was built at the bare `Timing` tier.
    #[must_use]
    pub fn new(ctx: &'a EvalContext<'a>) -> Self {
        Self::new_inner(ctx, true)
    }

    /// Like [`ResynthEval::new`], but with incremental ΔW maintenance
    /// disabled: every apply re-derives the neighbour weight of each
    /// gate in the dirty ρ-ball by bounded BFS (the original refresh).
    /// Kept as the differential reference the proptests pin the
    /// incremental path against, and as the baseline the bench's
    /// ΔW-speedup gate measures.
    ///
    /// # Panics
    ///
    /// Panics if `ctx` was built at the bare `Timing` tier.
    #[must_use]
    pub fn new_full_refresh(ctx: &'a EvalContext<'a>) -> Self {
        Self::new_inner(ctx, false)
    }

    fn new_inner(ctx: &'a EvalContext<'a>, incremental: bool) -> Self {
        let nl = ctx.netlist;
        let kinds: Vec<Option<CellKind>> = nl
            .node_ids()
            .map(|id| nl.node(id).kind().cell_kind())
            .collect();
        let near_w: Vec<u64> = nl
            .node_ids()
            .map(|id| {
                if nl.is_gate(id) {
                    ctx.sep_table().near_weight(id)
                } else {
                    0
                }
            })
            .collect();
        let sum_w = near_w.iter().sum();
        let n = nl.node_count();
        let rho = ctx.config.rho;
        let rows = incremental.then(|| {
            let table = ctx.sep_table();
            debug_assert_eq!(table.rho(), rho, "table built at the configured ρ");
            nl.node_ids()
                .map(|id| {
                    if nl.is_gate(id) {
                        // Table entries carry the weight ρ − d; the
                        // maintained rows carry the distance d.
                        table.row(id).iter().map(|&(p, w)| (p, rho - w)).collect()
                    } else {
                        Vec::new()
                    }
                })
                .collect::<Vec<Vec<(u32, u32)>>>()
        });
        ResynthEval {
            ctx,
            kinds,
            cones: DynamicCones::new(nl),
            tables: ctx.tables.clone(),
            times: ctx.times.clone(),
            near_w,
            rows,
            incremental,
            sum_w,
            gate_count: ctx.gates.len(),
            outputs: nl.outputs().iter().map(|o| o.0).collect(),
            undo: Vec::new(),
            times_log: Vec::new(),
            w_log: Vec::new(),
            row_log: Vec::new(),
            rows_evicted: None,
            order: Vec::new(),
            order_dirty: true,
            nominal_delay_ps: ctx.nominal_delay_ps,
            nominal_dirty: false,
            hist_cur: Vec::new(),
            hist_cnt: Vec::new(),
            weight: vec![0.0; n],
            arr: vec![0.0; n],
            refresh_scratch: RefreshScratch::default(),
            delta_scratch: DeltaScratch::default(),
        }
    }

    /// Current node count (patches grow and shrink it).
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.kinds.len()
    }

    /// Current gate count.
    #[must_use]
    pub fn gate_count(&self) -> usize {
        self.gate_count
    }

    /// Number of applied-but-uncommitted patches on the undo stack.
    #[must_use]
    pub fn pending_patches(&self) -> usize {
        self.undo.len()
    }

    /// Applies a patch: structural edit, batched re-levelization, then a
    /// refresh of the dirtied derived state. The inverse lands on the
    /// undo stack.
    ///
    /// # Errors
    ///
    /// Returns a [`PatchError`] (evaluation unchanged) when an op targets
    /// a non-gate, uses an illegal arity or id, would create a cycle, or
    /// is a [`PatchOp::SetForce`] (no cost semantics).
    pub fn apply(&mut self, patch: &Patch) -> Result<PatchImpact, PatchError> {
        let sum_w_before = self.sum_w;
        self.times_log.clear();
        self.w_log.clear();
        self.row_log.clear();
        let (inverse, impact) = self.apply_inner(patch)?;
        self.undo.push(UndoFrame {
            inverse,
            times_log: std::mem::take(&mut self.times_log),
            w_log: std::mem::take(&mut self.w_log),
            row_log: std::mem::take(&mut self.row_log),
            rows_evicted: self.rows_evicted.take(),
            sum_w_before,
        });
        Ok(impact)
    }

    /// Rolls the most recent uncommitted patch back: the structural
    /// inverse is re-applied and the derived state is *restored* from the
    /// frame's snapshots (bit-identical to the state before the matching
    /// apply, and O(changed entries) instead of a dirty-region
    /// recomputation).
    ///
    /// # Panics
    ///
    /// Panics if there is no patch to roll back.
    // Documented panic contract (empty undo stack); the recorded
    // inverse restores the exact prior structure by construction.
    #[allow(clippy::expect_used)]
    pub fn rollback(&mut self) -> PatchImpact {
        let frame = self.undo.pop().expect("no patch to roll back");
        self.times_log.clear();
        self.w_log.clear();
        self.row_log.clear();
        self.apply_structure(&frame.inverse)
            .unwrap_or_else(|_| panic!("inverse of an accepted patch is always valid"));
        let relevel_seeds: Vec<u32> = frame
            .inverse
            .ops
            .iter()
            .filter(|op| matches!(op, PatchOp::SetFanin { .. }))
            .map(|op| op.gate().0)
            .filter(|&g| (g as usize) < self.kinds.len())
            .filter(|&g| self.cones.local_level(g as usize) != self.cones.level(g as usize))
            .collect();
        if !relevel_seeds.is_empty() {
            self.cones
                .relevel(&relevel_seeds)
                .expect("restoring the original levels cannot fail");
        }
        // Restore snapshots newest-first; entries for nodes the structural
        // revert popped again (insertions of the rolled-back patch) are
        // skipped.
        self.times_log.clear();
        self.w_log.clear();
        self.row_log.clear();
        let alive = self.kinds.len();
        let mut impact = PatchImpact::default();
        for (i, ts) in frame.times_log.into_iter().rev() {
            if (i as usize) < alive {
                self.times[i as usize] = ts;
                impact.times_visited += 1;
            }
        }
        for (g, w) in frame.w_log.into_iter().rev() {
            if (g as usize) < alive {
                self.near_w[g as usize] = w;
                impact.separation_recomputed += 1;
            }
        }
        if let Some(rows) = frame.rows_evicted {
            // A bulk apply parked the whole table untouched; moving it
            // back restores every row at once (its `row_log` is empty).
            self.rows = Some(rows);
        }
        if let Some(rows) = self.rows.as_mut() {
            for (g, row) in frame.row_log.into_iter().rev() {
                if (g as usize) < alive {
                    rows[g as usize] = row;
                }
            }
        }
        self.sum_w = frame.sum_w_before;
        self.order_dirty = true;
        self.nominal_dirty = true;
        impact
    }

    /// Makes all applied patches permanent by clearing the undo stack.
    pub fn commit(&mut self) {
        self.undo.clear();
    }

    fn apply_inner(&mut self, patch: &Patch) -> Result<(Patch, PatchImpact), PatchError> {
        let rho = self.ctx.config.rho;
        // Separation dirty set over the *pre-patch* graph: every pair
        // whose bounded distance the patch can move has a shortest route
        // through an edited node, so its endpoints sit in the edited
        // nodes' pre- or post-patch ρ−1-balls. The incremental ΔW path
        // captures per-edited-node distance lists (removals fall back to
        // the full ball — the popped gate's pairs all vanish at once and
        // the ball rebuild re-derives its partners' rows wholesale).
        let mut old_seeds: Vec<u32> = patch
            .ops
            .iter()
            .filter(|op| op.changes_adjacency())
            .map(|op| op.gate().0)
            .filter(|&g| (g as usize) < self.kinds.len())
            .collect();
        old_seeds.sort_unstable();
        old_seeds.dedup();
        let adds = patch
            .ops
            .iter()
            .filter(|op| matches!(op, PatchOp::AddGate { .. }))
            .count();
        let wants_fast = old_seeds.len() + adds <= DELTA_SEP_MAX_EDITS
            && !patch
                .ops
                .iter()
                .any(|op| matches!(op, PatchOp::RemoveGate { .. }));
        // Lazy recovery from a *committed* bulk edit. While bulk
        // candidates come and go uncommitted, the parked table returns on
        // rollback for free and rebuilding here would only waste the next
        // eviction; but once such an edit is committed nothing restores
        // the table, and without this every later apply pays the full
        // ball refresh forever. Rebuild from the current structure
        // exactly when the next fast-path-eligible edit arrives — one
        // bounded BFS per gate, amortized over every small apply after.
        if wants_fast && self.incremental && self.rows.is_none() && self.undo.is_empty() {
            self.rebuild_rows();
        }
        let fast = self.rows.is_some() && wants_fast;
        let dirty = if fast {
            SepDirty::Dists(
                old_seeds
                    .iter()
                    .map(|&x| (x, self.gate_dist_list(x)))
                    .collect(),
            )
        } else {
            let ball = self
                .cones
                .undirected_ball(&old_seeds, rho.saturating_sub(1));
            // A region-sized edit rebuilds nearly every row only to throw
            // the table away on the next bulk candidate — evict it
            // wholesale instead (O(1) move into the undo frame, restored
            // on rollback) and let the ball refresh skip row maintenance
            // entirely. After a *commit* of such a patch `rows` stays
            // `None` until the next fast-path-eligible apply rebuilds it
            // lazily (see above); a run of committed bulk edits never
            // pays a rebuild in between.
            if ball.len() * 8 > self.kinds.len() {
                self.rows_evicted = self.rows.take();
            }
            SepDirty::Ball(ball)
        };

        let inverse = match self.apply_structure(patch) {
            Ok(inverse) => inverse,
            Err((e, _reverted_prefix)) => {
                // Mid-patch validation failure: the structural prefix was
                // already reverted by `apply_structure`; repair the
                // derived state (deterministic recomputation over the
                // restored structure reproduces the original values — on
                // the ΔW path the re-derived distance lists equal the
                // captured ones, so no pair moves). An evicted row table
                // moves straight back: the structure is unchanged, so it
                // is still exact.
                self.refresh(patch, &dirty);
                if let Some(rows) = self.rows_evicted.take() {
                    self.rows = Some(rows);
                }
                return Err(e);
            }
        };
        // Batched re-levelization, seeded by the rewired gates whose local
        // level moved (the airtight cycle prune, as in `DeltaSim`).
        let relevel_seeds: Vec<u32> = patch
            .ops
            .iter()
            .filter(|op| matches!(op, PatchOp::SetFanin { .. }))
            .map(|op| op.gate().0)
            .filter(|&g| (g as usize) < self.kinds.len())
            .filter(|&g| self.cones.local_level(g as usize) != self.cones.level(g as usize))
            .collect();
        if !relevel_seeds.is_empty() {
            if let Err(on) = self.cones.relevel(&relevel_seeds) {
                // Cycle: levels untouched (atomic relevel); revert the
                // structural edit and repair derived state (the evicted
                // row table, if any, is still exact — see above).
                self.apply_structure(&inverse)
                    .unwrap_or_else(|_| panic!("re-applying an inverse cannot fail"));
                self.refresh(patch, &dirty);
                if let Some(rows) = self.rows_evicted.take() {
                    self.rows = Some(rows);
                }
                return Err(PatchError::Cycle(NodeId(on)));
            }
        }
        let impact = self.refresh(patch, &dirty);
        Ok((inverse, impact))
    }

    /// Rebuilds the maintained ΔW row table from the current structure:
    /// one bounded BFS per gate, each row sorted by partner id — the
    /// exact shape `verify_consistency` pins the maintained rows
    /// against. Called lazily after a committed bulk edit evicted the
    /// table (never while speculative bulk candidates are in flight).
    fn rebuild_rows(&mut self) {
        let rho = self.ctx.config.rho;
        let n = self.kinds.len();
        let mut rows: Vec<Vec<(u32, u32)>> = vec![Vec::new(); n];
        let ResynthEval {
            ref mut cones,
            ref kinds,
            ..
        } = *self;
        for (g, row) in rows.iter_mut().enumerate() {
            if kinds[g].is_none() {
                continue;
            }
            cones.bounded_bfs(g as u32, rho.saturating_sub(1), |p, d| {
                if kinds[p as usize].is_some() {
                    row.push((p, d));
                }
            });
            row.sort_unstable();
        }
        self.rows = Some(rows);
    }

    /// The `(gate, bounded distance)` list of `x`'s ρ−1-ball over the
    /// current structure: gates only, `x` itself first at distance 0,
    /// sorted by distance (BFS emission order).
    fn gate_dist_list(&mut self, x: u32) -> Vec<(u32, u32)> {
        let rho = self.ctx.config.rho;
        let mut list = vec![(x, 0u32)];
        let ResynthEval {
            ref mut cones,
            ref kinds,
            ..
        } = *self;
        cones.bounded_bfs(x, rho.saturating_sub(1), |n, d| {
            if kinds[n as usize].is_some() {
                list.push((n, d));
            }
        });
        list
    }

    /// Applies the structural ops in order, returning the inverse patch.
    /// On mid-patch validation failure the already-applied prefix is
    /// reverted (structure only — the caller repairs derived state) and
    /// the inverse of that reverted prefix is returned alongside the
    /// error.
    #[allow(clippy::result_large_err)]
    fn apply_structure(&mut self, patch: &Patch) -> Result<Patch, (PatchError, Patch)> {
        let mut inverse: Vec<PatchOp> = Vec::with_capacity(patch.ops.len());
        for op in &patch.ops {
            if let Err(e) = self.validate_op(op) {
                for inv in inverse.iter().rev() {
                    self.apply_op(inv);
                }
                return Err((e, Patch { ops: inverse }));
            }
            inverse.push(self.apply_op(op));
        }
        inverse.reverse();
        Ok(Patch { ops: inverse })
    }

    fn validate_op(&self, op: &PatchOp) -> Result<(), PatchError> {
        let gate = op.gate();
        let gi = gate.index();
        match op {
            PatchOp::SetForce { .. } => Err(PatchError::Unsupported(
                "value forces have no cost semantics",
            )),
            PatchOp::AddGate { kind, fanin, .. } => {
                let expected = self.kinds.len() as u32;
                if gate.0 != expected {
                    return Err(PatchError::NotAppend { gate, expected });
                }
                if !kind.accepts_fanin(fanin.len()) {
                    return Err(PatchError::BadArity {
                        gate,
                        kind: *kind,
                        got: fanin.len(),
                    });
                }
                for &f in fanin {
                    if f.index() >= self.kinds.len() {
                        return Err(PatchError::UnknownNode(f));
                    }
                }
                Ok(())
            }
            PatchOp::SetKind { kind, .. } => {
                self.gate_kind(gate)?;
                let arity = self.cones.fanin(gi).len();
                if !kind.accepts_fanin(arity) {
                    return Err(PatchError::BadArity {
                        gate,
                        kind: *kind,
                        got: arity,
                    });
                }
                Ok(())
            }
            PatchOp::SetFanin { fanin, .. } => {
                let kind = self.gate_kind(gate)?;
                if !kind.accepts_fanin(fanin.len()) {
                    return Err(PatchError::BadArity {
                        gate,
                        kind,
                        got: fanin.len(),
                    });
                }
                for &f in fanin {
                    if f.index() >= self.kinds.len() {
                        return Err(PatchError::UnknownNode(f));
                    }
                }
                Ok(())
            }
            PatchOp::RemoveGate { .. } => {
                let _ = self.gate_kind(gate)?;
                // A primary output is load-bearing even with no gate
                // consumers: removal would leave a dangling output id.
                if gi + 1 != self.kinds.len()
                    || !self.cones.fanout(gi).is_empty()
                    || self.outputs.contains(&gate.0)
                {
                    return Err(PatchError::NotRemovable(gate));
                }
                Ok(())
            }
        }
    }

    fn gate_kind(&self, gate: NodeId) -> Result<CellKind, PatchError> {
        let gi = gate.index();
        if gi >= self.kinds.len() {
            return Err(PatchError::UnknownNode(gate));
        }
        self.kinds[gi].ok_or(PatchError::NotAGate(gate))
    }

    /// Applies one validated op (structure + electrical row + placeholder
    /// growth of the derived vectors), returning its inverse.
    // Ops reach here only after validation, so gate slots are
    // populated and the parallel arrays stay aligned.
    #[allow(clippy::expect_used)]
    fn apply_op(&mut self, op: &PatchOp) -> PatchOp {
        match op {
            PatchOp::SetKind { gate, kind } => {
                let gi = gate.index();
                let old = self.kinds[gi].expect("validated as gate");
                self.kinds[gi] = Some(*kind);
                self.set_table_row(gi);
                PatchOp::SetKind {
                    gate: *gate,
                    kind: old,
                }
            }
            PatchOp::SetFanin { gate, fanin } => {
                let gi = gate.index();
                let new: Vec<u32> = fanin.iter().map(|f| f.0).collect();
                let old = self.cones.set_fanin(gi, &new);
                if old.len() != new.len() {
                    // The cell row is keyed by (kind, arity).
                    self.set_table_row(gi);
                }
                PatchOp::SetFanin {
                    gate: *gate,
                    fanin: old.into_iter().map(NodeId).collect(),
                }
            }
            PatchOp::AddGate { gate, kind, fanin } => {
                let list: Vec<u32> = fanin.iter().map(|f| f.0).collect();
                self.kinds.push(Some(*kind));
                self.cones.push_node(&list);
                self.push_table_row();
                self.set_table_row(gate.index());
                self.times.push(TimeSet::new());
                self.near_w.push(0);
                if let Some(rows) = self.rows.as_mut() {
                    rows.push(Vec::new());
                }
                self.gate_count += 1;
                self.weight.push(0.0);
                self.arr.push(0.0);
                PatchOp::RemoveGate { gate: *gate }
            }
            PatchOp::RemoveGate { gate } => {
                let kind = self.kinds.pop().flatten().expect("validated gate");
                let fanin = self.cones.pop_node();
                self.pop_table_row();
                let popped_times = self.times.pop().expect("aligned");
                self.times_log.push((gate.0, popped_times));
                // Partner weights in the ball are re-derived by `refresh`;
                // the popped gate's own weight leaves the sum here (and
                // lands in the log so a rollback can restore it).
                let popped_w = self.near_w.pop().expect("aligned");
                self.sum_w -= popped_w;
                self.w_log.push((gate.0, popped_w));
                if let Some(rows) = self.rows.as_mut() {
                    let popped_row = rows.pop().expect("aligned");
                    self.row_log.push((gate.0, popped_row));
                }
                self.gate_count -= 1;
                self.weight.pop();
                self.arr.pop();
                PatchOp::AddGate {
                    gate: *gate,
                    kind,
                    fanin: fanin.into_iter().map(NodeId).collect(),
                }
            }
            PatchOp::SetForce { .. } => unreachable!("rejected by validation"),
        }
    }

    /// Re-derives the electrical row of gate `i` from the library — the
    /// same lookup [`NodeTables::new`] performs, so rows stay bit-exact
    /// with a rebuilt context.
    // Only called for validated gate indices.
    #[allow(clippy::expect_used)]
    fn set_table_row(&mut self, i: usize) {
        let kind = self.kinds[i].expect("gates only");
        let cell = self.ctx.library.cell(kind, self.cones.fanin(i).len());
        let t = &mut self.tables;
        t.delay_ps[i] = cell.delay_ps;
        t.grid_delay[i] = self.ctx.technology.to_grid(cell.delay_ps);
        t.peak_current_ua[i] = cell.peak_current_ua;
        t.r_on_kohm[i] = cell.r_on_kohm;
        t.c_out_ff[i] = cell.c_out_ff;
        t.c_rail_ff[i] = cell.c_rail_ff;
        t.leakage_na[i] = cell.leakage_na;
        t.area[i] = cell.area;
    }

    fn push_table_row(&mut self) {
        let t = &mut self.tables;
        t.delay_ps.push(0.0);
        t.grid_delay.push(0);
        t.peak_current_ua.push(0.0);
        t.r_on_kohm.push(0.0);
        t.c_out_ff.push(0.0);
        t.c_rail_ff.push(0.0);
        t.leakage_na.push(0.0);
        t.area.push(0.0);
    }

    fn pop_table_row(&mut self) {
        let t = &mut self.tables;
        t.delay_ps.pop();
        t.grid_delay.pop();
        t.peak_current_ua.pop();
        t.r_on_kohm.pop();
        t.c_out_ff.pop();
        t.c_rail_ff.pop();
        t.leakage_na.pop();
        t.area.pop();
    }

    /// Refreshes the structure-derived state the (applied or reverted)
    /// ops may have dirtied: transition-time sets through a dirty-cone
    /// walk, separation state through the captured [`SepDirty`] (the
    /// incremental ΔW pair rescoring, or the full ρ-ball bounded-BFS
    /// re-derivation), and the lazy order/nominal-delay flags.
    fn refresh(&mut self, patch: &Patch, sep: &SepDirty) -> PatchImpact {
        let alive = self.kinds.len();
        // --- transition times -------------------------------------------
        let time_seeds: Vec<u32> = patch
            .ops
            .iter()
            .map(|op| op.gate().0)
            .filter(|&g| (g as usize) < alive)
            .collect();
        let ResynthEval {
            ref mut cones,
            ref mut times,
            ref mut times_log,
            ref tables,
            ref kinds,
            ..
        } = *self;
        let times_visited = cones.walker().walk(time_seeds.iter().copied(), |i, fanin| {
            let i = i as usize;
            if kinds[i].is_none() {
                // Primary inputs transition at t = 0, always.
                return false;
            }
            let d = tables.grid_delay[i];
            let mut acc = TimeSet::new();
            for &f in fanin {
                acc.union_with_shifted(&times[f as usize], d);
            }
            if acc == times[i] {
                false
            } else {
                times_log.push((i as u32, std::mem::replace(&mut times[i], acc)));
                true
            }
        });
        // --- separation -------------------------------------------------
        let separation_recomputed = match sep {
            SepDirty::Ball(old_ball) => self.refresh_separation_full(patch, old_ball),
            SepDirty::Dists(old) => self.refresh_separation_delta(patch, old),
        };
        self.order_dirty = true;
        self.nominal_dirty = true;
        PatchImpact {
            times_visited,
            separation_recomputed,
        }
    }

    /// The full separation refresh: every gate in the union of the pre-
    /// and post-patch ρ−1-balls of the edited nodes gets its neighbour
    /// weight (and, when maintained, its near row) re-derived by bounded
    /// BFS. Returns the number of gates re-derived.
    fn refresh_separation_full(&mut self, patch: &Patch, old_ball: &[u32]) -> usize {
        let rho = self.ctx.config.rho;
        let alive = self.kinds.len();
        let new_seeds: Vec<u32> = patch
            .ops
            .iter()
            .filter(|op| op.changes_adjacency())
            .map(|op| op.gate().0)
            .filter(|&g| (g as usize) < alive)
            .collect();
        let mut ball = self
            .cones
            .undirected_ball(&new_seeds, rho.saturating_sub(1));
        ball.extend(old_ball.iter().copied().filter(|&g| (g as usize) < alive));
        ball.sort_unstable();
        ball.dedup();
        let ResynthEval {
            ref mut cones,
            ref kinds,
            ref mut near_w,
            ref mut sum_w,
            ref mut w_log,
            ref mut rows,
            ref mut row_log,
            ref mut refresh_scratch,
            ..
        } = *self;
        let mut rows = rows.as_mut();
        let track_rows = rows.is_some();
        let mut row_buf: Vec<(u32, u32)> = Vec::new();
        let mut separation_recomputed = 0usize;
        let mut store = |g: u32, w: u64| {
            let old = near_w[g as usize];
            if w != old {
                w_log.push((g, old));
                *sum_w += w;
                *sum_w -= old;
                near_w[g as usize] = w;
            }
        };
        // Commits the rebuilt row of one ball gate (ball gates are
        // deduped, so each gets at most one log entry per apply).
        let mut commit_row =
            |g: u32, row_buf: &mut Vec<(u32, u32)>, row_log: &mut Vec<(u32, Vec<(u32, u32)>)>| {
                if let Some(rows) = rows.as_deref_mut() {
                    row_buf.sort_unstable();
                    if rows[g as usize] != *row_buf {
                        let old = std::mem::replace(&mut rows[g as usize], row_buf.clone());
                        row_log.push((g, old));
                    }
                }
            };
        if ball.len() * 8 > alive {
            // Region-sized edit (the whole-circuit candidates of
            // `cost_aware` re-derive nearly every gate): flatten the
            // patched adjacency into one CSR snapshot first, so the
            // per-gate bounded BFS runs over contiguous arrays instead
            // of chasing one heap allocation per neighbour list. The
            // weights are plain sums, so this path is bit-identical to
            // the per-gate walk below. The snapshot content is per-patch
            // (the structure just changed) but the buffers persist on
            // the evaluation, so repeated probes don't reallocate.
            let RefreshScratch {
                ref mut adj_offsets,
                ref mut adj_pool,
                ref mut stamp,
                ref mut epoch,
                ref mut queue,
            } = *refresh_scratch;
            adj_offsets.clear();
            adj_offsets.push(0);
            adj_pool.clear();
            for i in 0..alive {
                adj_pool.extend_from_slice(cones.fanin(i));
                adj_pool.extend_from_slice(cones.fanout(i));
                adj_offsets.push(adj_pool.len() as u32);
            }
            stamp.resize(alive, 0);
            for &g in &ball {
                if kinds[g as usize].is_none() {
                    continue;
                }
                *epoch += 1;
                stamp[g as usize] = *epoch;
                queue.clear();
                queue.push(g);
                let (mut head, mut tail) = (0usize, 1usize);
                let mut d = 0u32;
                let mut w = 0u64;
                row_buf.clear();
                while d + 1 < rho && head < tail {
                    d += 1;
                    for k in head..tail {
                        let u = queue[k] as usize;
                        for &v in &adj_pool[adj_offsets[u] as usize..adj_offsets[u + 1] as usize] {
                            if stamp[v as usize] != *epoch {
                                stamp[v as usize] = *epoch;
                                queue.push(v);
                                if kinds[v as usize].is_some() {
                                    w += u64::from(rho - d);
                                    if track_rows {
                                        row_buf.push((v, d));
                                    }
                                }
                            }
                        }
                    }
                    head = tail;
                    tail = queue.len();
                }
                store(g, w);
                commit_row(g, &mut row_buf, row_log);
                separation_recomputed += 1;
            }
        } else {
            for &g in &ball {
                if kinds[g as usize].is_none() {
                    continue;
                }
                let mut w = 0u64;
                row_buf.clear();
                cones.bounded_bfs(g, rho.saturating_sub(1), |n, d| {
                    if kinds[n as usize].is_some() {
                        w += u64::from(rho - d);
                        if track_rows {
                            row_buf.push((n, d));
                        }
                    }
                });
                store(g, w);
                commit_row(g, &mut row_buf, row_log);
                separation_recomputed += 1;
            }
        }
        separation_recomputed
    }

    /// The incremental ΔW separation refresh: only pairs whose shortest
    /// bounded route crosses an edited node are rescored. For each
    /// edited node `x`, through-`x` route lengths `d(g,x) + d(x,h)` are
    /// enumerated from `x`'s pre-patch (captured) and post-patch
    /// distance lists and min-merged per pair into `d_oldX` / `d_newX`
    /// (through-edit distances decompose exactly — shortest walks
    /// concatenate at the crossing node — and routes avoiding every
    /// edited node are identical on both sides). Against the maintained
    /// row distance `d_old`, each candidate pair resolves exactly:
    ///
    /// * `d_oldX == d_newX` — untouched (the through-edit side did not
    ///   move, the avoiding side never does);
    /// * `d_old < d_oldX` — the old shortest route avoids the edits and
    ///   survives, `d_new = min(d_old, d_newX)`;
    /// * `d_newX < d_oldX` (with `d_old == d_oldX`) — `d_new = d_newX`;
    /// * otherwise the old shortest route crossed an edit and the
    ///   detour got worse — the surviving route either still crosses an
    ///   edit (`d_newX`, known) or avoids every edit, so
    ///   `d_new = min(d_avoidX, d_newX)` with `d_avoidX` the bounded
    ///   distance in the graph minus the edited nodes (identical pre-
    ///   and post-patch). One avoid-X BFS per endpoint of a greedy
    ///   vertex cover of these ambiguous pairs resolves all of them —
    ///   hub endpoints carry most pairs, so the cover stays far smaller
    ///   than the per-row rebuild set it replaces.
    ///
    /// Returns the number of fallback BFS re-derivations (the resolved
    /// pairs are O(1) row edits, not re-derivations).
    fn refresh_separation_delta(&mut self, patch: &Patch, old: &[(u32, Vec<(u32, u32)>)]) -> usize {
        let rho = self.ctx.config.rho;
        let bound = rho.saturating_sub(1);
        let alive = self.kinds.len();
        // Edited nodes alive after the patch (insertions included —
        // removals never reach this path).
        let mut xs: Vec<u32> = patch
            .ops
            .iter()
            .filter(|op| op.changes_adjacency())
            .map(|op| op.gate().0)
            .filter(|&g| (g as usize) < alive)
            .collect();
        xs.sort_unstable();
        xs.dedup();
        let k = xs.len();
        if k == 0 {
            return 0;
        }
        // Post-patch distance lists, one per edited node (their union
        // with the captured pre-patch lists spans every candidate
        // endpoint).
        let new_lists: Vec<Vec<(u32, u32)>> = xs.iter().map(|&x| self.gate_dist_list(x)).collect();
        let ResynthEval {
            ref mut cones,
            ref mut near_w,
            ref mut sum_w,
            ref mut w_log,
            ref mut rows,
            ref mut row_log,
            ref mut delta_scratch,
            ..
        } = *self;
        let Some(rows) = rows.as_mut() else {
            unreachable!("the ΔW refresh runs only with maintained rows")
        };
        let sc = delta_scratch;
        // Compact every endpoint into a slot carrying its `2K` bounded
        // through-distance columns (old then new, ρ = out of bound) —
        // dense arrays instead of a hash map keyed by pair: the pair
        // enumeration below is the hot loop of every probe refresh.
        let two_k = 2 * k;
        sc.epoch += 1;
        sc.slot_epoch.resize(alive, 0);
        sc.slot.resize(alive, 0);
        sc.nodes.clear();
        sc.dists.clear();
        {
            let fill = |sc: &mut DeltaScratch, col: usize, list: &[(u32, u32)]| {
                for &(g, d) in list {
                    let gi = g as usize;
                    let s = if sc.slot_epoch[gi] == sc.epoch {
                        sc.slot[gi] as usize
                    } else {
                        let s = sc.nodes.len();
                        sc.slot_epoch[gi] = sc.epoch;
                        sc.slot[gi] = s as u32;
                        sc.nodes.push(g);
                        sc.dists.resize(sc.dists.len() + two_k, rho);
                        s
                    };
                    sc.dists[s * two_k + col] = d;
                }
            };
            for (x, list) in old {
                let col = xs
                    .binary_search(x)
                    .unwrap_or_else(|_| unreachable!("pre-patch edits stay edited (no removals)"));
                fill(sc, col, list);
            }
            for (i, list) in new_lists.iter().enumerate() {
                fill(sc, k + i, list);
            }
        }
        let n_slots = sc.nodes.len();
        sc.seen.clear();
        sc.seen.resize(n_slots, 0);
        sc.logged.clear();
        sc.logged.resize(n_slots, false);
        sc.delta.clear();
        sc.delta.resize(n_slots, 0);
        // Enumerate candidate pairs: (g, h) is one iff some column holds
        // both within `bound` of the same edited node. Each list is in
        // BFS (non-decreasing distance) order, so the in-bound partner
        // window is a prefix; each unordered pair is processed once,
        // from its smaller endpoint, deduplicated by the `seen` marker.
        let mut resolved: Vec<(u32, u32, u32, u32)> = Vec::new();
        let mut amb_pairs: Vec<(u32, u32, u32, u32)> = Vec::new();
        for gs in 0..n_slots {
            let g = sc.nodes[gs];
            #[allow(clippy::cast_possible_truncation)]
            let marker = gs as u32 + 1;
            for col in 0..two_k {
                let dg = sc.dists[gs * two_k + col];
                if dg > bound {
                    continue;
                }
                let limit = bound - dg;
                let list: &[(u32, u32)] = if col < k {
                    match old.iter().find(|(x, _)| *x == xs[col]) {
                        Some((_, list)) => list,
                        // Column of an inserted node: no pre-patch side.
                        None => continue,
                    }
                } else {
                    &new_lists[col - k]
                };
                for &(h, dh) in list {
                    if dh > limit {
                        break;
                    }
                    if h <= g {
                        continue;
                    }
                    let hs = sc.slot[h as usize] as usize;
                    if sc.seen[hs] == marker {
                        continue;
                    }
                    sc.seen[hs] = marker;
                    // Through-edit distances old/new: min over columns.
                    let (mut d_old_x, mut d_new_x) = (rho, rho);
                    for j in 0..k {
                        let a = sc.dists[gs * two_k + j] + sc.dists[hs * two_k + j];
                        let b = sc.dists[gs * two_k + k + j] + sc.dists[hs * two_k + k + j];
                        d_old_x = d_old_x.min(a);
                        d_new_x = d_new_x.min(b);
                    }
                    if d_old_x == d_new_x {
                        continue;
                    }
                    let d_old = row_dist(&rows[g as usize], h, rho);
                    debug_assert!(
                        d_old <= d_old_x,
                        "a through-edit route bounds the true distance from above"
                    );
                    let d_new = if d_old < d_old_x {
                        d_old.min(d_new_x)
                    } else if d_new_x < d_old_x {
                        d_new_x
                    } else {
                        amb_pairs.push((g, h, d_old, d_new_x));
                        continue;
                    };
                    if d_new != d_old {
                        resolved.push((g, h, d_old, d_new));
                    }
                }
            }
        }
        // Resolved pairs: symmetric row edits plus per-gate weight
        // deltas (first touch snapshots the row for the undo frame).
        let weight = |d: u32| -> i64 {
            if d < rho {
                i64::from(rho - d)
            } else {
                0
            }
        };
        let touch = |sc: &mut DeltaScratch,
                     rows: &mut Vec<Vec<(u32, u32)>>,
                     row_log: &mut Vec<(u32, Vec<(u32, u32)>)>,
                     e: u32,
                     p: u32,
                     d_new: u32,
                     dw: i64| {
            let es = sc.slot[e as usize] as usize;
            if !sc.logged[es] {
                sc.logged[es] = true;
                row_log.push((e, rows[e as usize].clone()));
            }
            set_row_entry(&mut rows[e as usize], p, d_new, rho);
            sc.delta[es] += dw;
        };
        for &(g, h, d_old, d_new) in &resolved {
            let dw = weight(d_new) - weight(d_old);
            touch(sc, rows, row_log, g, h, d_new, dw);
            touch(sc, rows, row_log, h, g, d_new, dw);
        }
        // Ambiguous pairs resolve by greedy vertex cover: each cover
        // endpoint runs one bounded BFS with the edited nodes
        // pre-stamped out of the traversal, yielding `d_avoidX` for all
        // of its ambiguous partners at once. Pre-stamping also parks
        // `ρ` on the edited nodes themselves, so a pair whose endpoint
        // is edited falls back to `d_newX` — exact there, since every
        // route to an edited endpoint crosses an edit by definition.
        let mut separation_recomputed = 0usize;
        if !amb_pairs.is_empty() {
            let mut deg = vec![0u32; n_slots];
            for &(g, h, _, _) in &amb_pairs {
                deg[sc.slot[g as usize] as usize] += 1;
                deg[sc.slot[h as usize] as usize] += 1;
            }
            let mut chosen = vec![false; n_slots];
            // (cover slot, pair index), grouped by the sort so every
            // cover endpoint's pairs drain off one BFS.
            let mut grouped: Vec<(u32, u32)> = Vec::with_capacity(amb_pairs.len());
            #[allow(clippy::cast_possible_truncation)]
            for (i, &(g, h, _, _)) in amb_pairs.iter().enumerate() {
                let (gs, hs) = (sc.slot[g as usize] as usize, sc.slot[h as usize] as usize);
                let cover = if chosen[gs] {
                    gs
                } else if chosen[hs] {
                    hs
                } else if deg[gs] >= deg[hs] {
                    chosen[gs] = true;
                    gs
                } else {
                    chosen[hs] = true;
                    hs
                };
                grouped.push((cover as u32, i as u32));
            }
            grouped.sort_unstable();
            sc.bfs_stamp.resize(alive, 0);
            sc.bfs_dist.resize(alive, 0);
            let mut i = 0usize;
            while i < grouped.len() {
                let cs = grouped[i].0;
                let e = sc.nodes[cs as usize];
                sc.bfs_epoch += 1;
                let epoch = sc.bfs_epoch;
                for &x in &xs {
                    sc.bfs_stamp[x as usize] = epoch;
                    sc.bfs_dist[x as usize] = rho;
                }
                sc.bfs_queue.clear();
                if sc.bfs_stamp[e as usize] != epoch {
                    sc.bfs_stamp[e as usize] = epoch;
                    sc.bfs_dist[e as usize] = 0;
                    sc.bfs_queue.push(e);
                }
                let (mut head, mut tail) = (0usize, sc.bfs_queue.len());
                let mut d = 0u32;
                while d < bound && head < tail {
                    d += 1;
                    for qi in head..tail {
                        let u = sc.bfs_queue[qi] as usize;
                        for &v in cones.fanin(u).iter().chain(cones.fanout(u)) {
                            let vi = v as usize;
                            if sc.bfs_stamp[vi] != epoch {
                                sc.bfs_stamp[vi] = epoch;
                                sc.bfs_dist[vi] = d;
                                sc.bfs_queue.push(v);
                            }
                        }
                    }
                    head = tail;
                    tail = sc.bfs_queue.len();
                }
                separation_recomputed += 1;
                while i < grouped.len() && grouped[i].0 == cs {
                    let (g, h, d_old, d_new_x) = amb_pairs[grouped[i].1 as usize];
                    i += 1;
                    let p = if g == e { h } else { g };
                    let d_avoid = if sc.bfs_stamp[p as usize] == epoch {
                        sc.bfs_dist[p as usize]
                    } else {
                        rho
                    };
                    let d_new = d_avoid.min(d_new_x);
                    debug_assert!(
                        d_new >= d_old,
                        "an ambiguous pair's surviving route never shortens"
                    );
                    if d_new == d_old {
                        continue;
                    }
                    let dw = weight(d_new) - weight(d_old);
                    touch(sc, rows, row_log, g, h, d_new, dw);
                    touch(sc, rows, row_log, h, g, d_new, dw);
                }
            }
        }
        for s in 0..n_slots {
            let dw = sc.delta[s];
            if dw == 0 {
                continue;
            }
            let g = sc.nodes[s];
            let old_w = near_w[g as usize];
            #[allow(clippy::cast_sign_loss)]
            let new_w = (i64::try_from(old_w).unwrap_or(i64::MAX) + dw) as u64;
            w_log.push((g, old_w));
            *sum_w += new_w;
            *sum_w -= old_w;
            near_w[g as usize] = new_w;
        }
        separation_recomputed
    }

    /// Rebuilds the lazy (level, id)-sorted topological order and the
    /// nominal critical-path delay when stale.
    fn settle_structure(&mut self) {
        if self.order_dirty {
            let n = self.kinds.len();
            self.order = (0..n as u32).collect();
            let cones = &self.cones;
            self.order
                .sort_unstable_by_key(|&i| (cones.level(i as usize), i));
            self.order_dirty = false;
        }
        if self.nominal_dirty {
            for &i in &self.order {
                let i = i as usize;
                let in_max = self
                    .cones
                    .fanin(i)
                    .iter()
                    .map(|&f| self.arr[f as usize])
                    .fold(0.0f64, f64::max);
                self.arr[i] = in_max + self.tables.delay_ps[i];
            }
            self.nominal_delay_ps = self
                .outputs
                .iter()
                .map(|&o| self.arr[o as usize])
                .fold(0.0f64, f64::max);
            self.nominal_dirty = false;
        }
    }

    /// Full cost breakdown of the current (patched) structure as one
    /// module — bit-exact with `Evaluated::new(&EvalContext::new(
    /// materialized, …), single module).cost()`.
    pub fn cost(&mut self) -> CostBreakdown {
        self.settle_structure();
        let n = self.kinds.len();
        // Histogram horizon: one past the largest transition time.
        let horizon = self
            .times
            .iter()
            .filter_map(TimeSet::max)
            .max()
            .map_or(1, |t| t as usize + 1);
        self.hist_cur.clear();
        self.hist_cur.resize(horizon, 0.0);
        self.hist_cnt.clear();
        self.hist_cnt.resize(horizon, 0);
        let mut leakage_na = 0.0f64;
        let mut rail_cap_ff = 0.0f64;
        let mut cell_area = 0.0f64;
        for i in 0..n {
            if self.kinds[i].is_none() {
                continue;
            }
            for t in self.times[i].iter() {
                self.hist_cur[t as usize] += self.tables.peak_current_ua[i];
                self.hist_cnt[t as usize] += 1;
            }
            leakage_na += self.tables.leakage_na[i];
            rail_cap_ff += self.tables.c_rail_ff[i];
            cell_area += self.tables.area[i];
        }
        let pairs = (self.gate_count as u64) * (self.gate_count as u64 - 1) / 2;
        debug_assert_eq!(self.sum_w % 2, 0, "neighbour weights are symmetric");
        let separation = u64::from(self.ctx.config.rho) * pairs - self.sum_w / 2;
        let stats = ModuleStats {
            current_hist: Vec::new(),
            count_hist: Vec::new(),
            peak_current_ua: self.hist_cur.iter().copied().fold(0.0, f64::max),
            peak_activity: self.hist_cnt.iter().copied().max().unwrap_or(0),
            leakage_na,
            rail_cap_ff,
            cell_area,
            separation,
        };
        let sens = sensor_figures(self.ctx, &stats);
        // Degraded longest path over the current structure: one weight
        // pass plus one level-ordered arrival sweep.
        for i in 0..n {
            self.weight[i] = match self.kinds[i] {
                Some(_) => degraded_weight(
                    self.tables.delay_ps[i],
                    self.tables.r_on_kohm[i],
                    self.tables.c_out_ff[i],
                    &stats,
                    &sens,
                ),
                None => 0.0,
            };
        }
        for &i in &self.order {
            let i = i as usize;
            let in_max = self
                .cones
                .fanin(i)
                .iter()
                .map(|&f| self.arr[f as usize])
                .fold(0.0f64, f64::max);
            self.arr[i] = in_max + self.weight[i];
        }
        let dbic_ps = self
            .outputs
            .iter()
            .map(|&o| self.arr[o as usize])
            .fold(0.0f64, f64::max);
        // The `arr` scratch now holds degraded arrivals; the nominal sweep
        // in `settle_structure` rewrites it next time, keyed by
        // `nominal_dirty`.
        self.nominal_dirty = true;
        assemble_cost(
            1,
            sens.violations,
            0.0 + sens.area,
            separation,
            0.0f64.max(sens.delta_ps),
            dbic_ps,
            self.nominal_delay_ps,
        )
    }

    /// Weighted scalar cost of the current structure (the resynthesis
    /// objective).
    #[must_use]
    pub fn total_cost(&mut self) -> f64 {
        self.cost()
            .total(&self.ctx.config.weights, self.ctx.config.violation_penalty)
    }

    /// Recomputes every derived quantity from scratch and asserts it
    /// matches the incrementally maintained state — the correctness
    /// oracle for tests.
    ///
    /// # Panics
    ///
    /// Panics if any maintained quantity drifted from the ground truth.
    pub fn verify_consistency(&mut self) {
        self.settle_structure();
        let n = self.kinds.len();
        let rho = self.ctx.config.rho;
        // Electrical rows.
        for i in 0..n {
            if let Some(kind) = self.kinds[i] {
                let cell = self.ctx.library.cell(kind, self.cones.fanin(i).len());
                assert_eq!(self.tables.delay_ps[i].to_bits(), cell.delay_ps.to_bits());
                assert_eq!(
                    self.tables.peak_current_ua[i].to_bits(),
                    cell.peak_current_ua.to_bits()
                );
            }
        }
        // Transition times, recomputed in topological order.
        let mut want: Vec<TimeSet> = vec![TimeSet::new(); n];
        for &i in &self.order {
            let i = i as usize;
            want[i] = if self.kinds[i].is_none() {
                TimeSet::singleton(0)
            } else {
                let d = self.tables.grid_delay[i];
                let mut acc = TimeSet::new();
                for &f in self.cones.fanin(i) {
                    acc.union_with_shifted(&want[f as usize], d);
                }
                acc
            };
            assert_eq!(want[i], self.times[i], "transition times of node {i}");
        }
        // Separation neighbour weights.
        let mut sum = 0u64;
        for g in 0..n as u32 {
            if self.kinds[g as usize].is_none() {
                assert_eq!(self.near_w[g as usize], 0);
                continue;
            }
            let kinds = &self.kinds;
            let mut w = 0u64;
            self.cones.bounded_bfs(g, rho.saturating_sub(1), |m, d| {
                if kinds[m as usize].is_some() {
                    w += u64::from(rho - d);
                }
            });
            assert_eq!(w, self.near_w[g as usize], "neighbour weight of gate {g}");
            sum += w;
        }
        assert_eq!(sum, self.sum_w);
        // Levels.
        for i in 0..n {
            assert_eq!(
                self.cones.level(i),
                self.cones.local_level(i),
                "level of node {i}"
            );
        }
        // Maintained ΔW rows against ground-truth bounded BFS.
        let ResynthEval {
            ref mut cones,
            ref kinds,
            ref rows,
            ..
        } = *self;
        if let Some(rows) = rows.as_ref() {
            let mut truth: Vec<(u32, u32)> = Vec::new();
            for g in 0..n as u32 {
                truth.clear();
                if kinds[g as usize].is_some() {
                    cones.bounded_bfs(g, rho.saturating_sub(1), |m, d| {
                        if kinds[m as usize].is_some() {
                            truth.push((m, d));
                        }
                    });
                    truth.sort_unstable();
                }
                assert_eq!(truth, rows[g as usize], "near row of gate {g}");
            }
        }
    }
}

/// Looks one partner up in a maintained near row (`ρ` when out of
/// bound).
fn row_dist(row: &[(u32, u32)], partner: u32, rho: u32) -> u32 {
    match row.binary_search_by_key(&partner, |e| e.0) {
        Ok(i) => row[i].1,
        Err(_) => rho,
    }
}

/// Writes one `(partner, distance)` entry of a maintained near row:
/// insert or update when `d` is in bound, remove when the pair left the
/// bound.
fn set_row_entry(row: &mut Vec<(u32, u32)>, partner: u32, d: u32, rho: u32) {
    match row.binary_search_by_key(&partner, |e| e.0) {
        Ok(i) => {
            if d >= rho {
                row.remove(i);
            } else {
                row[i].1 = d;
            }
        }
        Err(i) => {
            if d < rho {
                row.insert(i, (partner, d));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PartitionConfig;
    use crate::evaluator::Evaluated;
    use crate::partition::Partition;
    use iddq_celllib::Library;
    use iddq_netlist::patch::materialize;
    use iddq_netlist::{data, Netlist};

    fn rebuild_cost(nl: &Netlist, lib: &Library, cfg: &PartitionConfig) -> f64 {
        let ctx = EvalContext::new(nl, lib, cfg.clone());
        Evaluated::new(&ctx, Partition::single_module(nl)).total_cost()
    }

    #[test]
    fn fresh_eval_matches_evaluated_bitwise() {
        let lib = Library::generic_1um();
        let cfg = PartitionConfig::paper_default();
        for nl in [data::c17(), data::ripple_adder(6)] {
            let ctx = EvalContext::new(&nl, &lib, cfg.clone());
            let mut eval = ResynthEval::new(&ctx);
            let want = Evaluated::new(&ctx, Partition::single_module(&nl)).total_cost();
            assert_eq!(eval.total_cost().to_bits(), want.to_bits());
            eval.verify_consistency();
        }
    }

    #[test]
    fn kind_flip_matches_rebuild_and_rolls_back() {
        let lib = Library::generic_1um();
        let cfg = PartitionConfig::paper_default();
        let nl = data::c17();
        let ctx = EvalContext::new(&nl, &lib, cfg.clone());
        let mut eval = ResynthEval::new(&ctx);
        let base = eval.total_cost();
        let patch = Patch::single(PatchOp::SetKind {
            gate: nl.find("22").unwrap(),
            kind: CellKind::And,
        });
        eval.apply(&patch).unwrap();
        eval.verify_consistency();
        let patched = eval.total_cost();
        let oracle = rebuild_cost(&materialize(&nl, &patch).unwrap(), &lib, &cfg);
        assert_eq!(patched.to_bits(), oracle.to_bits());
        eval.rollback();
        assert_eq!(eval.total_cost().to_bits(), base.to_bits());
        eval.verify_consistency();
    }

    #[test]
    fn region_rewrite_matches_rebuild_bitwise() {
        // The decomposition patch shape: insert a 2-input tree, rewire
        // the consumer — scored by patch vs a full rebuild of the
        // materialized candidate.
        let lib = Library::generic_1um();
        let cfg = PartitionConfig::paper_default();
        let nl = data::ripple_adder(5);
        let ctx = EvalContext::new(&nl, &lib, cfg.clone());
        let mut eval = ResynthEval::new(&ctx);
        let base = eval.total_cost();
        let gate = nl
            .gate_ids()
            .find(|&g| nl.node(g).fanin().len() >= 2)
            .unwrap();
        let leaves = nl.node(gate).fanin().to_vec();
        let n = nl.node_count() as u32;
        let patch = Patch {
            ops: vec![
                PatchOp::AddGate {
                    gate: NodeId(n),
                    kind: CellKind::And,
                    fanin: leaves.clone(),
                },
                PatchOp::AddGate {
                    gate: NodeId(n + 1),
                    kind: CellKind::Not,
                    fanin: vec![NodeId(n)],
                },
                PatchOp::SetFanin {
                    gate,
                    fanin: vec![NodeId(n + 1), leaves[0]],
                },
            ],
        };
        eval.apply(&patch).unwrap();
        eval.verify_consistency();
        let patched = eval.total_cost();
        let oracle = rebuild_cost(&materialize(&nl, &patch).unwrap(), &lib, &cfg);
        assert_eq!(patched.to_bits(), oracle.to_bits());
        eval.rollback();
        eval.verify_consistency();
        assert_eq!(eval.total_cost().to_bits(), base.to_bits());
        assert_eq!(eval.node_count(), nl.node_count());
    }

    #[test]
    fn rejected_patches_leave_the_evaluation_untouched() {
        let lib = Library::generic_1um();
        let cfg = PartitionConfig::paper_default();
        let nl = data::c17();
        let ctx = EvalContext::new(&nl, &lib, cfg.clone());
        let mut eval = ResynthEval::new(&ctx);
        let base = eval.total_cost();
        let g10 = nl.find("10").unwrap();
        let g22 = nl.find("22").unwrap();
        // Cycle.
        let err = eval
            .apply(&Patch::single(PatchOp::SetFanin {
                gate: g10,
                fanin: vec![g22, nl.find("3").unwrap()],
            }))
            .unwrap_err();
        assert!(matches!(err, PatchError::Cycle(_)));
        // Mid-patch failure after an insertion.
        let err = eval
            .apply(&Patch {
                ops: vec![
                    PatchOp::AddGate {
                        gate: NodeId(nl.node_count() as u32),
                        kind: CellKind::Not,
                        fanin: vec![g10],
                    },
                    PatchOp::SetKind {
                        gate: g10,
                        kind: CellKind::Not,
                    },
                ],
            })
            .unwrap_err();
        assert!(matches!(err, PatchError::BadArity { .. }));
        // Forces are rejected outright.
        let err = eval
            .apply(&Patch::single(PatchOp::SetForce {
                node: g10,
                force: Some(true),
            }))
            .unwrap_err();
        assert!(matches!(err, PatchError::Unsupported(_)));
        // The tail node 23 is a consumer-free gate, but it is a primary
        // output: popping it would dangle the output list.
        let tail = NodeId(nl.node_count() as u32 - 1);
        assert!(nl.outputs().contains(&tail));
        let err = eval
            .apply(&Patch::single(PatchOp::RemoveGate { gate: tail }))
            .unwrap_err();
        assert!(matches!(err, PatchError::NotRemovable(_)));
        assert_eq!(eval.node_count(), nl.node_count());
        assert_eq!(eval.pending_patches(), 0);
        eval.verify_consistency();
        assert_eq!(eval.total_cost().to_bits(), base.to_bits());
    }

    #[test]
    fn stacked_patches_roll_back_in_order() {
        let lib = Library::generic_1um();
        let cfg = PartitionConfig::paper_default();
        let nl = data::ripple_adder(4);
        let ctx = EvalContext::new(&nl, &lib, cfg.clone());
        let mut eval = ResynthEval::new(&ctx);
        let base = eval.total_cost();
        let gates: Vec<NodeId> = nl.gate_ids().collect();
        eval.apply(&Patch::single(PatchOp::AddGate {
            gate: NodeId(nl.node_count() as u32),
            kind: CellKind::Nand,
            fanin: vec![gates[0], gates[1]],
        }))
        .unwrap();
        let after_first = eval.total_cost();
        eval.apply(&Patch::single(PatchOp::SetKind {
            gate: gates[2],
            kind: CellKind::Nor,
        }))
        .unwrap();
        eval.rollback();
        assert_eq!(eval.total_cost().to_bits(), after_first.to_bits());
        eval.rollback();
        assert_eq!(eval.total_cost().to_bits(), base.to_bits());
        eval.verify_consistency();
    }

    #[test]
    fn remove_gate_routes_through_full_refresh_and_keeps_rows() {
        // A patch containing a removal falls back to the full ρ-ball
        // refresh, which must keep the maintained ΔW rows in sync (the
        // popped gate vanishes from every partner row).
        let lib = Library::generic_1um();
        let cfg = PartitionConfig::paper_default();
        let nl = data::ripple_adder(4);
        let ctx = EvalContext::new(&nl, &lib, cfg.clone());
        let mut eval = ResynthEval::new(&ctx);
        let base = eval.total_cost();
        let some_gate = nl.gate_ids().next().unwrap();
        let tail = NodeId(nl.node_count() as u32);
        eval.apply(&Patch::single(PatchOp::AddGate {
            gate: tail,
            kind: CellKind::Not,
            fanin: vec![some_gate],
        }))
        .unwrap();
        eval.verify_consistency();
        let grown = eval.total_cost();
        eval.apply(&Patch::single(PatchOp::RemoveGate { gate: tail }))
            .unwrap();
        eval.verify_consistency();
        assert_eq!(eval.total_cost().to_bits(), base.to_bits());
        eval.rollback();
        eval.verify_consistency();
        assert_eq!(eval.total_cost().to_bits(), grown.to_bits());
        eval.rollback();
        eval.verify_consistency();
        assert_eq!(eval.total_cost().to_bits(), base.to_bits());
    }

    #[test]
    fn distance_increasing_rewire_matches_rebuild_bitwise() {
        // Rewiring a gate away from its neighbourhood lengthens pairs
        // whose shortest route crossed it — the ambiguous case of the ΔW
        // classification, resolved by per-endpoint BFS fallbacks.
        let lib = Library::generic_1um();
        let cfg = PartitionConfig::paper_default();
        let nl = data::ripple_adder(6);
        let ctx = EvalContext::new(&nl, &lib, cfg.clone());
        let mut eval = ResynthEval::new(&ctx);
        let base = eval.total_cost();
        let inputs = nl.inputs().to_vec();
        let gate = nl
            .gate_ids()
            .filter(|&g| nl.node(g).fanin().len() == 2)
            .last()
            .unwrap();
        let patch = Patch::single(PatchOp::SetFanin {
            gate,
            fanin: vec![inputs[0], inputs[1]],
        });
        eval.apply(&patch).unwrap();
        eval.verify_consistency();
        let patched = eval.total_cost();
        let oracle = rebuild_cost(&materialize(&nl, &patch).unwrap(), &lib, &cfg);
        assert_eq!(patched.to_bits(), oracle.to_bits());
        eval.rollback();
        eval.verify_consistency();
        assert_eq!(eval.total_cost().to_bits(), base.to_bits());
    }

    #[test]
    fn full_refresh_reference_matches_incremental_bitwise() {
        let lib = Library::generic_1um();
        let cfg = PartitionConfig::paper_default();
        let nl = data::ripple_adder(5);
        let ctx = EvalContext::new(&nl, &lib, cfg.clone());
        let mut inc = ResynthEval::new(&ctx);
        let mut full = ResynthEval::new_full_refresh(&ctx);
        assert_eq!(inc.total_cost().to_bits(), full.total_cost().to_bits());
        let gate = nl
            .gate_ids()
            .find(|&g| nl.node(g).fanin().len() >= 2)
            .unwrap();
        let leaves = nl.node(gate).fanin().to_vec();
        let n = nl.node_count() as u32;
        let patch = Patch {
            ops: vec![
                PatchOp::AddGate {
                    gate: NodeId(n),
                    kind: CellKind::Nor,
                    fanin: leaves.clone(),
                },
                PatchOp::SetFanin {
                    gate,
                    fanin: vec![NodeId(n), leaves[1]],
                },
            ],
        };
        inc.apply(&patch).unwrap();
        full.apply(&patch).unwrap();
        assert_eq!(inc.total_cost().to_bits(), full.total_cost().to_bits());
        inc.verify_consistency();
        full.verify_consistency();
        inc.rollback();
        full.rollback();
        assert_eq!(inc.total_cost().to_bits(), full.total_cost().to_bits());
        inc.verify_consistency();
        full.verify_consistency();
    }

    #[test]
    fn commit_keeps_changes() {
        let lib = Library::generic_1um();
        let cfg = PartitionConfig::paper_default();
        let nl = data::c17();
        let ctx = EvalContext::new(&nl, &lib, cfg.clone());
        let mut eval = ResynthEval::new(&ctx);
        let patch = Patch::single(PatchOp::SetKind {
            gate: nl.find("16").unwrap(),
            kind: CellKind::And,
        });
        eval.apply(&patch).unwrap();
        let patched = eval.total_cost();
        eval.commit();
        assert_eq!(eval.pending_patches(), 0);
        assert_eq!(eval.total_cost().to_bits(), patched.to_bits());
    }

    #[test]
    fn committed_bulk_edit_rebuilds_rows_lazily() {
        // A removal always routes through the ball refresh, and on c17
        // the ball covers most of the circuit, so the maintained ΔW row
        // table is evicted; once that patch is *committed* nothing
        // restores the table. The next fast-path-eligible apply must
        // rebuild it lazily and land back on the incremental path,
        // bit-identical to a from-scratch rebuild of the same structure.
        let lib = Library::generic_1um();
        let cfg = PartitionConfig::paper_default();
        let nl = data::c17();
        let ctx = EvalContext::new(&nl, &lib, cfg.clone());
        let mut eval = ResynthEval::new(&ctx);
        let some_gate = nl.gate_ids().next().unwrap();
        let tail = NodeId(nl.node_count() as u32);
        eval.apply(&Patch::single(PatchOp::AddGate {
            gate: tail,
            kind: CellKind::Not,
            fanin: vec![some_gate],
        }))
        .unwrap();
        eval.commit();
        eval.apply(&Patch::single(PatchOp::RemoveGate { gate: tail }))
            .unwrap();
        assert!(
            eval.rows.is_none(),
            "a region-sized removal evicts the row table"
        );
        eval.commit();
        assert!(
            eval.rows.is_none(),
            "commit makes the eviction permanent until the next small apply"
        );
        // Structure is back to the original c17, so original-netlist
        // oracles apply. The next small edit rebuilds the table lazily.
        let patch = Patch::single(PatchOp::SetKind {
            gate: nl.find("22").unwrap(),
            kind: CellKind::And,
        });
        eval.apply(&patch).unwrap();
        assert!(
            eval.rows.is_some(),
            "a fast-path-eligible apply rebuilds the evicted table"
        );
        eval.verify_consistency();
        let oracle = rebuild_cost(&materialize(&nl, &patch).unwrap(), &lib, &cfg);
        assert_eq!(eval.total_cost().to_bits(), oracle.to_bits());
        eval.rollback();
        eval.verify_consistency();
        let base = rebuild_cost(&nl, &lib, &cfg);
        assert_eq!(eval.total_cost().to_bits(), base.to_bits());
        // The full-refresh reference opts out of rows entirely: no lazy
        // rebuild may ever sneak the incremental path back in.
        let mut full = ResynthEval::new_full_refresh(&ctx);
        full.apply(&patch).unwrap();
        full.commit();
        full.apply(&Patch::single(PatchOp::SetKind {
            gate: nl.find("16").unwrap(),
            kind: CellKind::Nand,
        }))
        .unwrap();
        assert!(full.rows.is_none(), "full-refresh reference stays rowless");
        assert_eq!(
            eval.total_cost().to_bits(),
            ResynthEval::new(&ctx).total_cost().to_bits()
        );
    }
}
