//! The "standard partitioning" baseline of §5.
//!
//! "The process of standard partitioning starts with a gate as near to a
//! primary input as possible. New gates are added until a specified size
//! of the module is generated … The new gate added is that gate whose path
//! length to all the gates already clustered gives a minimum sum. If there
//! are multiple choices, a gate of this set is selected such that the path
//! lengths to all the gates not yet clustered give a maximum sum. A
//! partition generated this way contains modules such that their gates are
//! connected most closely."
//!
//! Module sizes are supplied by the caller; the paper "takes the numbers
//! obtained by the evolution based algorithm" so that both methods produce
//! the same number of modules and the comparison isolates module *shape*.

use iddq_netlist::{levelize, NodeId};

use crate::context::EvalContext;
use crate::partition::Partition;

/// Builds the standard partition with the given module sizes.
///
/// Path lengths are the ρ-saturated separation distances of §3.3 (the
/// same metric the cost function uses).
///
/// # Panics
///
/// Panics if `module_sizes` is empty, contains a zero, or does not sum to
/// the gate count.
#[must_use]
// `module_sizes` sums to the gate count (the caller derives it from
// `estimate_module_count`), so a free gate exists whenever a cluster
// still needs members, and the resulting groups form an exact cover.
#[allow(clippy::expect_used)]
pub fn standard_partition(ctx: &EvalContext<'_>, module_sizes: &[usize]) -> Partition {
    let netlist = ctx.netlist;
    let n_gates = netlist.gate_count();
    assert!(!module_sizes.is_empty(), "need at least one module");
    assert!(
        module_sizes.iter().all(|&s| s > 0),
        "module sizes must be positive"
    );
    assert_eq!(
        module_sizes.iter().sum::<usize>(),
        n_gates,
        "module sizes must cover the gates exactly"
    );

    let levels = levelize::levels(netlist);
    let sep = ctx.separation();
    let rho = u64::from(sep.rho());

    // Sum of saturated distances from each gate to *all* gates: most pairs
    // saturate at ρ, so start from ρ·(n−1) and subtract the near-map
    // corrections.
    let gates: Vec<NodeId> = netlist.gate_ids().collect();
    let mut total_sum: Vec<u64> = vec![0; netlist.node_count()];
    for &g in &gates {
        let mut sum = rho * (n_gates as u64 - 1);
        for &h in &gates {
            if h != g {
                let d = u64::from(sep.distance(g, h));
                sum -= rho - d;
            }
        }
        total_sum[g.index()] = sum;
    }

    let mut free: Vec<bool> = netlist.node_ids().map(|id| netlist.is_gate(id)).collect();
    // Running sum of distances from each free gate to the current cluster.
    let mut sum_clustered: Vec<u64> = vec![0; netlist.node_count()];
    let mut groups: Vec<Vec<NodeId>> = Vec::with_capacity(module_sizes.len());

    for &size in module_sizes {
        for s in sum_clustered.iter_mut() {
            *s = 0;
        }
        // Seed: free gate nearest a primary input (lowest level; stable
        // tie-break by id for determinism).
        let seed = gates
            .iter()
            .copied()
            .filter(|g| free[g.index()])
            .min_by_key(|g| (levels[g.index()], g.index()))
            .expect("sizes sum to the number of free gates");
        let mut cluster = vec![seed];
        free[seed.index()] = false;
        update_sums(&gates, &free, &mut sum_clustered, sep, seed);

        while cluster.len() < size {
            // Minimum summed distance to the cluster; ties: maximum summed
            // distance to everything else (≈ unclustered gates).
            let next = gates
                .iter()
                .copied()
                .filter(|g| free[g.index()])
                .min_by(|&a, &b| {
                    let ka = sum_clustered[a.index()];
                    let kb = sum_clustered[b.index()];
                    ka.cmp(&kb)
                        .then_with(|| {
                            let ua = total_sum[a.index()] - sum_clustered[a.index()];
                            let ub = total_sum[b.index()] - sum_clustered[b.index()];
                            ub.cmp(&ua) // max unclustered sum first
                        })
                        .then_with(|| a.index().cmp(&b.index()))
                })
                .expect("sizes sum to the number of free gates");
            cluster.push(next);
            free[next.index()] = false;
            update_sums(&gates, &free, &mut sum_clustered, sep, next);
        }
        groups.push(cluster);
    }
    Partition::from_groups(netlist, groups).expect("greedy clustering covers all gates once")
}

fn update_sums(
    gates: &[NodeId],
    free: &[bool],
    sum_clustered: &mut [u64],
    sep: &iddq_netlist::separation::SeparationOracle,
    joined: NodeId,
) {
    for &g in gates {
        if free[g.index()] {
            sum_clustered[g.index()] += u64::from(sep.distance(g, joined));
        }
    }
}

/// Convenience: equal-size split (remainder spread over the first
/// modules), matching a target module count.
///
/// # Panics
///
/// Panics if `k == 0` or `k > gate count`.
#[must_use]
pub fn equal_sizes(n_gates: usize, k: usize) -> Vec<usize> {
    assert!(k > 0 && k <= n_gates, "need 1 ≤ k ≤ gates");
    let base = n_gates / k;
    let rem = n_gates % k;
    (0..k).map(|i| base + usize::from(i < rem)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PartitionConfig;
    use crate::evaluator::Evaluated;
    use iddq_celllib::Library;
    use iddq_netlist::data;

    fn test_library() -> &'static Library {
        static LIB: std::sync::OnceLock<Library> = std::sync::OnceLock::new();
        LIB.get_or_init(Library::generic_1um)
    }

    fn ctx_of(nl: &iddq_netlist::Netlist) -> EvalContext<'_> {
        EvalContext::new(nl, test_library(), PartitionConfig::paper_default())
    }

    #[test]
    fn covers_gates_with_exact_sizes() {
        let nl = data::ripple_adder(10);
        let ctx = ctx_of(&nl);
        let sizes = equal_sizes(nl.gate_count(), 5);
        let p = standard_partition(&ctx, &sizes);
        p.validate(&nl).unwrap();
        let mut got = p.module_sizes();
        got.sort_unstable();
        let mut want = sizes;
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn equal_sizes_sums() {
        assert_eq!(equal_sizes(10, 3), vec![4, 3, 3]);
        assert_eq!(equal_sizes(9, 3), vec![3, 3, 3]);
        assert_eq!(equal_sizes(1, 1), vec![1]);
    }

    #[test]
    fn clusters_are_locally_tight() {
        // Standard clustering groups closely connected gates: its mean
        // intra-module separation must beat a deliberately interleaved
        // partition of the same sizes.
        let nl = data::ripple_adder(12);
        let ctx = ctx_of(&nl);
        let k = 4;
        let sizes = equal_sizes(nl.gate_count(), k);
        let std_p = standard_partition(&ctx, &sizes);
        let gates: Vec<_> = nl.gate_ids().collect();
        let striped: Vec<Vec<_>> = (0..k)
            .map(|m| {
                gates
                    .iter()
                    .copied()
                    .enumerate()
                    .filter(|(i, _)| i % k == m)
                    .map(|(_, g)| g)
                    .collect()
            })
            .collect();
        let striped_p = Partition::from_groups(&nl, striped).unwrap();
        let sep_std: u64 = Evaluated::new(&ctx, std_p)
            .stats()
            .iter()
            .map(|s| s.separation)
            .sum();
        let sep_striped: u64 = Evaluated::new(&ctx, striped_p)
            .stats()
            .iter()
            .map(|s| s.separation)
            .sum();
        assert!(sep_std < sep_striped, "{sep_std} vs {sep_striped}");
    }

    #[test]
    fn deterministic() {
        let nl = data::ripple_adder(8);
        let ctx = ctx_of(&nl);
        let sizes = equal_sizes(nl.gate_count(), 3);
        assert_eq!(
            standard_partition(&ctx, &sizes),
            standard_partition(&ctx, &sizes)
        );
    }

    #[test]
    #[should_panic(expected = "cover the gates exactly")]
    fn wrong_total_panics() {
        let nl = data::c17();
        let ctx = ctx_of(&nl);
        let _ = standard_partition(&ctx, &[2, 2]);
    }
}

#[cfg(test)]
mod edge_tests {
    use super::*;
    use crate::config::PartitionConfig;
    use iddq_celllib::Library;
    use iddq_netlist::data;

    #[test]
    fn all_singleton_modules() {
        let nl = data::c17();
        let lib = Library::generic_1um();
        let ctx = EvalContext::new(&nl, &lib, PartitionConfig::paper_default());
        let sizes = vec![1usize; nl.gate_count()];
        let p = standard_partition(&ctx, &sizes);
        p.validate(&nl).unwrap();
        assert_eq!(p.module_count(), nl.gate_count());
        assert!(p.module_sizes().iter().all(|&s| s == 1));
    }

    #[test]
    fn single_covering_module() {
        let nl = data::c17();
        let lib = Library::generic_1um();
        let ctx = EvalContext::new(&nl, &lib, PartitionConfig::paper_default());
        let p = standard_partition(&ctx, &[nl.gate_count()]);
        assert_eq!(p.module_count(), 1);
        p.validate(&nl).unwrap();
    }

    #[test]
    fn seeds_start_near_primary_inputs() {
        // The first module's seed is the free gate closest to a PI: for
        // c17 that is a level-1 gate (10 or 11).
        let nl = data::c17();
        let lib = Library::generic_1um();
        let ctx = EvalContext::new(&nl, &lib, PartitionConfig::paper_default());
        let p = standard_partition(&ctx, &[3, 3]);
        let lv = iddq_netlist::levelize::levels(&nl);
        let min_level_in_first = p.module(0).iter().map(|g| lv[g.index()]).min().unwrap();
        assert_eq!(min_level_in_first, 1);
    }
}
