//! Start-partition construction (§4.2).
//!
//! "The start partitions are determined by simplifying the cost function
//! such that just c₁ (area overhead) and c₂ (delay overhead) are
//! considered. First the appropriate module size is estimated … Then gates
//! are clustered to modules as follows: starting from a gate close to a
//! primary input gate, chains are formed towards a primary output. The
//! process stops if this path reaches a primary output, or if there is no
//! free gate anymore, or if the maximum module size is reached. Modules
//! are formed as long as there are free gates. Using different chains the
//! required number of start partitions is constructed."

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use iddq_netlist::{levelize, NodeId};

use crate::context::EvalContext;
use crate::partition::Partition;

/// Estimates the target module size from the constraints and average
/// electrical parameters (the paper's "evaluating c₁ and c₂ by average
/// numbers … by abstraction from structural information").
///
/// The binding bound in practice is discriminability: a module may leak at
/// most `I_DDQ,th / d`, so at the mean per-gate leakage it may contain at
/// most that many gates; a 10 % safety margin absorbs leakage variance
/// between cell types.
#[must_use]
pub fn estimate_module_size(ctx: &EvalContext<'_>) -> usize {
    let n = ctx.gates.len();
    let mean_leak_na = ctx.mean_gate_leakage_na();
    if mean_leak_na <= 0.0 {
        return n.max(1);
    }
    let budget_na = ctx.technology.iddq_threshold_ua * 1000.0 / ctx.config.d_min;
    let by_leakage = (0.9 * budget_na / mean_leak_na).floor() as usize;
    by_leakage.clamp(1, n.max(1))
}

/// Number of modules implied by [`estimate_module_size`], with head-room
/// for the evolution algorithm (which can merge modules by emptying them
/// but never split one).
#[must_use]
pub fn estimate_module_count(ctx: &EvalContext<'_>) -> usize {
    let n = ctx.gates.len();
    let size = estimate_module_size(ctx);
    let needed = n.div_ceil(size);
    // The evolution strategy can *merge* modules (a Monte-Carlo move that
    // empties a module deletes it) but never split one, so start with
    // head-room above the constrained minimum: ~30 % extra modules, and
    // never fewer than three (when the circuit has ≥ 3 gates) so small
    // CUTs still explore K > 1 — the paper's own C17 example starts from
    // three modules.
    let with_headroom = (needed + 1).max(3);
    with_headroom.min(n.max(1))
}

/// Builds one chain-grown start partition.
///
/// Chains start at the free gate closest to the primary inputs (random
/// tie-break) and repeatedly step to a free fanout gate, preferring steps
/// that lead towards a primary output; gates along the way join the
/// current module until `module_size` is reached, whereupon a new module
/// opens. Every gate ends up in exactly one module.
///
/// # Panics
///
/// Panics if the netlist has no gates or `module_size == 0`.
#[must_use]
// `remaining` counts exactly the free gates, so the seed lookup and
// the non-empty max over candidates cannot miss, and the chains
// cover every gate exactly once.
#[allow(clippy::expect_used)]
pub fn chain_partition(ctx: &EvalContext<'_>, module_size: usize, seed: u64) -> Partition {
    assert!(module_size > 0, "module size must be positive");
    let netlist = ctx.netlist;
    assert!(netlist.gate_count() > 0, "netlist has no gates");
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x5a17);
    let levels = levelize::levels(netlist);

    let mut free: Vec<bool> = netlist.node_ids().map(|id| netlist.is_gate(id)).collect();
    let mut remaining = netlist.gate_count();
    // Free gates sorted by level (shallow first); random jitter for
    // diversity between start partitions.
    let mut order: Vec<NodeId> = netlist.gate_ids().collect();
    order.sort_by_cached_key(|g| (levels[g.index()], rng.gen::<u32>()));

    let mut groups: Vec<Vec<NodeId>> = Vec::new();
    let mut current: Vec<NodeId> = Vec::new();

    while remaining > 0 {
        // Start a chain at the shallowest free gate.
        let start = *order
            .iter()
            .find(|g| free[g.index()])
            .expect("remaining > 0 implies a free gate exists");
        let mut walker = Some(start);
        while let Some(g) = walker {
            free[g.index()] = false;
            remaining -= 1;
            current.push(g);
            if current.len() >= module_size {
                groups.push(std::mem::take(&mut current));
            }
            // Step towards an output through a free fanout gate.
            let mut candidates: Vec<NodeId> = netlist
                .fanout(g)
                .iter()
                .copied()
                .filter(|s| free[s.index()])
                .collect();
            walker = if candidates.is_empty() {
                None
            } else {
                // Prefer deeper successors (towards POs); random among the
                // deepest for diversity.
                let deepest = candidates
                    .iter()
                    .map(|c| levels[c.index()])
                    .max()
                    .expect("non-empty");
                candidates.retain(|c| levels[c.index()] == deepest);
                Some(candidates[rng.gen_range(0..candidates.len())])
            };
        }
    }
    if !current.is_empty() {
        groups.push(current);
    }
    Partition::from_groups(netlist, groups).expect("chain clustering covers all gates once")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PartitionConfig;
    use iddq_celllib::Library;
    use iddq_netlist::data;

    fn test_library() -> &'static Library {
        static LIB: std::sync::OnceLock<Library> = std::sync::OnceLock::new();
        LIB.get_or_init(Library::generic_1um)
    }

    fn ctx_of(nl: &iddq_netlist::Netlist) -> EvalContext<'_> {
        EvalContext::new(nl, test_library(), PartitionConfig::paper_default())
    }

    #[test]
    fn module_size_bounded_by_discriminability() {
        let nl = data::ripple_adder(32);
        let ctx = ctx_of(&nl);
        let size = estimate_module_size(&ctx);
        let mean = ctx.mean_gate_leakage_na();
        assert!(size as f64 * mean <= 100.0, "module leakage within budget");
        assert!(size >= 1);
    }

    #[test]
    fn chain_partition_is_valid_cover() {
        let nl = data::ripple_adder(16);
        let ctx = ctx_of(&nl);
        let p = chain_partition(&ctx, 10, 3);
        p.validate(&nl).unwrap();
        assert!(p.module_count() >= nl.gate_count() / 10);
        for size in p.module_sizes() {
            assert!(size <= 10);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let nl = data::ripple_adder(16);
        let ctx = ctx_of(&nl);
        let a = chain_partition(&ctx, 10, 1);
        let b = chain_partition(&ctx, 10, 2);
        assert_ne!(a, b);
        let a2 = chain_partition(&ctx, 10, 1);
        assert_eq!(a, a2, "same seed reproduces");
    }

    #[test]
    fn module_count_has_headroom() {
        let nl = data::ripple_adder(64);
        let ctx = ctx_of(&nl);
        let size = estimate_module_size(&ctx);
        let needed = nl.gate_count().div_ceil(size);
        if needed > 1 {
            assert!(estimate_module_count(&ctx) > needed);
        }
    }

    #[test]
    fn chains_prefer_connected_runs() {
        // In a pure chain circuit the partition must consist of contiguous
        // runs: every module's gates form a path.
        let mut b = iddq_netlist::NetlistBuilder::new("chain");
        let mut prev = b.add_input("i");
        for k in 0..30 {
            prev = b
                .add_gate(format!("g{k}"), iddq_netlist::CellKind::Not, vec![prev])
                .unwrap();
        }
        b.mark_output(prev);
        let nl = b.build().unwrap();
        let ctx = ctx_of(&nl);
        let p = chain_partition(&ctx, 10, 0);
        assert_eq!(p.module_count(), 3);
        for m in 0..3 {
            let mut idx: Vec<usize> = p.module(m).iter().map(|g| g.index()).collect();
            idx.sort_unstable();
            for w in idx.windows(2) {
                assert_eq!(w[1], w[0] + 1, "contiguous chain expected");
            }
        }
    }
}
