//! The two-dimensional cell-array CUT of the paper's Figure 2.
//!
//! Figure 2 shows a CUT with an array structure built from three cell
//! types `C1, C2, C3`. Signals flow left to right, so all cells of one
//! *column* switch simultaneously while the cells of one *row* switch at
//! staggered times. Partition 1 (row-wise groups) therefore has a smaller
//! per-group maximum transient current than Partition 2 (column-wise
//! groups): the bypass devices can be smaller for the same virtual-rail
//! perturbation limit, and the total BIC sensor area shrinks.
//!
//! [`cell_array`] builds the netlist; [`row_partition`] / [`col_partition`]
//! build the two partitions as gate-id groups.

// The generator mints fresh, unique names and in-range fan-ins by
// construction, so builder calls cannot fail; `cell_at` documents its
// panic contract on out-of-range coordinates.
#![allow(clippy::expect_used)]

use iddq_netlist::{CellKind, Netlist, NetlistBuilder, NodeId};

/// Cell kinds used for the three row-repeating cell types `C1, C2, C3`.
///
/// They are chosen to have clearly different electrical weight in the
/// generic library (a 2-input NAND, a 3-input NOR, a 2-input XOR).
pub const ARRAY_CELL_KINDS: [CellKind; 3] = [CellKind::Nand, CellKind::Nor, CellKind::Xor];

/// Builds a `rows × cols` cell array.
///
/// Row `r` is a horizontal pipeline: its column-`c` cell consumes the
/// row's previous cell plus the neighbouring row's previous cell (wrapping
/// vertically), mimicking the dense local routing of a datapath array. The
/// cell *type* cycles per row as `C1, C2, C3` (so rows are homogeneous,
/// like a bit-slice), matching Figure 2's drawing where each row repeats
/// one cell type.
///
/// # Panics
///
/// Panics if `rows < 2` or `cols < 1`.
#[must_use]
pub fn cell_array(rows: usize, cols: usize) -> Netlist {
    assert!(rows >= 2, "need at least two rows");
    assert!(cols >= 1, "need at least one column");
    let mut b = NetlistBuilder::new(format!("array{rows}x{cols}"));
    let pis: Vec<NodeId> = (0..rows).map(|r| b.add_input(format!("in{r}"))).collect();
    let mut prev_col = pis.clone();
    let mut all: Vec<Vec<NodeId>> = Vec::with_capacity(cols);
    for c in 0..cols {
        let mut this_col = Vec::with_capacity(rows);
        for r in 0..rows {
            let kind = ARRAY_CELL_KINDS[r % ARRAY_CELL_KINDS.len()];
            let up = prev_col[(r + rows - 1) % rows];
            let fanin = match kind {
                CellKind::Nor => vec![prev_col[r], up, prev_col[(r + 1) % rows]],
                _ => vec![prev_col[r], up],
            };
            let id = b
                .add_gate(format!("c{r}_{c}"), kind, fanin)
                .expect("array names unique");
            this_col.push(id);
        }
        prev_col = this_col.clone();
        all.push(this_col);
    }
    for &o in &prev_col {
        b.mark_output(o);
    }
    b.build().expect("array is structurally valid")
}

/// Gate id at `(row, col)` of an array built by [`cell_array`].
///
/// # Panics
///
/// Panics if the coordinates are out of range for `netlist`.
#[must_use]
pub fn cell_at(netlist: &Netlist, row: usize, col: usize) -> NodeId {
    netlist
        .find(&format!("c{row}_{col}"))
        .expect("coordinates within the generated array")
}

/// Partition 1 of Figure 2: one group per *row* (cells that switch at
/// staggered times — different columns — share a sensor).
#[must_use]
pub fn row_partition(netlist: &Netlist, rows: usize, cols: usize) -> Vec<Vec<NodeId>> {
    (0..rows)
        .map(|r| (0..cols).map(|c| cell_at(netlist, r, c)).collect())
        .collect()
}

/// Partition 2 of Figure 2: one group per *column* (cells that switch
/// simultaneously share a sensor).
#[must_use]
pub fn col_partition(netlist: &Netlist, rows: usize, cols: usize) -> Vec<Vec<NodeId>> {
    (0..cols)
        .map(|c| (0..rows).map(|r| cell_at(netlist, r, c)).collect())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use iddq_netlist::levelize;

    #[test]
    fn array_counts() {
        let nl = cell_array(6, 9);
        assert_eq!(nl.gate_count(), 54);
        assert_eq!(nl.num_inputs(), 6);
        assert_eq!(nl.num_outputs(), 6);
    }

    #[test]
    fn array_depth_equals_cols() {
        let nl = cell_array(4, 7);
        assert_eq!(levelize::depth(&nl), 7);
    }

    #[test]
    fn column_cells_share_level() {
        let nl = cell_array(5, 4);
        let lv = levelize::levels(&nl);
        for c in 0..4 {
            let expect = lv[cell_at(&nl, 0, c).index()];
            for r in 1..5 {
                assert_eq!(lv[cell_at(&nl, r, c).index()], expect);
            }
        }
    }

    #[test]
    fn partitions_cover_all_gates_disjointly() {
        let nl = cell_array(6, 6);
        for part in [row_partition(&nl, 6, 6), col_partition(&nl, 6, 6)] {
            let mut seen = std::collections::HashSet::new();
            for group in &part {
                for &g in group {
                    assert!(seen.insert(g));
                }
            }
            assert_eq!(seen.len(), nl.gate_count());
        }
    }

    #[test]
    fn rows_are_homogeneous_in_kind() {
        let nl = cell_array(6, 5);
        for r in 0..6 {
            let want = nl.node(cell_at(&nl, r, 0)).kind();
            for c in 1..5 {
                assert_eq!(nl.node(cell_at(&nl, r, c)).kind(), want);
            }
        }
    }

    #[test]
    #[should_panic(expected = "two rows")]
    fn one_row_rejected() {
        let _ = cell_array(1, 3);
    }
}
