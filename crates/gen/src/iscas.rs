//! Seeded ISCAS-85-like benchmark generator.
//!
//! The partitioning method consumes nothing but a gate-level DAG plus
//! per-cell electrical data, so a synthetic circuit with the same size,
//! depth, fan-in mix and connectivity locality as a given ISCAS-85 circuit
//! exercises the estimators and the optimizer identically. The published
//! statistics (Brglez et al., ISCAS 1985) are recorded in
//! [`IscasProfile::all`].

// Synthetic-netlist generator: every name is minted fresh and every
// fan-in points at an already-created node, so the builder `expect`s
// assert the generator's own construction, never caller input.
#![allow(clippy::expect_used)]

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use iddq_netlist::{CellKind, Netlist, NetlistBuilder, NodeId};

/// Published shape statistics of one ISCAS-85 circuit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IscasProfile {
    /// Benchmark name, lowercase (`"c1908"`).
    pub name: &'static str,
    /// Primary input count.
    pub inputs: usize,
    /// Primary output count.
    pub outputs: usize,
    /// Gate count.
    pub gates: usize,
    /// Approximate logic depth (levels of gates).
    pub depth: usize,
}

impl IscasProfile {
    /// The full ISCAS-85 suite.
    #[must_use]
    pub fn all() -> &'static [IscasProfile] {
        &[
            IscasProfile {
                name: "c432",
                inputs: 36,
                outputs: 7,
                gates: 160,
                depth: 17,
            },
            IscasProfile {
                name: "c499",
                inputs: 41,
                outputs: 32,
                gates: 202,
                depth: 11,
            },
            IscasProfile {
                name: "c880",
                inputs: 60,
                outputs: 26,
                gates: 383,
                depth: 24,
            },
            IscasProfile {
                name: "c1355",
                inputs: 41,
                outputs: 32,
                gates: 546,
                depth: 24,
            },
            IscasProfile {
                name: "c1908",
                inputs: 33,
                outputs: 25,
                gates: 880,
                depth: 40,
            },
            IscasProfile {
                name: "c2670",
                inputs: 233,
                outputs: 140,
                gates: 1193,
                depth: 32,
            },
            IscasProfile {
                name: "c3540",
                inputs: 50,
                outputs: 22,
                gates: 1669,
                depth: 47,
            },
            IscasProfile {
                name: "c5315",
                inputs: 178,
                outputs: 123,
                gates: 2307,
                depth: 49,
            },
            IscasProfile {
                name: "c6288",
                inputs: 32,
                outputs: 32,
                gates: 2416,
                depth: 124,
            },
            IscasProfile {
                name: "c7552",
                inputs: 207,
                outputs: 108,
                gates: 3512,
                depth: 43,
            },
        ]
    }

    /// Looks a profile up by benchmark name (case-insensitive).
    #[must_use]
    pub fn by_name(name: &str) -> Option<&'static IscasProfile> {
        let lower = name.to_ascii_lowercase();
        IscasProfile::all().iter().find(|p| p.name == lower)
    }

    /// The six circuits of the paper's Table 1 (the header's "C7522" is a
    /// typo for C7552).
    #[must_use]
    pub fn table1_suite() -> Vec<&'static IscasProfile> {
        ["c1908", "c2670", "c3540", "c5315", "c6288", "c7552"]
            .iter()
            .map(|n| IscasProfile::by_name(n).expect("suite names valid"))
            .collect()
    }
}

/// Gate-kind mix used by the generator (weights roughly matching the
/// NAND-dominated ISCAS-85 set).
pub(crate) const KIND_MIX: [(CellKind, u32); 8] = [
    (CellKind::Nand, 38),
    (CellKind::Nor, 14),
    (CellKind::And, 10),
    (CellKind::Or, 9),
    (CellKind::Not, 17),
    (CellKind::Buf, 7),
    (CellKind::Xor, 3),
    (CellKind::Xnor, 2),
];

/// Fan-in distribution for multi-input kinds.
pub(crate) const FANIN_MIX: [(usize, u32); 5] = [(2, 58), (3, 24), (4, 12), (5, 4), (8, 2)];

pub(crate) fn weighted<T: Copy>(rng: &mut SmallRng, table: &[(T, u32)]) -> T {
    let total: u32 = table.iter().map(|&(_, w)| w).sum();
    let mut pick = rng.gen_range(0..total);
    for &(v, w) in table {
        if pick < w {
            return v;
        }
        pick -= w;
    }
    table[table.len() - 1].0
}

/// Generates a synthetic circuit matching `profile` exactly in primary
/// inputs, primary outputs and gate count, and matching the target depth.
///
/// Determinism: the same `(profile, seed)` always yields the same netlist.
///
/// Construction:
///
/// 1. the `gates` are spread over `depth` levels (each non-empty, sizes
///    jittered ±35 % around the mean);
/// 2. each gate takes its *first* fan-in from the previous level (which
///    pins the level structure and hence the depth) and the rest from any
///    earlier level with a locality bias — preferring nodes that are not
///    yet consumed, so no logic dangles;
/// 3. fanout-free nodes become primary outputs; if fewer than the target,
///    deep gates are additionally tapped as outputs (real benchmarks also
///    tap internal nets).
///
/// # Panics
///
/// Panics if the profile is degenerate (`gates < depth` or zero
/// inputs/outputs) — the published profiles never are.
#[must_use]
pub fn generate(profile: &IscasProfile, seed: u64) -> Netlist {
    assert!(
        profile.gates >= profile.depth,
        "need at least one gate per level"
    );
    assert!(profile.inputs > 0 && profile.outputs > 0);
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x1dd9_c0de);

    // -- 1. level sizes ----------------------------------------------------
    let depth = profile.depth;
    let mean = profile.gates as f64 / depth as f64;
    let mut sizes: Vec<usize> = (0..depth)
        .map(|_| {
            let jitter = rng.gen_range(0.65..1.35);
            ((mean * jitter).round() as usize).max(1)
        })
        .collect();
    // Rebalance to hit the exact gate count.
    let mut total: isize = sizes.iter().sum::<usize>() as isize;
    let want = profile.gates as isize;
    while total != want {
        let i = rng.gen_range(0..depth);
        if total < want {
            sizes[i] += 1;
            total += 1;
        } else if sizes[i] > 1 {
            sizes[i] -= 1;
            total -= 1;
        }
    }

    // -- 2. build nodes level by level -------------------------------------
    let mut b = NetlistBuilder::new(profile.name);
    let mut levels: Vec<Vec<NodeId>> = Vec::with_capacity(depth + 1);
    levels.push(
        (0..profile.inputs)
            .map(|i| b.add_input(format!("i{i}")))
            .collect(),
    );

    // Nodes not yet consumed by any fan-in; drained preferentially so that
    // nothing dangles.
    let mut unused: Vec<NodeId> = levels[0].clone();

    for (lv, &size) in sizes.iter().enumerate() {
        let mut this_level = Vec::with_capacity(size);
        for k in 0..size {
            let kind = weighted(&mut rng, &KIND_MIX);
            let want_fanin = if kind.accepts_fanin(1) {
                1
            } else {
                // Clamp to the distinct candidates created so far: the
                // fan-in loop below would never terminate if the widest
                // FANIN_MIX draw exceeds the whole pool (can't happen
                // with the shipped c* profiles, but the seq generator
                // shares this fabric and its smallest profiles can).
                let pool: usize = levels.iter().map(Vec::len).sum();
                weighted(&mut rng, &FANIN_MIX).min(pool)
            };
            let mut fanin = Vec::with_capacity(want_fanin);
            // First input: previous level, preferring unconsumed nodes.
            let prev = &levels[lv];
            let first = pick_first(&mut rng, prev, &unused);
            fanin.push(first);
            remove_from(&mut unused, first);
            while fanin.len() < want_fanin {
                let cand = if !unused.is_empty() && rng.gen_bool(0.7) {
                    unused[rng.gen_range(0..unused.len())]
                } else {
                    // Locality bias: geometric walk back from current level.
                    let mut back = 0usize;
                    while back + 1 < levels.len() && rng.gen_bool(0.45) {
                        back += 1;
                    }
                    let src = &levels[levels.len() - 1 - back];
                    src[rng.gen_range(0..src.len())]
                };
                if !fanin.contains(&cand) {
                    remove_from(&mut unused, cand);
                    fanin.push(cand);
                }
            }
            let id = b
                .add_gate(format!("g{}_{}", lv + 1, k), kind, fanin)
                .expect("generated names unique, fan-ins legal");
            this_level.push(id);
        }
        // Only now do this level's gates become candidates for later
        // fan-ins; consuming them within their own level would deepen the
        // circuit beyond the profile's target depth.
        unused.extend(this_level.iter().copied());
        levels.push(this_level);
    }

    // -- 3. primary outputs -------------------------------------------------
    // Every still-unconsumed *gate* must be an output (an unconsumed PI is
    // re-wired instead: tap it into a random top-level gate's spare slot is
    // not possible post-hoc, so we simply accept it as an unused input —
    // real benchmarks contain those too; none occurs with the shipped
    // profiles, which tests assert).
    let mut outs: Vec<NodeId> = unused
        .iter()
        .copied()
        .filter(|id| id.index() >= profile.inputs)
        .collect();
    // Too many dangling gates cannot happen (outputs ≤ unused by
    // construction pressure), but guard anyway by wiring precedence:
    // truncate from the shallow end, keeping deep nodes as outputs.
    if outs.len() > profile.outputs {
        // Keep the deepest `outputs` nodes as POs and *feed* the remainder
        // into extra BUF taps is not possible without changing gate count;
        // instead mark the deepest as POs and also mark the rest (netlist
        // semantics allow observing extra nets). To respect the exact PO
        // count we sort and keep the deepest.
        outs.sort_by_key(|id| std::cmp::Reverse(id.index()));
        outs.truncate(profile.outputs);
    }
    // Top up with deep internal taps.
    let mut lv = levels.len();
    while outs.len() < profile.outputs {
        lv -= 1;
        if lv == 0 {
            break;
        }
        for &id in &levels[lv] {
            if outs.len() >= profile.outputs {
                break;
            }
            if !outs.contains(&id) {
                outs.push(id);
            }
        }
    }
    for &o in &outs {
        b.mark_output(o);
    }
    b.build().expect("generator output is structurally valid")
}

pub(crate) fn pick_first(rng: &mut SmallRng, prev: &[NodeId], unused: &[NodeId]) -> NodeId {
    // Prefer an unconsumed node of the previous level when one exists.
    let fresh: Vec<NodeId> = prev
        .iter()
        .copied()
        .filter(|n| unused.contains(n))
        .collect();
    if !fresh.is_empty() && rng.gen_bool(0.85) {
        fresh[rng.gen_range(0..fresh.len())]
    } else {
        prev[rng.gen_range(0..prev.len())]
    }
}

pub(crate) fn remove_from(pool: &mut Vec<NodeId>, id: NodeId) {
    if let Some(pos) = pool.iter().position(|&p| p == id) {
        pool.swap_remove(pos);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iddq_netlist::levelize;

    #[test]
    fn profiles_cover_table1() {
        let suite = IscasProfile::table1_suite();
        assert_eq!(suite.len(), 6);
        assert_eq!(suite[0].name, "c1908");
        assert_eq!(suite[5].gates, 3512);
    }

    #[test]
    fn by_name_is_case_insensitive() {
        assert!(IscasProfile::by_name("C432").is_some());
        assert!(IscasProfile::by_name("c9999").is_none());
    }

    #[test]
    fn generated_counts_match_profile_small() {
        let p = IscasProfile::by_name("c432").unwrap();
        let nl = generate(p, 1);
        assert_eq!(nl.num_inputs(), p.inputs);
        assert_eq!(nl.gate_count(), p.gates);
        assert_eq!(nl.num_outputs(), p.outputs);
    }

    #[test]
    fn generated_depth_matches_profile() {
        let p = IscasProfile::by_name("c432").unwrap();
        let nl = generate(p, 7);
        assert_eq!(levelize::depth(&nl) as usize, p.depth);
    }

    #[test]
    fn deterministic_per_seed() {
        let p = IscasProfile::by_name("c499").unwrap();
        let a = iddq_netlist::bench::to_bench(&generate(p, 5));
        let b = iddq_netlist::bench::to_bench(&generate(p, 5));
        let c = iddq_netlist::bench::to_bench(&generate(p, 6));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn no_dangling_gates() {
        let p = IscasProfile::by_name("c880").unwrap();
        let nl = generate(p, 3);
        for g in nl.gate_ids() {
            assert!(
                !nl.fanout(g).is_empty() || nl.is_output(g),
                "gate {} dangles",
                nl.node_name(g)
            );
        }
    }

    #[test]
    fn all_inputs_consumed() {
        let p = IscasProfile::by_name("c2670").unwrap();
        let nl = generate(p, 11);
        for &i in nl.inputs() {
            assert!(!nl.fanout(i).is_empty(), "input {} unused", nl.node_name(i));
        }
    }

    #[test]
    fn medium_circuit_counts() {
        let p = IscasProfile::by_name("c1908").unwrap();
        let nl = generate(p, 42);
        assert_eq!(nl.gate_count(), 880);
        assert_eq!(nl.num_inputs(), 33);
        assert_eq!(nl.num_outputs(), 25);
    }

    #[test]
    fn generated_mix_tracks_configured_weights() {
        // The NAND-dominated kind mix and 2-input-dominated fan-in mix of
        // the generator should be visible in the statistics of any large
        // generated circuit.
        let p = IscasProfile::by_name("c3540").unwrap();
        let nl = generate(p, 21);
        let stats = iddq_netlist::stats::CircuitStats::of(&nl);
        assert!(stats.kind_fraction(iddq_netlist::CellKind::Nand) > 0.25);
        assert!(stats.kind_fraction(iddq_netlist::CellKind::Xnor) < 0.10);
        assert!(stats.mean_fanin > 1.5 && stats.mean_fanin < 3.0);
        assert_eq!(stats.depth as usize, p.depth);
    }

    #[test]
    fn roundtrips_through_bench_format() {
        let p = IscasProfile::by_name("c432").unwrap();
        let nl = generate(p, 9);
        let text = iddq_netlist::bench::to_bench(&nl);
        let back = iddq_netlist::bench::parse(p.name, &text).unwrap();
        assert_eq!(back.gate_count(), nl.gate_count());
        assert_eq!(back.num_outputs(), nl.num_outputs());
    }
}
