//! Deterministic synthetic circuit generators.
//!
//! The paper evaluates on the ISCAS-85 benchmark set (Brglez et al. 1985).
//! Those netlists are not redistributable inside this repository, so this
//! crate provides:
//!
//! * [`iscas`] — a seeded random-DAG generator matched, circuit by
//!   circuit, to the published ISCAS-85 statistics (primary inputs,
//!   primary outputs, gate count, approximate logic depth, gate-type mix),
//!   exposed through [`iscas::IscasProfile`] and [`iscas::generate`];
//! * [`mod@array`] — the two-dimensional cell-array CUT of the paper's
//!   Figure 2, with three cell types and column-staggered switching times,
//!   used to demonstrate the influence of partition *shape* on BIC sensor
//!   area;
//! * [`mega`] — the O(gates) levelized mega-circuit generator
//!   (10^5–10^7 gates) behind the `scale` benchmarks: wide levels for
//!   structural parallelism, exact level placement, deterministic by
//!   [`mega::MegaConfig`];
//! * [`seq`] — ISCAS-89-like *sequential* circuits ([`seq::SeqProfile`],
//!   [`seq::generate`]): DFF state elements as frame-boundary
//!   pseudo-inputs, next-state functions wired through the fabric, for
//!   exercising the multi-frame sweep and time-frame-expanded ATPG
//!   paths.
//!
//! Generation is fully deterministic given `(profile, seed)`, so every
//! table in `EXPERIMENTS.md` regenerates bit-identically.
//!
//! # Example
//!
//! ```rust
//! use iddq_gen::iscas;
//!
//! let profile = iscas::IscasProfile::by_name("c1908").unwrap();
//! let nl = iscas::generate(profile, 42);
//! assert_eq!(nl.gate_count(), 880);
//! assert_eq!(nl.num_inputs(), 33);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod array;
pub mod iscas;
pub mod mega;
pub mod seq;
