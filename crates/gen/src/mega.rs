//! Synthetic mega-circuit generator: 10^5–10^7 gates, deterministic by
//! seed, built in O(gates) time.
//!
//! The ISCAS-like generator ([`crate::iscas`]) reproduces the *shape* of
//! the published benchmarks but allocates fan-in by scanning candidate
//! pools, which is quadratic and tops out around 10^4 gates. Scale work
//! (structural parallelism, memory budgets, streamed oracle builds) needs
//! circuits two to three orders of magnitude larger, so this module
//! builds levelized random logic directly:
//!
//! * the gate budget is spread evenly over a depth chosen to grow with
//!   `log2(gates)` (≈ 33 levels at 10^5 gates, ≈ 40 at 10^6), giving the
//!   wide levels that structural parallelism feeds on while staying in
//!   the depth range of real synthesized netlists;
//! * every gate draws its first fan-in from the *previous* level — so a
//!   gate placed on level `l` has topological level exactly `l`, and the
//!   level structure of the output is known without re-levelizing —
//!   and its remaining fan-ins from earlier levels with a locality bias
//!   (mostly the previous level, occasionally a long-range edge), which
//!   yields the local-routing-dominated structure of datapath arrays;
//! * kinds and arities follow the same NAND-dominated mix as the ISCAS
//!   generator; every fan-in pick is O(1) because each level's node ids
//!   form one contiguous range.
//!
//! Determinism: the same [`MegaConfig`] (including the seed) always
//! produces the identical netlist, byte-for-byte through
//! [`iddq_netlist::bench::to_bench`] — pinned by the generator proptests.

// The generator mints fresh unique names and in-range fan-ins by
// construction, so builder calls cannot fail; the `expect`s document that
// invariant.
#![allow(clippy::expect_used)]

use iddq_netlist::{CellKind, Netlist, NetlistBuilder, NodeId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Gate-kind mix for 1-input picks (inverter-heavy, like ISCAS).
const UNARY_MIX: [(CellKind, u32); 2] = [(CellKind::Not, 7), (CellKind::Buf, 3)];

/// Gate-kind mix for multi-input picks (NAND-dominated).
const MULTI_MIX: [(CellKind, u32); 6] = [
    (CellKind::Nand, 42),
    (CellKind::Nor, 16),
    (CellKind::And, 14),
    (CellKind::Or, 12),
    (CellKind::Xor, 9),
    (CellKind::Xnor, 7),
];

/// Arity distribution (1 covers the unary kinds).
const ARITY_MIX: [(usize, u32); 4] = [(1, 18), (2, 56), (3, 18), (4, 8)];

fn weighted<T: Copy>(rng: &mut SmallRng, table: &[(T, u32)]) -> T {
    let total: u32 = table.iter().map(|&(_, w)| w).sum();
    let mut pick = rng.gen_range(0..total);
    for &(v, w) in table {
        if pick < w {
            return v;
        }
        pick -= w;
    }
    table[table.len() - 1].0
}

/// Shape of one generated mega-circuit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MegaConfig {
    /// Number of gates to generate (exact).
    pub gates: usize,
    /// Number of primary inputs.
    pub inputs: usize,
    /// Number of gate levels; the gate budget is spread evenly across
    /// them, so the mean level width is `gates / depth`.
    pub depth: u32,
    /// RNG seed; every field participates in determinism.
    pub seed: u64,
}

impl MegaConfig {
    /// Default shape for a gate budget: depth grows with `2·log2(gates)`
    /// (33 levels at 10^5, 40 at 10^6, 46 at 10^7) and the input count
    /// with `sqrt(gates)`.
    ///
    /// # Panics
    ///
    /// Panics if `gates < 16`.
    #[must_use]
    pub fn with_gates(gates: usize, seed: u64) -> Self {
        assert!(gates >= 16, "mega circuits start at 16 gates");
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let depth = ((gates as f64).log2() * 2.0).round().clamp(8.0, 96.0) as usize;
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let inputs = ((gates as f64).sqrt().round() as usize).max(16);
        MegaConfig {
            gates,
            inputs,
            depth: depth.min(gates / 2) as u32,
            seed,
        }
    }
}

/// Generates the mega-circuit described by `config`.
///
/// Runs in O(gates) time and memory. Every gate on generator level `l`
/// (1-based) has topological level exactly `l`; every fan-out-free gate
/// is marked as a primary output (the whole last level always qualifies).
///
/// # Panics
///
/// Panics if `config.gates < config.depth` (a level would be empty),
/// `config.inputs == 0` or `config.depth == 0`.
#[must_use]
pub fn generate(config: &MegaConfig) -> Netlist {
    let depth = config.depth as usize;
    assert!(config.inputs > 0, "need at least one input");
    assert!(depth > 0, "need at least one level");
    assert!(config.gates >= depth, "need at least one gate per level");
    let mut rng =
        SmallRng::seed_from_u64(config.seed ^ 0x6d65_6761 ^ (config.gates as u64).rotate_left(17));
    let mut b = NetlistBuilder::new(format!("mega{}", config.gates));

    // Level 0: the primary inputs. Ids are assigned sequentially by the
    // builder, so each level occupies one contiguous id range and a
    // fan-in pick inside a level is a single `gen_range`.
    for k in 0..config.inputs {
        b.add_input(format!("i{k}"));
    }
    let mut level_ranges: Vec<(u32, u32)> = vec![(0, config.inputs as u32)];
    let mut consumed = vec![false; config.inputs + config.gates];

    let base = config.gates / depth;
    let extra = config.gates % depth;
    let mut next_id = config.inputs as u32;
    let mut gate_no = 0usize;
    for l in 1..=depth {
        let count = base + usize::from(l <= extra);
        let start = next_id;
        let (prev_lo, prev_hi) = level_ranges[l - 1];
        for _ in 0..count {
            let arity = if l == 1 && config.inputs == 1 {
                1
            } else {
                weighted(&mut rng, &ARITY_MIX)
            };
            let kind = if arity == 1 {
                weighted(&mut rng, &UNARY_MIX)
            } else {
                weighted(&mut rng, &MULTI_MIX)
            };
            let mut fanin = Vec::with_capacity(arity);
            // First fan-in from the previous level pins the gate's
            // topological level to exactly `l`.
            fanin.push(NodeId(rng.gen_range(prev_lo..prev_hi)));
            for _ in 1..arity {
                // Locality bias: 3 in 4 edges come from the previous
                // level, the rest uniformly from any earlier level.
                let (lo, hi) = if rng.gen_range(0..4u32) < 3 || l == 1 {
                    (prev_lo, prev_hi)
                } else {
                    level_ranges[rng.gen_range(0..l)]
                };
                fanin.push(NodeId(rng.gen_range(lo..hi)));
            }
            for f in &fanin {
                consumed[f.index()] = true;
            }
            let id = b
                .add_gate(format!("g{gate_no}"), kind, fanin)
                .expect("mega names unique, arities in range");
            debug_assert_eq!(id.0, next_id);
            next_id += 1;
            gate_no += 1;
        }
        level_ranges.push((start, next_id));
    }

    // Every fan-out-free gate becomes a primary output; the last level is
    // entirely fan-out-free, so the netlist always has outputs.
    for id in config.inputs as u32..next_id {
        if !consumed[id as usize] {
            b.mark_output(NodeId(id));
        }
    }
    b.build().expect("mega construction is acyclic by levels")
}

/// Convenience wrapper: [`generate`] with [`MegaConfig::with_gates`].
#[must_use]
pub fn mega_circuit(gates: usize, seed: u64) -> Netlist {
    generate(&MegaConfig::with_gates(gates, seed))
}

#[cfg(test)]
mod tests {
    use super::*;
    use iddq_netlist::{bench, levelize, stats::CircuitStats};

    #[test]
    fn exact_counts_and_depth() {
        let cfg = MegaConfig {
            gates: 5000,
            inputs: 64,
            depth: 25,
            seed: 7,
        };
        let nl = generate(&cfg);
        assert_eq!(nl.gate_count(), 5000);
        assert_eq!(nl.num_inputs(), 64);
        assert_eq!(levelize::depth(&nl), 25);
    }

    #[test]
    fn generator_levels_are_exact() {
        // Generator level l == topological level l, for every gate.
        let cfg = MegaConfig {
            gates: 2000,
            inputs: 32,
            depth: 20,
            seed: 3,
        };
        let nl = generate(&cfg);
        let lv = levelize::levels(&nl);
        let per_level = 2000 / 20;
        for (k, id) in nl.gate_ids().enumerate() {
            let expect = 1 + (k / per_level) as u32;
            assert_eq!(lv[id.index()], expect, "gate {k}");
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = mega_circuit(3000, 11);
        let b = mega_circuit(3000, 11);
        assert_eq!(bench::to_bench(&a), bench::to_bench(&b));
        let c = mega_circuit(3000, 12);
        assert_ne!(bench::to_bench(&a), bench::to_bench(&c));
    }

    #[test]
    fn bench_round_trip() {
        let nl = mega_circuit(1500, 5);
        let text = bench::to_bench(&nl);
        let back = bench::parse(nl.name(), &text).expect("generated .bench parses");
        assert_eq!(bench::to_bench(&back), text);
    }

    #[test]
    fn default_shape_scales() {
        let nl = mega_circuit(20_000, 1);
        let s = CircuitStats::of(&nl);
        assert_eq!(s.gates, 20_000);
        assert!(s.inputs >= 16);
        assert!(s.depth >= 8);
        assert!(s.outputs >= 1);
        // Wide levels are the point: the widest level must carry a healthy
        // share of the budget.
        assert!(s.gates_per_level_max * s.depth as usize >= s.gates / 2);
    }

    #[test]
    #[should_panic(expected = "16 gates")]
    fn tiny_budget_rejected() {
        let _ = MegaConfig::with_gates(8, 0);
    }
}
