//! Seeded ISCAS-89-like *sequential* benchmark generator.
//!
//! The sequential pipeline — frame-based simulation, multi-frame fault
//! sweeps, time-frame-expanded ATPG — consumes a gate-level DAG plus DFF
//! state elements. As with [`crate::iscas`], the published benchmarks are
//! not redistributable, so this module generates synthetic circuits
//! matched, circuit by circuit, to the published ISCAS-89 shape
//! statistics (Brglez, Bryan & Kozminski, ISCAS 1989): primary inputs,
//! primary outputs, D-flip-flop count, combinational gate count and
//! approximate combinational depth.
//!
//! Structure mirrors the real `s*` circuits: DFF outputs act as
//! frame-boundary pseudo-inputs alongside the PIs (level 0), the
//! combinational fabric is levelized on top, and every DFF's D input is
//! wired back into the fabric — preferring deep, otherwise-unconsumed
//! gates so the next-state function actually depends on the state.
//!
//! Generation is fully deterministic given `(profile, seed)`.

// Synthetic-netlist generator: every name is minted fresh and every
// fan-in points at an already-created node, so the builder `expect`s
// assert the generator's own construction, never caller input.
#![allow(clippy::expect_used)]

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use iddq_netlist::{Netlist, NetlistBuilder, NodeId};

use crate::iscas::{pick_first, remove_from, weighted, FANIN_MIX, KIND_MIX};

/// Published shape statistics of one ISCAS-89 circuit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeqProfile {
    /// Benchmark name, lowercase (`"s1423"`).
    pub name: &'static str,
    /// Primary input count (excluding the clock, which the frame model
    /// makes implicit).
    pub inputs: usize,
    /// Primary output count.
    pub outputs: usize,
    /// D-flip-flop count.
    pub dffs: usize,
    /// Combinational gate count (excluding DFFs).
    pub gates: usize,
    /// Approximate combinational logic depth (levels of gates between
    /// frame boundaries).
    pub depth: usize,
}

impl SeqProfile {
    /// A representative slice of the ISCAS-89 suite.
    #[must_use]
    pub fn all() -> &'static [SeqProfile] {
        &[
            SeqProfile {
                name: "s27",
                inputs: 4,
                outputs: 1,
                dffs: 3,
                gates: 10,
                depth: 5,
            },
            SeqProfile {
                name: "s298",
                inputs: 3,
                outputs: 6,
                dffs: 14,
                gates: 119,
                depth: 9,
            },
            SeqProfile {
                name: "s344",
                inputs: 9,
                outputs: 11,
                dffs: 15,
                gates: 160,
                depth: 20,
            },
            SeqProfile {
                name: "s386",
                inputs: 7,
                outputs: 7,
                dffs: 6,
                gates: 159,
                depth: 11,
            },
            SeqProfile {
                name: "s444",
                inputs: 3,
                outputs: 6,
                dffs: 21,
                gates: 181,
                depth: 11,
            },
            SeqProfile {
                name: "s526",
                inputs: 3,
                outputs: 6,
                dffs: 21,
                gates: 193,
                depth: 9,
            },
            SeqProfile {
                name: "s641",
                inputs: 35,
                outputs: 24,
                dffs: 19,
                gates: 379,
                depth: 74,
            },
            SeqProfile {
                name: "s820",
                inputs: 18,
                outputs: 19,
                dffs: 5,
                gates: 289,
                depth: 10,
            },
            SeqProfile {
                name: "s953",
                inputs: 16,
                outputs: 23,
                dffs: 29,
                gates: 395,
                depth: 16,
            },
            SeqProfile {
                name: "s1196",
                inputs: 14,
                outputs: 14,
                dffs: 18,
                gates: 529,
                depth: 24,
            },
            SeqProfile {
                name: "s1423",
                inputs: 17,
                outputs: 5,
                dffs: 74,
                gates: 657,
                depth: 59,
            },
            SeqProfile {
                name: "s1488",
                inputs: 8,
                outputs: 19,
                dffs: 6,
                gates: 653,
                depth: 17,
            },
            SeqProfile {
                name: "s5378",
                inputs: 35,
                outputs: 49,
                dffs: 179,
                gates: 2779,
                depth: 25,
            },
        ]
    }

    /// Looks a profile up by benchmark name (case-insensitive).
    #[must_use]
    pub fn by_name(name: &str) -> Option<&'static SeqProfile> {
        let lower = name.to_ascii_lowercase();
        SeqProfile::all().iter().find(|p| p.name == lower)
    }
}

/// Generates a synthetic sequential circuit matching `profile` exactly in
/// primary inputs, primary outputs, DFF count and combinational gate
/// count, and matching the target combinational depth.
///
/// Determinism: the same `(profile, seed)` always yields the same netlist.
///
/// Construction:
///
/// 1. level 0 holds the PIs *and* the DFF outputs (frame-boundary
///    pseudo-inputs, seeded into the unconsumed pool first so the fabric
///    reads the state early);
/// 2. the combinational gates are spread over `depth` levels and wired
///    exactly as in [`crate::iscas::generate`] — first fan-in from the
///    previous level, rest with a locality-biased backward walk,
///    draining unconsumed nodes so nothing dangles;
/// 3. each DFF's D input is wired to a combinational gate, preferring
///    deep unconsumed gates (a DFF never latches itself or another DFF
///    directly, so the next-state function is always through logic);
/// 4. remaining unconsumed gates become primary outputs, topped up with
///    deep internal taps to hit the exact PO count.
///
/// A DFF whose output the fabric happened not to consume is legal
/// (observe-only state); the D wiring in step 3 guarantees the *input*
/// side of every DFF is always connected.
///
/// # Panics
///
/// Panics if the profile is degenerate (`gates < depth + dffs`, or zero
/// inputs/outputs/DFFs) — the published profiles never are.
#[must_use]
pub fn generate(profile: &SeqProfile, seed: u64) -> Netlist {
    assert!(
        profile.gates >= profile.depth + profile.dffs,
        "need one gate per level plus one D driver candidate per DFF"
    );
    assert!(profile.inputs > 0 && profile.outputs > 0 && profile.dffs > 0);
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x5e9_c0de);

    // -- 1. level sizes ----------------------------------------------------
    let depth = profile.depth;
    let mean = profile.gates as f64 / depth as f64;
    let mut sizes: Vec<usize> = (0..depth)
        .map(|_| {
            let jitter = rng.gen_range(0.65..1.35);
            ((mean * jitter).round() as usize).max(1)
        })
        .collect();
    let mut total: isize = sizes.iter().sum::<usize>() as isize;
    let want = profile.gates as isize;
    while total != want {
        let i = rng.gen_range(0..depth);
        if total < want {
            sizes[i] += 1;
            total += 1;
        } else if sizes[i] > 1 {
            sizes[i] -= 1;
            total -= 1;
        }
    }

    // -- 2. level 0: PIs and DFF pseudo-inputs ------------------------------
    let mut b = NetlistBuilder::new(profile.name);
    let pis: Vec<NodeId> = (0..profile.inputs)
        .map(|i| b.add_input(format!("i{i}")))
        .collect();
    let qs: Vec<NodeId> = (0..profile.dffs)
        .map(|i| b.add_dff(format!("q{i}")).expect("generated names unique"))
        .collect();
    let mut level0 = qs.clone();
    level0.extend(pis.iter().copied());
    // DFF outputs first in the unconsumed pool: the 70 % drain-unused bias
    // of the fan-in picker then consumes the state early and often.
    let mut unused: Vec<NodeId> = level0.clone();
    let mut levels: Vec<Vec<NodeId>> = vec![level0];

    // -- 3. combinational fabric, level by level ----------------------------
    for (lv, &size) in sizes.iter().enumerate() {
        let mut this_level = Vec::with_capacity(size);
        for k in 0..size {
            let kind = weighted(&mut rng, &KIND_MIX);
            let want_fanin = if kind.accepts_fanin(1) {
                1
            } else {
                // The distinct-fan-in loop below draws from every node
                // created so far; tiny circuits (s27: 7 level-0 nodes)
                // cannot satisfy the widest FANIN_MIX draw, and an
                // unclamped want would make the loop spin forever.
                let pool: usize = levels.iter().map(Vec::len).sum();
                weighted(&mut rng, &FANIN_MIX).min(pool)
            };
            let mut fanin = Vec::with_capacity(want_fanin);
            let prev = &levels[lv];
            let first = pick_first(&mut rng, prev, &unused);
            fanin.push(first);
            remove_from(&mut unused, first);
            while fanin.len() < want_fanin {
                let cand = if !unused.is_empty() && rng.gen_bool(0.7) {
                    unused[rng.gen_range(0..unused.len())]
                } else {
                    let mut back = 0usize;
                    while back + 1 < levels.len() && rng.gen_bool(0.45) {
                        back += 1;
                    }
                    let src = &levels[levels.len() - 1 - back];
                    src[rng.gen_range(0..src.len())]
                };
                if !fanin.contains(&cand) {
                    remove_from(&mut unused, cand);
                    fanin.push(cand);
                }
            }
            let id = b
                .add_gate(format!("g{}_{}", lv + 1, k), kind, fanin)
                .expect("generated names unique, fan-ins legal");
            this_level.push(id);
        }
        unused.extend(this_level.iter().copied());
        levels.push(this_level);
    }

    // -- 4. next-state wiring ------------------------------------------------
    // Only combinational gates qualify as D drivers (ids after PIs + DFFs),
    // so a DFF never latches itself or another DFF without logic between.
    let first_gate = profile.inputs + profile.dffs;
    for &q in &qs {
        let unused_gates: Vec<NodeId> = unused
            .iter()
            .copied()
            .filter(|id| id.index() >= first_gate)
            .collect();
        let d = if !unused_gates.is_empty() && rng.gen_bool(0.8) {
            unused_gates[rng.gen_range(0..unused_gates.len())]
        } else {
            // Deep bias: geometric walk back from the last level.
            let mut back = 0usize;
            while back + 2 < levels.len() && rng.gen_bool(0.35) {
                back += 1;
            }
            let src = &levels[levels.len() - 1 - back];
            src[rng.gen_range(0..src.len())]
        };
        b.set_dff_input(q, d);
        remove_from(&mut unused, d);
    }

    // -- 5. primary outputs --------------------------------------------------
    let mut outs: Vec<NodeId> = unused
        .iter()
        .copied()
        .filter(|id| id.index() >= first_gate)
        .collect();
    if outs.len() > profile.outputs {
        outs.sort_by_key(|id| std::cmp::Reverse(id.index()));
        outs.truncate(profile.outputs);
    }
    let mut lv = levels.len();
    while outs.len() < profile.outputs {
        lv -= 1;
        if lv == 0 {
            break;
        }
        for &id in &levels[lv] {
            if outs.len() >= profile.outputs {
                break;
            }
            if !outs.contains(&id) {
                outs.push(id);
            }
        }
    }
    for &o in &outs {
        b.mark_output(o);
    }
    b.build().expect("generator output is structurally valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use iddq_netlist::levelize;

    #[test]
    fn by_name_is_case_insensitive() {
        assert!(SeqProfile::by_name("S1423").is_some());
        assert!(SeqProfile::by_name("s9999").is_none());
        assert_eq!(SeqProfile::all().len(), 13);
    }

    #[test]
    fn generated_counts_match_profile() {
        for name in ["s27", "s298", "s953"] {
            let p = SeqProfile::by_name(name).unwrap();
            let nl = generate(p, 1);
            assert_eq!(nl.num_inputs(), p.inputs, "{name} inputs");
            assert_eq!(nl.num_state_elements(), p.dffs, "{name} dffs");
            // `gate_count` counts every non-input node, DFFs included.
            assert_eq!(nl.gate_count(), p.gates + p.dffs, "{name} gates");
            assert_eq!(nl.num_outputs(), p.outputs, "{name} outputs");
            assert!(nl.has_state());
        }
    }

    #[test]
    fn tiny_profiles_terminate_for_any_seed() {
        // Regression: seed 30 used to hang — a level-1 gate drew a
        // FANIN_MIX width of 8, wider than s27's whole candidate pool
        // (7 level-0 nodes), so the distinct-fan-in loop never finished.
        let p = SeqProfile::by_name("s27").unwrap();
        for seed in 0..64 {
            let nl = generate(p, seed);
            assert_eq!(nl.gate_count(), p.gates + p.dffs, "seed {seed}");
            assert_eq!(nl.num_state_elements(), p.dffs, "seed {seed}");
        }
    }

    #[test]
    fn generated_depth_matches_profile() {
        let p = SeqProfile::by_name("s344").unwrap();
        let nl = generate(p, 7);
        assert_eq!(levelize::depth(&nl) as usize, p.depth);
    }

    #[test]
    fn deterministic_per_seed() {
        let p = SeqProfile::by_name("s298").unwrap();
        let a = iddq_netlist::bench::to_bench(&generate(p, 5));
        let b = iddq_netlist::bench::to_bench(&generate(p, 5));
        let c = iddq_netlist::bench::to_bench(&generate(p, 6));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn every_dff_latches_a_combinational_gate() {
        let p = SeqProfile::by_name("s1196").unwrap();
        let nl = generate(p, 3);
        for &q in nl.state_elements() {
            let fanin = nl.node(q).fanin();
            assert_eq!(fanin.len(), 1);
            let d = fanin[0];
            assert!(nl.is_gate(d) && !nl.is_state_element(d));
            assert_ne!(d, q);
        }
    }

    #[test]
    fn no_dangling_combinational_gates() {
        // State elements may legitimately be observe-only; every
        // combinational gate must be consumed or observable.
        let p = SeqProfile::by_name("s526").unwrap();
        let nl = generate(p, 3);
        for g in nl.gate_ids() {
            if nl.is_state_element(g) {
                continue;
            }
            assert!(
                !nl.fanout(g).is_empty() || nl.is_output(g),
                "gate {} dangles",
                nl.node_name(g)
            );
        }
    }

    #[test]
    fn roundtrips_through_bench_format() {
        let p = SeqProfile::by_name("s27").unwrap();
        let nl = generate(p, 9);
        let text = iddq_netlist::bench::to_bench(&nl);
        let back = iddq_netlist::bench::parse(p.name, &text).unwrap();
        assert_eq!(back.gate_count(), nl.gate_count());
        assert_eq!(back.num_state_elements(), nl.num_state_elements());
        assert_eq!(back.num_outputs(), nl.num_outputs());
    }
}
