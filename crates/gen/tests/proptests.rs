//! Property-based tests for the mega-circuit generator: structural
//! invariants (acyclic, level-consistent, exact counts), determinism per
//! seed, and `.bench` round-tripping, over random shapes.

use proptest::prelude::*;

use iddq_gen::mega::{self, MegaConfig};
use iddq_netlist::{bench, levelize};

/// A random but valid mega shape, kept small so each case is fast; the
/// generator is O(gates), so the structure of the construction — not its
/// size — is what the properties exercise.
fn config(gates: usize, inputs: usize, depth: u32, seed: u64) -> MegaConfig {
    MegaConfig {
        // At least one gate per level.
        gates: gates.max(depth as usize),
        inputs,
        depth,
        seed,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The generated circuit is a valid DAG (the builder's Kahn check
    /// passed), has exactly the requested counts, and every gate sits on
    /// exactly the level the generator placed it on.
    #[test]
    fn counts_exact_and_levels_consistent(
        gates in 200usize..3000,
        inputs in 4usize..80,
        depth in 4u32..32,
        seed in any::<u64>(),
    ) {
        let cfg = config(gates, inputs, depth, seed);
        let nl = mega::generate(&cfg);
        prop_assert_eq!(nl.gate_count(), cfg.gates);
        prop_assert_eq!(nl.num_inputs(), cfg.inputs);
        prop_assert_eq!(levelize::depth(&nl), cfg.depth);
        // Generator placement: gates are appended level by level, so the
        // topological level sequence over gate ids is non-decreasing and
        // never skips a level.
        let lv = levelize::levels(&nl);
        let mut prev = 0u32;
        for id in nl.gate_ids() {
            let l = lv[id.index()];
            prop_assert!(l == prev || l == prev + 1, "gate {} jumps {} -> {}", id, prev, l);
            prev = l;
        }
        // Every output exists and is a fan-out-free gate.
        prop_assert!(!nl.outputs().is_empty());
        for &o in nl.outputs() {
            prop_assert!(nl.is_gate(o));
            prop_assert!(nl.fanout(o).is_empty());
        }
    }

    /// The same config yields the identical netlist; a different seed
    /// yields a different one (up to astronomically unlikely collisions
    /// at these sizes).
    #[test]
    fn deterministic_per_seed(
        gates in 200usize..3000,
        inputs in 4usize..80,
        depth in 4u32..32,
        seed in any::<u64>(),
    ) {
        let cfg = config(gates, inputs, depth, seed);
        let a = bench::to_bench(&mega::generate(&cfg));
        let b = bench::to_bench(&mega::generate(&cfg));
        prop_assert_eq!(&a, &b);
        let other = MegaConfig { seed: cfg.seed.wrapping_add(1), ..cfg };
        let c = bench::to_bench(&mega::generate(&other));
        prop_assert_ne!(&a, &c);
    }

    /// Writing the circuit to `.bench` and parsing it back reproduces the
    /// same circuit, byte-for-byte through a second write.
    #[test]
    fn bench_round_trip(
        gates in 200usize..3000,
        inputs in 4usize..80,
        depth in 4u32..32,
        seed in any::<u64>(),
    ) {
        let cfg = config(gates, inputs, depth, seed);
        let nl = mega::generate(&cfg);
        let text = bench::to_bench(&nl);
        let back = bench::parse(nl.name(), &text).expect("generated .bench parses");
        prop_assert_eq!(bench::to_bench(&back), text);
        prop_assert_eq!(back.gate_count(), nl.gate_count());
        prop_assert_eq!(back.num_inputs(), nl.num_inputs());
    }
}
