//! Backend selection: one evaluation API over the batch CSR kernel and
//! the event-driven incremental engine.
//!
//! Every consumer of logic values — the IDDQ fault sweep, logic testing,
//! ATPG — only needs "evaluate this packed batch into a values buffer".
//! [`SimBackend`] provides exactly that over either engine, so callers
//! (and the CLI's `--backend` flag) pick the engine by a [`BackendKind`]
//! value instead of by type:
//!
//! * [`BackendKind::Csr`] — the stateless batch kernel
//!   ([`Simulator`](crate::Simulator)): fastest for full sweeps over fresh
//!   pattern batches.
//! * [`BackendKind::Delta`] — the stateful incremental engine
//!   ([`DeltaSim`]): same results batch-for-batch, but additionally
//!   supports [`Patch`](crate::delta::Patch) mutation between sweeps via
//!   [`SimBackend::as_delta_mut`].

use std::str::FromStr;

use iddq_netlist::{Netlist, PackedWord};

use crate::delta::DeltaSim;
use crate::sim::Simulator;

/// Which simulation engine to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BackendKind {
    /// Batch CSR-compiled kernel (stateless, fastest full sweeps).
    #[default]
    Csr,
    /// Event-driven incremental engine (stateful, patchable).
    Delta,
}

impl std::fmt::Display for BackendKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            BackendKind::Csr => "csr",
            BackendKind::Delta => "delta",
        })
    }
}

/// Error for unknown backend names.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseBackendError(String);

impl std::fmt::Display for ParseBackendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "unknown backend `{}` (expected csr|delta)", self.0)
    }
}

impl std::error::Error for ParseBackendError {}

impl FromStr for BackendKind {
    type Err = ParseBackendError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "csr" => Ok(BackendKind::Csr),
            "delta" => Ok(BackendKind::Delta),
            other => Err(ParseBackendError(other.to_owned())),
        }
    }
}

/// A simulation engine instance behind a uniform batch-evaluation API.
#[derive(Debug, Clone)]
pub enum SimBackend<W: PackedWord> {
    /// The batch CSR kernel.
    Csr(Simulator),
    /// The event-driven incremental engine.
    Delta(Box<DeltaSim<W>>),
}

impl<W: PackedWord> SimBackend<W> {
    /// Instantiates the chosen engine for `netlist`.
    #[must_use]
    pub fn new(netlist: &Netlist, kind: BackendKind) -> Self {
        match kind {
            BackendKind::Csr => SimBackend::Csr(Simulator::new(netlist)),
            BackendKind::Delta => SimBackend::Delta(Box::new(DeltaSim::new(netlist))),
        }
    }

    /// Which engine this is.
    #[must_use]
    pub fn kind(&self) -> BackendKind {
        match self {
            SimBackend::Csr(_) => BackendKind::Csr,
            SimBackend::Delta(_) => BackendKind::Delta,
        }
    }

    /// Number of primary inputs expected by [`SimBackend::eval_into`].
    #[must_use]
    pub fn num_inputs(&self) -> usize {
        match self {
            SimBackend::Csr(sim) => sim.num_inputs(),
            SimBackend::Delta(sim) => sim.num_inputs(),
        }
    }

    /// Required length of the values buffer: one packed word per node.
    #[must_use]
    pub fn node_count(&self) -> usize {
        match self {
            SimBackend::Csr(sim) => sim.node_count(),
            SimBackend::Delta(sim) => sim.node_count(),
        }
    }

    /// Evaluates one packed batch into `values` (one word per node).
    ///
    /// Takes `&mut self` because the incremental engine updates its
    /// persistent state; the CSR arm is stateless.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from the number of primary inputs
    /// or `values.len()` from [`SimBackend::node_count`].
    pub fn eval_into(&mut self, inputs: &[W], values: &mut [W]) {
        match self {
            SimBackend::Csr(sim) => sim.eval_into(inputs, values),
            SimBackend::Delta(sim) => {
                sim.set_inputs(inputs);
                values.copy_from_slice(sim.values());
            }
        }
    }

    /// Number of state elements (DFFs); the required `state` length for
    /// [`SimBackend::step_frame`].
    #[must_use]
    pub fn num_state_elements(&self) -> usize {
        match self {
            SimBackend::Csr(sim) => sim.num_state_elements(),
            SimBackend::Delta(sim) => sim.num_state_elements(),
        }
    }

    /// Advances one frame: latches `state` onto the DFF outputs, evaluates
    /// the combinational fabric under `inputs`, writes the full values
    /// vector into `values`, and replaces `state` with the captured
    /// next-state (D-driver values). Identical results on either engine.
    ///
    /// # Panics
    ///
    /// Panics if `inputs`, `state`, or `values` have the wrong length.
    pub fn step_frame(&mut self, inputs: &[W], state: &mut [W], values: &mut [W]) {
        match self {
            SimBackend::Csr(sim) => sim.step_frame(inputs, state, values),
            SimBackend::Delta(sim) => {
                sim.step_frame(inputs, state);
                values.copy_from_slice(sim.values());
            }
        }
    }

    /// Access to the incremental engine's patch API (`None` on the CSR
    /// arm).
    pub fn as_delta_mut(&mut self) -> Option<&mut DeltaSim<W>> {
        match self {
            SimBackend::Csr(_) => None,
            SimBackend::Delta(sim) => Some(sim),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iddq_netlist::data;

    #[test]
    fn backends_agree_on_batches() {
        let nl = data::ripple_adder(5);
        let mut csr = SimBackend::<u64>::new(&nl, BackendKind::Csr);
        let mut delta = SimBackend::<u64>::new(&nl, BackendKind::Delta);
        assert_eq!(csr.kind(), BackendKind::Csr);
        assert_eq!(delta.kind(), BackendKind::Delta);
        assert_eq!(csr.node_count(), delta.node_count());
        let mut a = vec![0u64; csr.node_count()];
        let mut b = vec![0u64; delta.node_count()];
        for salt in 0..4u64 {
            let inputs: Vec<u64> = (0..nl.num_inputs() as u64)
                .map(|i| (salt ^ i).wrapping_mul(0x9e37_79b9_7f4a_7c15))
                .collect();
            csr.eval_into(&inputs, &mut a);
            delta.eval_into(&inputs, &mut b);
            assert_eq!(a, b, "salt {salt}");
        }
    }

    #[test]
    fn backends_agree_on_frames() {
        let mut b = iddq_netlist::NetlistBuilder::new("toggle");
        let a = b.add_input("a");
        let q = b.add_dff("q").unwrap();
        let n = b
            .add_gate("n", iddq_netlist::CellKind::Not, vec![q])
            .unwrap();
        b.set_dff_input(q, n);
        let y = b
            .add_gate("y", iddq_netlist::CellKind::Xor, vec![a, q])
            .unwrap();
        b.mark_output(y);
        let nl = b.build().unwrap();

        let mut csr = SimBackend::<u64>::new(&nl, BackendKind::Csr);
        let mut delta = SimBackend::<u64>::new(&nl, BackendKind::Delta);
        assert_eq!(csr.num_state_elements(), 1);
        let mut sa = vec![0u64; 1];
        let mut sb = vec![0u64; 1];
        let mut va = vec![0u64; csr.node_count()];
        let mut vb = vec![0u64; delta.node_count()];
        for t in 0..6u64 {
            let inputs = vec![t.wrapping_mul(0x2545_f491_4f6c_dd1d)];
            csr.step_frame(&inputs, &mut sa, &mut va);
            delta.step_frame(&inputs, &mut sb, &mut vb);
            assert_eq!(va, vb, "frame {t} values");
            assert_eq!(sa, sb, "frame {t} state");
        }
    }

    #[test]
    fn backend_kind_parses() {
        assert_eq!("csr".parse::<BackendKind>().unwrap(), BackendKind::Csr);
        assert_eq!("DELTA".parse::<BackendKind>().unwrap(), BackendKind::Delta);
        assert!("fast".parse::<BackendKind>().is_err());
        assert_eq!(BackendKind::default(), BackendKind::Csr);
        assert_eq!(BackendKind::Delta.to_string(), "delta");
    }

    #[test]
    fn delta_arm_exposes_patching() {
        let nl = data::c17();
        let mut csr = SimBackend::<u64>::new(&nl, BackendKind::Csr);
        let mut delta = SimBackend::<u64>::new(&nl, BackendKind::Delta);
        assert!(csr.as_delta_mut().is_none());
        assert!(delta.as_delta_mut().is_some());
    }
}
