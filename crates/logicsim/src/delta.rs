//! Event-driven incremental simulation.
//!
//! The batch [`Simulator`](crate::Simulator) re-evaluates the whole
//! circuit per sweep — ideal when every node is needed, wasteful when the
//! question is *"this circuit, but with one gate changed"*. [`DeltaSim`]
//! answers that question incrementally: it owns a persistent copy of the
//! packed node values plus a mutable copy of the circuit structure, and a
//! [`Patch`] of gate changes triggers re-evaluation of only the *dirty
//! cone* — the gates whose packed value actually changes — via a
//! level-bucketed worklist that visits each node at most once, drivers
//! before consumers.
//!
//! # Patch lifecycle
//!
//! 1. [`DeltaSim::set_inputs`] establishes the baseline state (one full
//!    sweep over the current structure).
//! 2. [`DeltaSim::apply`] validates and applies a [`Patch`] (gate kind
//!    and/or fan-in edge changes, node insertion/removal), re-levelizes
//!    the affected region (rejecting cycles and illegal arities with the
//!    state unchanged), propagates values through the dirty cone, and
//!    pushes the *inverse* patch onto an undo stack.
//! 3. [`DeltaSim::rollback`] pops the undo stack and applies the inverse
//!    through the same machinery, restoring the previous structure and
//!    values exactly; [`DeltaSim::commit`] forgets the undo history
//!    instead, making the mutations permanent.
//!
//! Because rollback is itself a patch application, inputs may be changed
//! *between* apply and rollback: values are always recomputed from the
//! current inputs, never replayed from a log.
//!
//! # Structural insertion and removal
//!
//! [`PatchOp::AddGate`] and [`PatchOp::RemoveGate`] grow and shrink the
//! simulated circuit under the stack discipline of
//! [`iddq_netlist::patch`]: insertion is append-only (the op's id must be
//! the current node count) and removal pops the consumer-free tail node.
//! Ids of existing nodes therefore never move, and all per-node state
//! (values, forces, levels, adjacency) grows and shrinks at the tail.
//!
//! Levelization rules: an inserted gate reads only pre-existing nodes, so
//! it can never close a cycle and its level is simply `1 + max(fan-in
//! levels)` at insertion time. Only [`PatchOp::SetFanin`] can move levels
//! or close cycles; those trigger the batched re-levelization below
//! (which also repairs the levels of gates inserted earlier in the same
//! patch, since they sit in the fanout region of any rewired driver). A
//! removed gate has no consumers, so removal never dirties any value; the
//! inverse op (`AddGate` with the recorded kind and fan-in) recomputes the
//! node's value from the unchanged drivers on rollback.
//!
//! A region rewrite is expressed as `AddGate` the replacement nodes, then
//! `SetFanin` the consumers over to them — exactly the patch shape
//! `iddq-synth`'s decomposition and buffer-tree builders emit, and the
//! shape whose generated inverse (`SetFanin` back, `RemoveGate` in
//! reverse order) is always applicable.
//!
//! # Dirty-cone semantics
//!
//! Propagation is event-driven, not structural: a re-evaluated gate whose
//! packed value is bit-identical to before stops the wave, so the visited
//! set is usually much smaller than the structural fanout cone. The
//! [`PatchReport`] returned by apply/rollback counts both the visited and
//! the actually-changed nodes — callers batching mutations can use it to
//! fall back to a full batch sweep when a patch dirties most of the
//! circuit.
//!
//! # Value forces
//!
//! Besides structural edits, a node (gate *or* primary input) can be
//! *forced*: its packed value is pinned to a constant and it is never
//! recomputed from its fan-in until the force is lifted. Stuck-at faults
//! are exactly [`PatchOp::SetForce`] patches (all lanes pinned to the same
//! bit, full apply/rollback/undo support); bridging faults need per-lane
//! force words, which [`DeltaSim::force_word`] / [`DeltaSim::unforce_word`]
//! provide outside the undo stack (the fault-patch engine pairs them
//! manually). Do not mix the two on one node: the inverse of a `SetForce`
//! records the previous force as a *bool*, which cannot represent an
//! arbitrary word force.
//!
//! # State elements and frames
//!
//! A [`CellKind::Dff`] output is a frame boundary: it holds a latched
//! packed word for a whole frame and is never recomputed from its D
//! fan-in by a sweep — the sequential edge stops every propagation wave.
//! [`DeltaSim::set_state`] loads the latched words (and propagates the
//! resulting changes like an input load), [`DeltaSim::capture_state`]
//! reads the settled next-state off the D drivers, and
//! [`DeltaSim::step_frame`] combines the two into the same
//! *scatter → evaluate → capture* cycle as the batch engine's
//! `Simulator::step_frame`. Structural patches may not touch state
//! elements ([`PatchError::StateElement`]) — but value forces may, which
//! is exactly how the multi-frame fault engine injects a diverged faulty
//! state into an otherwise shared structure.

use iddq_netlist::{CellKind, Netlist, NodeId, PackedWord};

pub use iddq_netlist::patch::{Patch, PatchError, PatchOp};

/// Work accounting of one apply/rollback.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PatchReport {
    /// Nodes re-evaluated by the worklist (the dirty-cone walk length).
    pub reevaluated: usize,
    /// Nodes whose packed value actually changed.
    pub changed: usize,
}

/// Mutable flat (CSR-style) adjacency: per-node slots in one shared index
/// pool, with per-slot capacity so rewires that fit in place cost a copy
/// and oversized ones relocate to the pool tail. The initial layout is in
/// node order, so cone walks touch the pool near-sequentially.
#[derive(Debug, Clone)]
struct Adjacency {
    off: Vec<u32>,
    len: Vec<u32>,
    cap: Vec<u32>,
    pool: Vec<u32>,
}

impl Adjacency {
    fn from_lists(lists: impl Iterator<Item = Vec<u32>>, slack: u32) -> Self {
        let mut off = Vec::new();
        let mut len = Vec::new();
        let mut cap = Vec::new();
        let mut pool = Vec::new();
        for list in lists {
            let c = list.len() as u32 + slack;
            off.push(pool.len() as u32);
            len.push(list.len() as u32);
            cap.push(c);
            pool.extend_from_slice(&list);
            pool.extend(std::iter::repeat_n(0, slack as usize));
        }
        Adjacency {
            off,
            len,
            cap,
            pool,
        }
    }

    /// Heap bytes of the four SoA `u32` arrays.
    fn memory_bytes(&self) -> usize {
        std::mem::size_of::<u32>()
            * (self.off.capacity()
                + self.len.capacity()
                + self.cap.capacity()
                + self.pool.capacity())
    }

    #[inline]
    fn get(&self, i: usize) -> &[u32] {
        let o = self.off[i] as usize;
        &self.pool[o..o + self.len[i] as usize]
    }

    fn set(&mut self, i: usize, new: &[u32]) {
        if new.len() as u32 > self.cap[i] {
            // Relocate to the tail with doubled capacity; the old slot
            // becomes dead pool space (bounded by total rewrite volume).
            let c = (new.len() * 2) as u32;
            self.off[i] = self.pool.len() as u32;
            self.cap[i] = c;
            self.pool.extend(std::iter::repeat_n(0, c as usize));
        }
        let o = self.off[i] as usize;
        self.pool[o..o + new.len()].copy_from_slice(new);
        self.len[i] = new.len() as u32;
    }

    fn push(&mut self, i: usize, v: u32) {
        if self.len[i] == self.cap[i] {
            let current = self.get(i).to_vec();
            let c = (current.len() as u32 + 1) * 2;
            self.off[i] = self.pool.len() as u32;
            self.cap[i] = c;
            self.pool.extend(std::iter::repeat_n(0, c as usize));
            let o = self.off[i] as usize;
            self.pool[o..o + current.len()].copy_from_slice(&current);
        }
        let o = self.off[i] as usize + self.len[i] as usize;
        self.pool[o] = v;
        self.len[i] += 1;
    }

    /// Appends a node slot holding `list` (plus `slack` spare capacity) at
    /// the tail of the pool.
    fn push_slot(&mut self, list: &[u32], slack: u32) {
        let c = list.len() as u32 + slack;
        self.off.push(self.pool.len() as u32);
        self.len.push(list.len() as u32);
        self.cap.push(c);
        self.pool.extend_from_slice(list);
        self.pool.extend(std::iter::repeat_n(0, slack as usize));
    }

    /// Drops the last node slot. When the slot's range sits at the pool
    /// tail — always true for the apply→rollback round-trip of an
    /// insertion, the probe-loop pattern — the storage is reclaimed;
    /// interior (relocated-away) ranges stay dead like any other
    /// relocation residue.
    // The `expect`s assert this pool's own bookkeeping (offsets, caps
    // and lengths move in lockstep); they cannot fire from caller input.
    #[allow(clippy::expect_used)]
    fn pop_slot(&mut self) {
        let off = self.off.pop().expect("non-empty adjacency");
        self.len.pop();
        let cap = self.cap.pop().expect("non-empty adjacency");
        if (off + cap) as usize == self.pool.len() {
            self.pool.truncate(off as usize);
        }
    }

    /// Removes one occurrence of `v` (order not preserved).
    // Same bookkeeping invariant: every stored edge has a mirror entry.
    #[allow(clippy::expect_used)]
    fn remove_one(&mut self, i: usize, v: u32) {
        let o = self.off[i] as usize;
        let n = self.len[i] as usize;
        let slot = &mut self.pool[o..o + n];
        let pos = slot
            .iter()
            .position(|&x| x == v)
            .expect("adjacency consistent");
        slot.swap(pos, n - 1);
        self.len[i] -= 1;
    }
}

/// Event-driven incremental simulator with persistent per-node packed
/// state.
///
/// # Example
///
/// ```rust
/// use iddq_logicsim::delta::{DeltaSim, Patch, PatchOp};
/// use iddq_netlist::{data, CellKind};
///
/// let c17 = data::c17();
/// let mut sim = DeltaSim::<u64>::new(&c17);
/// sim.set_inputs(&[!0u64; 5]);
/// let g22 = c17.find("22").unwrap();
/// assert_eq!(sim.value(g22) & 1, 1); // 22 = NAND(10, 16) = 1
///
/// // Mutate 22 into an AND: only its (empty) fanout cone re-evaluates.
/// let patch = Patch::single(PatchOp::SetKind { gate: g22, kind: CellKind::And });
/// sim.apply(&patch).unwrap();
/// assert_eq!(sim.value(g22) & 1, 0);
/// sim.rollback();
/// assert_eq!(sim.value(g22) & 1, 1);
/// ```
#[derive(Debug, Clone)]
pub struct DeltaSim<W: PackedWord> {
    /// `None` for primary inputs.
    kinds: Vec<Option<CellKind>>,
    fanin: Adjacency,
    fanout: Adjacency,
    level: Vec<u32>,
    values: Vec<W>,
    /// Per-node value pin (`None` = evaluate normally).
    forced: Vec<Option<W>>,
    input_words: Vec<W>,
    input_indices: Vec<u32>,
    /// Primary-input position per node (`u32::MAX` for gates).
    input_pos: Vec<u32>,
    /// State-element position per node (`u32::MAX` for everything else).
    state_pos: Vec<u32>,
    /// DFF output node per state element (`Netlist::state_elements` order).
    state_nodes: Vec<u32>,
    /// D-driver node per state element, aligned with `state_nodes`.
    state_d: Vec<u32>,
    /// Latched packed word per state element (what the DFF output reads).
    state_words: Vec<W>,
    /// Inverse patches, innermost last.
    undo: Vec<Patch>,
    // Worklist / re-levelization scratch (all node-count sized, epoch
    // stamped so walks are allocation-free).
    stamp: Vec<u64>,
    generation: u64,
    buckets: Vec<Vec<u32>>,
    affected: Vec<u32>,
    indeg: Vec<u32>,
    tmp_level: Vec<u32>,
    gather: Vec<W>,
}

impl<W: PackedWord> DeltaSim<W> {
    /// Copies the netlist structure and establishes the all-zero-input
    /// baseline state.
    #[must_use]
    pub fn new(netlist: &Netlist) -> Self {
        let n = netlist.node_count();
        let kinds = netlist
            .node_ids()
            .map(|id| netlist.node(id).kind().cell_kind())
            .collect();
        // Fan-in slots carry no slack (rewires keep or relocate); fanout
        // slots get a little headroom so consumer churn stays in place.
        let fanin = Adjacency::from_lists(
            netlist
                .node_ids()
                .map(|id| netlist.node(id).fanin().iter().map(|f| f.0).collect()),
            0,
        );
        let fanout = Adjacency::from_lists(
            netlist
                .node_ids()
                .map(|id| netlist.fanout(id).iter().map(|f| f.0).collect()),
            2,
        );
        let level = iddq_netlist::levelize::levels(netlist);
        let max_level = level.iter().copied().max().unwrap_or(0) as usize;
        let mut input_pos = vec![u32::MAX; n];
        for (k, &i) in netlist.inputs().iter().enumerate() {
            input_pos[i.index()] = k as u32;
        }
        let mut state_pos = vec![u32::MAX; n];
        for (k, &d) in netlist.state_elements().iter().enumerate() {
            state_pos[d.index()] = k as u32;
        }
        let state_d: Vec<u32> = netlist
            .state_elements()
            .iter()
            .map(|d| netlist.node(*d).fanin()[0].0)
            .collect();
        let mut sim = DeltaSim {
            kinds,
            fanin,
            fanout,
            level,
            values: vec![W::zeros(); n],
            forced: vec![None; n],
            input_words: vec![W::zeros(); netlist.num_inputs()],
            input_indices: netlist.inputs().iter().map(|i| i.0).collect(),
            input_pos,
            state_pos,
            state_nodes: netlist.state_elements().iter().map(|d| d.0).collect(),
            state_d,
            state_words: vec![W::zeros(); netlist.num_state_elements()],
            undo: Vec::new(),
            stamp: vec![0; n],
            generation: 0,
            buckets: vec![Vec::new(); max_level + 1],
            affected: Vec::new(),
            indeg: vec![0; n],
            tmp_level: vec![0; n],
            gather: Vec::new(),
        };
        let zeros = vec![W::zeros(); sim.input_words.len()];
        sim.set_inputs(&zeros);
        sim
    }

    /// Number of primary inputs.
    #[must_use]
    pub fn num_inputs(&self) -> usize {
        self.input_indices.len()
    }

    /// Total node count.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.values.len()
    }

    /// Approximate heap footprint of the persistent engine state in
    /// bytes: the SoA adjacency pools (u32 throughout), the packed value
    /// / force lanes (`LANES / 8` bytes per node per lane set), and the
    /// node-count-sized scratch arrays. Pending undo patches are not
    /// counted (their size is the caller's patch history, not the
    /// engine's steady state).
    #[must_use]
    pub fn memory_bytes(&self) -> usize {
        let u32s = self.level.capacity()
            + self.input_indices.capacity()
            + self.input_pos.capacity()
            + self.state_pos.capacity()
            + self.state_nodes.capacity()
            + self.state_d.capacity()
            + self.affected.capacity()
            + self.indeg.capacity()
            + self.tmp_level.capacity();
        let words = self.values.capacity()
            + self.input_words.capacity()
            + self.state_words.capacity()
            + self.gather.capacity();
        self.fanin.memory_bytes()
            + self.fanout.memory_bytes()
            + self.kinds.capacity() * std::mem::size_of::<Option<CellKind>>()
            + self.forced.capacity() * std::mem::size_of::<Option<W>>()
            + u32s * std::mem::size_of::<u32>()
            + words * std::mem::size_of::<W>()
            + self.stamp.capacity() * std::mem::size_of::<u64>()
            + self
                .buckets
                .iter()
                .map(|b| b.capacity() * std::mem::size_of::<u32>())
                .sum::<usize>()
    }

    /// The persistent packed value of every node under the current inputs
    /// and structure.
    #[must_use]
    pub fn values(&self) -> &[W] {
        &self.values
    }

    /// Packed value of one node.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn value(&self, id: NodeId) -> W {
        self.values[id.index()]
    }

    /// Current logic function of a node (`None` for primary inputs).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn kind(&self, id: NodeId) -> Option<CellKind> {
        self.kinds[id.index()]
    }

    /// Current ordered fan-in of a node.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn fanin(&self, id: NodeId) -> Vec<NodeId> {
        self.fanin
            .get(id.index())
            .iter()
            .map(|&i| NodeId(i))
            .collect()
    }

    /// Current ordered fan-in as raw node indices, without allocating.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub(crate) fn fanin_indices(&self, id: NodeId) -> &[u32] {
        self.fanin.get(id.index())
    }

    /// Number of applied-but-uncommitted patches on the undo stack.
    #[must_use]
    pub fn pending_patches(&self) -> usize {
        self.undo.len()
    }

    /// Loads a packed input batch and fully re-evaluates the circuit over
    /// the current (possibly patched) structure.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from the number of primary inputs.
    pub fn set_inputs(&mut self, inputs: &[W]) {
        assert_eq!(
            inputs.len(),
            self.input_indices.len(),
            "one packed word per primary input required"
        );
        self.input_words.copy_from_slice(inputs);
        // Forced full sweep: seed every input and every state element,
        // never stop the wave. Every gate is combinationally reachable
        // from that seed set (walking fan-in back terminates at an input
        // or a DFF output), so the sweep establishes the evaluation
        // invariant over the whole circuit. The sweep itself reads each
        // input's word / latched state word (or its force) on visit.
        let mut seeds: Vec<u32> = self.input_indices.clone();
        seeds.extend_from_slice(&self.state_nodes);
        self.sweep(&seeds, true);
    }

    /// Number of DFF state elements.
    #[must_use]
    pub fn num_state_elements(&self) -> usize {
        self.state_nodes.len()
    }

    /// Loads the latched state words (one per state element, in
    /// `Netlist::state_elements` order) and propagates the resulting
    /// changes through the dirty cone, exactly like an input load.
    ///
    /// A force pin on a DFF output survives the load: the pinned value
    /// keeps shadowing the latched word until the force is lifted.
    ///
    /// # Panics
    ///
    /// Panics if `state.len()` differs from the number of state elements.
    pub fn set_state(&mut self, state: &[W]) -> PatchReport {
        assert_eq!(
            state.len(),
            self.state_words.len(),
            "one packed word per state element required"
        );
        self.state_words.copy_from_slice(state);
        let seeds: Vec<u32> = self.state_nodes.clone();
        self.sweep(&seeds, false)
    }

    /// Reads the settled next-state off the D drivers into `state` (one
    /// word per state element, in `Netlist::state_elements` order).
    ///
    /// # Panics
    ///
    /// Panics if `state.len()` differs from the number of state elements.
    pub fn capture_state(&self, state: &mut [W]) {
        assert_eq!(
            state.len(),
            self.state_words.len(),
            "one packed word per state element required"
        );
        for (slot, &d) in state.iter_mut().zip(&self.state_d) {
            *slot = self.values[d as usize];
        }
    }

    /// Advances one frame: latches `state` into the DFF outputs, loads
    /// `inputs`, propagates the combined dirty cone, then captures the
    /// next-state back into `state` — the same scatter → evaluate →
    /// capture cycle as the batch engine's `Simulator::step_frame`, but
    /// event-driven (only values that changed since the previous frame
    /// re-propagate).
    ///
    /// # Panics
    ///
    /// Panics if `inputs` or `state` have the wrong length.
    pub fn step_frame(&mut self, inputs: &[W], state: &mut [W]) -> PatchReport {
        assert_eq!(
            inputs.len(),
            self.input_indices.len(),
            "one packed word per primary input required"
        );
        assert_eq!(
            state.len(),
            self.state_words.len(),
            "one packed word per state element required"
        );
        self.input_words.copy_from_slice(inputs);
        self.state_words.copy_from_slice(state);
        let mut seeds: Vec<u32> = self.input_indices.clone();
        seeds.extend_from_slice(&self.state_nodes);
        let report = self.sweep(&seeds, false);
        self.capture_state(state);
        report
    }

    /// Pins `node` to a per-lane packed constant and propagates the dirty
    /// cone. Unlike [`PatchOp::SetForce`] this supports lane-dependent
    /// values (bridge wired words) but bypasses the undo stack: callers
    /// pair it with [`DeltaSim::unforce_word`] themselves and must not mix
    /// it with patch-level forces on the same node.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn force_word(&mut self, node: NodeId, value: W) -> PatchReport {
        self.forced[node.index()] = Some(value);
        self.sweep(&[node.0], false)
    }

    /// Lifts a [`DeltaSim::force_word`] pin: the node is recomputed from
    /// its fan-in (or its loaded input word) and the change propagates.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn unforce_word(&mut self, node: NodeId) -> PatchReport {
        self.forced[node.index()] = None;
        self.sweep(&[node.0], false)
    }

    /// The current force pin of a node, if any.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    #[must_use]
    pub fn forced_value(&self, node: NodeId) -> Option<W> {
        self.forced[node.index()]
    }

    /// Applies a patch: structural edit, local re-levelization, dirty-cone
    /// value propagation. The inverse lands on the undo stack.
    ///
    /// # Errors
    ///
    /// Returns a [`PatchError`] (state unchanged) when an op targets a
    /// non-gate, uses an illegal arity, references an unknown node, or
    /// would create a combinational cycle.
    pub fn apply(&mut self, patch: &Patch) -> Result<PatchReport, PatchError> {
        let (inverse, report) = self.apply_inner(patch)?;
        self.undo.push(inverse);
        Ok(report)
    }

    /// Rolls the most recent uncommitted patch back, restoring structure
    /// and re-propagating values. Returns the rollback's own dirty-cone
    /// accounting.
    ///
    /// # Panics
    ///
    /// Panics if there is no patch to roll back.
    // Documented panic contract (empty undo stack), and the inverse of
    // an accepted patch re-validates by construction.
    #[allow(clippy::expect_used)]
    pub fn rollback(&mut self) -> PatchReport {
        let inverse = self.undo.pop().expect("no patch to roll back");
        let (_, report) = self
            .apply_inner(&inverse)
            .expect("inverse of an accepted patch is always valid");
        report
    }

    /// Makes all applied patches permanent by clearing the undo stack.
    pub fn commit(&mut self) {
        self.undo.clear();
    }

    // On a relevel failure the already-applied ops are unwound with
    // their recorded inverses, which restore the exact prior structure —
    // that restore failing would mean the inverse bookkeeping is broken.
    #[allow(clippy::expect_used)]
    fn apply_inner(&mut self, patch: &Patch) -> Result<(Patch, PatchReport), PatchError> {
        let inverse = self.apply_structure(patch)?;
        let seeds: Vec<u32> = {
            // Deduplicated set of edited gates (a patch may touch a gate
            // twice, e.g. kind + fan-in). Gates removed by the patch have
            // nothing left to re-evaluate (removal requires an empty
            // fanout) and are filtered out.
            let mut s: Vec<u32> = patch
                .ops
                .iter()
                .map(|op| op.gate().0)
                .filter(|&g| (g as usize) < self.kinds.len())
                .collect();
            s.sort_unstable();
            s.dedup();
            s
        };
        // Levels can only change — and a cycle can only appear — when a
        // rewired gate's locally recomputed level moved: kind flips and
        // level-preserving rewires skip the (fanout-cone-sized)
        // re-levelization entirely. The prune is airtight for cycles:
        // wiring a gate's own (transitive) successor in as a driver
        // necessarily raises its local level, because levels strictly
        // increase along every edge. Inserted gates take `1 + max(fan-in
        // levels)` directly; if a rewire in the same patch later moves a
        // driver's level, the insertion sits in that driver's fanout
        // region and is repaired by the same pass.
        let relevel_seeds: Vec<u32> = patch
            .ops
            .iter()
            .filter(|op| matches!(op, PatchOp::SetFanin { .. }))
            .map(|op| op.gate().0)
            .filter(|&g| (g as usize) < self.kinds.len())
            .filter(|&g| self.local_level(g as usize) != self.level[g as usize])
            .collect();
        if !relevel_seeds.is_empty() {
            if let Err(cycle) = self.relevel(&relevel_seeds) {
                let _ = self
                    .apply_structure(&inverse)
                    .expect("restoring the previous structure cannot fail");
                return Err(cycle);
            }
        }
        let report = self.sweep(&seeds, false);
        Ok((inverse, report))
    }

    /// Level a gate would get from its current fan-in (`0` for inputs).
    fn local_level(&self, i: usize) -> u32 {
        if self.kinds[i].is_none() {
            return 0;
        }
        1 + self
            .fanin
            .get(i)
            .iter()
            .map(|&f| self.level[f as usize])
            .max()
            .unwrap_or(0)
    }

    /// Applies the structural ops in order, returning the inverse patch.
    /// On mid-patch validation failure the already-applied prefix is
    /// reverted, leaving the structure untouched.
    fn apply_structure(&mut self, patch: &Patch) -> Result<Patch, PatchError> {
        let mut inverse: Vec<PatchOp> = Vec::with_capacity(patch.ops.len());
        for op in &patch.ops {
            let gate = op.gate();
            let gi = gate.index();
            let valid = (|| {
                // AddGate is validated against the id it *creates*; every
                // other op targets an existing node.
                if let PatchOp::AddGate { kind, fanin, .. } = op {
                    let expected = self.kinds.len() as u32;
                    if gate.0 != expected {
                        return Err(PatchError::NotAppend { gate, expected });
                    }
                    if kind.is_state() {
                        return Err(PatchError::StateElement(gate));
                    }
                    if !kind.accepts_fanin(fanin.len()) {
                        return Err(PatchError::BadArity {
                            gate,
                            kind: *kind,
                            got: fanin.len(),
                        });
                    }
                    for &f in fanin {
                        if f.index() >= self.kinds.len() {
                            return Err(PatchError::UnknownNode(f));
                        }
                    }
                    return Ok(());
                }
                if gi >= self.kinds.len() {
                    return Err(PatchError::UnknownNode(gate));
                }
                // Forces apply to any node, including primary inputs.
                if matches!(op, PatchOp::SetForce { .. }) {
                    return Ok(());
                }
                let Some(kind) = self.kinds[gi] else {
                    return Err(PatchError::NotAGate(gate));
                };
                // Structural edits stop at frame boundaries: a DFF can be
                // forced (fault injection) but never rekinded, rewired or
                // removed.
                if kind.is_state() {
                    return Err(PatchError::StateElement(gate));
                }
                match op {
                    PatchOp::SetForce { .. } | PatchOp::AddGate { .. } => {
                        unreachable!("handled above")
                    }
                    PatchOp::SetKind { kind: new_kind, .. } => {
                        if new_kind.is_state() {
                            return Err(PatchError::StateElement(gate));
                        }
                        let arity = self.fanin.get(gi).len();
                        if !new_kind.accepts_fanin(arity) {
                            return Err(PatchError::BadArity {
                                gate,
                                kind: *new_kind,
                                got: arity,
                            });
                        }
                    }
                    PatchOp::SetFanin { fanin, .. } => {
                        if !kind.accepts_fanin(fanin.len()) {
                            return Err(PatchError::BadArity {
                                gate,
                                kind,
                                got: fanin.len(),
                            });
                        }
                        for &f in fanin {
                            if f.index() >= self.kinds.len() {
                                return Err(PatchError::UnknownNode(f));
                            }
                        }
                    }
                    PatchOp::RemoveGate { .. } => {
                        if gi + 1 != self.kinds.len()
                            || !self.fanout.get(gi).is_empty()
                            || self.forced[gi].is_some()
                        {
                            return Err(PatchError::NotRemovable(gate));
                        }
                    }
                }
                Ok(())
            })();
            if let Err(e) = valid {
                // Revert the applied prefix, innermost first.
                for inv in inverse.iter().rev() {
                    self.apply_op_unchecked(inv);
                }
                return Err(e);
            }
            inverse.push(self.apply_op_unchecked(op));
        }
        inverse.reverse();
        Ok(Patch { ops: inverse })
    }

    /// Applies one validated op, returning its inverse.
    // `_unchecked` by contract: ops reach here only after
    // `validate_op`, so the gate-kind slots are guaranteed populated.
    #[allow(clippy::expect_used)]
    fn apply_op_unchecked(&mut self, op: &PatchOp) -> PatchOp {
        match op {
            PatchOp::SetKind { gate, kind } => {
                let gi = gate.index();
                let old = self.kinds[gi].expect("validated as gate");
                self.kinds[gi] = Some(*kind);
                PatchOp::SetKind {
                    gate: *gate,
                    kind: old,
                }
            }
            PatchOp::SetFanin { gate, fanin } => {
                let gi = gate.index();
                let new: Vec<u32> = fanin.iter().map(|f| f.0).collect();
                let old = self.fanin.get(gi).to_vec();
                self.fanin.set(gi, &new);
                // Fanout maintenance preserves occurrence counts (a driver
                // may feed the same gate on several pins).
                for &f in &old {
                    self.fanout.remove_one(f as usize, gate.0);
                }
                for &f in &new {
                    self.fanout.push(f as usize, gate.0);
                }
                PatchOp::SetFanin {
                    gate: *gate,
                    fanin: old.into_iter().map(NodeId).collect(),
                }
            }
            PatchOp::SetForce { node, force } => {
                let i = node.index();
                let old = self.forced[i];
                self.forced[i] = force.map(W::splat);
                PatchOp::SetForce {
                    node: *node,
                    // Splat forces round-trip exactly; word forces (set via
                    // `force_word`) are documented as not mixable here.
                    force: old.map(|w| w == W::ones()),
                }
            }
            PatchOp::AddGate { gate, kind, fanin } => {
                let list: Vec<u32> = fanin.iter().map(|f| f.0).collect();
                self.kinds.push(Some(*kind));
                self.fanin.push_slot(&list, 0);
                self.fanout.push_slot(&[], 2);
                for &f in &list {
                    self.fanout.push(f as usize, gate.0);
                }
                // Append-only insertion reads pre-existing drivers only:
                // no cycle is possible and the level is locally exact
                // (repaired by the batched relevel if a same-patch rewire
                // later moves a driver).
                let lv = 1 + list
                    .iter()
                    .map(|&f| self.level[f as usize])
                    .max()
                    .unwrap_or(0);
                self.level.push(lv);
                if self.buckets.len() <= lv as usize {
                    self.buckets.resize_with(lv as usize + 1, Vec::new);
                }
                self.values.push(W::zeros());
                self.forced.push(None);
                self.input_pos.push(u32::MAX);
                self.state_pos.push(u32::MAX);
                self.stamp.push(0);
                self.indeg.push(0);
                self.tmp_level.push(0);
                PatchOp::RemoveGate { gate: *gate }
            }
            PatchOp::RemoveGate { gate } => {
                let gi = gate.index();
                let kind = self.kinds.pop().flatten().expect("validated gate");
                let fanin: Vec<NodeId> = self.fanin.get(gi).iter().map(|&f| NodeId(f)).collect();
                for f in &fanin {
                    self.fanout.remove_one(f.index(), gate.0);
                }
                self.fanin.pop_slot();
                self.fanout.pop_slot();
                self.level.pop();
                self.values.pop();
                self.forced.pop();
                self.input_pos.pop();
                self.state_pos.pop();
                self.stamp.pop();
                self.indeg.pop();
                self.tmp_level.pop();
                PatchOp::AddGate {
                    gate: *gate,
                    kind,
                    fanin,
                }
            }
        }
    }

    /// Recomputes levels over the transitive fanout of `seeds`, detecting
    /// cycles. On `Err` no level has been modified.
    // As in `cone::relevel`: the expect cross-checks the cycle
    // detector's own accounting, not an input condition.
    #[allow(clippy::expect_used)]
    fn relevel(&mut self, seeds: &[u32]) -> Result<(), PatchError> {
        // Affected region: transitive fanout of the edited gates over the
        // *new* adjacency (any node whose level can change has an edited
        // ancestor, hence is reachable).
        self.generation += 1;
        let generation = self.generation;
        self.affected.clear();
        let mut head = 0usize;
        for &s in seeds {
            if self.stamp[s as usize] != generation {
                self.stamp[s as usize] = generation;
                self.affected.push(s);
            }
        }
        while head < self.affected.len() {
            let i = self.affected[head] as usize;
            head += 1;
            for &succ in self.fanout.get(i) {
                let succ = succ as usize;
                // State elements are level-0 frame boundaries: their level
                // never moves, and the edge into them never closes a
                // combinational cycle.
                if self.state_pos[succ] != u32::MAX {
                    continue;
                }
                if self.stamp[succ] != generation {
                    self.stamp[succ] = generation;
                    self.affected.push(succ as u32);
                }
            }
        }
        // Kahn inside the region; levels of outside drivers are final.
        for &i in &self.affected {
            self.indeg[i as usize] = 0;
        }
        for k in 0..self.affected.len() {
            let i = self.affected[k] as usize;
            for &f in self.fanin.get(i) {
                if self.stamp[f as usize] == generation {
                    self.indeg[i] += 1;
                }
            }
        }
        let mut queue: Vec<u32> = self
            .affected
            .iter()
            .copied()
            .filter(|&i| self.indeg[i as usize] == 0)
            .collect();
        let mut new_level: Vec<(u32, u32)> = Vec::with_capacity(self.affected.len());
        let mut head = 0usize;
        // Defer writes into `self.level` until the whole region is proven
        // acyclic: `tmp_level` (epoch-stamped scratch, `MAX` = not yet
        // computed) tracks in-region updates meanwhile. Kahn order
        // guarantees an in-region driver is computed before its readers.
        for &i in &self.affected {
            self.tmp_level[i as usize] = u32::MAX;
        }
        while head < queue.len() {
            let i = queue[head] as usize;
            head += 1;
            let lv = if self.kinds[i].is_some() {
                1 + self
                    .fanin
                    .get(i)
                    .iter()
                    .map(|&f| {
                        if self.stamp[f as usize] == generation {
                            self.tmp_level[f as usize]
                        } else {
                            self.level[f as usize]
                        }
                    })
                    .max()
                    .unwrap_or(0)
            } else {
                0
            };
            self.tmp_level[i] = lv;
            new_level.push((i as u32, lv));
            for &succ in self.fanout.get(i) {
                let succ = succ as usize;
                if self.stamp[succ] == generation {
                    self.indeg[succ] -= 1;
                    if self.indeg[succ] == 0 {
                        queue.push(succ as u32);
                    }
                }
            }
        }
        if new_level.len() != self.affected.len() {
            let on = self
                .affected
                .iter()
                .copied()
                .find(|&i| self.indeg[i as usize] > 0)
                .expect("unprocessed node has positive in-degree");
            return Err(PatchError::Cycle(NodeId(on)));
        }
        for (i, lv) in new_level {
            self.level[i as usize] = lv;
        }
        let max_level = self.level.iter().copied().max().unwrap_or(0) as usize;
        if self.buckets.len() <= max_level {
            self.buckets.resize_with(max_level + 1, Vec::new);
        }
        Ok(())
    }

    /// Level-ordered worklist sweep from `seeds`. With `force`, every
    /// reached node is re-evaluated and always propagates (full sweep);
    /// without, propagation stops at nodes whose value did not change.
    fn sweep(&mut self, seeds: &[u32], force: bool) -> PatchReport {
        self.generation += 1;
        let generation = self.generation;
        let mut lowest = self.buckets.len();
        for &s in seeds {
            if self.stamp[s as usize] != generation {
                self.stamp[s as usize] = generation;
                let lv = self.level[s as usize] as usize;
                self.buckets[lv].push(s);
                lowest = lowest.min(lv);
            }
        }
        let mut reevaluated = 0usize;
        let mut changed = 0usize;
        for lv in lowest..self.buckets.len() {
            let mut k = 0usize;
            while k < self.buckets[lv].len() {
                let i = self.buckets[lv][k] as usize;
                k += 1;
                reevaluated += 1;
                let new = if let Some(pin) = self.forced[i] {
                    // A forced node holds its pin regardless of structure.
                    pin
                } else if self.state_pos[i] != u32::MAX {
                    // A DFF output reads its latched word, never its D
                    // fan-in — latching happens only in `set_state` /
                    // `step_frame`, between frames.
                    self.state_words[self.state_pos[i] as usize]
                } else {
                    match self.kinds[i] {
                        Some(kind) => {
                            // Direct-op fast paths for the 1/2-input forms
                            // that dominate ISCAS circuits (no fold, no
                            // gather); larger gates take the generic path.
                            match *self.fanin.get(i) {
                                [a] => {
                                    let a = self.values[a as usize];
                                    match kind {
                                        CellKind::Not => !a,
                                        CellKind::Dff => unreachable!(
                                            "state elements read their latched word above"
                                        ),
                                        _ => a,
                                    }
                                }
                                [a, b] => {
                                    let a = self.values[a as usize];
                                    let b = self.values[b as usize];
                                    match kind {
                                        CellKind::Nand => !(a & b),
                                        CellKind::Nor => !(a | b),
                                        CellKind::And => a & b,
                                        CellKind::Or => a | b,
                                        CellKind::Xor => a ^ b,
                                        CellKind::Xnor => !(a ^ b),
                                        CellKind::Buf | CellKind::Not | CellKind::Dff => {
                                            unreachable!("arity 1 kinds never take two fan-ins")
                                        }
                                    }
                                }
                                _ => {
                                    self.gather.clear();
                                    for &f in self.fanin.get(i) {
                                        self.gather.push(self.values[f as usize]);
                                    }
                                    kind.eval_packed(&self.gather)
                                }
                            }
                        }
                        // Primary inputs re-read their loaded word.
                        None => self.input_words[self.input_pos[i] as usize],
                    }
                };
                let old = std::mem::replace(&mut self.values[i], new);
                let delta = new != old;
                if delta {
                    changed += 1;
                }
                if delta || force {
                    for &succ in self.fanout.get(i) {
                        let succ = succ as usize;
                        // A D fan-in edge is sequential: the wave stops at
                        // the state element (its latched word does not
                        // depend on this frame's values — and pushing a
                        // level-0 node from a higher bucket would leave
                        // worklist residue anyway).
                        if self.state_pos[succ] != u32::MAX {
                            continue;
                        }
                        if self.stamp[succ] != generation {
                            self.stamp[succ] = generation;
                            self.buckets[self.level[succ] as usize].push(succ as u32);
                        }
                    }
                }
            }
            self.buckets[lv].clear();
        }
        PatchReport {
            reevaluated,
            changed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Simulator;
    use iddq_netlist::data;

    #[test]
    fn matches_csr_on_baseline() {
        let nl = data::ripple_adder(6);
        let sim = Simulator::new(&nl);
        let mut delta = DeltaSim::<u64>::new(&nl);
        let inputs: Vec<u64> = (0..nl.num_inputs() as u64)
            .map(|i| i.wrapping_mul(0x9e37_79b9_7f4a_7c15))
            .collect();
        delta.set_inputs(&inputs);
        assert_eq!(delta.values(), &sim.eval(&inputs)[..]);
    }

    #[test]
    fn kind_flip_propagates_and_rolls_back() {
        let nl = data::c17();
        let mut delta = DeltaSim::<u64>::new(&nl);
        delta.set_inputs(&[!0u64; 5]);
        let baseline = delta.values().to_vec();
        let g10 = nl.find("10").unwrap();
        // 10: NAND -> AND flips it from 0 to 1 under all-ones inputs,
        // rippling through 16, 22, 23.
        let r = delta
            .apply(&Patch::single(PatchOp::SetKind {
                gate: g10,
                kind: CellKind::And,
            }))
            .unwrap();
        assert!(r.changed >= 1);
        assert_eq!(delta.value(g10) & 1, 1);
        assert_eq!(delta.pending_patches(), 1);
        let r = delta.rollback();
        assert!(r.changed >= 1);
        assert_eq!(delta.values(), &baseline[..]);
        assert_eq!(delta.pending_patches(), 0);
    }

    #[test]
    fn silent_patch_stops_immediately() {
        // Under all-zero inputs a NAND and a NOR of zeros both read 1: the
        // flip re-evaluates only the patched gate and nothing downstream.
        let nl = data::c17();
        let mut delta = DeltaSim::<u64>::new(&nl);
        delta.set_inputs(&[0u64; 5]);
        let g10 = nl.find("10").unwrap();
        let r = delta
            .apply(&Patch::single(PatchOp::SetKind {
                gate: g10,
                kind: CellKind::Nor,
            }))
            .unwrap();
        assert_eq!(r.reevaluated, 1);
        assert_eq!(r.changed, 0);
        delta.rollback();
    }

    #[test]
    fn rewire_matches_rebuilt_netlist() {
        let nl = data::c17();
        let mut delta = DeltaSim::<u64>::new(&nl);
        let inputs = [0x0123_4567_89ab_cdefu64, !0, 0x55aa, 0, 0xff00_ff00];
        delta.set_inputs(&inputs);
        // Rewire 22 = NAND(10, 16) to NAND(11, 19).
        let g22 = nl.find("22").unwrap();
        let g11 = nl.find("11").unwrap();
        let g19 = nl.find("19").unwrap();
        delta
            .apply(&Patch::single(PatchOp::SetFanin {
                gate: g22,
                fanin: vec![g11, g19],
            }))
            .unwrap();
        // Reference: rebuild the mutated circuit from scratch.
        let mut b = iddq_netlist::NetlistBuilder::new("c17-mut");
        let mut map = std::collections::HashMap::new();
        for &i in nl.inputs() {
            map.insert(i, b.add_input(nl.node_name(i)));
        }
        for &id in nl.topo_order() {
            if let Some(kind) = nl.node(id).kind().cell_kind() {
                let fanin: Vec<NodeId> = if id == g22 {
                    vec![map[&g11], map[&g19]]
                } else {
                    nl.node(id).fanin().iter().map(|f| map[f]).collect()
                };
                map.insert(id, b.add_gate(nl.node_name(id), kind, fanin).unwrap());
            }
        }
        for &o in nl.outputs() {
            b.mark_output(map[&o]);
        }
        let mutated = b.build().unwrap();
        let reference = Simulator::new(&mutated).eval(&inputs);
        for id in nl.node_ids() {
            assert_eq!(
                delta.value(id),
                reference[map[&id].index()],
                "node {}",
                nl.node_name(id)
            );
        }
        delta.rollback();
        assert_eq!(delta.values(), &Simulator::new(&nl).eval(&inputs)[..]);
    }

    #[test]
    fn cycle_is_rejected_atomically() {
        let nl = data::c17();
        let mut delta = DeltaSim::<u64>::new(&nl);
        delta.set_inputs(&[!0u64; 5]);
        let before = delta.values().to_vec();
        let g10 = nl.find("10").unwrap();
        let g22 = nl.find("22").unwrap();
        // 10 feeds 16 feeds 22; feeding 22 back into 10 is a cycle.
        let err = delta
            .apply(&Patch::single(PatchOp::SetFanin {
                gate: g10,
                fanin: vec![g22, nl.find("3").unwrap()],
            }))
            .unwrap_err();
        assert!(matches!(err, PatchError::Cycle(_)));
        assert_eq!(delta.values(), &before[..]);
        assert_eq!(delta.fanin(g10), nl.node(g10).fanin().to_vec());
        assert_eq!(delta.pending_patches(), 0);
    }

    #[test]
    fn self_loop_is_a_cycle() {
        let nl = data::c17();
        let mut delta = DeltaSim::<u64>::new(&nl);
        let g10 = nl.find("10").unwrap();
        let err = delta
            .apply(&Patch::single(PatchOp::SetFanin {
                gate: g10,
                fanin: vec![g10, nl.find("3").unwrap()],
            }))
            .unwrap_err();
        assert!(matches!(err, PatchError::Cycle(_)));
    }

    #[test]
    fn bad_arity_and_non_gate_rejected() {
        let nl = data::c17();
        let mut delta = DeltaSim::<u64>::new(&nl);
        let g10 = nl.find("10").unwrap();
        let pi = nl.inputs()[0];
        assert!(matches!(
            delta
                .apply(&Patch::single(PatchOp::SetKind {
                    gate: g10,
                    kind: CellKind::Not,
                }))
                .unwrap_err(),
            PatchError::BadArity { got: 2, .. }
        ));
        assert!(matches!(
            delta
                .apply(&Patch::single(PatchOp::SetKind {
                    gate: pi,
                    kind: CellKind::Not,
                }))
                .unwrap_err(),
            PatchError::NotAGate(_)
        ));
    }

    #[test]
    fn failed_op_mid_patch_reverts_prefix() {
        let nl = data::c17();
        let mut delta = DeltaSim::<u64>::new(&nl);
        delta.set_inputs(&[!0u64; 5]);
        let before = delta.values().to_vec();
        let g10 = nl.find("10").unwrap();
        let patch = Patch {
            ops: vec![
                PatchOp::SetKind {
                    gate: g10,
                    kind: CellKind::And,
                },
                PatchOp::SetKind {
                    gate: nl.inputs()[0],
                    kind: CellKind::Not,
                },
            ],
        };
        assert!(delta.apply(&patch).is_err());
        assert_eq!(delta.kind(g10), Some(CellKind::Nand));
        assert_eq!(delta.values(), &before[..]);
    }

    #[test]
    fn stacked_patches_roll_back_in_order() {
        let nl = data::c17();
        let mut delta = DeltaSim::<u64>::new(&nl);
        delta.set_inputs(&[!0u64; 5]);
        let base = delta.values().to_vec();
        let g10 = nl.find("10").unwrap();
        let g11 = nl.find("11").unwrap();
        delta
            .apply(&Patch::single(PatchOp::SetKind {
                gate: g10,
                kind: CellKind::And,
            }))
            .unwrap();
        let after_first = delta.values().to_vec();
        delta
            .apply(&Patch::single(PatchOp::SetKind {
                gate: g11,
                kind: CellKind::Or,
            }))
            .unwrap();
        delta.rollback();
        assert_eq!(delta.values(), &after_first[..]);
        delta.rollback();
        assert_eq!(delta.values(), &base[..]);
    }

    #[test]
    fn inputs_can_change_between_apply_and_rollback() {
        let nl = data::c17();
        let mut delta = DeltaSim::<u64>::new(&nl);
        delta.set_inputs(&[!0u64; 5]);
        let g10 = nl.find("10").unwrap();
        delta
            .apply(&Patch::single(PatchOp::SetKind {
                gate: g10,
                kind: CellKind::And,
            }))
            .unwrap();
        // New inputs while mutated, then rollback: state must equal the
        // pristine circuit under the *new* inputs.
        delta.set_inputs(&[0u64; 5]);
        delta.rollback();
        assert_eq!(delta.values(), &Simulator::new(&nl).eval(&[0u64; 5])[..]);
    }

    #[test]
    fn commit_clears_undo() {
        let nl = data::c17();
        let mut delta = DeltaSim::<u64>::new(&nl);
        let g10 = nl.find("10").unwrap();
        delta
            .apply(&Patch::single(PatchOp::SetKind {
                gate: g10,
                kind: CellKind::And,
            }))
            .unwrap();
        delta.commit();
        assert_eq!(delta.pending_patches(), 0);
        assert_eq!(delta.kind(g10), Some(CellKind::And));
    }

    #[test]
    fn stuck_at_force_patch_propagates_and_rolls_back() {
        let nl = data::c17();
        let mut delta = DeltaSim::<u64>::new(&nl);
        delta.set_inputs(&[!0u64; 5]);
        let baseline = delta.values().to_vec();
        // 10 = NAND(1,3) = 0 under all-ones; pin it to 1 and the flip
        // ripples into 22.
        let g10 = nl.find("10").unwrap();
        let g22 = nl.find("22").unwrap();
        let r = delta
            .apply(&Patch::single(PatchOp::SetForce {
                node: g10,
                force: Some(true),
            }))
            .unwrap();
        assert!(r.changed >= 1);
        assert_eq!(delta.value(g10), !0);
        assert_ne!(delta.value(g22), baseline[g22.index()]);
        assert_eq!(delta.forced_value(g10), Some(!0u64));
        delta.rollback();
        assert_eq!(delta.values(), &baseline[..]);
        assert_eq!(delta.forced_value(g10), None);
    }

    #[test]
    fn force_on_primary_input_and_release() {
        let nl = data::c17();
        let mut delta = DeltaSim::<u64>::new(&nl);
        delta.set_inputs(&[0u64; 5]);
        let pi = nl.inputs()[0];
        let baseline = delta.values().to_vec();
        delta
            .apply(&Patch::single(PatchOp::SetForce {
                node: pi,
                force: Some(true),
            }))
            .unwrap();
        assert_eq!(delta.value(pi), !0);
        // New inputs while forced: the pin survives the full sweep.
        delta.set_inputs(&[0x55u64; 5]);
        assert_eq!(delta.value(pi), !0);
        delta.rollback();
        // Released: the PI reads its *current* loaded word, not the one
        // from force time.
        assert_eq!(delta.value(pi), 0x55);
        delta.set_inputs(&[0u64; 5]);
        assert_eq!(delta.values(), &baseline[..]);
    }

    #[test]
    fn silent_force_stops_immediately() {
        // Forcing a node to the value it already has re-evaluates only the
        // node itself.
        let nl = data::c17();
        let mut delta = DeltaSim::<u64>::new(&nl);
        delta.set_inputs(&[!0u64; 5]);
        let g22 = nl.find("22").unwrap();
        assert_eq!(delta.value(g22), !0);
        let r = delta
            .apply(&Patch::single(PatchOp::SetForce {
                node: g22,
                force: Some(true),
            }))
            .unwrap();
        assert_eq!(r.reevaluated, 1);
        assert_eq!(r.changed, 0);
        delta.rollback();
    }

    #[test]
    fn word_force_matches_forced_reference_eval() {
        // force_word with a lane-dependent word equals a per-lane forced
        // evaluation; unforce restores the baseline exactly.
        let nl = data::ripple_adder(4);
        let mut delta = DeltaSim::<u64>::new(&nl);
        let inputs: Vec<u64> = (0..nl.num_inputs() as u64)
            .map(|i| i.wrapping_mul(0x9e37_79b9_7f4a_7c15))
            .collect();
        delta.set_inputs(&inputs);
        let baseline = delta.values().to_vec();
        let gate = nl.gate_ids().nth(2).unwrap();
        let pin = 0x0f0f_1234_5678_9abc;
        delta.force_word(gate, pin);
        assert_eq!(delta.value(gate), pin);
        // Reference: naive topo eval skipping the forced node.
        let mut want = vec![0u64; nl.node_count()];
        for (&id, &w) in nl.inputs().iter().zip(&inputs) {
            want[id.index()] = w;
        }
        want[gate.index()] = pin;
        for &id in nl.topo_order() {
            if id == gate {
                continue;
            }
            if let Some(kind) = nl.node(id).kind().cell_kind() {
                let ins: Vec<u64> = nl
                    .node(id)
                    .fanin()
                    .iter()
                    .map(|f| want[f.index()])
                    .collect();
                want[id.index()] = kind.eval_packed(&ins);
            }
        }
        assert_eq!(delta.values(), &want[..]);
        delta.unforce_word(gate);
        assert_eq!(delta.values(), &baseline[..]);
    }

    #[test]
    fn structural_patch_respects_active_force() {
        // A kind flip on a forced gate changes nothing until the force is
        // lifted.
        let nl = data::c17();
        let mut delta = DeltaSim::<u64>::new(&nl);
        delta.set_inputs(&[!0u64; 5]);
        let g10 = nl.find("10").unwrap();
        delta
            .apply(&Patch::single(PatchOp::SetForce {
                node: g10,
                force: Some(false),
            }))
            .unwrap();
        let forced_state = delta.values().to_vec();
        let r = delta
            .apply(&Patch::single(PatchOp::SetKind {
                gate: g10,
                kind: CellKind::And,
            }))
            .unwrap();
        assert_eq!(r.changed, 0);
        assert_eq!(delta.values(), &forced_state[..]);
        delta.rollback(); // kind
        delta.rollback(); // force
        assert_eq!(delta.value(g10) & 1, 0); // NAND(1,1) = 0
    }

    #[test]
    fn add_gate_evaluates_immediately_and_rolls_back() {
        let nl = data::c17();
        let mut delta = DeltaSim::<u64>::new(&nl);
        let inputs = [0x0123_4567_89ab_cdefu64, !0, 0x55aa, 0, 0xff00_ff00];
        delta.set_inputs(&inputs);
        let g10 = nl.find("10").unwrap();
        let g11 = nl.find("11").unwrap();
        let n = nl.node_count() as u32;
        let r = delta
            .apply(&Patch::single(PatchOp::AddGate {
                gate: NodeId(n),
                kind: CellKind::Xor,
                fanin: vec![g10, g11],
            }))
            .unwrap();
        assert_eq!(delta.node_count(), nl.node_count() + 1);
        assert_eq!(r.reevaluated, 1);
        assert_eq!(delta.value(NodeId(n)), delta.value(g10) ^ delta.value(g11));
        assert_eq!(delta.kind(NodeId(n)), Some(CellKind::Xor));
        delta.rollback();
        assert_eq!(delta.node_count(), nl.node_count());
        assert_eq!(delta.values(), &Simulator::new(&nl).eval(&inputs)[..]);
    }

    #[test]
    fn region_rewrite_matches_materialized_oracle() {
        // AddGate + SetFanin in one patch — the decomposition shape — must
        // equal a from-scratch simulation of the materialized circuit, and
        // the generated inverse must restore the pristine values.
        let nl = data::c17();
        let mut delta = DeltaSim::<u64>::new(&nl);
        let inputs = [0xdead_beef_0123_4567u64, 0x55aa, !0, 0, 0x0f0f_0f0f];
        delta.set_inputs(&inputs);
        let pristine = delta.values().to_vec();
        let g10 = nl.find("10").unwrap();
        let g11 = nl.find("11").unwrap();
        let g22 = nl.find("22").unwrap();
        let n = nl.node_count() as u32;
        let patch = Patch {
            ops: vec![
                PatchOp::AddGate {
                    gate: NodeId(n),
                    kind: CellKind::And,
                    fanin: vec![g10, g11],
                },
                PatchOp::SetFanin {
                    gate: g22,
                    fanin: vec![NodeId(n), g10],
                },
            ],
        };
        delta.apply(&patch).unwrap();
        let mutated = iddq_netlist::patch::materialize(&nl, &patch).unwrap();
        let oracle = Simulator::new(&mutated).eval(&inputs);
        assert_eq!(delta.values(), &oracle[..]);
        delta.rollback();
        assert_eq!(delta.values(), &pristine[..]);
        assert_eq!(delta.node_count(), nl.node_count());
    }

    #[test]
    fn add_gate_id_must_append() {
        let nl = data::c17();
        let mut delta = DeltaSim::<u64>::new(&nl);
        let g10 = nl.find("10").unwrap();
        let err = delta
            .apply(&Patch::single(PatchOp::AddGate {
                gate: NodeId(nl.node_count() as u32 + 1),
                kind: CellKind::Not,
                fanin: vec![g10],
            }))
            .unwrap_err();
        assert!(matches!(err, PatchError::NotAppend { .. }));
    }

    #[test]
    fn remove_gate_guards() {
        let nl = data::c17();
        let mut delta = DeltaSim::<u64>::new(&nl);
        // 16 feeds 22 and 23: consumed, and not the tail either.
        let g16 = nl.find("16").unwrap();
        assert!(matches!(
            delta
                .apply(&Patch::single(PatchOp::RemoveGate { gate: g16 }))
                .unwrap_err(),
            PatchError::NotRemovable(_)
        ));
        // The tail node 23 is consumer-free but forced nodes stay pinned.
        let tail = NodeId(nl.node_count() as u32 - 1);
        delta
            .apply(&Patch::single(PatchOp::SetForce {
                node: tail,
                force: Some(true),
            }))
            .unwrap();
        assert!(matches!(
            delta
                .apply(&Patch::single(PatchOp::RemoveGate { gate: tail }))
                .unwrap_err(),
            PatchError::NotRemovable(_)
        ));
        delta.rollback();
        // Unforced, it pops — and the inverse re-adds it.
        delta
            .apply(&Patch::single(PatchOp::RemoveGate { gate: tail }))
            .unwrap();
        assert_eq!(delta.node_count(), nl.node_count() - 1);
        delta.rollback();
        assert_eq!(delta.node_count(), nl.node_count());
        assert_eq!(delta.kind(tail), Some(CellKind::Nand));
    }

    #[test]
    fn insertion_rollback_reclaims_pool_storage() {
        // A long-lived simulator driven through probe loops (apply an
        // insertion, score, roll back, repeat) must not grow its
        // adjacency pools monotonically.
        let nl = data::c17();
        let mut delta = DeltaSim::<u64>::new(&nl);
        delta.set_inputs(&[!0u64; 5]);
        let g10 = nl.find("10").unwrap();
        let g11 = nl.find("11").unwrap();
        let patch = Patch::single(PatchOp::AddGate {
            gate: NodeId(nl.node_count() as u32),
            kind: CellKind::And,
            fanin: vec![g10, g11],
        });
        delta.apply(&patch).unwrap();
        delta.rollback();
        let fanin_pool = delta.fanin.pool.len();
        let fanout_pool = delta.fanout.pool.len();
        for _ in 0..100 {
            delta.apply(&patch).unwrap();
            delta.rollback();
        }
        assert_eq!(delta.fanin.pool.len(), fanin_pool);
        assert_eq!(delta.fanout.pool.len(), fanout_pool);
    }

    #[test]
    fn failed_op_after_insertion_reverts_the_insertion() {
        let nl = data::c17();
        let mut delta = DeltaSim::<u64>::new(&nl);
        delta.set_inputs(&[!0u64; 5]);
        let before = delta.values().to_vec();
        let g10 = nl.find("10").unwrap();
        let patch = Patch {
            ops: vec![
                PatchOp::AddGate {
                    gate: NodeId(nl.node_count() as u32),
                    kind: CellKind::Not,
                    fanin: vec![g10],
                },
                // Illegal: NOT cannot take two fan-ins.
                PatchOp::SetKind {
                    gate: g10,
                    kind: CellKind::Not,
                },
            ],
        };
        assert!(delta.apply(&patch).is_err());
        assert_eq!(delta.node_count(), nl.node_count());
        assert_eq!(delta.values(), &before[..]);
        assert_eq!(delta.pending_patches(), 0);
    }

    #[test]
    fn inserted_gate_level_repaired_by_same_patch_rewire() {
        // Chain i -> g0 -> g1; insert NOT(g0), then rewire g0 deeper is
        // impossible here — instead rewire g1 to read the insertion and
        // check the insertion's downstream value stays consistent after
        // input changes (levels must be right for the sweep order).
        let mut b = iddq_netlist::NetlistBuilder::new("lvl");
        let i = b.add_input("i");
        let g0 = b.add_gate("g0", CellKind::Not, vec![i]).unwrap();
        let g1 = b.add_gate("g1", CellKind::Not, vec![g0]).unwrap();
        b.mark_output(g1);
        let nl = b.build().unwrap();
        let mut delta = DeltaSim::<u64>::new(&nl);
        delta.set_inputs(&[0x00ff_00ffu64]);
        let n = NodeId(nl.node_count() as u32);
        delta
            .apply(&Patch {
                ops: vec![
                    PatchOp::AddGate {
                        gate: n,
                        kind: CellKind::Not,
                        fanin: vec![g0],
                    },
                    PatchOp::SetFanin {
                        gate: g1,
                        fanin: vec![n],
                    },
                ],
            })
            .unwrap();
        // g1 = NOT(NOT(NOT i)) = NOT i... via n: n = NOT(g0) = i, g1 = NOT(n).
        assert_eq!(delta.value(g1), !delta.value(i));
        delta.set_inputs(&[0x1234_5678u64]);
        assert_eq!(delta.value(g1), !0x1234_5678u64);
        delta.rollback();
        assert_eq!(delta.value(g1), delta.value(i));
    }

    /// q = DFF(n), n = NOT(q), y = XOR(a, q): q toggles every frame.
    fn toggle() -> iddq_netlist::Netlist {
        let mut b = iddq_netlist::NetlistBuilder::new("toggle");
        let a = b.add_input("a");
        let q = b.add_dff("q").unwrap();
        let n = b.add_gate("n", CellKind::Not, vec![q]).unwrap();
        b.set_dff_input(q, n);
        let y = b.add_gate("y", CellKind::Xor, vec![a, q]).unwrap();
        b.mark_output(y);
        b.build().unwrap()
    }

    #[test]
    fn baseline_covers_state_fed_logic() {
        // n = NOT(q) is reachable only from the DFF, not from any primary
        // input: the construction-time sweep must still evaluate it.
        let nl = toggle();
        let delta = DeltaSim::<u64>::new(&nl);
        let n = nl.find("n").unwrap();
        assert_eq!(delta.value(n), !0u64);
    }

    #[test]
    fn step_frame_matches_csr_frame_engine() {
        let nl = toggle();
        let csr = Simulator::new(&nl);
        let mut delta = DeltaSim::<u64>::new(&nl);
        let mut csr_state = vec![0u64; csr.num_state_elements()];
        let mut csr_values = vec![0u64; csr.node_count()];
        let mut d_state = vec![0u64; delta.num_state_elements()];
        for t in 0..6u64 {
            let inputs = vec![t.wrapping_mul(0x2545_f491_4f6c_dd1d)];
            csr.step_frame(&inputs, &mut csr_state, &mut csr_values);
            delta.step_frame(&inputs, &mut d_state);
            assert_eq!(delta.values(), &csr_values[..], "frame {t}");
            assert_eq!(d_state, csr_state, "state after frame {t}");
        }
    }

    #[test]
    fn structural_patches_on_state_elements_rejected() {
        let nl = toggle();
        let mut delta = DeltaSim::<u64>::new(&nl);
        let q = nl.find("q").unwrap();
        let n = nl.find("n").unwrap();
        for patch in [
            Patch::single(PatchOp::SetKind {
                gate: q,
                kind: CellKind::Buf,
            }),
            Patch::single(PatchOp::SetFanin {
                gate: q,
                fanin: vec![n],
            }),
            Patch::single(PatchOp::RemoveGate { gate: q }),
            Patch::single(PatchOp::SetKind {
                gate: n,
                kind: CellKind::Dff,
            }),
            Patch::single(PatchOp::AddGate {
                gate: NodeId(nl.node_count() as u32),
                kind: CellKind::Dff,
                fanin: vec![n],
            }),
        ] {
            assert!(
                matches!(
                    delta.apply(&patch).unwrap_err(),
                    PatchError::StateElement(_)
                ),
                "patch {patch:?} should be rejected as a state-element edit"
            );
        }
        assert_eq!(delta.pending_patches(), 0);
    }

    #[test]
    fn force_word_on_dff_injects_and_releases_state() {
        // The multi-frame fault engine's state-divergence mechanism: pin a
        // DFF output to a faulty word, observe the combinational fanout
        // and the captured next-state diverge, lift the pin, recover.
        let nl = toggle();
        let mut delta = DeltaSim::<u64>::new(&nl);
        delta.set_inputs(&[0u64]);
        let q = nl.find("q").unwrap();
        let y = nl.find("y").unwrap();
        assert_eq!(delta.value(y), 0);
        delta.force_word(q, 0xffffu64);
        assert_eq!(delta.value(q), 0xffff);
        assert_eq!(delta.value(y), 0xffff); // y = a XOR q = q
        let mut captured = vec![0u64; 1];
        delta.capture_state(&mut captured);
        assert_eq!(captured[0], !0xffffu64); // next q = NOT(q)
        delta.unforce_word(q);
        assert_eq!(delta.value(q), 0);
        assert_eq!(delta.value(y), 0);
    }

    #[test]
    fn force_pin_survives_frame_latch() {
        // A forced DFF keeps its pin across step_frame: the latched word
        // updates underneath but the pin shadows it until lifted.
        let nl = toggle();
        let mut delta = DeltaSim::<u64>::new(&nl);
        let q = nl.find("q").unwrap();
        delta.force_word(q, !0u64);
        let mut state = vec![0u64; 1];
        delta.step_frame(&[0u64], &mut state);
        assert_eq!(delta.value(q), !0u64);
        assert_eq!(state[0], 0); // next q = NOT(forced 1) = 0
        delta.unforce_word(q);
    }

    #[test]
    fn rewire_through_dff_loop_is_not_a_cycle() {
        // n sits on a feedback loop through q; deepening n from NOT(q) to
        // NOT(y) moves its level and triggers re-levelization. The region
        // walk must stop at the DFF rather than report a false cycle.
        let nl = toggle();
        let mut delta = DeltaSim::<u64>::new(&nl);
        delta.set_inputs(&[0x5a5au64]);
        let baseline = delta.values().to_vec();
        let n = nl.find("n").unwrap();
        let y = nl.find("y").unwrap();
        delta
            .apply(&Patch::single(PatchOp::SetFanin {
                gate: n,
                fanin: vec![y],
            }))
            .unwrap();
        assert_eq!(delta.value(n), !delta.value(y));
        delta.rollback();
        assert_eq!(delta.values(), &baseline[..]);
    }

    #[test]
    fn step_frames_match_naive_oracle_with_midstream_patch() {
        // Frame stepping composes with the patch machinery: mutate a gate,
        // run frames against a rebuilt-netlist oracle, roll back, and the
        // pristine frame behaviour returns.
        let nl = toggle();
        let mut delta = DeltaSim::<u64>::new(&nl);
        let n = nl.find("n").unwrap();
        // n: NOT -> BUF turns the toggler into a hold register (q stays 0).
        delta
            .apply(&Patch::single(PatchOp::SetKind {
                gate: n,
                kind: CellKind::Buf,
            }))
            .unwrap();
        let mut state = vec![0u64; 1];
        for t in 0..4 {
            delta.step_frame(&[0u64], &mut state);
            assert_eq!(state[0], 0, "held state, frame {t}");
        }
        delta.rollback();
        state[0] = 0;
        delta.set_state(&state);
        let naive = crate::reference::NaiveSimulator::new(&nl);
        let frames: Vec<Vec<u64>> = (0..4u64).map(|t| vec![t * 3]).collect();
        let oracle = naive.step_frames(&frames);
        for (t, inputs) in frames.iter().enumerate() {
            delta.step_frame(inputs, &mut state);
            assert_eq!(delta.values(), &oracle[t][..], "frame {t}");
        }
    }

    #[test]
    fn deepening_rewire_extends_levels() {
        // Chain i -> g0 -> g1 -> g2, plus a parallel g3(i). Rewiring g3 to
        // read g2 deepens it from level 1 to level 4.
        let mut b = iddq_netlist::NetlistBuilder::new("deepen");
        let i = b.add_input("i");
        let g0 = b.add_gate("g0", CellKind::Not, vec![i]).unwrap();
        let g1 = b.add_gate("g1", CellKind::Not, vec![g0]).unwrap();
        let g2 = b.add_gate("g2", CellKind::Not, vec![g1]).unwrap();
        let g3 = b.add_gate("g3", CellKind::Not, vec![i]).unwrap();
        b.mark_output(g2);
        b.mark_output(g3);
        let nl = b.build().unwrap();
        let mut delta = DeltaSim::<u64>::new(&nl);
        delta.set_inputs(&[0x5555_5555_5555_5555]);
        delta
            .apply(&Patch::single(PatchOp::SetFanin {
                gate: g3,
                fanin: vec![g2],
            }))
            .unwrap();
        // g3 = NOT(g2), and g2 = NOT(NOT(NOT(i))) = NOT(i), so g3 = i.
        assert_eq!(delta.value(g3), delta.value(i));
        delta.rollback();
        // Pristine again: g3 = NOT(i).
        assert_eq!(delta.value(g3), !delta.value(i));
    }
}
