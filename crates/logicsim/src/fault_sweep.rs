//! Fault-patch sweep engine: pattern-parallel stuck-at / bridge fault
//! simulation on the incremental [`DeltaSim`].
//!
//! The classical way to score a logic fault is to re-simulate the whole
//! circuit with the fault injected, once per fault per pattern batch —
//! what [`logic_test`](crate::logic_test)'s `*_from` functions do and what
//! this module keeps as its differential oracle ([`BackendKind::Csr`]).
//! But a stuck-at fault is exactly a one-node *patch* whose effect is
//! confined to the node's fanout cone, and a persistent [`DeltaSim`]
//! already holds the good-machine packed state for the current batch. The
//! engine therefore runs the PPSFP-style loop (single fault propagation,
//! pattern-parallel words, fault dropping):
//!
//! 1. **good-state snapshot** — [`FaultPatchSim::load`] runs one full
//!    sweep per pattern batch and caches the good primary-output words;
//! 2. **patch** — per fault, a [`PatchOp::SetForce`] patch (stuck-at) or a
//!    wired-AND [`DeltaSim::force_word`] fixpoint (bridge) is applied to
//!    the persistent state, re-evaluating only the dirty cone;
//! 3. **diff** — the outputs are XORed against the cached good words,
//!    giving the detection mask for all `W::LANES` patterns at once;
//! 4. **rollback** — the patch is rolled back (or the forces lifted),
//!    which again walks only the dirty cone, restoring the good state for
//!    the next fault.
//!
//! [`sweep`] wraps the per-fault loop in the same two-level
//! (fault-shard × pattern-batch) task grid as
//! [`iddq::simulate_with_options`](crate::iddq::simulate_with_options),
//! with earliest-detection **fault dropping**: once a fault is detected,
//! later batches skip it, and a shared atomic earliest-detection array
//! lets grid cells drop faults another cell already caught — results stay
//! bit-identical for any thread count, shard count and dropping setting,
//! because a fault is only ever skipped when a strictly earlier detection
//! (which wins the min-merge) already exists.

use std::sync::atomic::{AtomicUsize, Ordering};

use iddq_netlist::{Netlist, NodeId, PackedWord};

use crate::backend::BackendKind;
use crate::delta::{DeltaSim, Patch, PatchOp};
use crate::iddq::pack_chunk_into;
use crate::logic_test::{bridge_logic_detection_from, stuck_at_detection_from, StuckAtFault};
use crate::sim::Simulator;

/// One logic (voltage-test) fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LogicFault {
    /// A classical stuck-at fault on a node.
    StuckAt(StuckAtFault),
    /// A wired-AND (ground-dominant) bridging short between two nets.
    Bridge {
        /// First shorted net.
        a: NodeId,
        /// Second shorted net.
        b: NodeId,
    },
}

/// Persistent per-worker state of the fault-patch engine: one [`DeltaSim`]
/// holding the good-machine values of the current batch, plus the cached
/// good output words the detection diff compares against.
#[derive(Debug, Clone)]
pub struct FaultPatchSim<W: PackedWord> {
    sim: DeltaSim<W>,
    outputs: Vec<NodeId>,
    good_out: Vec<W>,
    /// Driver-recompute scratch (keeps the bridge fixpoint allocation-free).
    gather: Vec<W>,
    reevaluated: u64,
    detects: u64,
}

impl<W: PackedWord> FaultPatchSim<W> {
    /// Builds the engine for `netlist` (all-zero-input baseline).
    #[must_use]
    pub fn new(netlist: &Netlist) -> Self {
        let outputs = netlist.outputs().to_vec();
        let mut this = FaultPatchSim {
            sim: DeltaSim::new(netlist),
            good_out: vec![W::zeros(); outputs.len()],
            outputs,
            gather: Vec::new(),
            reevaluated: 0,
            detects: 0,
        };
        this.snapshot_outputs();
        this
    }

    /// Loads a packed pattern batch: one full sweep establishes the
    /// good-machine state, and the good output words are snapshotted.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from the primary-input count.
    pub fn load(&mut self, inputs: &[W]) {
        self.sim.set_inputs(inputs);
        self.snapshot_outputs();
    }

    fn snapshot_outputs(&mut self) {
        for (g, &o) in self.good_out.iter_mut().zip(&self.outputs) {
            *g = self.sim.value(o);
        }
    }

    fn output_diff(&self) -> W {
        let mut diff = W::zeros();
        for (&g, &o) in self.good_out.iter().zip(&self.outputs) {
            diff = diff | (g ^ self.sim.value(o));
        }
        diff
    }

    /// Detection mask of one fault against the loaded batch: bit *k* set
    /// iff pattern *k* flips some primary output. The good state is
    /// restored before returning.
    ///
    /// # Panics
    ///
    /// Panics if the fault references nodes outside the netlist.
    pub fn detect(&mut self, fault: LogicFault) -> W {
        self.detects += 1;
        match fault {
            LogicFault::StuckAt(f) => {
                let patch = Patch::single(PatchOp::SetForce {
                    node: f.node,
                    force: Some(f.stuck_at_one),
                });
                let r = self.sim.apply(&patch).expect("force patches are valid");
                let diff = self.output_diff();
                let rb = self.sim.rollback();
                self.reevaluated += (r.reevaluated + rb.reevaluated) as u64;
                diff
            }
            LogicFault::Bridge { a, b } => {
                if a == b {
                    // A net bridged to itself never changes logic.
                    return W::zeros();
                }
                // Wired-AND fixpoint, mirroring `bridge_logic_detection_from`
                // iteration for iteration: each round pins both nets to the
                // current wired word and re-derives it from the corrupted
                // driver values.
                let mut wired = self.sim.value(a) & self.sim.value(b);
                for _ in 0..3 {
                    let ra = self.sim.force_word(a, wired);
                    let rb = self.sim.force_word(b, wired);
                    self.reevaluated += (ra.reevaluated + rb.reevaluated) as u64;
                    let next = self.recompute_driver(a) & self.recompute_driver(b);
                    if next == wired {
                        break;
                    }
                    wired = next;
                }
                let diff = self.output_diff();
                let ra = self.sim.unforce_word(a);
                let rb = self.sim.unforce_word(b);
                self.reevaluated += (ra.reevaluated + rb.reevaluated) as u64;
                diff
            }
        }
    }

    /// What the forced net's driver would output given the current
    /// (corrupted) fan-in values; primary inputs drive their forced value.
    fn recompute_driver(&mut self, node: NodeId) -> W {
        match self.sim.kind(node) {
            None => self.sim.value(node),
            Some(kind) => {
                self.gather.clear();
                for &f in self.sim.fanin_indices(node) {
                    self.gather.push(self.sim.values()[f as usize]);
                }
                kind.eval_packed(&self.gather)
            }
        }
    }

    /// Mean nodes re-evaluated per [`FaultPatchSim::detect`] call
    /// (apply + rollback walks combined) — the dirty-cone work metric the
    /// bench reports.
    #[must_use]
    pub fn mean_dirty_nodes(&self) -> f64 {
        if self.detects == 0 {
            0.0
        } else {
            self.reevaluated as f64 / self.detects as f64
        }
    }

    /// Total nodes re-evaluated and detect calls so far.
    #[must_use]
    pub fn dirty_totals(&self) -> (u64, u64) {
        (self.reevaluated, self.detects)
    }
}

/// Tuning knobs of the fault-patch sweep, mirroring
/// [`SweepOptions`](crate::iddq::SweepOptions)' two-level task grid.
#[derive(Debug, Clone)]
pub struct FaultSweepOptions {
    /// Worker threads; `0` = one per available core (capped by tasks).
    pub threads: usize,
    /// Fault-list shards; `0` = automatic (shard only when pattern batches
    /// cannot keep all workers busy).
    pub fault_shards: usize,
    /// Skip faults whose earliest detection is already known (never
    /// changes results, only work).
    pub fault_dropping: bool,
    /// [`BackendKind::Delta`] = the fault-patch engine;
    /// [`BackendKind::Csr`] = per-fault full re-simulation (the
    /// differential oracle and speedup baseline).
    pub backend: BackendKind,
}

impl Default for FaultSweepOptions {
    fn default() -> Self {
        FaultSweepOptions {
            threads: 0,
            fault_shards: 0,
            fault_dropping: true,
            backend: BackendKind::Delta,
        }
    }
}

/// Outcome of a [`sweep`].
#[derive(Debug, Clone)]
pub struct FaultSweepOutcome {
    /// Per-fault: was it detected by any vector.
    pub detected: Vec<bool>,
    /// Per-fault: index of the first detecting vector, if any.
    pub first_detection: Vec<Option<usize>>,
    /// Fraction of faults detected.
    pub coverage: f64,
    /// Number of vectors applied.
    pub vectors_applied: usize,
    /// Mean nodes re-evaluated per fault application (0 on the CSR
    /// oracle, which has no dirty-cone notion).
    pub mean_dirty_nodes: f64,
}

/// One cell of the two-level task grid.
struct GridTask {
    fault_range: std::ops::Range<usize>,
    batch_range: std::ops::Range<usize>,
}

fn auto_threads(units: usize) -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
        .min(units)
        .max(1)
}

/// Sweeps a fault list against a vector set, `W::LANES` patterns at a
/// time, returning per-fault earliest detections.
///
/// Results are bit-identical for any `threads`, `fault_shards`,
/// `fault_dropping` and backend choice (enforced by the differential
/// proptests); only the work differs.
///
/// # Panics
///
/// Panics if a vector's arity differs from the netlist's primary-input
/// count or a fault references nodes outside the netlist.
#[must_use]
pub fn sweep<W: PackedWord>(
    netlist: &Netlist,
    faults: &[LogicFault],
    vectors: &[Vec<bool>],
    options: &FaultSweepOptions,
) -> FaultSweepOutcome {
    let lanes = W::LANES as usize;
    let num_batches = vectors.len().div_ceil(lanes);
    let threads = if options.threads == 0 {
        auto_threads(num_batches.max(1) * faults.len().div_ceil(64).max(1))
    } else {
        options.threads.max(1)
    };
    let shards = match options.fault_shards {
        0 if num_batches >= threads => 1,
        0 => threads
            .div_ceil(num_batches.max(1))
            .min(faults.len().div_ceil(16).max(1)),
        s => s.min(faults.len().max(1)),
    };
    let batch_chunks = threads.div_ceil(shards).min(num_batches.max(1)).max(1);

    let mut tasks: Vec<GridTask> = Vec::with_capacity(shards * batch_chunks);
    let per_shard = faults.len().div_ceil(shards).max(1);
    let per_chunk = num_batches.div_ceil(batch_chunks).max(1);
    for s in 0..shards {
        let fault_range = s * per_shard..faults.len().min((s + 1) * per_shard);
        if fault_range.is_empty() && !faults.is_empty() {
            continue;
        }
        for c in 0..batch_chunks {
            let batch_range = c * per_chunk..num_batches.min((c + 1) * per_chunk);
            if batch_range.is_empty() && num_batches > 0 {
                continue;
            }
            tasks.push(GridTask {
                fault_range: fault_range.clone(),
                batch_range,
            });
        }
    }

    // Cross-cell fault dropping: earliest published detection per fault. A
    // cell skips a fault only when the published index precedes every
    // vector it could contribute — such a detection wins the min-merge
    // regardless, so worker timing cannot change the result.
    let best: Vec<AtomicUsize> = (0..faults.len())
        .map(|_| AtomicUsize::new(usize::MAX))
        .collect();

    struct Partial {
        fault_start: usize,
        first: Vec<Option<usize>>,
        reevaluated: u64,
        detects: u64,
    }

    let run_tasks = |my_tasks: &[GridTask]| -> Vec<Partial> {
        // One engine per worker: either the fault-patch DeltaSim or the
        // CSR full-sweep oracle.
        let mut patch_sim = match options.backend {
            BackendKind::Delta => Some(FaultPatchSim::<W>::new(netlist)),
            BackendKind::Csr => None,
        };
        let csr = match options.backend {
            BackendKind::Csr => Some(Simulator::new(netlist)),
            BackendKind::Delta => None,
        };
        let mut words = vec![W::zeros(); netlist.num_inputs()];
        let mut good = vec![W::zeros(); netlist.node_count()];
        let mut out = Vec::with_capacity(my_tasks.len());
        for task in my_tasks {
            let flen = task.fault_range.len();
            let mut first: Vec<Option<usize>> = vec![None; flen];
            let mut live = vec![true; flen];
            let mut remaining = flen;
            let mut reeval0 = 0u64;
            let mut detects0 = 0u64;
            if let Some(ps) = patch_sim.as_ref() {
                (reeval0, detects0) = ps.dirty_totals();
            }
            for batch_idx in task.batch_range.clone() {
                if options.fault_dropping && remaining == 0 {
                    break;
                }
                let start_vec = batch_idx * lanes;
                let chunk = &vectors[start_vec..vectors.len().min(start_vec + lanes)];
                pack_chunk_into(chunk, &mut words);
                if let Some(ps) = patch_sim.as_mut() {
                    ps.load(&words);
                } else if let Some(sim) = csr.as_ref() {
                    sim.eval_into(&words, &mut good);
                }
                for k in 0..flen {
                    if options.fault_dropping && !live[k] {
                        continue;
                    }
                    let fi = task.fault_range.start + k;
                    if options.fault_dropping && best[fi].load(Ordering::Relaxed) < start_vec {
                        live[k] = false;
                        remaining -= 1;
                        continue;
                    }
                    let mask = match (patch_sim.as_mut(), faults[fi]) {
                        (Some(ps), fault) => ps.detect(fault),
                        (None, LogicFault::StuckAt(f)) => {
                            stuck_at_detection_from(netlist, &good, f, &words)
                        }
                        (None, LogicFault::Bridge { a, b }) => {
                            bridge_logic_detection_from(netlist, &good, a, b, &words)
                        }
                    }
                    .mask_lanes(chunk.len() as u32);
                    if let Some(bit) = mask.first_set() {
                        let v = start_vec + bit as usize;
                        first[k] = Some(first[k].map_or(v, |cur| cur.min(v)));
                        best[fi].fetch_min(v, Ordering::Relaxed);
                        if options.fault_dropping {
                            live[k] = false;
                            remaining -= 1;
                        }
                    }
                }
            }
            let (reevaluated, detects) = match patch_sim.as_ref() {
                Some(ps) => {
                    let (r, d) = ps.dirty_totals();
                    (r - reeval0, d - detects0)
                }
                None => (0, 0),
            };
            out.push(Partial {
                fault_start: task.fault_range.start,
                first,
                reevaluated,
                detects,
            });
        }
        out
    };

    let partials: Vec<Partial> = if threads <= 1 || tasks.len() <= 1 {
        run_tasks(&tasks)
    } else {
        let assignments: Vec<Vec<GridTask>> = {
            let mut a: Vec<Vec<GridTask>> = (0..threads).map(|_| Vec::new()).collect();
            for (i, t) in tasks.into_iter().enumerate() {
                a[i % threads].push(t);
            }
            a.into_iter().filter(|v| !v.is_empty()).collect()
        };
        std::thread::scope(|scope| {
            let run_tasks = &run_tasks;
            let handles: Vec<_> = assignments
                .iter()
                .map(|mine| scope.spawn(move || run_tasks(mine)))
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("sweep worker never panics"))
                .collect()
        })
    };

    let mut first_detection: Vec<Option<usize>> = vec![None; faults.len()];
    let mut reevaluated = 0u64;
    let mut detects = 0u64;
    for p in partials {
        reevaluated += p.reevaluated;
        detects += p.detects;
        for (k, v) in p.first.into_iter().enumerate() {
            if let Some(v) = v {
                let slot = &mut first_detection[p.fault_start + k];
                *slot = Some(slot.map_or(v, |cur| cur.min(v)));
            }
        }
    }

    let detected: Vec<bool> = first_detection.iter().map(Option::is_some).collect();
    let coverage = if faults.is_empty() {
        1.0
    } else {
        detected.iter().filter(|&&d| d).count() as f64 / faults.len() as f64
    };
    FaultSweepOutcome {
        detected,
        first_detection,
        coverage,
        vectors_applied: vectors.len(),
        mean_dirty_nodes: if detects == 0 {
            0.0
        } else {
            reevaluated as f64 / detects as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logic_test::{bridge_logic_detection, stuck_at_detection};
    use iddq_netlist::{data, W256, W512};

    fn all_packed_c17() -> Vec<u64> {
        let mut packed = vec![0u64; 5];
        for pat in 0u64..32 {
            for (i, word) in packed.iter_mut().enumerate() {
                if pat >> i & 1 == 1 {
                    *word |= 1 << pat;
                }
            }
        }
        packed
    }

    #[test]
    fn patch_stuck_at_matches_full_resim_on_c17() {
        let nl = data::c17();
        let packed = all_packed_c17();
        let mut ps = FaultPatchSim::<u64>::new(&nl);
        ps.load(&packed);
        for node in nl.node_ids() {
            for stuck_at_one in [false, true] {
                let fault = StuckAtFault { node, stuck_at_one };
                assert_eq!(
                    ps.detect(LogicFault::StuckAt(fault)),
                    stuck_at_detection(&nl, fault, &packed),
                    "node {node} sa{}",
                    u8::from(stuck_at_one)
                );
            }
        }
        assert!(ps.mean_dirty_nodes() > 0.0);
    }

    #[test]
    fn patch_bridge_matches_full_resim_on_c17() {
        let nl = data::c17();
        let packed = all_packed_c17();
        let mut ps = FaultPatchSim::<u64>::new(&nl);
        ps.load(&packed);
        let nodes: Vec<_> = nl.node_ids().collect();
        for (i, &a) in nodes.iter().enumerate() {
            for &b in &nodes[i..] {
                assert_eq!(
                    ps.detect(LogicFault::Bridge { a, b }),
                    bridge_logic_detection(&nl, a, b, &packed),
                    "bridge {a}-{b}"
                );
            }
        }
    }

    #[test]
    fn engine_state_survives_fault_interleaving() {
        // detect() must leave the good state untouched — interleave faults
        // and re-run one: same answer.
        let nl = data::c17();
        let packed = all_packed_c17();
        let mut ps = FaultPatchSim::<u64>::new(&nl);
        ps.load(&packed);
        let g10 = nl.find("10").unwrap();
        let g22 = nl.find("22").unwrap();
        let f = LogicFault::StuckAt(StuckAtFault {
            node: g10,
            stuck_at_one: true,
        });
        let before = ps.detect(f);
        ps.detect(LogicFault::Bridge { a: g10, b: g22 });
        ps.detect(LogicFault::StuckAt(StuckAtFault {
            node: g22,
            stuck_at_one: false,
        }));
        assert_eq!(ps.detect(f), before);
    }

    fn c17_fault_list(nl: &iddq_netlist::Netlist) -> Vec<LogicFault> {
        let mut faults: Vec<LogicFault> = Vec::new();
        for node in nl.node_ids() {
            for stuck_at_one in [false, true] {
                faults.push(LogicFault::StuckAt(StuckAtFault { node, stuck_at_one }));
            }
        }
        let gs = data::c17_paper_gates(nl);
        faults.push(LogicFault::Bridge { a: gs[0], b: gs[3] });
        faults.push(LogicFault::Bridge { a: gs[1], b: gs[2] });
        faults
    }

    fn c17_vectors(n: usize) -> Vec<Vec<bool>> {
        (0..n)
            .map(|k| (0..5).map(|i| (k >> i) & 1 == 1).collect())
            .collect()
    }

    #[test]
    fn sweep_backends_and_knobs_agree() {
        let nl = data::c17();
        let faults = c17_fault_list(&nl);
        let vectors = c17_vectors(200);
        let base = sweep::<u64>(
            &nl,
            &faults,
            &vectors,
            &FaultSweepOptions {
                threads: 1,
                fault_shards: 1,
                fault_dropping: false,
                backend: BackendKind::Csr,
            },
        );
        assert!(base.coverage > 0.5);
        for (threads, shards, dropping, backend) in [
            (1, 1, true, BackendKind::Delta),
            (1, 1, false, BackendKind::Delta),
            (3, 2, true, BackendKind::Delta),
            (4, 1, true, BackendKind::Csr),
            (2, 3, true, BackendKind::Csr),
        ] {
            let r = sweep::<u64>(
                &nl,
                &faults,
                &vectors,
                &FaultSweepOptions {
                    threads,
                    fault_shards: shards,
                    fault_dropping: dropping,
                    backend,
                },
            );
            assert_eq!(
                base.first_detection, r.first_detection,
                "threads={threads} shards={shards} dropping={dropping} backend={backend}"
            );
            assert_eq!(base.detected, r.detected);
        }
    }

    #[test]
    fn sweep_lane_width_invariant() {
        let nl = data::c17();
        let faults = c17_fault_list(&nl);
        let vectors = c17_vectors(300);
        let opts = FaultSweepOptions::default();
        let narrow = sweep::<u64>(&nl, &faults, &vectors, &opts);
        let wide = sweep::<W256>(&nl, &faults, &vectors, &opts);
        let wider = sweep::<W512>(&nl, &faults, &vectors, &opts);
        assert_eq!(narrow.first_detection, wide.first_detection);
        assert_eq!(narrow.first_detection, wider.first_detection);
    }

    #[test]
    fn empty_fault_list_full_coverage() {
        let nl = data::c17();
        let r = sweep::<u64>(&nl, &[], &c17_vectors(8), &FaultSweepOptions::default());
        assert_eq!(r.coverage, 1.0);
        assert_eq!(r.vectors_applied, 8);
    }

    #[test]
    fn undetectable_fault_reported_undetected() {
        // A bridge of a net with itself is logically silent.
        let nl = data::c17();
        let g10 = nl.find("10").unwrap();
        let faults = vec![LogicFault::Bridge { a: g10, b: g10 }];
        let r = sweep::<u64>(
            &nl,
            &faults,
            &c17_vectors(32),
            &FaultSweepOptions::default(),
        );
        assert_eq!(r.detected, vec![false]);
        assert_eq!(r.coverage, 0.0);
    }
}
