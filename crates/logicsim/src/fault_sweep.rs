//! Fault-patch sweep engine: pattern-parallel stuck-at / bridge fault
//! simulation on the incremental [`DeltaSim`].
//!
//! The classical way to score a logic fault is to re-simulate the whole
//! circuit with the fault injected, once per fault per pattern batch —
//! what [`logic_test`](crate::logic_test)'s `*_from` functions do and what
//! this module keeps as its differential oracle ([`BackendKind::Csr`]).
//! But a stuck-at fault is exactly a one-node *patch* whose effect is
//! confined to the node's fanout cone, and a persistent [`DeltaSim`]
//! already holds the good-machine packed state for the current batch. The
//! engine therefore runs the PPSFP-style loop (single fault propagation,
//! pattern-parallel words, fault dropping):
//!
//! 1. **good-state snapshot** — [`FaultPatchSim::load`] runs one full
//!    sweep per pattern batch and caches the good primary-output words;
//! 2. **patch** — per fault, a [`PatchOp::SetForce`] patch (stuck-at) or a
//!    wired-AND [`DeltaSim::force_word`] fixpoint (bridge) is applied to
//!    the persistent state, re-evaluating only the dirty cone;
//! 3. **diff** — the outputs are XORed against the cached good words,
//!    giving the detection mask for all `W::LANES` patterns at once;
//! 4. **rollback** — the patch is rolled back (or the forces lifted),
//!    which again walks only the dirty cone, restoring the good state for
//!    the next fault.
//!
//! [`sweep`] wraps the per-fault loop in the same two-level
//! (fault-shard × pattern-batch) task grid as
//! [`iddq::simulate_with_options`](crate::iddq::simulate_with_options),
//! with earliest-detection **fault dropping**: once a fault is detected,
//! later batches skip it, and a shared atomic earliest-detection array
//! lets grid cells drop faults another cell already caught — results stay
//! bit-identical for any thread count, shard count and dropping setting,
//! because a fault is only ever skipped when a strictly earlier detection
//! (which wins the min-merge) already exists.
//!
//! # Multi-frame sequences
//!
//! With [`FaultSweepOptions::frames`]` = F > 1` the vector set is read as
//! consecutive *F-cycle test sequences*: vectors `s*F .. (s+1)*F` are the
//! per-frame stimuli of sequence `s`, every sequence starts from the
//! all-zero reset state, and lane *k* of a pattern batch carries sequence
//! `seq_base + k`. The good machine steps frames on the persistent
//! engine; per fault, a *faulty machine* is superimposed through the
//! force layer — the fault site itself plus every DFF whose faulty
//! latched word has diverged from the good state — and the faulty
//! next-state is captured off the D drivers before the forces are
//! lifted. Earliest detection is reported as a plain vector index
//! `seq * F + frame`, so frame resolution survives in the existing
//! [`FaultSweepOutcome::first_detection`] shape: a lower sequence always
//! outranks any frame offset, and within a sequence the first detecting
//! frame wins. `frames = 1` is byte-for-byte the combinational sweep
//! described above. The CSR oracle arm rebuilds each faulty machine per
//! frame with a full forced topological sweep (the slow obviously-correct
//! form), and the differential tests pin the two against each other and
//! against `NaiveSimulator::step_frames`.
//!
//! # Failure semantics: budgets, cancellation, checkpoint/resume
//!
//! [`sweep_with_control`] threads an [`iddq_control::RunControl`] through
//! the grid: workers poll it at every pattern-batch boundary (never inside
//! the packed loops) and charge one work unit per pattern applied. A
//! budget or cancellation hit stops the run at the next boundary and
//! returns [`Outcome::Partial`] — the per-fault earliest detections of
//! every *completed* (fault-shard × pattern-batch) cell, the fraction of
//! planned grid work that ran, and the [`StopReason`]. Worker panics are
//! caught at the task boundary (`catch_unwind`): one poisoned cell fails
//! its shard (and poisons only that worker's engines, which are rebuilt),
//! the process survives, and the outcome degrades to `Partial` with
//! [`StopReason::WorkerPanicked`].
//!
//! Partial results are *resumable*. [`SweepCheckpoint`] serializes the
//! earliest-detection array, the set of fully-swept pattern batches and a
//! fingerprint of the run configuration (netlist structure, fault list,
//! vector set, lane width). [`sweep_resume`] validates the fingerprint and
//! re-runs only the batches not yet fully swept, min-merging the
//! checkpointed detections with the new ones. Because each (fault, batch)
//! detection mask is a pure function of the circuit and the vectors, and
//! the earliest-detection merge is an order-independent minimum, a
//! cancelled-checkpointed-resumed sweep is **bit-identical** to an
//! uninterrupted one — the chaos proptests cancel at random grid points
//! and assert exactly that, for arbitrary thread and shard counts.
//!
//! The [`FaultSweepOptions::chaos_panic_batch`] knob is the
//! chaos-injection hook those tests (and operators vetting a deployment)
//! use: the worker that reaches the given batch panics, exercising the
//! worker-boundary isolation path deterministically.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

use iddq_control::{EngineError, IoEnv, Outcome, RunControl, StopReason};
use iddq_netlist::{Netlist, NodeId, PackedWord};
use serde::{Deserialize, Serialize};

use crate::backend::BackendKind;
use crate::delta::{DeltaSim, Patch, PatchOp};
use crate::iddq::{pack_chunk_into, pack_seq_frame_into};
use crate::logic_test::{
    bridge_logic_detection_from, eval_forced_with_state, recompute_driver, stuck_at_detection_from,
    StuckAtFault,
};
use crate::sim::Simulator;

/// One logic (voltage-test) fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LogicFault {
    /// A classical stuck-at fault on a node.
    StuckAt(StuckAtFault),
    /// A wired-AND (ground-dominant) bridging short between two nets.
    Bridge {
        /// First shorted net.
        a: NodeId,
        /// Second shorted net.
        b: NodeId,
    },
}

/// Persistent per-worker state of the fault-patch engine: one [`DeltaSim`]
/// holding the good-machine values of the current batch, plus the cached
/// good output words the detection diff compares against.
#[derive(Debug, Clone)]
pub struct FaultPatchSim<W: PackedWord> {
    sim: DeltaSim<W>,
    outputs: Vec<NodeId>,
    good_out: Vec<W>,
    /// DFF output node per state element (`Netlist::state_elements` order).
    state_nodes: Vec<NodeId>,
    /// D-driver node per state element, aligned with `state_nodes`.
    state_d: Vec<NodeId>,
    /// Per-fault faulty latched state, `faults.len() * state_nodes.len()`
    /// words, reused across the frames of one sequence batch.
    faulty_state: Vec<W>,
    /// Indices of the DFFs pinned for the fault currently superimposed.
    diverged: Vec<usize>,
    /// Driver-recompute scratch (keeps the bridge fixpoint allocation-free).
    gather: Vec<W>,
    reevaluated: u64,
    detects: u64,
}

impl<W: PackedWord> FaultPatchSim<W> {
    /// Builds the engine for `netlist` (all-zero-input baseline).
    #[must_use]
    pub fn new(netlist: &Netlist) -> Self {
        let outputs = netlist.outputs().to_vec();
        let state_nodes = netlist.state_elements().to_vec();
        let state_d = state_nodes
            .iter()
            .map(|&q| netlist.node(q).fanin()[0])
            .collect();
        let mut this = FaultPatchSim {
            sim: DeltaSim::new(netlist),
            good_out: vec![W::zeros(); outputs.len()],
            outputs,
            state_nodes,
            state_d,
            faulty_state: Vec::new(),
            diverged: Vec::new(),
            gather: Vec::new(),
            reevaluated: 0,
            detects: 0,
        };
        this.snapshot_outputs();
        this
    }

    /// Loads a packed pattern batch: one full sweep establishes the
    /// good-machine state, and the good output words are snapshotted.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from the primary-input count.
    pub fn load(&mut self, inputs: &[W]) {
        self.sim.set_inputs(inputs);
        self.snapshot_outputs();
    }

    fn snapshot_outputs(&mut self) {
        for (g, &o) in self.good_out.iter_mut().zip(&self.outputs) {
            *g = self.sim.value(o);
        }
    }

    fn output_diff(&self) -> W {
        let mut diff = W::zeros();
        for (&g, &o) in self.good_out.iter().zip(&self.outputs) {
            diff = diff | (g ^ self.sim.value(o));
        }
        diff
    }

    /// Detection mask of one fault against the loaded batch: bit *k* set
    /// iff pattern *k* flips some primary output. The good state is
    /// restored before returning.
    ///
    /// # Panics
    ///
    /// Panics if the fault references nodes outside the netlist.
    #[allow(clippy::expect_used)] // invariant: force patches on in-range nodes never fail to apply
    pub fn detect(&mut self, fault: LogicFault) -> W {
        self.detects += 1;
        match fault {
            LogicFault::StuckAt(f) => {
                let patch = Patch::single(PatchOp::SetForce {
                    node: f.node,
                    force: Some(f.stuck_at_one),
                });
                let r = self.sim.apply(&patch).expect("force patches are valid");
                let diff = self.output_diff();
                let rb = self.sim.rollback();
                self.reevaluated += (r.reevaluated + rb.reevaluated) as u64;
                diff
            }
            LogicFault::Bridge { a, b } => {
                if a == b {
                    // A net bridged to itself never changes logic.
                    return W::zeros();
                }
                // Wired-AND fixpoint, mirroring `bridge_logic_detection_from`
                // iteration for iteration: each round pins both nets to the
                // current wired word and re-derives it from the corrupted
                // driver values.
                let mut wired = self.sim.value(a) & self.sim.value(b);
                for _ in 0..3 {
                    let ra = self.sim.force_word(a, wired);
                    let rb = self.sim.force_word(b, wired);
                    self.reevaluated += (ra.reevaluated + rb.reevaluated) as u64;
                    let next = self.recompute_driver(a) & self.recompute_driver(b);
                    if next == wired {
                        break;
                    }
                    wired = next;
                }
                let diff = self.output_diff();
                let ra = self.sim.unforce_word(a);
                let rb = self.sim.unforce_word(b);
                self.reevaluated += (ra.reevaluated + rb.reevaluated) as u64;
                diff
            }
        }
    }

    /// Sweeps one batch of `frames`-cycle sequences: lane *k* carries
    /// sequence `seq_base + k`, every sequence starting from the all-zero
    /// reset. For each live fault, `best_kt[k]` receives the earliest
    /// in-batch detection as `(lane, frame)` — a lower lane (earlier
    /// sequence) always outranks any frame offset, and within a lane the
    /// first detecting frame wins.
    ///
    /// The good machine steps frames on the persistent engine; each fault
    /// is superimposed through the force layer (fault site plus any DFF
    /// whose faulty latched word diverged from the good frame-start
    /// state), its next-state is captured off the D drivers, and the
    /// forces are lifted — restoring the good machine for the next fault.
    ///
    /// # Panics
    ///
    /// Panics on arity mismatches or faults referencing nodes outside the
    /// netlist.
    #[allow(clippy::too_many_arguments)] // mirrors the seq CSR oracle cell signature
    pub fn sweep_sequences(
        &mut self,
        vectors: &[Vec<bool>],
        seq_base: usize,
        frames: usize,
        faults: &[LogicFault],
        live: &[bool],
        best_kt: &mut [Option<(u32, usize)>],
        words: &mut [W],
    ) {
        let s = self.state_nodes.len();
        self.faulty_state.clear();
        self.faulty_state.resize(faults.len() * s, W::zeros());
        let mut good_state = vec![W::zeros(); s];
        let mut run_state = vec![W::zeros(); s];
        for t in 0..frames {
            let lanes_t = pack_seq_frame_into(vectors, seq_base, frames, t, words);
            if lanes_t == 0 {
                break;
            }
            good_state.copy_from_slice(&run_state);
            self.sim.step_frame(words, &mut run_state);
            self.snapshot_outputs();
            for (k, &fault) in faults.iter().enumerate() {
                if !live[k] {
                    continue;
                }
                self.detects += 1;
                // Pin the faulty machine's diverged state words.
                self.diverged.clear();
                for (j, &g) in good_state.iter().enumerate() {
                    let w = self.faulty_state[k * s + j];
                    if w != g {
                        let r = self.sim.force_word(self.state_nodes[j], w);
                        self.reevaluated += r.reevaluated as u64;
                        self.diverged.push(j);
                    }
                }
                // Superimpose the fault through the same force layer.
                match fault {
                    LogicFault::StuckAt(f) => {
                        let r = self.sim.force_word(f.node, W::splat(f.stuck_at_one));
                        self.reevaluated += r.reevaluated as u64;
                    }
                    LogicFault::Bridge { a, b } if a != b => {
                        let mut wired = self.sim.value(a) & self.sim.value(b);
                        for _ in 0..3 {
                            let ra = self.sim.force_word(a, wired);
                            let rb = self.sim.force_word(b, wired);
                            self.reevaluated += (ra.reevaluated + rb.reevaluated) as u64;
                            let next = self.recompute_driver(a) & self.recompute_driver(b);
                            if next == wired {
                                break;
                            }
                            wired = next;
                        }
                    }
                    LogicFault::Bridge { .. } => {}
                }
                let diff = self.output_diff().mask_lanes(lanes_t);
                if let Some(bit) = diff.first_set() {
                    if best_kt[k].is_none_or(|(kb, _)| bit < kb) {
                        best_kt[k] = Some((bit, t));
                    }
                }
                // Capture the faulty next-state off the D drivers *before*
                // lifting the forces.
                for j in 0..s {
                    self.faulty_state[k * s + j] = self.sim.values()[self.state_d[j].index()];
                }
                // Rollback: the fault forces, then the state pins.
                match fault {
                    LogicFault::StuckAt(f) => {
                        let r = self.sim.unforce_word(f.node);
                        self.reevaluated += r.reevaluated as u64;
                    }
                    LogicFault::Bridge { a, b } if a != b => {
                        let ra = self.sim.unforce_word(a);
                        let rb = self.sim.unforce_word(b);
                        self.reevaluated += (ra.reevaluated + rb.reevaluated) as u64;
                    }
                    LogicFault::Bridge { .. } => {}
                }
                for i in 0..self.diverged.len() {
                    let j = self.diverged[i];
                    let r = self.sim.unforce_word(self.state_nodes[j]);
                    self.reevaluated += r.reevaluated as u64;
                }
            }
        }
    }

    /// What the forced net's driver would output given the current
    /// (corrupted) fan-in values; primary inputs drive their forced value.
    fn recompute_driver(&mut self, node: NodeId) -> W {
        match self.sim.kind(node) {
            None => self.sim.value(node),
            Some(kind) => {
                self.gather.clear();
                for &f in self.sim.fanin_indices(node) {
                    self.gather.push(self.sim.values()[f as usize]);
                }
                kind.eval_packed(&self.gather)
            }
        }
    }

    /// Mean nodes re-evaluated per [`FaultPatchSim::detect`] call
    /// (apply + rollback walks combined) — the dirty-cone work metric the
    /// bench reports.
    #[must_use]
    pub fn mean_dirty_nodes(&self) -> f64 {
        if self.detects == 0 {
            0.0
        } else {
            self.reevaluated as f64 / self.detects as f64
        }
    }

    /// Total nodes re-evaluated and detect calls so far.
    #[must_use]
    pub fn dirty_totals(&self) -> (u64, u64) {
        (self.reevaluated, self.detects)
    }
}

/// Tuning knobs of the fault-patch sweep, mirroring
/// [`SweepOptions`](crate::iddq::SweepOptions)' two-level task grid.
#[derive(Debug, Clone)]
pub struct FaultSweepOptions {
    /// Worker threads; `0` = one per available core (capped by tasks).
    pub threads: usize,
    /// Fault-list shards; `0` = automatic (shard only when pattern batches
    /// cannot keep all workers busy).
    pub fault_shards: usize,
    /// Skip faults whose earliest detection is already known (never
    /// changes results, only work).
    pub fault_dropping: bool,
    /// [`BackendKind::Delta`] = the fault-patch engine;
    /// [`BackendKind::Csr`] = per-fault full re-simulation (the
    /// differential oracle and speedup baseline).
    pub backend: BackendKind,
    /// Frames per test sequence. `1` (or `0`, normalized to `1`) keeps the
    /// classical one-vector-per-test combinational sweep; `F > 1` reads
    /// the vector set as consecutive `F`-cycle sequences, each started
    /// from the all-zero reset state (see the module's *Multi-frame
    /// sequences* section).
    pub frames: usize,
    /// Chaos injection: the worker that reaches this absolute pattern-batch
    /// index panics right before evaluating it. Exercises the
    /// worker-boundary `catch_unwind` isolation (one poisoned task fails
    /// its shard, the sweep degrades to `Partial` instead of aborting the
    /// process). `None` in production.
    pub chaos_panic_batch: Option<usize>,
}

impl Default for FaultSweepOptions {
    fn default() -> Self {
        FaultSweepOptions {
            threads: 0,
            fault_shards: 0,
            fault_dropping: true,
            backend: BackendKind::Delta,
            frames: 1,
            chaos_panic_batch: None,
        }
    }
}

/// The CSR oracle for multi-frame sequences: every fault's machine is
/// rebuilt per frame by a full forced topological sweep with the faulty
/// latched state scattered over the DFF outputs, mirroring the patch
/// engine's force fixpoints iteration for iteration. Slow and obviously
/// correct — the differential baseline [`FaultPatchSim::sweep_sequences`]
/// must match bit-for-bit.
#[allow(clippy::too_many_arguments)]
fn seq_csr_cell<W: PackedWord>(
    netlist: &Netlist,
    sim: &Simulator,
    vectors: &[Vec<bool>],
    seq_base: usize,
    frames: usize,
    faults: &[LogicFault],
    live: &[bool],
    best_kt: &mut [Option<(u32, usize)>],
    words: &mut [W],
) {
    let state_nodes = netlist.state_elements();
    let d_drivers: Vec<usize> = state_nodes
        .iter()
        .map(|&q| netlist.node(q).fanin()[0].index())
        .collect();
    let outputs = netlist.outputs();
    // Good pass: record per-frame packed inputs, output words, lane counts.
    let mut frame_inputs: Vec<Vec<W>> = Vec::with_capacity(frames);
    let mut frame_lanes: Vec<u32> = Vec::with_capacity(frames);
    let mut good_outs: Vec<Vec<W>> = Vec::with_capacity(frames);
    let mut state = vec![W::zeros(); state_nodes.len()];
    let mut values = vec![W::zeros(); netlist.node_count()];
    for t in 0..frames {
        let lanes_t = pack_seq_frame_into(vectors, seq_base, frames, t, words);
        if lanes_t == 0 {
            break;
        }
        sim.step_frame(words, &mut state, &mut values);
        frame_inputs.push(words.to_vec());
        frame_lanes.push(lanes_t);
        good_outs.push(outputs.iter().map(|&o| values[o.index()]).collect());
    }
    let mut state_f = vec![W::zeros(); state_nodes.len()];
    for (k, &fault) in faults.iter().enumerate() {
        if !live[k] {
            continue;
        }
        state_f.fill(W::zeros());
        for (t, inputs) in frame_inputs.iter().enumerate() {
            let bad = match fault {
                LogicFault::StuckAt(f) => eval_forced_with_state(
                    netlist,
                    inputs,
                    &state_f,
                    &[(f.node, W::splat(f.stuck_at_one))],
                ),
                LogicFault::Bridge { a, b } if a != b => {
                    let v0 = eval_forced_with_state(netlist, inputs, &state_f, &[]);
                    let mut wired = v0[a.index()] & v0[b.index()];
                    let mut bad = v0;
                    for _ in 0..3 {
                        bad = eval_forced_with_state(
                            netlist,
                            inputs,
                            &state_f,
                            &[(a, wired), (b, wired)],
                        );
                        let next =
                            recompute_driver(netlist, &bad, a) & recompute_driver(netlist, &bad, b);
                        if next == wired {
                            break;
                        }
                        wired = next;
                    }
                    bad
                }
                // A net bridged to itself never changes logic; the faulty
                // machine is the good machine, re-derived the slow way.
                LogicFault::Bridge { .. } => eval_forced_with_state(netlist, inputs, &state_f, &[]),
            };
            let mut diff = W::zeros();
            for (&o, &g) in outputs.iter().zip(&good_outs[t]) {
                diff = diff | (g ^ bad[o.index()]);
            }
            diff = diff.mask_lanes(frame_lanes[t]);
            if let Some(bit) = diff.first_set() {
                if best_kt[k].is_none_or(|(kb, _)| bit < kb) {
                    best_kt[k] = Some((bit, t));
                }
            }
            for (slot, &d) in state_f.iter_mut().zip(&d_drivers) {
                *slot = bad[d];
            }
        }
    }
}

/// Outcome of a [`sweep`].
#[derive(Debug, Clone)]
pub struct FaultSweepOutcome {
    /// Per-fault: was it detected by any vector.
    pub detected: Vec<bool>,
    /// Per-fault: index of the first detecting vector, if any.
    pub first_detection: Vec<Option<usize>>,
    /// Fraction of faults detected.
    pub coverage: f64,
    /// Number of vectors applied.
    pub vectors_applied: usize,
    /// Mean nodes re-evaluated per fault application (0 on the CSR
    /// oracle, which has no dirty-cone notion).
    pub mean_dirty_nodes: f64,
    /// Per pattern batch: was it fully swept against every fault shard
    /// (complete runs: all `true`). This is the resume frontier a
    /// [`SweepCheckpoint`] persists — a batch left `false` is re-swept on
    /// resume, which is always sound because re-scanning reproduces the
    /// same detection masks and the earliest-detection merge is an
    /// order-independent minimum.
    pub done_batches: Vec<bool>,
}

/// A serializable snapshot of an interrupted fault sweep: everything
/// needed to resume it to a bit-identical completion.
///
/// The checkpoint format (stable JSON via the vendored serde) holds:
///
/// * `fingerprint` — 64-bit FNV-1a over the netlist structure, the fault
///   list, the vector set, the lane width, and the thread/shard grid
///   options, hex-encoded. A resumed run must fingerprint identically or
///   [`sweep_resume`] rejects it with [`EngineError::CheckpointMismatch`]
///   — resuming against a different circuit or vector set would silently
///   corrupt the min-merge, and resuming under a different grid
///   configuration is rejected *by policy*: the merge itself is
///   config-independent, but a service restoring a checkpoint must know
///   it is replaying the run it thinks it is. (`fault_dropping`,
///   `backend` and the chaos injection knob are deliberately excluded:
///   they never change results, only work.)
/// * `first_detection` — the per-fault earliest detection indices merged
///   over all grid cells completed before the interruption.
/// * `done_batches` — which pattern batches were fully swept against
///   every fault shard. Resume re-runs exactly the others.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepCheckpoint {
    /// Netlist name (informational; the fingerprint is what binds).
    pub circuit: String,
    /// Hex-encoded FNV-1a fingerprint of (netlist, faults, vectors,
    /// lanes, threads, fault_shards).
    pub fingerprint: String,
    /// Packed lane width the batch geometry was computed with.
    pub lanes: u32,
    /// Worker-thread option of the original run (raw value; `0` = auto).
    pub threads: usize,
    /// Fault-shard option of the original run (raw value; `0` = auto).
    pub fault_shards: usize,
    /// Number of vectors in the sweep.
    pub num_vectors: usize,
    /// Frames per test sequence the batch geometry was computed with
    /// (`1` = the classical combinational sweep). Checkpoints written
    /// before sequential support lack the field and fail closed as
    /// unreadable — re-running a sweep is always sound.
    pub frames: usize,
    /// Per-fault earliest detection so far (`null` = none yet).
    pub first_detection: Vec<Option<usize>>,
    /// Per pattern batch: fully swept before the interruption.
    pub done_batches: Vec<bool>,
}

/// Incremental FNV-1a hasher for the checkpoint fingerprint.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
    fn u64(&mut self, x: u64) {
        for b in x.to_le_bytes() {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    fn bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
}

fn run_fingerprint<W: PackedWord>(
    netlist: &Netlist,
    faults: &[LogicFault],
    vectors: &[Vec<bool>],
    options: &FaultSweepOptions,
) -> String {
    let mut h = Fnv::new();
    h.u64(u64::from(W::LANES));
    h.u64(options.threads as u64);
    h.u64(options.fault_shards as u64);
    h.u64(options.frames.max(1) as u64);
    h.u64(netlist.node_count() as u64);
    h.u64(netlist.num_inputs() as u64);
    h.u64(netlist.num_outputs() as u64);
    for id in netlist.node_ids() {
        match netlist.node(id).kind().cell_kind() {
            None => h.u64(u64::MAX),
            Some(kind) => h.bytes(kind.mnemonic().as_bytes()),
        }
        for f in netlist.node(id).fanin() {
            h.u64(f.index() as u64);
        }
    }
    for fault in faults {
        match *fault {
            LogicFault::StuckAt(f) => {
                h.u64(0);
                h.u64(f.node.index() as u64);
                h.u64(u64::from(f.stuck_at_one));
            }
            LogicFault::Bridge { a, b } => {
                h.u64(1);
                h.u64(a.index() as u64);
                h.u64(b.index() as u64);
            }
        }
    }
    h.u64(vectors.len() as u64);
    for v in vectors {
        h.u64(v.len() as u64);
        let mut word = 0u64;
        for (i, &bit) in v.iter().enumerate() {
            if bit {
                word |= 1 << (i % 64);
            }
            if i % 64 == 63 {
                h.u64(word);
                word = 0;
            }
        }
        h.u64(word);
    }
    format!("{:016x}", h.0)
}

impl SweepCheckpoint {
    /// Captures a checkpoint of `outcome` for later [`sweep_resume`].
    ///
    /// `W` must be the lane width and `options` the grid configuration
    /// the sweep ran with (both are part of the fingerprint).
    #[must_use]
    pub fn capture<W: PackedWord>(
        netlist: &Netlist,
        faults: &[LogicFault],
        vectors: &[Vec<bool>],
        options: &FaultSweepOptions,
        outcome: &FaultSweepOutcome,
    ) -> Self {
        SweepCheckpoint {
            circuit: netlist.name().to_owned(),
            fingerprint: run_fingerprint::<W>(netlist, faults, vectors, options),
            lanes: W::LANES,
            threads: options.threads,
            fault_shards: options.fault_shards,
            num_vectors: vectors.len(),
            frames: options.frames.max(1),
            first_detection: outcome.first_detection.clone(),
            done_batches: outcome.done_batches.clone(),
        }
    }

    /// Checks that this checkpoint belongs to exactly the given run
    /// configuration.
    ///
    /// # Errors
    ///
    /// [`EngineError::CheckpointMismatch`] when the fingerprint, the
    /// fault count, the batch geometry or the thread/shard grid options
    /// disagree.
    pub fn validate<W: PackedWord>(
        &self,
        netlist: &Netlist,
        faults: &[LogicFault],
        vectors: &[Vec<bool>],
        options: &FaultSweepOptions,
    ) -> Result<(), EngineError> {
        let mismatch = |what: &str| {
            Err(EngineError::CheckpointMismatch(format!(
                "{what} (checkpoint was taken from circuit `{}`)",
                self.circuit
            )))
        };
        if self.lanes != W::LANES {
            return mismatch(&format!(
                "lane width {} differs from the run's {}",
                self.lanes,
                W::LANES
            ));
        }
        if self.threads != options.threads {
            return mismatch(&format!(
                "thread option {} differs from the run's {}",
                self.threads, options.threads
            ));
        }
        if self.fault_shards != options.fault_shards {
            return mismatch(&format!(
                "fault-shard option {} differs from the run's {}",
                self.fault_shards, options.fault_shards
            ));
        }
        if self.num_vectors != vectors.len() {
            return mismatch(&format!(
                "vector count {} differs from the run's {}",
                self.num_vectors,
                vectors.len()
            ));
        }
        let frames = options.frames.max(1);
        if self.frames != frames {
            return mismatch(&format!(
                "frames-per-sequence {} differs from the run's {frames}",
                self.frames
            ));
        }
        if self.first_detection.len() != faults.len() {
            return mismatch(&format!(
                "fault count {} differs from the run's {}",
                self.first_detection.len(),
                faults.len()
            ));
        }
        let num_batches = vectors.len().div_ceil(frames).div_ceil(W::LANES as usize);
        if self.done_batches.len() != num_batches {
            return mismatch(&format!(
                "batch count {} differs from the run's {num_batches}",
                self.done_batches.len()
            ));
        }
        let expected = run_fingerprint::<W>(netlist, faults, vectors, options);
        if self.fingerprint != expected {
            return mismatch("netlist/fault/vector fingerprint differs");
        }
        Ok(())
    }

    /// Fraction of pattern batches fully swept.
    #[must_use]
    pub fn progress(&self) -> f64 {
        if self.done_batches.is_empty() {
            1.0
        } else {
            self.done_batches.iter().filter(|&&d| d).count() as f64 / self.done_batches.len() as f64
        }
    }

    /// Serializes the checkpoint as sealed pretty-printed JSON: the
    /// payload is prefixed with an `iddq-sealed` header carrying an
    /// FNV-1a content checksum and the payload length, so truncation and
    /// bit flips are detected on load instead of silently merging partial
    /// state.
    #[must_use]
    pub fn to_json(&self) -> String {
        iddq_control::seal(&serde_json::to_string_pretty(self).unwrap_or_default())
    }

    /// Parses a checkpoint from sealed JSON text.
    ///
    /// # Errors
    ///
    /// [`EngineError::CheckpointMismatch`] on a missing/invalid seal
    /// (truncated or corrupted file — checkpoints written before the
    /// sealed format fail closed as unreadable; re-running a sweep is
    /// always sound), malformed JSON, or a tree that does not match the
    /// checkpoint schema.
    pub fn from_json(text: &str) -> Result<Self, EngineError> {
        let unreadable = |e: &dyn std::fmt::Display| {
            EngineError::CheckpointMismatch(format!("unreadable checkpoint: {e}"))
        };
        let payload = iddq_control::open_sealed(text).map_err(|e| unreadable(&e))?;
        serde_json::from_str(payload).map_err(|e| unreadable(&e))
    }

    /// Reads and parses a checkpoint file through `env`.
    ///
    /// # Errors
    ///
    /// [`EngineError::Io`] when the file cannot be read;
    /// [`EngineError::CheckpointMismatch`] when its contents fail the
    /// seal or schema checks (see [`SweepCheckpoint::from_json`]).
    pub fn load_in(env: &dyn IoEnv, path: &std::path::Path) -> Result<Self, EngineError> {
        let text = env.read_to_string(path).map_err(|e| EngineError::Io {
            path: path.display().to_string(),
            message: e.to_string(),
        })?;
        Self::from_json(&text)
    }

    /// Persists the checkpoint atomically through `env`: on any failure
    /// the previous checkpoint file (if one exists) is left intact.
    ///
    /// # Errors
    ///
    /// [`EngineError::Io`] when the write or rename fails.
    pub fn save_in(&self, env: &dyn IoEnv, path: &std::path::Path) -> Result<(), EngineError> {
        iddq_control::write_atomic_in(env, path, &self.to_json())
    }
}

/// One cell of the two-level task grid: a fault range crossed with a
/// range of *positions* into the pending-batch list.
struct GridTask {
    fault_range: std::ops::Range<usize>,
    batch_positions: std::ops::Range<usize>,
}

/// What one completed (or interrupted) grid cell reports back.
struct CellReport {
    fault_start: usize,
    first: Vec<Option<usize>>,
    /// Prefix of `batch_positions` fully swept (== len when the cell
    /// finished or dropped all its faults).
    completed: usize,
    /// The pending-batch positions that prefix covers.
    positions: std::ops::Range<usize>,
    reevaluated: u64,
    detects: u64,
}

fn auto_threads(units: usize) -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
        .min(units)
        .max(1)
}

/// Per-worker simulation state, rebuilt from scratch after a caught panic
/// (a poisoned engine must never leak into the next task).
struct Engines<W: PackedWord> {
    patch_sim: Option<FaultPatchSim<W>>,
    csr: Option<Simulator>,
    words: Vec<W>,
    good: Vec<W>,
}

impl<W: PackedWord> Engines<W> {
    fn new(netlist: &Netlist, backend: BackendKind) -> Self {
        let (patch_sim, csr) = match backend {
            BackendKind::Delta => (Some(FaultPatchSim::<W>::new(netlist)), None),
            BackendKind::Csr => (None, Some(Simulator::new(netlist))),
        };
        Engines {
            patch_sim,
            csr,
            words: vec![W::zeros(); netlist.num_inputs()],
            good: vec![W::zeros(); netlist.node_count()],
        }
    }
}

/// Sweeps a fault list against a vector set, `W::LANES` patterns at a
/// time, returning per-fault earliest detections.
///
/// Results are bit-identical for any `threads`, `fault_shards`,
/// `fault_dropping` and backend choice (enforced by the differential
/// proptests); only the work differs.
///
/// This is the plain, non-budgeted entry point: it runs under an
/// unlimited [`RunControl`], so the only way it returns less than the
/// full sweep is a caught worker panic (in which case the affected grid
/// cells are simply missing from the merge — see [`sweep_with_control`]
/// to observe that, and everything else, as a typed [`Outcome`]).
///
/// # Panics
///
/// Panics if a vector's arity differs from the netlist's primary-input
/// count or a fault references nodes outside the netlist.
#[must_use]
pub fn sweep<W: PackedWord>(
    netlist: &Netlist,
    faults: &[LogicFault],
    vectors: &[Vec<bool>],
    options: &FaultSweepOptions,
) -> FaultSweepOutcome {
    sweep_with_control::<W>(netlist, faults, vectors, options, &RunControl::unlimited())
        .into_value()
}

/// [`sweep`] under a [`RunControl`]: cancellable, budget-aware, and
/// panic-isolated.
///
/// The control is polled at every (grid cell, pattern batch) boundary and
/// charged one unit per pattern applied per cell. On a stop the function
/// returns [`Outcome::Partial`] whose value carries the detections of
/// every completed cell and whose `coverage` is the fraction of planned
/// cell-batch units that ran; [`FaultSweepOutcome::done_batches`] marks
/// the batches that completed against *every* fault shard, which is what
/// [`SweepCheckpoint::capture`] persists for resume.
#[must_use]
pub fn sweep_with_control<W: PackedWord>(
    netlist: &Netlist,
    faults: &[LogicFault],
    vectors: &[Vec<bool>],
    options: &FaultSweepOptions,
    control: &RunControl,
) -> Outcome<FaultSweepOutcome> {
    sweep_impl::<W>(netlist, faults, vectors, options, control, None)
}

/// Resumes a checkpointed sweep: validates `checkpoint` against the run
/// configuration, re-sweeps only the pattern batches not yet marked done,
/// and min-merges the checkpointed detections with the new ones.
///
/// A resumed run that completes is **bit-identical** to an uninterrupted
/// [`sweep`] of the same configuration (chaos-proptested across thread
/// and shard counts).
///
/// # Errors
///
/// [`EngineError::CheckpointMismatch`] when the checkpoint does not
/// fingerprint-match the given netlist/faults/vectors/lanes or was taken
/// under different thread/shard grid options.
pub fn sweep_resume<W: PackedWord>(
    netlist: &Netlist,
    faults: &[LogicFault],
    vectors: &[Vec<bool>],
    options: &FaultSweepOptions,
    control: &RunControl,
    checkpoint: &SweepCheckpoint,
) -> Result<Outcome<FaultSweepOutcome>, EngineError> {
    checkpoint.validate::<W>(netlist, faults, vectors, options)?;
    Ok(sweep_impl::<W>(
        netlist,
        faults,
        vectors,
        options,
        control,
        Some(checkpoint),
    ))
}

fn sweep_impl<W: PackedWord>(
    netlist: &Netlist,
    faults: &[LogicFault],
    vectors: &[Vec<bool>],
    options: &FaultSweepOptions,
    control: &RunControl,
    resume: Option<&SweepCheckpoint>,
) -> Outcome<FaultSweepOutcome> {
    let lanes = W::LANES as usize;
    let frames = options.frames.max(1);
    // With frames = F, a "pattern batch" is a batch of *sequences*: lane k
    // of batch b carries the F consecutive vectors of sequence b*lanes + k.
    let num_batches = vectors.len().div_ceil(frames).div_ceil(lanes);
    // The pending-batch list: everything on a fresh run, only the batches
    // not yet fully swept on a resume.
    let batch_ids: Vec<usize> = match resume {
        None => (0..num_batches).collect(),
        Some(cp) => (0..num_batches).filter(|&b| !cp.done_batches[b]).collect(),
    };
    let pending = batch_ids.len();
    let threads = if options.threads == 0 {
        auto_threads(pending.max(1) * faults.len().div_ceil(64).max(1))
    } else {
        options.threads.max(1)
    };
    let shards = match options.fault_shards {
        0 if pending >= threads => 1,
        0 => threads
            .div_ceil(pending.max(1))
            .min(faults.len().div_ceil(16).max(1)),
        s => s.min(faults.len().max(1)),
    };
    let batch_chunks = threads.div_ceil(shards).min(pending.max(1)).max(1);

    let mut tasks: Vec<GridTask> = Vec::with_capacity(shards * batch_chunks);
    let per_shard = faults.len().div_ceil(shards).max(1);
    let per_chunk = pending.div_ceil(batch_chunks).max(1);
    // How many grid cells cover each pending-batch position (a batch is
    // "done" only when all of them completed it).
    let mut covering = vec![0u32; pending];
    for s in 0..shards {
        let fault_range = s * per_shard..faults.len().min((s + 1) * per_shard);
        if fault_range.is_empty() && !faults.is_empty() {
            continue;
        }
        for c in 0..batch_chunks {
            let batch_positions = c * per_chunk..pending.min((c + 1) * per_chunk);
            if batch_positions.is_empty() && pending > 0 {
                continue;
            }
            for p in batch_positions.clone() {
                covering[p] += 1;
            }
            tasks.push(GridTask {
                fault_range: fault_range.clone(),
                batch_positions,
            });
        }
    }
    let total_units: usize = tasks.iter().map(|t| t.batch_positions.len()).sum();

    // Cross-cell fault dropping: earliest published detection per fault. A
    // cell skips a fault only when the published index precedes every
    // vector it could contribute — such a detection wins the min-merge
    // regardless, so worker timing cannot change the result. On resume the
    // checkpointed detections pre-seed the array: they justify skips for
    // exactly the same reason.
    let best: Vec<AtomicUsize> = (0..faults.len())
        .map(|i| {
            AtomicUsize::new(
                resume
                    .and_then(|cp| cp.first_detection[i])
                    .unwrap_or(usize::MAX),
            )
        })
        .collect();

    // One grid cell, on one worker's engines. Runs under `catch_unwind`:
    // any panic in here is confined to the cell, and the worker's engines
    // are rebuilt before the next cell.
    let run_cell = |task: &GridTask, eng: &mut Engines<W>| -> CellReport {
        let flen = task.fault_range.len();
        let mut first: Vec<Option<usize>> = vec![None; flen];
        let mut live = vec![true; flen];
        let mut remaining = flen;
        let mut completed = 0usize;
        let (mut reeval0, mut detects0) = (0u64, 0u64);
        if let Some(ps) = eng.patch_sim.as_ref() {
            (reeval0, detects0) = ps.dirty_totals();
        }
        for pos in task.batch_positions.clone() {
            if options.fault_dropping && remaining == 0 {
                // Every fault in the shard has a strictly earlier
                // detection: the remaining batches cannot change the
                // min-merge, so they count as swept.
                completed = task.batch_positions.len();
                break;
            }
            if control.check().is_some() {
                break;
            }
            let batch_idx = batch_ids[pos];
            if options.chaos_panic_batch == Some(batch_idx) {
                panic!("chaos injection: worker panicked at pattern batch {batch_idx}");
            }
            let start_vec = batch_idx * lanes * frames;
            let covered = vectors.len().min(start_vec + lanes * frames) - start_vec;
            if frames == 1 {
                let chunk = &vectors[start_vec..start_vec + covered];
                pack_chunk_into(chunk, &mut eng.words);
                if let Some(ps) = eng.patch_sim.as_mut() {
                    ps.load(&eng.words);
                } else if let Some(sim) = eng.csr.as_ref() {
                    sim.eval_into(&eng.words, &mut eng.good);
                }
                for k in 0..flen {
                    if options.fault_dropping && !live[k] {
                        continue;
                    }
                    let fi = task.fault_range.start + k;
                    if options.fault_dropping && best[fi].load(Ordering::Relaxed) < start_vec {
                        live[k] = false;
                        remaining -= 1;
                        continue;
                    }
                    let mask = match (eng.patch_sim.as_mut(), faults[fi]) {
                        (Some(ps), fault) => ps.detect(fault),
                        (None, LogicFault::StuckAt(f)) => {
                            stuck_at_detection_from(netlist, &eng.good, f, &eng.words)
                        }
                        (None, LogicFault::Bridge { a, b }) => {
                            bridge_logic_detection_from(netlist, &eng.good, a, b, &eng.words)
                        }
                    }
                    .mask_lanes(chunk.len() as u32);
                    if let Some(bit) = mask.first_set() {
                        let v = start_vec + bit as usize;
                        first[k] = Some(first[k].map_or(v, |cur| cur.min(v)));
                        best[fi].fetch_min(v, Ordering::Relaxed);
                        if options.fault_dropping {
                            live[k] = false;
                            remaining -= 1;
                        }
                    }
                }
            } else {
                let seq_base = batch_idx * lanes;
                // Cross-batch dropping: a published detection before this
                // batch's first vector wins the min-merge over anything
                // the batch could contribute.
                if options.fault_dropping {
                    for (k, l) in live.iter_mut().enumerate() {
                        if !*l {
                            continue;
                        }
                        let fi = task.fault_range.start + k;
                        if best[fi].load(Ordering::Relaxed) < start_vec {
                            *l = false;
                            remaining -= 1;
                        }
                    }
                }
                let shard = &faults[task.fault_range.clone()];
                let mut best_kt: Vec<Option<(u32, usize)>> = vec![None; flen];
                if let Some(ps) = eng.patch_sim.as_mut() {
                    ps.sweep_sequences(
                        vectors,
                        seq_base,
                        frames,
                        shard,
                        &live,
                        &mut best_kt,
                        &mut eng.words,
                    );
                } else if let Some(sim) = eng.csr.as_ref() {
                    seq_csr_cell(
                        netlist,
                        sim,
                        vectors,
                        seq_base,
                        frames,
                        shard,
                        &live,
                        &mut best_kt,
                        &mut eng.words,
                    );
                }
                for (k, kt) in best_kt.iter().enumerate() {
                    if let Some((lane, t)) = *kt {
                        let fi = task.fault_range.start + k;
                        let v = (seq_base + lane as usize) * frames + t;
                        first[k] = Some(first[k].map_or(v, |cur| cur.min(v)));
                        best[fi].fetch_min(v, Ordering::Relaxed);
                        if options.fault_dropping && live[k] {
                            live[k] = false;
                            remaining -= 1;
                        }
                    }
                }
            }
            completed += 1;
            control.charge(covered as u64);
        }
        let (reevaluated, detects) = match eng.patch_sim.as_ref() {
            Some(ps) => {
                let (r, d) = ps.dirty_totals();
                (r - reeval0, d - detects0)
            }
            None => (0, 0),
        };
        CellReport {
            fault_start: task.fault_range.start,
            first,
            completed,
            positions: task.batch_positions.start..task.batch_positions.start + completed,
            reevaluated,
            detects,
        }
    };

    // One worker: engines built lazily inside the panic boundary and
    // discarded (possibly mid-patch, hence poisoned) after a caught
    // panic.
    let run_tasks = |my_tasks: &[GridTask]| -> (Vec<CellReport>, bool) {
        let mut engines: Option<Engines<W>> = None;
        let mut reports = Vec::with_capacity(my_tasks.len());
        let mut panicked = false;
        for task in my_tasks {
            let mut slot = engines.take();
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                let eng = slot.get_or_insert_with(|| Engines::new(netlist, options.backend));
                run_cell(task, eng)
            }));
            match outcome {
                Ok(report) => {
                    engines = slot;
                    reports.push(report);
                }
                Err(_) => {
                    panicked = true; // poisoned engines stay dropped
                }
            }
        }
        (reports, panicked)
    };

    let per_worker: Vec<(Vec<CellReport>, bool)> = if threads <= 1 || tasks.len() <= 1 {
        vec![run_tasks(&tasks)]
    } else {
        let assignments: Vec<Vec<GridTask>> = {
            let mut a: Vec<Vec<GridTask>> = (0..threads).map(|_| Vec::new()).collect();
            for (i, t) in tasks.into_iter().enumerate() {
                a[i % threads].push(t);
            }
            a.into_iter().filter(|v| !v.is_empty()).collect()
        };
        std::thread::scope(|scope| {
            let run_tasks = &run_tasks;
            let handles: Vec<_> = assignments
                .iter()
                .map(|mine| scope.spawn(move || run_tasks(mine)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap_or_else(|_| (Vec::new(), true)))
                .collect()
        })
    };

    // Deterministic merge: earliest detection across the checkpoint (if
    // any) and all completed grid cells; batch positions completed by all
    // their covering cells graduate to `done_batches`.
    let mut first_detection: Vec<Option<usize>> = match resume {
        Some(cp) => cp.first_detection.clone(),
        None => vec![None; faults.len()],
    };
    let mut done_batches = match resume {
        Some(cp) => cp.done_batches.clone(),
        None => vec![false; num_batches],
    };
    let mut completed_count = vec![0u32; pending];
    let mut done_units = 0usize;
    let mut reevaluated = 0u64;
    let mut detects = 0u64;
    let mut panicked = false;
    for (reports, worker_panicked) in &per_worker {
        panicked |= *worker_panicked;
        for report in reports {
            done_units += report.completed;
            reevaluated += report.reevaluated;
            detects += report.detects;
            for (k, v) in report.first.iter().enumerate() {
                if let Some(v) = *v {
                    let slot = &mut first_detection[report.fault_start + k];
                    *slot = Some(slot.map_or(v, |cur| cur.min(v)));
                }
            }
            for pos in report.positions.clone() {
                completed_count[pos] += 1;
            }
        }
    }
    for (i, &b) in batch_ids.iter().enumerate() {
        if covering[i] > 0 && completed_count[i] == covering[i] {
            done_batches[b] = true;
        }
    }

    let detected: Vec<bool> = first_detection.iter().map(Option::is_some).collect();
    let coverage = if faults.is_empty() {
        1.0
    } else {
        detected.iter().filter(|&&d| d).count() as f64 / faults.len() as f64
    };
    let value = FaultSweepOutcome {
        detected,
        first_detection,
        coverage,
        vectors_applied: vectors.len(),
        mean_dirty_nodes: if detects == 0 {
            0.0
        } else {
            reevaluated as f64 / detects as f64
        },
        done_batches,
    };
    if done_units >= total_units && !panicked {
        Outcome::Complete(value)
    } else {
        let reason = control
            .check()
            .or(if panicked {
                Some(StopReason::WorkerPanicked)
            } else {
                None
            })
            .unwrap_or(StopReason::WorkerPanicked);
        Outcome::Partial {
            value,
            coverage: if total_units == 0 {
                1.0
            } else {
                done_units as f64 / total_units as f64
            },
            reason,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logic_test::{bridge_logic_detection, stuck_at_detection};
    use iddq_control::RunBudget;
    use iddq_netlist::{data, W256, W512};

    fn all_packed_c17() -> Vec<u64> {
        let mut packed = vec![0u64; 5];
        for pat in 0u64..32 {
            for (i, word) in packed.iter_mut().enumerate() {
                if pat >> i & 1 == 1 {
                    *word |= 1 << pat;
                }
            }
        }
        packed
    }

    #[test]
    fn patch_stuck_at_matches_full_resim_on_c17() {
        let nl = data::c17();
        let packed = all_packed_c17();
        let mut ps = FaultPatchSim::<u64>::new(&nl);
        ps.load(&packed);
        for node in nl.node_ids() {
            for stuck_at_one in [false, true] {
                let fault = StuckAtFault { node, stuck_at_one };
                assert_eq!(
                    ps.detect(LogicFault::StuckAt(fault)),
                    stuck_at_detection(&nl, fault, &packed),
                    "node {node} sa{}",
                    u8::from(stuck_at_one)
                );
            }
        }
        assert!(ps.mean_dirty_nodes() > 0.0);
    }

    #[test]
    fn patch_bridge_matches_full_resim_on_c17() {
        let nl = data::c17();
        let packed = all_packed_c17();
        let mut ps = FaultPatchSim::<u64>::new(&nl);
        ps.load(&packed);
        let nodes: Vec<_> = nl.node_ids().collect();
        for (i, &a) in nodes.iter().enumerate() {
            for &b in &nodes[i..] {
                assert_eq!(
                    ps.detect(LogicFault::Bridge { a, b }),
                    bridge_logic_detection(&nl, a, b, &packed),
                    "bridge {a}-{b}"
                );
            }
        }
    }

    #[test]
    fn engine_state_survives_fault_interleaving() {
        // detect() must leave the good state untouched — interleave faults
        // and re-run one: same answer.
        let nl = data::c17();
        let packed = all_packed_c17();
        let mut ps = FaultPatchSim::<u64>::new(&nl);
        ps.load(&packed);
        let g10 = nl.find("10").unwrap();
        let g22 = nl.find("22").unwrap();
        let f = LogicFault::StuckAt(StuckAtFault {
            node: g10,
            stuck_at_one: true,
        });
        let before = ps.detect(f);
        ps.detect(LogicFault::Bridge { a: g10, b: g22 });
        ps.detect(LogicFault::StuckAt(StuckAtFault {
            node: g22,
            stuck_at_one: false,
        }));
        assert_eq!(ps.detect(f), before);
    }

    fn c17_fault_list(nl: &iddq_netlist::Netlist) -> Vec<LogicFault> {
        let mut faults: Vec<LogicFault> = Vec::new();
        for node in nl.node_ids() {
            for stuck_at_one in [false, true] {
                faults.push(LogicFault::StuckAt(StuckAtFault { node, stuck_at_one }));
            }
        }
        let gs = data::c17_paper_gates(nl);
        faults.push(LogicFault::Bridge { a: gs[0], b: gs[3] });
        faults.push(LogicFault::Bridge { a: gs[1], b: gs[2] });
        faults
    }

    fn c17_vectors(n: usize) -> Vec<Vec<bool>> {
        (0..n)
            .map(|k| (0..5).map(|i| (k >> i) & 1 == 1).collect())
            .collect()
    }

    #[test]
    fn sweep_backends_and_knobs_agree() {
        let nl = data::c17();
        let faults = c17_fault_list(&nl);
        let vectors = c17_vectors(200);
        let base = sweep::<u64>(
            &nl,
            &faults,
            &vectors,
            &FaultSweepOptions {
                threads: 1,
                fault_shards: 1,
                fault_dropping: false,
                backend: BackendKind::Csr,
                ..FaultSweepOptions::default()
            },
        );
        assert!(base.coverage > 0.5);
        for (threads, shards, dropping, backend) in [
            (1, 1, true, BackendKind::Delta),
            (1, 1, false, BackendKind::Delta),
            (3, 2, true, BackendKind::Delta),
            (4, 1, true, BackendKind::Csr),
            (2, 3, true, BackendKind::Csr),
        ] {
            let r = sweep::<u64>(
                &nl,
                &faults,
                &vectors,
                &FaultSweepOptions {
                    threads,
                    fault_shards: shards,
                    fault_dropping: dropping,
                    backend,
                    ..FaultSweepOptions::default()
                },
            );
            assert_eq!(
                base.first_detection, r.first_detection,
                "threads={threads} shards={shards} dropping={dropping} backend={backend}"
            );
            assert_eq!(base.detected, r.detected);
        }
    }

    #[test]
    fn sweep_lane_width_invariant() {
        let nl = data::c17();
        let faults = c17_fault_list(&nl);
        let vectors = c17_vectors(300);
        let opts = FaultSweepOptions::default();
        let narrow = sweep::<u64>(&nl, &faults, &vectors, &opts);
        let wide = sweep::<W256>(&nl, &faults, &vectors, &opts);
        let wider = sweep::<W512>(&nl, &faults, &vectors, &opts);
        assert_eq!(narrow.first_detection, wide.first_detection);
        assert_eq!(narrow.first_detection, wider.first_detection);
    }

    #[test]
    fn empty_fault_list_full_coverage() {
        let nl = data::c17();
        let r = sweep::<u64>(&nl, &[], &c17_vectors(8), &FaultSweepOptions::default());
        assert_eq!(r.coverage, 1.0);
        assert_eq!(r.vectors_applied, 8);
        assert!(r.done_batches.iter().all(|&d| d));
    }

    #[test]
    fn undetectable_fault_reported_undetected() {
        // A bridge of a net with itself is logically silent.
        let nl = data::c17();
        let g10 = nl.find("10").unwrap();
        let faults = vec![LogicFault::Bridge { a: g10, b: g10 }];
        let r = sweep::<u64>(
            &nl,
            &faults,
            &c17_vectors(32),
            &FaultSweepOptions::default(),
        );
        assert_eq!(r.detected, vec![false]);
        assert_eq!(r.coverage, 0.0);
    }

    #[test]
    fn complete_sweep_marks_all_batches_done() {
        let nl = data::c17();
        let faults = c17_fault_list(&nl);
        let vectors = c17_vectors(200);
        let out = sweep_with_control::<u64>(
            &nl,
            &faults,
            &vectors,
            &FaultSweepOptions::default(),
            &RunControl::unlimited(),
        );
        assert!(out.is_complete());
        assert_eq!(out.coverage(), 1.0);
        let v = out.into_value();
        assert_eq!(v.done_batches.len(), 200usize.div_ceil(64));
        assert!(v.done_batches.iter().all(|&d| d));
    }

    #[test]
    fn checkpoint_json_roundtrip_and_validation() {
        let nl = data::c17();
        let faults = c17_fault_list(&nl);
        let vectors = c17_vectors(130);
        let opts = FaultSweepOptions::default();
        let out = sweep::<u64>(&nl, &faults, &vectors, &opts);
        let cp = SweepCheckpoint::capture::<u64>(&nl, &faults, &vectors, &opts, &out);
        let back = SweepCheckpoint::from_json(&cp.to_json()).unwrap();
        assert_eq!(cp, back);
        assert_eq!(cp.progress(), 1.0);
        assert!(cp.validate::<u64>(&nl, &faults, &vectors, &opts).is_ok());
        // Wrong lane width, vector count, fault list: all rejected.
        assert!(cp.validate::<W256>(&nl, &faults, &vectors, &opts).is_err());
        assert!(cp
            .validate::<u64>(&nl, &faults, &vectors[..129], &opts)
            .is_err());
        assert!(cp
            .validate::<u64>(&nl, &faults[..3], &vectors, &opts)
            .is_err());
        // Same shapes, different vector *content*: fingerprint catches it.
        let mut other = vectors.clone();
        other[7][2] = !other[7][2];
        assert!(cp.validate::<u64>(&nl, &faults, &other, &opts).is_err());
        // Same run, different thread/shard grid options: rejected, with a
        // message naming the offending option.
        let threaded = FaultSweepOptions {
            threads: 3,
            ..FaultSweepOptions::default()
        };
        let err = cp
            .validate::<u64>(&nl, &faults, &vectors, &threaded)
            .unwrap_err();
        assert!(err.to_string().contains("thread option"), "{err}");
        let sharded = FaultSweepOptions {
            fault_shards: 2,
            ..FaultSweepOptions::default()
        };
        let err = cp
            .validate::<u64>(&nl, &faults, &vectors, &sharded)
            .unwrap_err();
        assert!(err.to_string().contains("fault-shard option"), "{err}");
        // Options that never change results are *not* bound: a checkpoint
        // taken with dropping on resumes with dropping off.
        let no_drop = FaultSweepOptions {
            fault_dropping: false,
            ..FaultSweepOptions::default()
        };
        assert!(cp.validate::<u64>(&nl, &faults, &vectors, &no_drop).is_ok());
        assert!(SweepCheckpoint::from_json("{ not json").is_err());
    }

    /// A sealed checkpoint file truncated at any byte offset — or with
    /// any single byte flipped — yields a typed `CheckpointMismatch`,
    /// never a panic and never a silent partial merge.
    #[test]
    fn checkpoint_rejects_truncation_at_every_offset() {
        let nl = data::c17();
        let faults = c17_fault_list(&nl);
        let vectors = c17_vectors(16);
        let opts = FaultSweepOptions::default();
        let out = sweep::<u64>(&nl, &faults, &vectors, &opts);
        let cp = SweepCheckpoint::capture::<u64>(&nl, &faults, &vectors, &opts, &out);
        let sealed = cp.to_json();
        for cut in 0..sealed.len() {
            let err = SweepCheckpoint::from_json(&sealed[..cut]).unwrap_err();
            assert!(
                matches!(err, EngineError::CheckpointMismatch(_)),
                "cut={cut}: {err}"
            );
        }
        for i in 0..sealed.len() {
            let mut bytes = sealed.clone().into_bytes();
            bytes[i] = if bytes[i] == b'0' { b'1' } else { b'0' };
            let Ok(flipped) = String::from_utf8(bytes) else {
                continue;
            };
            if flipped == sealed {
                continue;
            }
            let err = SweepCheckpoint::from_json(&flipped).unwrap_err();
            assert!(
                matches!(err, EngineError::CheckpointMismatch(_)),
                "flip at {i}: {err}"
            );
        }
        // Pre-seal checkpoints (bare JSON) fail closed as unreadable.
        let bare = iddq_control::open_sealed(&sealed).unwrap();
        assert!(SweepCheckpoint::from_json(bare).is_err());
    }

    /// `save_in`/`load_in` round-trip through an [`IoEnv`], and a faulty
    /// env's torn write leaves the previous checkpoint loadable.
    #[test]
    fn checkpoint_save_load_through_env() {
        use iddq_control::{FaultPlan, FaultyEnv, RealEnv};
        let dir = std::env::temp_dir().join(format!("iddq-cp-env-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sweep.ckpt");

        let nl = data::c17();
        let faults = c17_fault_list(&nl);
        let vectors = c17_vectors(16);
        let opts = FaultSweepOptions::default();
        let out = sweep::<u64>(&nl, &faults, &vectors, &opts);
        let cp = SweepCheckpoint::capture::<u64>(&nl, &faults, &vectors, &opts, &out);

        cp.save_in(&RealEnv, &path).unwrap();
        assert_eq!(SweepCheckpoint::load_in(&RealEnv, &path).unwrap(), cp);

        // Every write fails torn: the save errors, the old file survives.
        let torn = FaultyEnv::new(11, {
            let mut p = FaultPlan::none();
            p.torn_write = 1000;
            p
        });
        assert!(cp.save_in(&torn, &path).is_err());
        assert_eq!(SweepCheckpoint::load_in(&RealEnv, &path).unwrap(), cp);

        // A missing file is a typed Io error, not a mismatch.
        let missing = dir.join("nope.ckpt");
        assert!(matches!(
            SweepCheckpoint::load_in(&RealEnv, &missing),
            Err(EngineError::Io { .. })
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Cancel at a quota, checkpoint, resume: bit-identical to the
    /// uninterrupted run, across thread/shard counts.
    #[test]
    fn budgeted_sweep_resumes_bit_identical() {
        let nl = data::c17();
        let faults = c17_fault_list(&nl);
        let vectors = c17_vectors(320); // 5 batches of 64
        let full = sweep::<u64>(&nl, &faults, &vectors, &FaultSweepOptions::default());
        for (threads, shards) in [(1, 1), (2, 2), (3, 1), (1, 3)] {
            let opts = FaultSweepOptions {
                threads,
                fault_shards: shards,
                ..FaultSweepOptions::default()
            };
            for quota in [1u64, 64, 65, 128, 200] {
                let control =
                    RunControl::unlimited().and_budget(RunBudget::unlimited().with_quota(quota));
                let out = sweep_with_control::<u64>(&nl, &faults, &vectors, &opts, &control);
                let partial = match out {
                    Outcome::Complete(_) => continue, // quota never hit before the end
                    Outcome::Partial {
                        value,
                        coverage,
                        reason,
                    } => {
                        assert_eq!(reason, StopReason::QuotaExhausted);
                        assert!((0.0..1.0).contains(&coverage));
                        value
                    }
                };
                let cp = SweepCheckpoint::capture::<u64>(&nl, &faults, &vectors, &opts, &partial);
                assert!(cp.progress() < 1.0, "quota={quota} left nothing to resume");
                let resumed = sweep_resume::<u64>(
                    &nl,
                    &faults,
                    &vectors,
                    &opts,
                    &RunControl::unlimited(),
                    &cp,
                )
                .unwrap();
                assert!(resumed.is_complete());
                let r = resumed.into_value();
                assert_eq!(
                    full.first_detection, r.first_detection,
                    "threads={threads} shards={shards} quota={quota}"
                );
                assert_eq!(full.detected, r.detected);
                assert!(r.done_batches.iter().all(|&d| d));
            }
        }
    }

    #[test]
    fn cancelled_sweep_reports_cancellation() {
        let nl = data::c17();
        let faults = c17_fault_list(&nl);
        let vectors = c17_vectors(256);
        let control = RunControl::unlimited();
        control.token().cancel();
        let out = sweep_with_control::<u64>(
            &nl,
            &faults,
            &vectors,
            &FaultSweepOptions::default(),
            &control,
        );
        match out {
            Outcome::Partial {
                coverage, reason, ..
            } => {
                assert_eq!(reason, StopReason::Cancelled);
                assert_eq!(coverage, 0.0);
            }
            Outcome::Complete(_) => panic!("a pre-cancelled sweep cannot complete"),
        }
    }

    /// Chaos injection: a worker panic at one batch degrades the run to
    /// Partial(WorkerPanicked) without aborting the process, and resume
    /// completes it bit-identically.
    #[test]
    fn worker_panic_degrades_to_partial_and_resumes() {
        let nl = data::c17();
        let faults = c17_fault_list(&nl);
        let vectors = c17_vectors(320);
        let full = sweep::<u64>(&nl, &faults, &vectors, &FaultSweepOptions::default());
        for (threads, shards) in [(1, 1), (2, 2)] {
            let chaos = FaultSweepOptions {
                threads,
                fault_shards: shards,
                // Dropping off so the grid genuinely reaches the chaos
                // batch (c17 detects everything in the first batch).
                fault_dropping: false,
                chaos_panic_batch: Some(2),
                ..FaultSweepOptions::default()
            };
            let out =
                sweep_with_control::<u64>(&nl, &faults, &vectors, &chaos, &RunControl::unlimited());
            let partial = match out {
                Outcome::Partial {
                    value,
                    coverage,
                    reason,
                } => {
                    assert_eq!(reason, StopReason::WorkerPanicked);
                    assert!(coverage < 1.0);
                    value
                }
                Outcome::Complete(_) => panic!("chaos batch must poison the run"),
            };
            assert!(!partial.done_batches[2], "the chaos batch cannot be done");
            let cp = SweepCheckpoint::capture::<u64>(&nl, &faults, &vectors, &chaos, &partial);
            let sane = FaultSweepOptions {
                threads,
                fault_shards: shards,
                ..FaultSweepOptions::default()
            };
            let resumed =
                sweep_resume::<u64>(&nl, &faults, &vectors, &sane, &RunControl::unlimited(), &cp)
                    .unwrap();
            assert!(resumed.is_complete());
            let r = resumed.into_value();
            assert_eq!(full.first_detection, r.first_detection);
        }
    }

    /// Two-deep cross-coupled shift fixture: `y1` observes `q1` directly,
    /// `y2` observes `q2`; state reconverges through both XOR and AND.
    fn seq_fixture() -> iddq_netlist::Netlist {
        let mut b = iddq_netlist::NetlistBuilder::new("seqfix");
        let a = b.add_input("a");
        let c = b.add_input("c");
        let q1 = b.add_dff("q1").unwrap();
        let q2 = b.add_dff("q2").unwrap();
        let n1 = b
            .add_gate("n1", iddq_netlist::CellKind::Xor, vec![a, q2])
            .unwrap();
        b.set_dff_input(q1, n1);
        let n2 = b
            .add_gate("n2", iddq_netlist::CellKind::And, vec![q1, c])
            .unwrap();
        b.set_dff_input(q2, n2);
        let y1 = b
            .add_gate("y1", iddq_netlist::CellKind::Or, vec![q1, c])
            .unwrap();
        let y2 = b
            .add_gate("y2", iddq_netlist::CellKind::Xnor, vec![q2, a])
            .unwrap();
        b.mark_output(y1);
        b.mark_output(y2);
        b.build().unwrap()
    }

    fn seq_fault_list(nl: &iddq_netlist::Netlist) -> Vec<LogicFault> {
        let mut faults: Vec<LogicFault> = Vec::new();
        for node in nl.node_ids() {
            for stuck_at_one in [false, true] {
                faults.push(LogicFault::StuckAt(StuckAtFault { node, stuck_at_one }));
            }
        }
        let ids: Vec<_> = nl.node_ids().collect();
        faults.push(LogicFault::Bridge {
            a: ids[0],
            b: ids[ids.len() - 1],
        });
        faults.push(LogicFault::Bridge {
            a: ids[2],
            b: ids[3],
        });
        faults
    }

    fn rand_vectors(n: usize, arity: usize, seed: u64) -> Vec<Vec<bool>> {
        let mut s = seed | 1;
        (0..n)
            .map(|_| {
                (0..arity)
                    .map(|_| {
                        s = s
                            .wrapping_mul(6_364_136_223_846_793_005)
                            .wrapping_add(1_442_695_040_888_963_407);
                        (s >> 33) & 1 == 1
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn seq_sweep_backends_and_grids_agree() {
        let nl = seq_fixture();
        let faults = seq_fault_list(&nl);
        let vectors = rand_vectors(3 * 150, nl.num_inputs(), 0x5eed);
        let base = sweep::<u64>(
            &nl,
            &faults,
            &vectors,
            &FaultSweepOptions {
                threads: 1,
                fault_shards: 1,
                fault_dropping: false,
                backend: BackendKind::Csr,
                frames: 3,
                ..FaultSweepOptions::default()
            },
        );
        assert!(base.detected.iter().any(|&d| d));
        for (threads, shards, dropping, backend) in [
            (1, 1, false, BackendKind::Delta),
            (1, 1, true, BackendKind::Delta),
            (3, 2, true, BackendKind::Delta),
            (2, 3, true, BackendKind::Csr),
        ] {
            let r = sweep::<u64>(
                &nl,
                &faults,
                &vectors,
                &FaultSweepOptions {
                    threads,
                    fault_shards: shards,
                    fault_dropping: dropping,
                    backend,
                    frames: 3,
                    ..FaultSweepOptions::default()
                },
            );
            assert_eq!(
                base.first_detection, r.first_detection,
                "threads={threads} shards={shards} dropping={dropping} backend={backend}"
            );
        }
        let wide = sweep::<W256>(
            &nl,
            &faults,
            &vectors,
            &FaultSweepOptions {
                frames: 3,
                ..FaultSweepOptions::default()
            },
        );
        assert_eq!(base.first_detection, wide.first_detection);
    }

    #[test]
    fn multi_frame_detection_needs_state_propagation() {
        // y = q = DFF(a): a fault on `a` is invisible combinationally (the
        // output reads the latched reset value) and caught one frame later
        // once the corrupted state propagates through the flop.
        let mut b = iddq_netlist::NetlistBuilder::new("pipe1");
        let a = b.add_input("a");
        let q = b.add_dff("q").unwrap();
        b.set_dff_input(q, a);
        let y = b
            .add_gate("y", iddq_netlist::CellKind::Buf, vec![q])
            .unwrap();
        b.mark_output(y);
        let nl = b.build().unwrap();
        let fault = vec![LogicFault::StuckAt(StuckAtFault {
            node: a,
            stuck_at_one: true,
        })];
        let vectors = vec![vec![false], vec![false]];
        let combi = sweep::<u64>(&nl, &fault, &vectors, &FaultSweepOptions::default());
        assert_eq!(
            combi.detected,
            vec![false],
            "frames=1 cannot see through the flop"
        );
        for backend in [BackendKind::Delta, BackendKind::Csr] {
            let seq = sweep::<u64>(
                &nl,
                &fault,
                &vectors,
                &FaultSweepOptions {
                    frames: 2,
                    backend,
                    ..FaultSweepOptions::default()
                },
            );
            assert_eq!(
                seq.first_detection,
                vec![Some(1)],
                "frame 1 of sequence 0 ({backend})"
            );
        }
    }

    #[test]
    fn combinational_netlist_frames_invariant() {
        // On a DFF-free netlist every frame is independent and the vector
        // index `seq*F + t` is the plain vector index, so sequence
        // grouping must not change earliest detections at all.
        let nl = data::c17();
        let faults = c17_fault_list(&nl);
        let vectors = c17_vectors(200);
        let base = sweep::<u64>(&nl, &faults, &vectors, &FaultSweepOptions::default());
        for frames in [2usize, 3, 7] {
            for backend in [BackendKind::Delta, BackendKind::Csr] {
                let r = sweep::<u64>(
                    &nl,
                    &faults,
                    &vectors,
                    &FaultSweepOptions {
                        frames,
                        backend,
                        ..FaultSweepOptions::default()
                    },
                );
                assert_eq!(
                    base.first_detection, r.first_detection,
                    "frames={frames} backend={backend}"
                );
            }
        }
    }

    #[test]
    fn frames_zero_normalizes_to_one() {
        let nl = data::c17();
        let faults = c17_fault_list(&nl);
        let vectors = c17_vectors(100);
        let zero = sweep::<u64>(
            &nl,
            &faults,
            &vectors,
            &FaultSweepOptions {
                frames: 0,
                ..FaultSweepOptions::default()
            },
        );
        let one = sweep::<u64>(&nl, &faults, &vectors, &FaultSweepOptions::default());
        assert_eq!(zero.first_detection, one.first_detection);
    }

    #[test]
    fn seq_checkpoint_resume_bit_identical() {
        let nl = seq_fixture();
        let faults = seq_fault_list(&nl);
        let vectors = rand_vectors(3 * 320, nl.num_inputs(), 0xfade);
        let opts = FaultSweepOptions {
            threads: 2,
            fault_shards: 2,
            fault_dropping: false,
            frames: 3,
            ..FaultSweepOptions::default()
        };
        let full = sweep::<u64>(&nl, &faults, &vectors, &opts);
        let control = RunControl::unlimited().and_budget(RunBudget::unlimited().with_quota(200));
        let out = sweep_with_control::<u64>(&nl, &faults, &vectors, &opts, &control);
        let partial = match out {
            Outcome::Partial { value, .. } => value,
            Outcome::Complete(_) => panic!("a 200-vector quota must interrupt a 1920-unit grid"),
        };
        let cp = SweepCheckpoint::capture::<u64>(&nl, &faults, &vectors, &opts, &partial);
        assert_eq!(cp.frames, 3);
        let wrong = FaultSweepOptions {
            frames: 2,
            ..opts.clone()
        };
        let err = cp
            .validate::<u64>(&nl, &faults, &vectors, &wrong)
            .unwrap_err();
        assert!(err.to_string().contains("frames-per-sequence"), "{err}");
        let resumed =
            sweep_resume::<u64>(&nl, &faults, &vectors, &opts, &RunControl::unlimited(), &cp)
                .unwrap();
        assert!(resumed.is_complete());
        let r = resumed.into_value();
        assert_eq!(full.first_detection, r.first_detection);
        assert!(r.done_batches.iter().all(|&d| d));
    }

    #[test]
    fn resume_against_wrong_run_is_rejected() {
        let nl = data::c17();
        let faults = c17_fault_list(&nl);
        let vectors = c17_vectors(128);
        let out = sweep::<u64>(&nl, &faults, &vectors, &FaultSweepOptions::default());
        let cp = SweepCheckpoint::capture::<u64>(
            &nl,
            &faults,
            &vectors,
            &FaultSweepOptions::default(),
            &out,
        );
        let other = c17_vectors(127);
        let err = sweep_resume::<u64>(
            &nl,
            &faults,
            &other,
            &FaultSweepOptions::default(),
            &RunControl::unlimited(),
            &cp,
        )
        .unwrap_err();
        assert!(matches!(err, EngineError::CheckpointMismatch(_)));
    }
}
