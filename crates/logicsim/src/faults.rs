//! IDDQ defect models.
//!
//! The defect classes follow the literature the paper builds on: bridging
//! shorts between nets (Malaiya et al.), gate-oxide shorts (Hawkins &
//! Soden) and stuck-on transistors. Every defect is characterized by
//!
//! * an *activation condition* — a predicate over the fault-free logic
//!   values that establishes a conducting VDD→GND path, and
//! * a *defect current* — the steady-state current the activated defect
//!   draws, which a BIC sensor can compare against `I_DDQ,th`.
//!
//! Activation is evaluated on the *fault-free* values: IDDQ defects in
//! their activating state typically leave intermediate analogue voltages
//! on the shorted nets rather than flipping downstream logic, which is
//! exactly why logic testing misses them and current testing does not.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use iddq_netlist::separation::SeparationOracle;
use iddq_netlist::{Netlist, NodeId};

/// One modelled IDDQ defect.
#[derive(Debug, Clone, PartialEq)]
pub enum IddqFault {
    /// Resistive short between two nets; conducts when the nets carry
    /// opposite values.
    Bridge {
        /// First shorted net (driver node id).
        a: NodeId,
        /// Second shorted net.
        b: NodeId,
        /// Current drawn when activated, in µA.
        current_ua: f64,
    },
    /// Short through the gate oxide of one transistor of `gate`: conducts
    /// whenever the shorted input disagrees with the gate's output node
    /// voltage (a path from the driving stage through the oxide).
    GateOxideShort {
        /// The defective gate.
        gate: NodeId,
        /// Which input pin's oxide is shorted.
        pin: usize,
        /// Current drawn when activated, in µA.
        current_ua: f64,
    },
    /// A pull-down transistor that conducts regardless of its gate
    /// voltage: a VDD→GND path exists whenever the gate output is high
    /// (the pull-up network fights the stuck-on device).
    StuckOn {
        /// The defective gate.
        gate: NodeId,
        /// Current drawn when activated, in µA.
        current_ua: f64,
    },
}

impl IddqFault {
    /// The gates electrically involved in the defect: the site whose
    /// module's BIC sensor sees the current, plus (for bridges) the
    /// second site — the defect current flows between both drivers'
    /// supply paths, so *either* sensor can flag it.
    #[must_use]
    pub fn sites(&self) -> (NodeId, Option<NodeId>) {
        match *self {
            IddqFault::Bridge { a, b, .. } => (a, Some(b)),
            IddqFault::GateOxideShort { gate, .. } | IddqFault::StuckOn { gate, .. } => {
                (gate, None)
            }
        }
    }

    /// Defect current when activated, in µA.
    #[must_use]
    pub fn current_ua(&self) -> f64 {
        match *self {
            IddqFault::Bridge { current_ua, .. }
            | IddqFault::GateOxideShort { current_ua, .. }
            | IddqFault::StuckOn { current_ua, .. } => current_ua,
        }
    }

    /// Packed activation mask: bit *k* set iff pattern *k*'s fault-free
    /// values activate the defect. Generic over the packed word, so one
    /// call covers 64 (`u64`) or 256 ([`iddq_netlist::W256`]) patterns.
    ///
    /// `values` must come from [`Simulator::eval`](crate::Simulator::eval)
    /// (or [`eval_into`](crate::Simulator::eval_into)) on the same netlist.
    #[must_use]
    pub fn activation<W: iddq_netlist::PackedWord>(&self, netlist: &Netlist, values: &[W]) -> W {
        match *self {
            IddqFault::Bridge { a, b, .. } => values[a.index()] ^ values[b.index()],
            IddqFault::GateOxideShort { gate, pin, .. } => {
                let input = netlist.node(gate).fanin()[pin];
                values[input.index()] ^ values[gate.index()]
            }
            IddqFault::StuckOn { gate, .. } => values[gate.index()],
        }
    }
}

/// Parameters for random defect-universe enumeration.
#[derive(Debug, Clone)]
pub struct FaultUniverseConfig {
    /// Number of bridge defects to sample.
    pub bridges: usize,
    /// Maximum undirected distance between bridged drivers — bridges are
    /// physically local, so only nearby nets short together.
    pub bridge_locality: u32,
    /// Fraction of gates given a gate-oxide-short defect (one random pin).
    pub gos_fraction: f64,
    /// Fraction of gates given a stuck-on defect.
    pub stuck_on_fraction: f64,
    /// Defect current range in µA (uniform).
    pub current_range_ua: (f64, f64),
}

impl Default for FaultUniverseConfig {
    fn default() -> Self {
        FaultUniverseConfig {
            bridges: 64,
            bridge_locality: 4,
            gos_fraction: 0.15,
            stuck_on_fraction: 0.10,
            current_range_ua: (50.0, 500.0),
        }
    }
}

/// Enumerates a reproducible random defect universe for `netlist`.
///
/// Bridges are drawn between gate outputs within `bridge_locality` in the
/// undirected circuit graph (using a truncated BFS), mirroring the
/// layout-locality of real shorts. Gate-oxide shorts and stuck-on defects
/// are sampled per gate.
///
/// Builds its own [`SeparationOracle`] for the locality filter; callers
/// already holding one (e.g. from an `iddq_core` analysis context) should
/// use [`enumerate_with`] to share it.
#[must_use]
pub fn enumerate(netlist: &Netlist, config: &FaultUniverseConfig, seed: u64) -> Vec<IddqFault> {
    enumerate_with(netlist, config, seed, None)
}

/// [`enumerate`] with an optionally borrowed [`SeparationOracle`].
///
/// The borrowed oracle is used when its bound covers the locality filter
/// (`ρ ≥ bridge_locality + 1`): every bridge candidate sits at distance
/// `≤ bridge_locality`, and a wider oracle reports exactly the same
/// (sorted) candidate set below its bound, so the enumeration is
/// **identical** to building a dedicated `ρ = bridge_locality + 1`
/// oracle. When no oracle is supplied — or its bound is too small to
/// decide the filter — a dedicated one is built, exactly as
/// [`enumerate`] does.
#[must_use]
pub fn enumerate_with(
    netlist: &Netlist,
    config: &FaultUniverseConfig,
    seed: u64,
    oracle: Option<&SeparationOracle>,
) -> Vec<IddqFault> {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xfau64 << 32);
    let gates: Vec<NodeId> = netlist.gate_ids().collect();
    let mut faults = Vec::new();
    if gates.is_empty() {
        return faults;
    }
    let current =
        |rng: &mut SmallRng| rng.gen_range(config.current_range_ua.0..=config.current_range_ua.1);

    // Bridges between nearby drivers. One truncated-BFS pass (inside the
    // oracle) precomputes each gate's neighbourhood; per-gate candidate
    // lists are then read off directly instead of re-filtering all gates
    // per sampling attempt, which was O(G²) per bridge on large circuits.
    if config.bridges > 0 {
        let own;
        let sep = match oracle {
            Some(sep) if sep.rho() > config.bridge_locality => sep,
            _ => {
                own = SeparationOracle::new(netlist, config.bridge_locality + 1);
                &own
            }
        };
        let nearby_gates: Vec<Vec<NodeId>> = gates
            .iter()
            .map(|&a| {
                sep.neighbors_within(a)
                    .into_iter()
                    .filter(|&(g, d)| g != a && d <= config.bridge_locality && netlist.is_gate(g))
                    .map(|(g, _)| g)
                    .collect()
            })
            .collect();
        let mut attempts = 0;
        while faults.len() < config.bridges && attempts < config.bridges * 20 {
            attempts += 1;
            let ai = rng.gen_range(0..gates.len());
            let nearby = &nearby_gates[ai];
            if nearby.is_empty() {
                continue;
            }
            let a = gates[ai];
            let b = nearby[rng.gen_range(0..nearby.len())];
            let current_ua = current(&mut rng);
            faults.push(IddqFault::Bridge { a, b, current_ua });
        }
    }

    // Gate-oxide shorts.
    for &g in &gates {
        if rng.gen_bool(config.gos_fraction) {
            let pins = netlist.node(g).fanin().len();
            let pin = rng.gen_range(0..pins);
            let current_ua = current(&mut rng);
            faults.push(IddqFault::GateOxideShort {
                gate: g,
                pin,
                current_ua,
            });
        }
    }

    // Stuck-on transistors.
    for &g in &gates {
        if rng.gen_bool(config.stuck_on_fraction) {
            let current_ua = current(&mut rng);
            faults.push(IddqFault::StuckOn {
                gate: g,
                current_ua,
            });
        }
    }
    faults
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Simulator;
    use iddq_netlist::data;

    #[test]
    fn bridge_activates_on_opposite_values() {
        let nl = data::c17();
        let sim = Simulator::new(&nl);
        let g10 = nl.find("10").unwrap();
        let g11 = nl.find("11").unwrap();
        let f = IddqFault::Bridge {
            a: g10,
            b: g11,
            current_ua: 100.0,
        };
        // inputs all 1: 10 = NAND(1,3) = 0, 11 = NAND(3,6) = 0 → same → inactive
        let v = sim.eval(&[!0u64; 5]);
        assert_eq!(f.activation(&nl, &v) & 1, 0);
        // inputs 1=0 others 1: 10 = NAND(0,1) = 1, 11 = 0 → opposite → active
        let v = sim.eval(&[0, !0, !0, !0, !0]);
        assert_eq!(f.activation(&nl, &v) & 1, 1);
    }

    #[test]
    fn gos_activates_on_input_output_disagreement() {
        let nl = data::c17();
        let sim = Simulator::new(&nl);
        let g10 = nl.find("10").unwrap(); // NAND(1, 3)
        let f = IddqFault::GateOxideShort {
            gate: g10,
            pin: 0,
            current_ua: 80.0,
        };
        // inputs all 1: in0 = 1, out = 0 → disagree → active
        let v = sim.eval(&[!0u64; 5]);
        assert_eq!(f.activation(&nl, &v) & 1, 1);
        // input 1 = 0: in0 = 0, out = 1 → disagree → still active
        let v = sim.eval(&[0, !0, !0, !0, !0]);
        assert_eq!(f.activation(&nl, &v) & 1, 1);
        // inputs 3 = 0, 1 = 0: in0 = 0... out = NAND(0,0) = 1 → active.
        // Inactive case needs in0 == out: in0 = 1, out = 1 → input 3 = 0.
        let v = sim.eval(&[!0, !0, 0, !0, !0]);
        assert_eq!(f.activation(&nl, &v) & 1, 0);
    }

    #[test]
    fn stuck_on_activates_when_output_high() {
        let nl = data::c17();
        let sim = Simulator::new(&nl);
        let g22 = nl.find("22").unwrap();
        let f = IddqFault::StuckOn {
            gate: g22,
            current_ua: 120.0,
        };
        let v = sim.eval(&[!0u64; 5]); // 22 = 1
        assert_eq!(f.activation(&nl, &v) & 1, 1);
        let v = sim.eval(&[0u64; 5]); // 22 = 0
        assert_eq!(f.activation(&nl, &v) & 1, 0);
    }

    #[test]
    fn enumeration_is_deterministic_and_local() {
        let nl = data::ripple_adder(8);
        let cfg = FaultUniverseConfig::default();
        let a = enumerate(&nl, &cfg, 42);
        let b = enumerate(&nl, &cfg, 42);
        assert_eq!(a, b);
        assert!(!a.is_empty());
        let sep = SeparationOracle::new(&nl, cfg.bridge_locality + 1);
        for f in &a {
            if let IddqFault::Bridge { a, b, .. } = f {
                assert!(sep.distance(*a, *b) <= cfg.bridge_locality);
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn borrowed_oracle_reproduces_owned_enumeration() {
        let nl = data::ripple_adder(8);
        let cfg = FaultUniverseConfig::default();
        let owned = enumerate(&nl, &cfg, 42);
        // A wider borrowed oracle (ρ = 6 > locality + 1 = 5) yields the
        // identical universe: the candidate sets below the bound agree.
        for rho in [cfg.bridge_locality + 1, 6, 9] {
            let sep = SeparationOracle::new(&nl, rho);
            assert_eq!(
                enumerate_with(&nl, &cfg, 42, Some(&sep)),
                owned,
                "borrowed rho {rho}"
            );
        }
        // A too-narrow oracle cannot decide the filter; the fallback
        // build keeps the result identical anyway.
        let narrow = SeparationOracle::new(&nl, cfg.bridge_locality);
        assert_eq!(enumerate_with(&nl, &cfg, 42, Some(&narrow)), owned);
    }

    #[test]
    fn currents_within_configured_range() {
        let nl = data::ripple_adder(4);
        let cfg = FaultUniverseConfig {
            current_range_ua: (10.0, 20.0),
            ..FaultUniverseConfig::default()
        };
        for f in enumerate(&nl, &cfg, 7) {
            let c = f.current_ua();
            assert!((10.0..=20.0).contains(&c));
        }
    }

    #[test]
    fn empty_universe_for_gateless_netlist() {
        // A netlist must have outputs, so the smallest "gateless" case is
        // impossible; instead check a tiny circuit with zero sampling
        // fractions and zero bridges.
        let nl = data::c17();
        let cfg = FaultUniverseConfig {
            bridges: 0,
            gos_fraction: 0.0,
            stuck_on_fraction: 0.0,
            ..FaultUniverseConfig::default()
        };
        assert!(enumerate(&nl, &cfg, 1).is_empty());
    }
}
