//! Sensor-level IDDQ detection: which defects does each test vector expose
//! to which BIC sensor.
//!
//! A partitioned CUT has one current sensor per module. After a vector is
//! applied and the transient decays, sensor *i* measures the module's
//! fault-free leakage `I_DDQ,nd,i` plus the current of any *activated*
//! defect sited in the module; it flags FAIL when the measurement exceeds
//! `I_DDQ,th`. Detection therefore requires both the logical activation
//! condition (from [`faults`](crate::faults)) and an electrically sane
//! sensor: `I_DDQ,nd,i < I_DDQ,th` — the discriminability constraint the
//! partitioner enforces.

use iddq_netlist::Netlist;

use crate::faults::IddqFault;
use crate::sim::Simulator;

/// Module assignment marker for nodes outside any module (primary inputs).
pub const NO_MODULE: u32 = u32::MAX;

/// Outcome of an IDDQ test experiment.
#[derive(Debug, Clone)]
pub struct IddqSimulation {
    /// Per-fault: was it detected by any vector/sensor.
    pub detected: Vec<bool>,
    /// Per-fault: index of the first detecting vector, if any.
    pub first_detection: Vec<Option<usize>>,
    /// Fraction of faults detected.
    pub coverage: f64,
    /// Number of vectors applied.
    pub vectors_applied: usize,
}

/// Packs boolean vectors into 64-wide batches for [`Simulator::eval`].
///
/// Returns `(batches, used)` where each batch holds one `u64` per primary
/// input; the last batch may be partially filled.
///
/// # Panics
///
/// Panics if any vector's length differs from `num_inputs`.
#[must_use]
pub fn pack_vectors(vectors: &[Vec<bool>], num_inputs: usize) -> Vec<(Vec<u64>, usize)> {
    let mut out = Vec::new();
    for chunk in vectors.chunks(64) {
        let mut words = vec![0u64; num_inputs];
        for (k, v) in chunk.iter().enumerate() {
            assert_eq!(v.len(), num_inputs, "vector arity mismatch");
            for (i, &bit) in v.iter().enumerate() {
                if bit {
                    words[i] |= 1u64 << k;
                }
            }
        }
        out.push((words, chunk.len()));
    }
    out
}

/// Runs the full IDDQ test experiment.
///
/// * `module_of[node]` — module index per node ([`NO_MODULE`] for primary
///   inputs),
/// * `module_leakage_ua[m]` — fault-free quiescent current of module `m`,
/// * `threshold_ua` — the sensors' common `I_DDQ,th`.
///
/// A fault is *detected* by a vector iff it is activated and at least one
/// of its site modules has a sane sensor (`leakage < threshold`) whose
/// measurement `leakage + defect current` reaches the threshold.
///
/// # Panics
///
/// Panics if `module_of.len() != netlist.node_count()` or a gate maps to a
/// module index out of range of `module_leakage_ua`.
#[must_use]
pub fn simulate(
    netlist: &Netlist,
    faults: &[IddqFault],
    vectors: &[Vec<bool>],
    module_of: &[u32],
    module_leakage_ua: &[f64],
    threshold_ua: f64,
) -> IddqSimulation {
    assert_eq!(module_of.len(), netlist.node_count());
    let sim = Simulator::new(netlist);
    let mut detected = vec![false; faults.len()];
    let mut first_detection = vec![None; faults.len()];

    let sensor_sees = |module: u32, current_ua: f64| -> bool {
        if module == NO_MODULE {
            return false;
        }
        let leak = module_leakage_ua[module as usize];
        leak < threshold_ua && leak + current_ua >= threshold_ua
    };

    for (batch_idx, (words, used)) in pack_vectors(vectors, netlist.num_inputs())
        .into_iter()
        .enumerate()
    {
        let values = sim.eval(&words);
        let used_mask = if used == 64 { !0u64 } else { (1u64 << used) - 1 };
        for (fi, fault) in faults.iter().enumerate() {
            if detected[fi] {
                continue;
            }
            let act = fault.activation(netlist, &values) & used_mask;
            if act == 0 {
                continue;
            }
            let (site_a, site_b) = fault.sites();
            let seen = sensor_sees(module_of[site_a.index()], fault.current_ua())
                || site_b
                    .map(|s| sensor_sees(module_of[s.index()], fault.current_ua()))
                    .unwrap_or(false);
            if seen {
                detected[fi] = true;
                first_detection[fi] = Some(batch_idx * 64 + act.trailing_zeros() as usize);
            }
        }
    }

    let coverage = if faults.is_empty() {
        1.0
    } else {
        detected.iter().filter(|&&d| d).count() as f64 / faults.len() as f64
    };
    IddqSimulation {
        detected,
        first_detection,
        coverage,
        vectors_applied: vectors.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iddq_netlist::data;

    fn one_module_assignment(nl: &Netlist) -> Vec<u32> {
        nl.node_ids()
            .map(|id| if nl.is_gate(id) { 0 } else { NO_MODULE })
            .collect()
    }

    #[test]
    fn activated_fault_is_detected_with_good_sensor() {
        let nl = data::c17();
        let g22 = nl.find("22").unwrap();
        let faults = vec![IddqFault::StuckOn { gate: g22, current_ua: 50.0 }];
        let vectors = vec![vec![true; 5]]; // 22 = 1 → activated
        let module_of = one_module_assignment(&nl);
        let r = simulate(&nl, &faults, &vectors, &module_of, &[0.1], 1.0);
        assert_eq!(r.detected, vec![true]);
        assert_eq!(r.first_detection, vec![Some(0)]);
        assert_eq!(r.coverage, 1.0);
    }

    #[test]
    fn unactivated_fault_is_missed() {
        let nl = data::c17();
        let g22 = nl.find("22").unwrap();
        let faults = vec![IddqFault::StuckOn { gate: g22, current_ua: 50.0 }];
        let vectors = vec![vec![false; 5]]; // 22 = 0 → not activated
        let module_of = one_module_assignment(&nl);
        let r = simulate(&nl, &faults, &vectors, &module_of, &[0.1], 1.0);
        assert_eq!(r.detected, vec![false]);
        assert_eq!(r.coverage, 0.0);
    }

    #[test]
    fn saturated_sensor_cannot_detect() {
        // Module leakage above threshold: the sensor always fails, so the
        // measurement carries no defect information — the discriminability
        // constraint exists precisely to rule this out.
        let nl = data::c17();
        let g22 = nl.find("22").unwrap();
        let faults = vec![IddqFault::StuckOn { gate: g22, current_ua: 50.0 }];
        let vectors = vec![vec![true; 5]];
        let module_of = one_module_assignment(&nl);
        let r = simulate(&nl, &faults, &vectors, &module_of, &[5.0], 1.0);
        assert_eq!(r.detected, vec![false]);
    }

    #[test]
    fn tiny_defect_current_below_threshold_missed() {
        let nl = data::c17();
        let g22 = nl.find("22").unwrap();
        let faults = vec![IddqFault::StuckOn { gate: g22, current_ua: 0.5 }];
        let vectors = vec![vec![true; 5]];
        let module_of = one_module_assignment(&nl);
        // leakage 0.1 + defect 0.5 = 0.6 < 1.0 → missed
        let r = simulate(&nl, &faults, &vectors, &module_of, &[0.1], 1.0);
        assert_eq!(r.detected, vec![false]);
    }

    #[test]
    fn bridge_detected_via_either_module() {
        let nl = data::c17();
        let g10 = nl.find("10").unwrap();
        let g11 = nl.find("11").unwrap();
        let faults = vec![IddqFault::Bridge { a: g10, b: g11, current_ua: 100.0 }];
        // Put g10 in module 0 (saturated sensor) and g11 in module 1 (good).
        let mut module_of = vec![NO_MODULE; nl.node_count()];
        for g in nl.gate_ids() {
            module_of[g.index()] = u32::from(g == g11);
        }
        // input "1" = 0 → 10 = 1, 11 = 0 → bridge active.
        let vectors = vec![vec![false, true, true, true, true]];
        let r = simulate(&nl, &faults, &vectors, &module_of, &[10.0, 0.1], 1.0);
        assert_eq!(r.detected, vec![true]);
    }

    #[test]
    fn first_detection_vector_index_across_batches() {
        let nl = data::c17();
        let g22 = nl.find("22").unwrap();
        let faults = vec![IddqFault::StuckOn { gate: g22, current_ua: 50.0 }];
        // 70 inactive vectors then one activating one (index 70).
        let mut vectors = vec![vec![false; 5]; 70];
        vectors.push(vec![true; 5]);
        let module_of = one_module_assignment(&nl);
        let r = simulate(&nl, &faults, &vectors, &module_of, &[0.1], 1.0);
        assert_eq!(r.first_detection, vec![Some(70)]);
    }

    #[test]
    fn empty_fault_list_full_coverage() {
        let nl = data::c17();
        let module_of = one_module_assignment(&nl);
        let r = simulate(&nl, &[], &[vec![false; 5]], &module_of, &[0.1], 1.0);
        assert_eq!(r.coverage, 1.0);
    }

    #[test]
    fn pack_vectors_shapes() {
        let vectors = vec![vec![true, false]; 130];
        let packed = pack_vectors(&vectors, 2);
        assert_eq!(packed.len(), 3);
        assert_eq!(packed[0].1, 64);
        assert_eq!(packed[2].1, 2);
        assert_eq!(packed[0].0[0], !0u64);
        assert_eq!(packed[0].0[1], 0);
    }
}
